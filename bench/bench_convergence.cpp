// Experiment R-F2 — search convergence.
//
// Best-found objective (normalized to the oracle) as a function of the
// number of evaluations, per method, averaged over seeds. The shape to
// reproduce: model-based tuners (autodml, cherrypick) reach near-oracle
// within ~20-30 evaluations; random/grid need several times more; greedy
// methods plateau. Series are printed at checkpoints 5,10,15,20,25,30.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

namespace {

double incumbent_at(const core::TuningResult& result, std::size_t evals) {
  if (result.incumbent_curve.empty()) return std::numeric_limits<double>::infinity();
  const std::size_t idx = std::min(evals, result.incumbent_curve.size()) - 1;
  return result.incumbent_curve[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 30));
  const std::vector<std::string> workloads =
      util::split(args.get("workloads", "logreg-ads,mf-recsys,cnn-cifar"), ',');
  const std::vector<std::size_t> checkpoints = {5, 10, 15, 20, 25, 30};

  const auto& registry = baselines::tuner_registry();

  for (const std::string& workload_name : workloads) {
    const wl::Workload& workload = wl::workload_by_name(workload_name);
    const bench::Oracle oracle =
        bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

    // methods x seeds replicates in parallel.
    std::vector<bench::ReplicateResult> results(registry.size() * seeds);
    bench::parallel_tasks(results.size(), [&](std::size_t task) {
      const std::size_t m = task / seeds;
      const std::uint64_t seed = 1000 + task % seeds;
      results[task] = bench::run_replicate(
          workload, wl::Objective::kTimeToAccuracy,
          [&](core::ObjectiveFunction& obj, int budget, std::uint64_t s) {
            return registry[m].fn(obj, budget, s);
          },
          evals, seed);
    });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t m = 0; m < registry.size(); ++m) {
      std::vector<std::string> row{registry[m].name};
      for (std::size_t cp : checkpoints) {
        std::vector<double> ratios;
        for (int s = 0; s < seeds; ++s) {
          const double inc = incumbent_at(results[m * seeds + s].tuning, cp);
          ratios.push_back(std::isfinite(inc) ? inc / oracle.objective : 99.0);
        }
        row.push_back(bench::fmt_ratio(util::mean(ratios)));
      }
      rows.push_back(std::move(row));
    }
    bench::print_table(
        "R-F2  " + workload_name +
            "  mean best-found / oracle vs #evaluations (seeds=" +
            std::to_string(seeds) + ")",
        {"method", "@5", "@10", "@15", "@20", "@25", "@30"}, rows);
  }
  return 0;
}

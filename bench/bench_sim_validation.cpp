// Experiment R-T6 — substrate validation.
//
// Three checks that the simulated evaluation pipeline behaves like the real
// thing it substitutes for (DESIGN.md substitution table):
//  (a) closed-form analytic throughput vs the discrete-event ground truth
//      across a config sweep: rank correlation and median absolute error —
//      the DES captures contention/queueing the closed form misses;
//  (b) the statistical-efficiency staleness law vs a *real* delayed-gradient
//      logistic-regression trainer: steps-to-target must rise monotonically
//      with delay in both, with correlated magnitudes;
//  (c) the critical-batch law vs the same trainer: samples-to-target grows
//      with batch in both.
#include <cmath>

#include "bench_common.h"
#include "ml/micro_trainer.h"
#include "sim/analytic_model.h"
#include "util/arg_parse.h"

using namespace autodml;

namespace {

void validate_analytic_vs_des() {
  std::vector<double> analytic, des;
  std::vector<std::vector<std::string>> rows;
  for (const auto& [w, s, model_mb] :
       std::vector<std::tuple<int, int, double>>{{2, 1, 40},
                                                 {4, 2, 40},
                                                 {8, 2, 40},
                                                 {8, 8, 400},
                                                 {16, 4, 400},
                                                 {16, 16, 400},
                                                 {32, 8, 120},
                                                 {32, 16, 800},
                                                 {64, 8, 120},
                                                 {64, 16, 40}}) {
    sim::ClusterSpec spec;
    spec.worker_type = "std8";
    spec.server_type = "mem8";
    spec.num_workers = w;
    spec.num_servers = s;
    spec.heterogeneity_sigma = 0.0;
    spec.straggler_sigma = 0.05;
    util::Rng rng(7);
    const sim::Cluster cluster = sim::provision(spec, rng);
    sim::JobParams job;
    job.model_bytes = model_mb * 1e6;
    job.flops_per_sample = 5e7;
    job.batch_per_worker = 32;

    const double est = sim::analytic_ps(cluster, job).updates_per_second;
    util::Rng sim_rng(11);
    sim::PsSimOptions options;
    options.warmup_iterations = 3;
    options.measure_iterations = 16;
    const double truth =
        sim::simulate_ps(cluster, job, sim_rng, options).updates_per_second;
    analytic.push_back(est);
    des.push_back(truth);
    rows.push_back({std::to_string(w), std::to_string(s),
                    util::fmt(model_mb, 4), util::fmt(truth), util::fmt(est),
                    bench::fmt_ratio(est / truth)});
  }
  rows.push_back({"spearman", "", "", "", "",
                  bench::fmt_ratio(util::spearman(analytic, des))});
  std::vector<double> abs_err;
  for (std::size_t i = 0; i < des.size(); ++i)
    abs_err.push_back(std::abs(analytic[i] / des[i] - 1.0));
  rows.push_back(
      {"median|err|", "", "", "", "", bench::fmt_ratio(util::median(abs_err))});
  bench::print_table(
      "R-T6a  analytic model vs discrete-event simulator (updates/s)",
      {"workers", "servers", "model-MB", "DES", "analytic", "ratio"}, rows);
}

void validate_staleness_law() {
  // Real trainer: mean steps to target vs gradient delay.
  const std::vector<int> delays = {0, 8, 32, 128, 256};
  std::vector<double> trainer_steps(delays.size());
  bench::parallel_tasks(delays.size(), [&](std::size_t i) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      ml::MicroTrainerConfig config;
      config.seed = seed;
      config.gradient_delay = delays[i];
      config.batch_size = 4;
      config.class_separation = 2.8;
      config.learning_rate = 0.1;
      config.eval_every = 5;
      const auto r = ml::run_micro_trainer(config);
      total += r.reached_target ? r.steps : config.max_steps;
    }
    trainer_steps[i] = total / 8.0;
  });

  // Model: samples-to-target at the same staleness values (delay in steps
  // corresponds to staleness in iterations for a 1-worker pipeline).
  ml::StatModelParams params;
  params.eval_noise_sigma = 0.0;
  std::vector<double> model_samples;
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < delays.size(); ++i) {
    util::Rng rng(1);
    const auto out = ml::samples_to_target(
        params, 4.0, static_cast<double>(delays[i]),
        ml::samples_to_target(params, 4.0, static_cast<double>(delays[i]),
                              1e-9, sim::Compression::kNone, rng)
            .lr_optimal,
        sim::Compression::kNone, rng);
    model_samples.push_back(out.samples_to_target);
    rows.push_back({std::to_string(delays[i]), util::fmt(trainer_steps[i]),
                    util::fmt(out.samples_to_target / params.base_samples)});
  }
  rows.push_back({"spearman", bench::fmt_ratio(util::spearman(
                                  trainer_steps, model_samples)),
                  ""});
  bench::print_table(
      "R-T6b  staleness law: real delayed-gradient SGD vs model",
      {"delay", "trainer-mean-steps", "model-samples/base"}, rows);
}

void validate_batch_law() {
  const std::vector<int> batches = {1, 2, 4, 16, 64, 256};
  std::vector<double> trainer_samples(batches.size());
  bench::parallel_tasks(batches.size(), [&](std::size_t i) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      ml::MicroTrainerConfig config;
      config.seed = seed;
      config.batch_size = batches[i];
      config.class_separation = 2.8;
      config.learning_rate = 0.1;
      config.eval_every = 5;
      const auto r = ml::run_micro_trainer(config);
      total += r.samples_processed;
    }
    trainer_samples[i] = total / 8.0;
  });
  ml::StatModelParams params;
  params.eval_noise_sigma = 0.0;
  std::vector<double> model_samples;
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    util::Rng rng(1);
    const double lr_opt =
        ml::samples_to_target(params, batches[i], 0.0, 1e-9,
                              sim::Compression::kNone, rng)
            .lr_optimal;
    const auto out = ml::samples_to_target(params, batches[i], 0.0, lr_opt,
                                           sim::Compression::kNone, rng);
    model_samples.push_back(out.samples_to_target);
    rows.push_back({std::to_string(batches[i]), util::fmt(trainer_samples[i]),
                    util::fmt(out.samples_to_target / params.base_samples)});
  }
  rows.push_back({"spearman", bench::fmt_ratio(util::spearman(
                                  trainer_samples, model_samples)),
                  ""});
  bench::print_table(
      "R-T6c  critical-batch law: real SGD samples-to-target vs model",
      {"batch", "trainer-mean-samples", "model-samples/base"}, rows);
}

}  // namespace

int main() {
  validate_analytic_vs_des();
  validate_staleness_law();
  validate_batch_law();
  return 0;
}

// Experiment R-F7 — knob importance per workload.
//
// After a tuning session, the objective GP's ARD inverse lengthscales say
// which knobs the response surface actually moves along. Expected shape:
// communication knobs (servers, compression, arch) dominate for the
// embedding-heavy workloads (mf-recsys, word2vec-text); batch/learning-rate
// and instance type dominate for the compute-heavy ones (cnn, resnet).
#include "bench_common.h"
#include "core/sensitivity.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int evals = static_cast<int>(args.get_int("evals", 40));

  const auto& suite = wl::workload_suite();
  std::vector<std::vector<core::ParamImportance>> importances(suite.size());
  bench::parallel_tasks(suite.size(), [&](std::size_t i) {
    wl::Evaluator evaluator(suite[i], 21 + i);
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options = bench::bench_bo_options(21 + i, evals);
    core::BoTuner tuner(objective, options);
    tuner.tune();
    const math::Vec relevance = tuner.surrogate().ard_relevance();
    if (!relevance.empty()) {
      importances[i] =
          core::ard_param_importance(evaluator.space(), relevance);
    }
  });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& p : importances[i]) {
      rows.push_back({p.param, util::fmt(p.importance, 3)});
    }
    bench::print_table("R-F7  " + suite[i].name + "  ARD knob importance",
                       {"param", "importance"}, rows);
  }
  return 0;
}

// Experiment R-F11 — communication-architecture microbenchmark.
//
// Pure substrate experiment: per-iteration time of the PS runtime (with 4
// and 16 servers) vs ring all-reduce as the worker count grows, at a small
// and a large model size. The shapes to reproduce: all-reduce is flat-ish
// in W (bandwidth-optimal) and wins for big models once W is moderate; PS
// with few servers collapses as server NICs saturate; adding servers moves
// the crossover.
#include "bench_common.h"
#include "sim/allreduce_runtime.h"
#include "sim/ps_runtime.h"
#include "util/arg_parse.h"

using namespace autodml;

namespace {

sim::Cluster cluster_of(int workers, int servers) {
  sim::ClusterSpec spec;
  spec.worker_type = "std8";
  spec.server_type = "mem8";
  spec.num_workers = workers;
  spec.num_servers = servers;
  spec.heterogeneity_sigma = 0.0;
  spec.straggler_sigma = 0.03;
  util::Rng rng(5);
  return provision(spec, rng);
}

sim::JobParams job_of(double model_bytes) {
  sim::JobParams job;
  job.model_bytes = model_bytes;
  job.flops_per_sample = 5e7;
  job.batch_per_worker = 32;
  return job;
}

double ps_iteration_seconds(int workers, int servers, double model_bytes) {
  util::Rng rng(9);
  sim::PsSimOptions options;
  options.warmup_iterations = 3;
  options.measure_iterations = 12;
  return sim::simulate_ps(cluster_of(workers, servers), job_of(model_bytes),
                          rng, options)
      .mean_iteration_seconds;
}

double allreduce_iteration_seconds(int workers, double model_bytes) {
  util::Rng rng(9);
  sim::AllReduceSimOptions options;
  options.warmup_iterations = 3;
  options.measure_iterations = 12;
  return sim::simulate_allreduce(cluster_of(workers, 0), job_of(model_bytes),
                                 rng, options)
      .mean_iteration_seconds;
}

}  // namespace

int main() {
  const std::vector<int> worker_counts = {2, 4, 8, 16, 32, 64};
  for (const double model_mb : {40.0, 800.0}) {
    struct Row {
      double ps4, ps16, ar;
    };
    std::vector<Row> data(worker_counts.size());
    bench::parallel_tasks(worker_counts.size(), [&](std::size_t i) {
      const int w = worker_counts[i];
      data[i].ps4 = ps_iteration_seconds(w, 4, model_mb * 1e6);
      data[i].ps16 = ps_iteration_seconds(w, 16, model_mb * 1e6);
      data[i].ar = allreduce_iteration_seconds(w, model_mb * 1e6);
    });
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      const double best = std::min({data[i].ps4, data[i].ps16, data[i].ar});
      const std::string winner = best == data[i].ar
                                     ? "allreduce"
                                     : (best == data[i].ps16 ? "ps16" : "ps4");
      rows.push_back({std::to_string(worker_counts[i]),
                      util::fmt(data[i].ps4), util::fmt(data[i].ps16),
                      util::fmt(data[i].ar), winner});
    }
    bench::print_table("R-F11  iteration seconds, model=" +
                           util::fmt(model_mb, 4) + " MB (std8 workers)",
                       {"workers", "ps(S=4)", "ps(S=16)", "allreduce",
                        "winner"},
                       rows);
  }
  return 0;
}

// Experiment R-T10 — synchronization-mode crossover.
//
// Fixed cluster and job; sweep the straggler severity and compute the
// noise-free TTA of BSP, ASP, and SSP (bound 4). The shape to reproduce:
// BSP wins on quiet clusters (no staleness penalty), ASP wins under heavy
// stragglers (no barrier), SSP covers the middle band — the reason the
// sync knob exists at all and a direct check that the simulator + the
// statistical model interact correctly.
#include "bench_common.h"
#include "ml/convergence.h"
#include "sim/ps_runtime.h"
#include "util/arg_parse.h"

using namespace autodml;

namespace {

double tta_hours(sim::SyncMode mode, int ssp_bound, double straggler_sigma,
                 const wl::Workload& workload) {
  sim::ClusterSpec spec;
  spec.worker_type = "std8";
  spec.server_type = "mem8";
  spec.num_workers = 16;
  spec.num_servers = 4;
  spec.heterogeneity_sigma = 0.05;
  spec.straggler_sigma = straggler_sigma;
  util::Rng rng(3);
  const sim::Cluster cluster = provision(spec, rng);

  sim::JobParams job;
  job.model_bytes = workload.model_bytes;
  job.flops_per_sample = workload.flops_per_sample;
  job.batch_per_worker = 64;
  job.sync = mode;
  job.staleness = ssp_bound;

  util::Rng sim_rng(17);
  sim::PsSimOptions options;
  options.warmup_iterations = 4;
  options.measure_iterations = 24;
  const sim::RuntimeStats stats =
      sim::simulate_ps(cluster, job, sim_rng, options);

  ml::StatModelParams stat = workload.stat;
  stat.eval_noise_sigma = 0.0;
  const double batch =
      ml::effective_batch(mode, spec.num_workers, job.batch_per_worker);
  const double staleness =
      ml::staleness_updates(mode, stats.mean_staleness, spec.num_workers);
  util::Rng noise(1);
  // Evaluate at the mode's own optimal learning rate: the fair comparison.
  const double lr_probe =
      ml::samples_to_target(stat, batch, staleness, 1e-9,
                            sim::Compression::kNone, noise)
          .lr_optimal;
  const auto outcome = ml::samples_to_target(
      stat, batch, staleness, lr_probe, sim::Compression::kNone, noise);
  return outcome.samples_to_target / stats.samples_per_second / 3600.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string workload_name = args.get("workload", "mlp-tabular");
  const wl::Workload& workload = wl::workload_by_name(workload_name);

  const std::vector<double> sigmas = {0.02, 0.1, 0.2, 0.4, 0.8, 1.2};
  std::vector<std::vector<std::string>> rows(sigmas.size());
  bench::parallel_tasks(sigmas.size(), [&](std::size_t i) {
    const double sigma = sigmas[i];
    const double bsp = tta_hours(sim::SyncMode::kBsp, 0, sigma, workload);
    const double ssp = tta_hours(sim::SyncMode::kSsp, 4, sigma, workload);
    const double asp = tta_hours(sim::SyncMode::kAsp, 0, sigma, workload);
    const double best = std::min({bsp, ssp, asp});
    std::string winner = best == bsp ? "bsp" : best == ssp ? "ssp" : "asp";
    rows[i] = {util::fmt(sigma, 3), util::fmt(bsp), util::fmt(ssp),
               util::fmt(asp), winner};
  });

  bench::print_table(
      "R-T10  " + workload_name +
          "  TTA (hours) by sync mode vs straggler severity (16 workers)",
      {"straggler-sigma", "bsp", "ssp(4)", "asp", "winner"}, rows);
  return 0;
}

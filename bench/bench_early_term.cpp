// Experiment R-F4 — early-termination ablation.
//
// The same tuner, with and without learning-curve-based early termination,
// on the same budgets and seeds. Reported per workload: final quality
// (vs oracle), total search cost in simulated cluster hours and dollars,
// the fraction of runs that were killed early, and the cost saving. The
// claim to reproduce: killing hopeless runs cuts search cost substantially
// (tens of percent) at equal final quality.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 30));
  const std::vector<std::string> workloads = util::split(
      args.get("workloads", "logreg-ads,mlp-tabular,resnet-imagenet"), ',');

  for (const std::string& workload_name : workloads) {
    const wl::Workload& workload = wl::workload_by_name(workload_name);
    const bench::Oracle oracle =
        bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

    struct Variant {
      std::string name;
      bool early_term;
    };
    const std::vector<Variant> variants = {{"autodml+ET", true},
                                           {"autodml-noET", false}};

    std::vector<bench::ReplicateResult> results(variants.size() * seeds);
    std::vector<double> aborted_fraction(variants.size() * seeds, 0.0);
    bench::parallel_tasks(results.size(), [&](std::size_t task) {
      const std::size_t v = task / seeds;
      const std::uint64_t seed = 900 + task % seeds;
      results[task] = bench::run_replicate(
          workload, wl::Objective::kTimeToAccuracy,
          [&](core::ObjectiveFunction& obj, int budget, std::uint64_t s) {
            core::BoOptions options = bench::bench_bo_options(s, budget);
            options.early_term.enabled = variants[v].early_term;
            core::BoTuner tuner(obj, options);
            return tuner.tune();
          },
          evals, seed);
      int aborted = 0;
      for (const auto& t : results[task].tuning.trials)
        aborted += t.outcome.aborted;
      aborted_fraction[task] =
          static_cast<double>(aborted) /
          static_cast<double>(results[task].tuning.trials.size());
    });

    std::vector<std::vector<std::string>> rows;
    std::vector<double> cost_by_variant(variants.size());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      std::vector<double> ratios, hours, usd, aborted;
      for (int s = 0; s < seeds; ++s) {
        const auto& r = results[v * seeds + s];
        ratios.push_back(std::isfinite(r.best_ground_truth)
                             ? r.best_ground_truth / oracle.objective
                             : 99.0);
        hours.push_back(r.search_cost_hours);
        usd.push_back(r.search_cost_usd);
        aborted.push_back(aborted_fraction[v * seeds + s]);
      }
      cost_by_variant[v] = util::mean(hours);
      rows.push_back({variants[v].name, bench::fmt_ratio(util::mean(ratios)),
                      util::fmt(util::mean(hours)),
                      util::fmt(util::mean(usd)),
                      util::fmt(100.0 * util::mean(aborted), 3)});
    }
    rows.push_back(
        {"saving%",
         util::fmt(100.0 * (1.0 - cost_by_variant[0] / cost_by_variant[1]), 3),
         "", "", ""});
    bench::print_table("R-F4  " + workload_name +
                           "  early-termination ablation (budget=" +
                           std::to_string(evals) + ")",
                       {"variant", "vs-oracle", "search-hours", "search-usd",
                        "aborted%"},
                       rows);
  }
  return 0;
}

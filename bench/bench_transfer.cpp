// Experiment R-F9 — warm-start transfer across workloads.
//
// History from tuning one workload is re-encoded into a sibling workload's
// space (the spaces share structure; menus differ) and used to warm-start
// the surrogate. Reported over seeds: quality after a small budget and
// evaluations-to-1.3x-oracle, cold vs warm. Expected shape: transfer from a
// *related* workload (cnn -> resnet) cuts the evaluations needed; transfer
// from an unrelated one (word2vec -> resnet) helps less or not at all.
#include <optional>

#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

namespace {

/// Re-bind trials from a source space to the target space via the shared
/// encoding (menus differ across workloads, so decode snaps to the target's
/// nearest valid values). Objective values come along unchanged — the GP's
/// target standardization absorbs the scale difference.
std::vector<core::Trial> remap_trials(const std::vector<core::Trial>& source,
                                      const conf::ConfigSpace& source_space,
                                      const conf::ConfigSpace& target_space) {
  std::vector<core::Trial> out;
  out.reserve(source.size());
  for (const core::Trial& t : source) {
    core::Trial mapped = t;
    mapped.config = target_space.decode(source_space.encode(t.config));
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int pilot_evals = static_cast<int>(args.get_int("pilot_evals", 25));
  const int evals = static_cast<int>(args.get_int("evals", 12));
  const std::string target_name = args.get("target", "resnet-imagenet");
  const std::vector<std::string> sources =
      util::split(args.get("sources", "cnn-cifar,word2vec-text"), ',');

  const wl::Workload& target = wl::workload_by_name(target_name);
  const bench::Oracle oracle =
      bench::compute_oracle(target, wl::Objective::kTimeToAccuracy);

  struct Variant {
    std::string name;
    std::string source;  // empty = cold
  };
  std::vector<Variant> variants{{"cold", ""}};
  for (const auto& s : sources) variants.push_back({"warm(" + s + ")", s});

  std::vector<bench::ReplicateResult> results(variants.size() * seeds);
  bench::parallel_tasks(results.size(), [&](std::size_t task) {
    const std::size_t v = task / seeds;
    const std::uint64_t seed = 1700 + task % seeds;

    // The pilot evaluator must outlive the target tuning run: warm-start
    // trials reference its configuration space.
    std::optional<wl::Evaluator> pilot_eval;
    std::vector<core::Trial> pilot_trials;
    if (!variants[v].source.empty()) {
      const wl::Workload& source = wl::workload_by_name(variants[v].source);
      pilot_eval.emplace(source, seed);
      wl::EvaluatorObjective pilot_obj(*pilot_eval);
      core::BoOptions pilot_options = bench::bench_bo_options(seed, pilot_evals);
      core::BoTuner pilot(pilot_obj, pilot_options);
      pilot_trials = pilot.tune().trials;
    }

    results[task] = bench::run_replicate(
        target, wl::Objective::kTimeToAccuracy,
        [&](core::ObjectiveFunction& obj, int budget, std::uint64_t s) {
          core::BoOptions options = bench::bench_bo_options(s, budget);
          if (!pilot_trials.empty()) {
            // Remap against the live target space owned by `obj`.
            options.warm_start = remap_trials(pilot_trials,
                                              pilot_eval->space(), obj.space());
            options.initial_design_size = 3;
          }
          core::BoTuner tuner(obj, options);
          return tuner.tune();
        },
        evals, seed);
  });

  std::vector<std::vector<std::string>> rows;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<double> ratios, reach;
    for (int s = 0; s < seeds; ++s) {
      const auto& r = results[v * seeds + s];
      ratios.push_back(std::isfinite(r.best_ground_truth)
                           ? r.best_ground_truth / oracle.objective
                           : 99.0);
      double to_13 = evals + 1;
      for (std::size_t i = 0; i < r.tuning.incumbent_curve.size(); ++i) {
        if (r.tuning.incumbent_curve[i] <= 1.3 * oracle.objective) {
          to_13 = static_cast<double>(i + 1);
          break;
        }
      }
      reach.push_back(to_13);
    }
    rows.push_back({variants[v].name, bench::fmt_ratio(util::mean(ratios)),
                    util::fmt(util::mean(reach), 3)});
  }
  bench::print_table(
      "R-F9  warm-start transfer onto " + target_name + " (budget=" +
          std::to_string(evals) + ", seeds=" + std::to_string(seeds) + ")",
      {"variant", "vs-oracle", "evals-to-1.3x"}, rows);
  return 0;
}

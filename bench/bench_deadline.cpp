// Experiment R-T12 (extension) — SLO-constrained cost tuning.
//
// Minimize dollar cost subject to a time-to-accuracy deadline, sweeping the
// deadline from loose to tight. The tuner never sees the constraint
// explicitly: deadline-violating runs surface as failures, and the
// feasibility model learns the violating region. Expected shape: a Pareto
// frontier — cost rises as the deadline tightens (faster clusters must be
// bought), until the deadline becomes infeasible outright.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const std::string workload_name = args.get("workload", "logreg-ads");
  const wl::Workload& workload = wl::workload_by_name(workload_name);

  // Deadlines in hours; infinity = unconstrained reference.
  const std::vector<double> deadlines_h = {
      std::numeric_limits<double>::infinity(), 24.0, 6.0, 1.5, 0.4, 0.1};

  std::vector<std::vector<std::string>> rows(deadlines_h.size());
  bench::parallel_tasks(deadlines_h.size(), [&](std::size_t d) {
    std::vector<double> costs, ttas;
    int found = 0;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 2100 + s;
      wl::EvaluatorOptions eval_options;
      eval_options.objective = wl::Objective::kCostToAccuracy;
      eval_options.deadline_seconds = deadlines_h[d] * 3600.0;
      wl::Evaluator evaluator(workload, seed, eval_options);
      wl::EvaluatorObjective objective(evaluator);
      core::BoOptions options = bench::bench_bo_options(seed, evals);
      core::BoTuner tuner(objective, options);
      const core::TuningResult result = tuner.tune();
      if (!result.found_feasible()) continue;
      const wl::EvalResult truth =
          evaluator.evaluate_ground_truth(result.best_config);
      if (!truth.feasible) continue;
      ++found;
      costs.push_back(truth.cost_usd);
      ttas.push_back(truth.tta_seconds / 3600.0);
    }
    rows[d] = {std::isfinite(deadlines_h[d]) ? util::fmt(deadlines_h[d])
                                             : "inf",
               found ? util::fmt(util::mean(costs)) : "-",
               found ? util::fmt(util::mean(ttas)) : "-",
               std::to_string(found) + "/" + std::to_string(seeds)};
  });

  bench::print_table(
      "R-T12  " + workload_name +
          "  cheapest config under a TTA deadline (budget=" +
          std::to_string(evals) + ", seeds=" + std::to_string(seeds) + ")",
      {"deadline-h", "mean-cost-$", "mean-TTA-h", "solved"}, rows);
  return 0;
}

// Experiment R-F5 — acquisition-function ablation.
//
// The same BO loop with EI, log-EI, UCB, PI and EI-per-cost. Reported per
// workload: mean final quality vs oracle, mean evaluations needed to get
// within 1.2x of the oracle (budget+1 when never reached), and search cost.
// Expected shape: log-EI ~ EI >= UCB > PI on quality; EI-per-cost trades a
// little quality for cheaper searches.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 30));
  const std::vector<std::string> workloads =
      util::split(args.get("workloads", "mf-recsys,cnn-cifar"), ',');
  const std::vector<core::AcquisitionKind> kinds = {
      core::AcquisitionKind::kEi, core::AcquisitionKind::kLogEi,
      core::AcquisitionKind::kUcb, core::AcquisitionKind::kPi,
      core::AcquisitionKind::kEiPerCost};

  for (const std::string& workload_name : workloads) {
    const wl::Workload& workload = wl::workload_by_name(workload_name);
    const bench::Oracle oracle =
        bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

    std::vector<bench::ReplicateResult> results(kinds.size() * seeds);
    bench::parallel_tasks(results.size(), [&](std::size_t task) {
      const std::size_t k = task / seeds;
      const std::uint64_t seed = 700 + task % seeds;
      results[task] = bench::run_replicate(
          workload, wl::Objective::kTimeToAccuracy,
          [&](core::ObjectiveFunction& obj, int budget, std::uint64_t s) {
            core::BoOptions options = bench::bench_bo_options(s, budget);
            options.acquisition = kinds[k];
            core::BoTuner tuner(obj, options);
            return tuner.tune();
          },
          evals, seed);
    });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<double> ratios, evals_to_12, hours;
      for (int s = 0; s < seeds; ++s) {
        const auto& r = results[k * seeds + s];
        ratios.push_back(std::isfinite(r.best_ground_truth)
                             ? r.best_ground_truth / oracle.objective
                             : 99.0);
        hours.push_back(r.search_cost_hours);
        double reach = evals + 1;
        for (std::size_t i = 0; i < r.tuning.incumbent_curve.size(); ++i) {
          // Incumbent curve is noisy-objective; scale-compare to oracle.
          if (r.tuning.incumbent_curve[i] <= 1.2 * oracle.objective) {
            reach = static_cast<double>(i + 1);
            break;
          }
        }
        evals_to_12.push_back(reach);
      }
      rows.push_back({core::to_string(kinds[k]),
                      bench::fmt_ratio(util::mean(ratios)),
                      util::fmt(util::mean(evals_to_12), 3),
                      util::fmt(util::mean(hours))});
    }
    bench::print_table(
        "R-F5  " + workload_name + "  acquisition ablation (budget=" +
            std::to_string(evals) + ", seeds=" + std::to_string(seeds) + ")",
        {"acquisition", "vs-oracle", "evals-to-1.2x", "search-hours"}, rows);
  }
  return 0;
}

// Shared infrastructure for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table/figure of the (reconstructed)
// evaluation: it sweeps methods x workloads x seeds, normalizes against a
// ground-truth oracle, and prints both a human-readable table and CSV rows.
// Replicates run in parallel across a thread pool; every task builds its own
// Evaluator so nothing is shared across threads.
#pragma once

#include <cmath>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/baseline_tuners.h"
#include "config/sampler.h"
#include "util/csv.h"
#include "core/bo_tuner.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "workloads/objective_adapter.h"

namespace autodml::bench {

/// BO options tuned for bench throughput (slightly cheaper GP refits than
/// the library defaults; quality difference is negligible at these budgets).
inline core::BoOptions bench_bo_options(std::uint64_t seed,
                                        int max_evaluations) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = max_evaluations;
  options.initial_design_size = 8;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 80;
  options.surrogate.hyperopt_every = 2;
  options.acq_optimizer.random_candidates = 384;
  return options;
}

/// Ground-truth oracle: the best noise-free objective over a deterministic
/// space-filling sweep (plus the expert default). Not a true global optimum,
/// but a stable normalization reference shared by all methods.
struct Oracle {
  conf::Config config;
  double objective = std::numeric_limits<double>::infinity();
};

inline Oracle compute_oracle(const wl::Workload& workload,
                             wl::Objective objective_kind,
                             std::size_t sweep_size = 300) {
  wl::EvaluatorOptions options;
  options.objective = objective_kind;
  wl::Evaluator evaluator(workload, /*seed=*/424242, options);
  util::Rng rng(31337);
  std::vector<conf::Config> sweep =
      conf::latin_hypercube(evaluator.space(), sweep_size, rng);
  sweep.push_back(wl::default_expert_config(workload, evaluator.space()));
  Oracle oracle;
  for (const conf::Config& c : sweep) {
    const wl::EvalResult r = evaluator.evaluate_ground_truth(c);
    const double value = r.objective_value(objective_kind);
    if (value < oracle.objective) {
      oracle.objective = value;
      oracle.config = c;
    }
  }
  return oracle;
}

/// One tuning replicate, fully self-contained (own evaluator + ledger).
struct ReplicateResult {
  core::TuningResult tuning;
  double best_ground_truth = std::numeric_limits<double>::infinity();
  double search_cost_hours = 0.0;
  double search_cost_usd = 0.0;
  std::size_t runs = 0;
  double wall_seconds = 0.0;  // host time, for the overhead experiment
};

using MethodFn = std::function<core::TuningResult(
    core::ObjectiveFunction&, int max_evaluations, std::uint64_t seed)>;

inline ReplicateResult run_replicate(const wl::Workload& workload,
                                     wl::Objective objective_kind,
                                     const MethodFn& method,
                                     int max_evaluations, std::uint64_t seed) {
  wl::EvaluatorOptions options;
  options.objective = objective_kind;
  wl::Evaluator evaluator(workload, seed, options);
  wl::EvaluatorObjective objective(evaluator);
  ReplicateResult out;
  util::Stopwatch watch;
  out.tuning = method(objective, max_evaluations, seed);
  out.wall_seconds = watch.elapsed_seconds();
  out.search_cost_hours = evaluator.total_spent_seconds() / 3600.0;
  out.search_cost_usd = evaluator.total_spent_usd();
  out.runs = evaluator.num_runs();
  if (out.tuning.found_feasible()) {
    const wl::EvalResult truth =
        evaluator.evaluate_ground_truth(out.tuning.best_config);
    out.best_ground_truth = truth.objective_value(objective_kind);
  }
  return out;
}

/// Run fn(i) for i in [0,n) across a pool sized to the host.
inline void parallel_tasks(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  static util::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  util::parallel_for(pool, n, fn);
}

/// Print an aligned table plus machine-readable CSV (prefixed lines).
inline void print_table(const std::string& title,
                        const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::cout << "\n=== " << title << " ===\n"
            << util::render_table(header, rows);
  std::cout << "csv," << util::join(header, ",") << "\n";
  for (const auto& row : rows) std::cout << "csv," << util::join(row, ",") << "\n";
  std::cout.flush();
}

inline std::string fmt_ratio(double v) { return util::fmt(v, 3); }

}  // namespace autodml::bench

// Experiment R-F10 (extension) — tuning under transient faults.
//
// Real clusters preempt spot instances, lose workers, and suffer degraded
// networks; evaluations sometimes die through no fault of the configuration.
// Sweep the fault environment (off / light / heavy) crossed with the retry
// policy (none vs supervised retries) and report final quality vs the
// fault-free oracle, search cost, and the retry overhead actually paid.
// Expected shape: without retries, transient kills masquerade as infeasible
// configurations and quality degrades with fault rate; the supervisor
// recovers most of the quality at a modest extra search cost, and the
// feasibility surrogate stays clean because transient failures are excluded
// from it.
#include "bench_common.h"
#include "util/arg_parse.h"
#include "workloads/eval_supervisor.h"

using namespace autodml;

namespace {

struct FaultEnv {
  std::string name;
  sim::FaultSpec spec;
};

struct CellStats {
  std::vector<double> ratios;
  std::vector<double> cost_hours;
  std::vector<double> attempts_per_eval;
  std::vector<double> transient_trials;
};

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const std::string workload_name = args.get("workload", "mlp-tabular");
  const wl::Workload& workload = wl::workload_by_name(workload_name);
  const bench::Oracle oracle =
      bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

  const std::vector<FaultEnv> envs = {
      {"off", sim::FaultSpec{}},
      {"light", sim::light_fault_spec()},
      {"heavy", sim::heavy_fault_spec()},
  };
  const std::vector<bool> retry_modes = {false, true};

  // One task per (env, retry) cell; replicates run inside the task.
  std::vector<CellStats> cells(envs.size() * retry_modes.size());
  bench::parallel_tasks(cells.size(), [&](std::size_t cell) {
    const FaultEnv& env = envs[cell / retry_modes.size()];
    const bool retry = retry_modes[cell % retry_modes.size()];
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 4400 + s;
      wl::EvaluatorOptions eval_options;
      eval_options.faults = env.spec;
      wl::Evaluator evaluator(workload, seed, eval_options);
      wl::RetryPolicy policy;
      if (!retry) policy.max_attempts = 1;
      wl::EvalSupervisor supervisor(evaluator, policy, seed);
      wl::SupervisedObjective objective(supervisor);
      core::BoOptions options = bench::bench_bo_options(seed, evals);
      core::BoTuner tuner(objective, options);
      const core::TuningResult result = tuner.tune();

      double ratio = 99.0;
      if (result.found_feasible()) {
        const wl::EvalResult truth =
            evaluator.evaluate_ground_truth(result.best_config);
        if (truth.feasible) ratio = truth.tta_seconds / oracle.objective;
      }
      double attempts = 0.0, transients = 0.0;
      for (const core::Trial& t : result.trials) {
        attempts += static_cast<double>(t.outcome.attempts);
        if (t.outcome.transient_failure()) transients += 1.0;
      }
      CellStats& stats = cells[cell];
      stats.ratios.push_back(ratio);
      stats.cost_hours.push_back(evaluator.total_spent_seconds() / 3600.0);
      stats.attempts_per_eval.push_back(
          attempts / static_cast<double>(std::max<std::size_t>(
                         1, result.trials.size())));
      stats.transient_trials.push_back(transients);
    }
  });

  std::vector<std::vector<std::string>> rows;
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    const FaultEnv& env = envs[cell / retry_modes.size()];
    const bool retry = retry_modes[cell % retry_modes.size()];
    const CellStats& stats = cells[cell];
    rows.push_back({env.name, retry ? "retry" : "none",
                    bench::fmt_ratio(util::mean(stats.ratios)),
                    util::fmt(util::mean(stats.cost_hours), 2),
                    util::fmt(util::mean(stats.attempts_per_eval), 2),
                    util::fmt(util::mean(stats.transient_trials), 1)});
  }

  bench::print_table(
      "R-F10  " + workload_name +
          "  tuning under transient faults (budget=" + std::to_string(evals) +
          ", seeds=" + std::to_string(seeds) + ")",
      {"faults", "retries", "autodml-vs-oracle", "search-cost-h",
       "attempts-per-eval", "transient-trials"},
      rows);
  return 0;
}

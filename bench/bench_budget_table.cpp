// Experiment R-T3 — fixed-budget comparison (the paper's headline table).
//
// Every method gets the same evaluation budget on every workload; we report
// the mean (over seeds) of: final ground-truth objective normalized to the
// oracle, speedup over the expert default, search cost in simulated cluster
// hours, and how many runs failed (OOM/diverged). A per-method geomean row
// across workloads closes the table. Expected shape: autodml ~1.0-1.3x of
// oracle with the lowest search cost among model-based methods; random/grid
// trail; the default is several times off the oracle.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 30));
  const std::vector<std::string> workload_names = util::split(
      args.get("workloads",
               "logreg-ads,mf-recsys,mlp-tabular,cnn-cifar,resnet-imagenet,"
               "word2vec-text"),
      ',');

  const auto& registry = baselines::tuner_registry();
  // ratio_sum[m] accumulates log ratios for the cross-workload geomean.
  std::vector<std::vector<double>> all_ratios(registry.size());

  for (const std::string& workload_name : workload_names) {
    const wl::Workload& workload = wl::workload_by_name(workload_name);
    const bench::Oracle oracle =
        bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);
    wl::Evaluator probe(workload, 1);
    const double default_tta =
        probe
            .evaluate_ground_truth(
                wl::default_expert_config(workload, probe.space()))
            .tta_seconds;

    std::vector<bench::ReplicateResult> results(registry.size() * seeds);
    bench::parallel_tasks(results.size(), [&](std::size_t task) {
      const std::size_t m = task / seeds;
      const std::uint64_t seed = 500 + task % seeds;
      results[task] = bench::run_replicate(
          workload, wl::Objective::kTimeToAccuracy,
          [&](core::ObjectiveFunction& obj, int budget, std::uint64_t s) {
            return registry[m].fn(obj, budget, s);
          },
          evals, seed);
    });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t m = 0; m < registry.size(); ++m) {
      std::vector<double> ratios, speedups, costs, failures;
      for (int s = 0; s < seeds; ++s) {
        const auto& r = results[m * seeds + s];
        const double best = r.best_ground_truth;
        ratios.push_back(std::isfinite(best) ? best / oracle.objective : 99.0);
        speedups.push_back(std::isfinite(best) ? default_tta / best : 0.0);
        costs.push_back(r.search_cost_hours);
        int failed = 0;
        for (const auto& t : r.tuning.trials) failed += !t.outcome.feasible;
        failures.push_back(static_cast<double>(failed));
      }
      all_ratios[m].push_back(util::mean(ratios));
      rows.push_back({registry[m].name, bench::fmt_ratio(util::mean(ratios)),
                      bench::fmt_ratio(util::mean(speedups)),
                      util::fmt(util::mean(costs)),
                      util::fmt(util::mean(failures), 3)});
    }
    rows.push_back({"(default)", bench::fmt_ratio(default_tta / oracle.objective),
                    "1", "0", "0"});
    bench::print_table(
        "R-T3  " + workload_name + "  budget=" + std::to_string(evals) +
            " evals, seeds=" + std::to_string(seeds) +
            " (oracle TTA = " + util::fmt(oracle.objective / 3600.0) + " h)",
        {"method", "vs-oracle", "speedup-vs-default", "search-hours",
         "failed-runs"},
        rows);
  }

  std::vector<std::vector<std::string>> summary;
  for (std::size_t m = 0; m < registry.size(); ++m) {
    summary.push_back(
        {registry[m].name, bench::fmt_ratio(util::geomean(all_ratios[m]))});
  }
  bench::print_table("R-T3  geomean of vs-oracle across workloads",
                     {"method", "geomean-vs-oracle"}, summary);
  return 0;
}

// Experiment R-F14 (extension) — robustness to evaluation noise.
//
// Repeated evaluations of one configuration disagree (per-run lognormal
// noise on samples-to-target). Sweep the noise level and compare the
// noise-aware tuner (GP with fitted noise hyperparameter) against random
// search at the same budget. Expected shape: both degrade as noise grows,
// but the model-based tuner degrades gracefully — the GP's noise estimate
// keeps it from chasing lucky draws — so its margin over random persists.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const std::string workload_name = args.get("workload", "mlp-tabular");
  const wl::Workload& workload = wl::workload_by_name(workload_name);
  const bench::Oracle oracle =
      bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

  const std::vector<double> noise_levels = {0.0, 0.05, 0.15, 0.30};
  std::vector<std::vector<std::string>> rows(noise_levels.size());
  bench::parallel_tasks(noise_levels.size(), [&](std::size_t n) {
    std::vector<double> bo_ratios, random_ratios;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 3100 + s;
      for (const bool use_bo : {true, false}) {
        wl::EvaluatorOptions eval_options;
        eval_options.eval_noise_sigma_override = noise_levels[n];
        wl::Evaluator evaluator(workload, seed, eval_options);
        wl::EvaluatorObjective objective(evaluator);
        core::TuningResult result;
        if (use_bo) {
          core::BoOptions options = bench::bench_bo_options(seed, evals);
          core::BoTuner tuner(objective, options);
          result = tuner.tune();
        } else {
          result = baselines::random_search(objective, evals, seed);
        }
        double ratio = 99.0;
        if (result.found_feasible()) {
          const wl::EvalResult truth =
              evaluator.evaluate_ground_truth(result.best_config);
          if (truth.feasible) ratio = truth.tta_seconds / oracle.objective;
        }
        (use_bo ? bo_ratios : random_ratios).push_back(ratio);
      }
    }
    rows[n] = {util::fmt(noise_levels[n], 3),
               bench::fmt_ratio(util::mean(bo_ratios)),
               bench::fmt_ratio(util::mean(random_ratios))};
  });

  bench::print_table(
      "R-F14  " + workload_name +
          "  final quality vs evaluation-noise level (budget=" +
          std::to_string(evals) + ", seeds=" + std::to_string(seeds) + ")",
      {"noise-sigma", "autodml-vs-oracle", "random-vs-oracle"}, rows);
  return 0;
}

// Experiment R-P11 — BO inner-loop latency vs. history size.
//
// The tuner's own overhead is dominated by two operations repeated every
// trial: refitting the surrogate on the grown history and scoring the
// acquisition candidate pool. This bench measures both against history size
// n, comparing (a) the O(n^3) full refactorization against the O(n^2)
// rank-1 incremental update a non-hyperopt round now takes, and (b) serial
// against thread-pool acquisition scoring — asserting the parallel proposal
// is identical to the serial one. Results land in BENCH_inner_loop.json to
// seed the repo's performance trajectory; CI runs `--smoke` and uploads the
// file as an artifact.
//
// Usage: bench_inner_loop [--smoke] [--out=BENCH_inner_loop.json]
//                         [--reps=N] [--threads=K]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "config/config_space.h"
#include "core/acquisition_optimizer.h"
#include "core/surrogate.h"
#include "core/tuner_types.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace autodml;

namespace {

constexpr std::size_t kDim = 6;

std::string param_name(std::size_t d) {
  std::string name = "p";
  name += std::to_string(d);
  return name;
}

conf::ConfigSpace make_space() {
  conf::ConfigSpace space;
  for (std::size_t d = 0; d < kDim; ++d) {
    space.add(conf::ParamSpec::continuous(param_name(d), 0.0, 1.0));
  }
  return space;
}

/// Smooth deterministic response over the unit cube (positive: the
/// surrogate trains on its log).
double response(const conf::Config& config) {
  double v = 10.0;
  for (std::size_t d = 0; d < kDim; ++d) {
    const double x = config.get_double(param_name(d));
    v += 3.0 * std::sin(2.0 * (static_cast<double>(d) + 1.0) * x) + 4.0 * x;
  }
  return v;
}

std::vector<core::Trial> make_history(const conf::ConfigSpace& space,
                                      std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Trial> history;
  history.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::Trial t;
    t.config = space.sample_uniform(rng);
    t.outcome.feasible = true;
    t.outcome.objective = response(t.config);
    t.outcome.spent_seconds = 5.0 + t.outcome.objective;
    history.push_back(std::move(t));
  }
  return history;
}

/// Surrogate options with hyperopt disabled: the comparison is pure
/// factorization-vs-append, exactly the non-hyperopt rounds the tuner runs
/// between hyperparameter refits.
core::SurrogateOptions fixed_hyper_options() {
  core::SurrogateOptions options;
  options.hyperopt_every = 1 << 20;
  options.gp.optimize_hyperparams = false;
  return options;
}

double mean_ms(const std::vector<double>& ms) {
  return ms.empty() ? 0.0
                    : std::accumulate(ms.begin(), ms.end(), 0.0) /
                          static_cast<double>(ms.size());
}

struct SizeResult {
  std::size_t n = 0;
  double surrogate_full_ms = 0.0;
  double surrogate_incr_ms = 0.0;
  double gp_refit_ms = 0.0;
  double gp_append_ms = 0.0;
  double propose_serial_ms = 0.0;
  double propose_parallel_ms = 0.0;
  bool propose_identical = true;
};

SizeResult measure(std::size_t n, int reps, int candidates,
                   util::ThreadPool& pool) {
  const conf::ConfigSpace space = make_space();
  const std::vector<core::Trial> history =
      make_history(space, n + static_cast<std::size_t>(reps), 1000 + n);
  SizeResult out;
  out.n = n;

  // ---- surrogate update: incremental (warm cache) vs full (cold model) ----
  {
    core::SurrogateModel warm(space, fixed_hyper_options(), 1);
    warm.update(std::span(history).subspan(0, n));
    std::vector<double> incr_ms, full_ms;
    for (int r = 0; r < reps; ++r) {
      const auto span =
          std::span(history).subspan(0, n + static_cast<std::size_t>(r) + 1);
      util::Stopwatch watch;
      warm.update(span);  // extends the previous set by exactly one trial
      incr_ms.push_back(watch.elapsed_ms());

      core::SurrogateModel cold(space, fixed_hyper_options(), 1);
      watch.reset();
      cold.update(span);  // what every trial cost before the rank-1 path
      full_ms.push_back(watch.elapsed_ms());
    }
    out.surrogate_incr_ms = mean_ms(incr_ms);
    out.surrogate_full_ms = mean_ms(full_ms);
  }

  // ---- raw GP: refit vs append_observation ----
  {
    math::Matrix x(n, kDim);
    math::Vec y(n);
    for (std::size_t i = 0; i < n; ++i) {
      const math::Vec e = space.encode(history[i].config);
      std::copy(e.begin(), e.end(), x.row(i).begin());
      y[i] = std::log(history[i].outcome.objective);
    }
    gp::GpOptions gp_options;
    gp_options.optimize_hyperparams = false;
    gp::GaussianProcess base(std::make_unique<gp::Matern52Ard>(kDim),
                             gp_options);
    base.refit(x, y);
    const math::Vec x_new = space.encode(history[n].config);
    const double y_new = std::log(history[n].outcome.objective);

    math::Matrix x_ext(n + 1, kDim);
    std::copy(x.data().begin(), x.data().end(), x_ext.data().begin());
    std::copy(x_new.begin(), x_new.end(), x_ext.row(n).begin());
    math::Vec y_ext = y;
    y_ext.push_back(y_new);

    std::vector<double> refit_ms, append_ms;
    for (int r = 0; r < reps; ++r) {
      gp::GaussianProcess copy(base);  // copy outside the timed region
      util::Stopwatch watch;
      const bool fast = copy.append_observation(x_new, y_new);
      append_ms.push_back(watch.elapsed_ms());
      if (!fast) std::cerr << "warning: append fell back to full refit\n";

      watch.reset();
      base.refit(x_ext, y_ext);
      refit_ms.push_back(watch.elapsed_ms());
      base.refit(x, y);  // restore size n (untimed side effect)
    }
    out.gp_append_ms = mean_ms(append_ms);
    out.gp_refit_ms = mean_ms(refit_ms);
  }

  // ---- acquisition proposal: serial vs pooled, identical winner ----
  {
    core::SurrogateModel model(space, fixed_hyper_options(), 1);
    const auto span = std::span(history).subspan(0, n);
    model.update(span);
    core::AcqOptimizerOptions serial_options;
    serial_options.random_candidates = candidates;
    core::AcqOptimizerOptions pooled_options = serial_options;
    pooled_options.pool = &pool;

    std::vector<double> serial_ms, parallel_ms;
    for (int r = 0; r < reps; ++r) {
      util::Rng rng_a(77 + r), rng_b(77 + r);
      util::Stopwatch watch;
      const auto a = core::propose_candidate(
          model, core::AcquisitionKind::kLogEi, span, rng_a, serial_options);
      serial_ms.push_back(watch.elapsed_ms());
      watch.reset();
      const auto b = core::propose_candidate(
          model, core::AcquisitionKind::kLogEi, span, rng_b, pooled_options);
      parallel_ms.push_back(watch.elapsed_ms());
      if (!a || !b || !(*a == *b)) out.propose_identical = false;
    }
    out.propose_serial_ms = mean_ms(serial_ms);
    out.propose_parallel_ms = mean_ms(parallel_ms);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false) || args.has("smoke");
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 3 : 8));
  const int candidates =
      static_cast<int>(args.get_int("candidates", smoke ? 256 : 512));
  const std::size_t threads = static_cast<std::size_t>(args.get_int(
      "threads",
      std::max(2u, std::thread::hardware_concurrency())));
  const std::string out_path = args.get("out", "BENCH_inner_loop.json");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 64, 256}
            : std::vector<std::size_t>{16, 32, 64, 128, 256, 512};

  util::ThreadPool pool(threads);
  bool all_identical = true;
  util::JsonArray rows;
  std::vector<std::vector<std::string>> table;
  for (std::size_t n : sizes) {
    const SizeResult r = measure(n, reps, candidates, pool);
    all_identical = all_identical && r.propose_identical;
    const double surrogate_speedup =
        r.surrogate_incr_ms > 0.0 ? r.surrogate_full_ms / r.surrogate_incr_ms
                                  : 0.0;
    const double gp_speedup =
        r.gp_append_ms > 0.0 ? r.gp_refit_ms / r.gp_append_ms : 0.0;
    util::JsonObject row;
    row["n"] = static_cast<double>(r.n);
    row["surrogate_full_ms"] = r.surrogate_full_ms;
    row["surrogate_incremental_ms"] = r.surrogate_incr_ms;
    row["surrogate_speedup"] = surrogate_speedup;
    row["gp_refit_ms"] = r.gp_refit_ms;
    row["gp_append_ms"] = r.gp_append_ms;
    row["gp_speedup"] = gp_speedup;
    row["propose_serial_ms"] = r.propose_serial_ms;
    row["propose_parallel_ms"] = r.propose_parallel_ms;
    row["propose_identical"] = r.propose_identical;
    rows.push_back(util::JsonValue(std::move(row)));
    table.push_back({std::to_string(n), util::fmt(r.surrogate_full_ms, 3),
                     util::fmt(r.surrogate_incr_ms, 3),
                     util::fmt(surrogate_speedup, 3),
                     util::fmt(r.gp_refit_ms, 3), util::fmt(r.gp_append_ms, 3),
                     util::fmt(gp_speedup, 3),
                     util::fmt(r.propose_serial_ms, 3),
                     util::fmt(r.propose_parallel_ms, 3),
                     r.propose_identical ? "yes" : "NO"});
  }

  const std::vector<std::string> header = {
      "n",          "surr_full_ms", "surr_incr_ms",  "surr_x",
      "gp_full_ms", "gp_incr_ms",   "gp_x",          "prop_serial_ms",
      "prop_pool_ms", "identical"};
  std::cout << "\n=== R-P11: BO inner-loop latency (reps=" << reps
            << ", threads=" << threads << ", candidates=" << candidates
            << ") ===\n"
            << util::render_table(header, table);
  std::cout << "csv," << util::join(header, ",") << "\n";
  for (const auto& row : table)
    std::cout << "csv," << util::join(row, ",") << "\n";

  util::JsonObject doc;
  doc["bench"] = "inner_loop";
  doc["smoke"] = smoke;
  doc["reps"] = reps;
  doc["acq_threads"] = static_cast<double>(threads);
  doc["candidates"] = candidates;
  doc["sizes"] = util::JsonValue(std::move(rows));
  util::write_file_atomic(out_path, util::dump_json(util::JsonValue(std::move(doc)), 2) + "\n");
  std::cout << "wrote " << out_path << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: parallel proposal diverged from serial\n";
    return 1;
  }
  return 0;
}

// Experiment R-P11 — BO inner-loop latency vs. history size.
//
// The tuner's own overhead is dominated by two operations repeated every
// trial: refitting the surrogate on the grown history and scoring the
// acquisition candidate pool. This bench measures both against history size
// n, comparing:
//   (a) the O(n^3) full refactorization against the O(n^2) rank-1
//       incremental update a non-hyperopt round takes (n <= 512);
//   (b) the scalar against the cache-blocked Cholesky factorization on the
//       kernel Gram matrix (all n, up to 4096);
//   (c) the exact GP's per-trial refit against the RFF backend's
//       O(nm + m^3) append — the large-n path SurrogateModel switches to —
//       plus the RFF posterior-mean error vs exact on held-out probes;
//   (d) per-trial hyperopt against the every-k + evidence-triggered refit
//       schedule, at n = 256;
//   (e) serial against thread-pool acquisition scoring (n <= 1024),
//       asserting the parallel proposal is identical to the serial one.
// Results land in BENCH_inner_loop.json to extend the repo's performance
// trajectory; CI runs `--smoke` and uploads the file as an artifact.
// Non-zero exit when the parallel proposal diverges or the RFF accuracy
// gate fails.
//
// Usage: bench_inner_loop [--smoke] [--out=BENCH_inner_loop.json]
//                         [--reps=N] [--threads=K] [--rff-features=M]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "config/config_space.h"
#include "core/acquisition_optimizer.h"
#include "core/surrogate.h"
#include "core/tuner_types.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "gp/rff.h"
#include "math/cholesky.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace autodml;

namespace {

constexpr std::size_t kDim = 6;

/// RFF posterior-mean error gates (mean over 16 held-out probes per size),
/// standardized target units. The bench response is deterministic and the
/// GP noise tiny, so the exact posterior nearly interpolates while the
/// m-feature model carries an irreducible basis-approximation floor:
/// measured per-size means run 0.16-0.69 at m=256 across n=16-4096, flat
/// in n. The gates sit just above that observed band — mean across sizes
/// under 0.55, no single size past 0.9 — because broken spectral math
/// (wrong measure, sign flip, bad solve) diverges by multiple std units
/// at every size, while the legitimate floor only brushes the per-size
/// cap on unlucky probe draws.
constexpr double kRffMeanErrGate = 0.55;
constexpr double kRffSizeErrGate = 0.9;

std::string param_name(std::size_t d) {
  std::string name = "p";
  name += std::to_string(d);
  return name;
}

conf::ConfigSpace make_space() {
  conf::ConfigSpace space;
  for (std::size_t d = 0; d < kDim; ++d) {
    space.add(conf::ParamSpec::continuous(param_name(d), 0.0, 1.0));
  }
  return space;
}

/// Smooth deterministic response over the unit cube (positive: the
/// surrogate trains on its log).
double response(const conf::Config& config) {
  double v = 10.0;
  for (std::size_t d = 0; d < kDim; ++d) {
    const double x = config.get_double(param_name(d));
    v += 3.0 * std::sin(2.0 * (static_cast<double>(d) + 1.0) * x) + 4.0 * x;
  }
  return v;
}

std::vector<core::Trial> make_history(const conf::ConfigSpace& space,
                                      std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Trial> history;
  history.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::Trial t;
    t.config = space.sample_uniform(rng);
    t.outcome.feasible = true;
    t.outcome.objective = response(t.config);
    t.outcome.spent_seconds = 5.0 + t.outcome.objective;
    history.push_back(std::move(t));
  }
  return history;
}

/// Surrogate options with hyperopt disabled: the comparison is pure
/// factorization-vs-append, exactly the non-hyperopt rounds the tuner runs
/// between hyperparameter refits.
core::SurrogateOptions fixed_hyper_options() {
  core::SurrogateOptions options;
  options.hyperopt_every = 1 << 20;
  options.refit_nlml_degradation = 0.0;
  options.backend = core::SurrogateBackend::kExact;
  options.gp.optimize_hyperparams = false;
  return options;
}

double mean_ms(const std::vector<double>& ms) {
  return ms.empty() ? 0.0
                    : std::accumulate(ms.begin(), ms.end(), 0.0) /
                          static_cast<double>(ms.size());
}

struct SizeResult {
  std::size_t n = 0;
  // Exact surrogate full-vs-incremental and proposal columns (legacy,
  // gated to the sizes where the O(n^3) cold path stays affordable).
  bool legacy_measured = false;
  double surrogate_full_ms = 0.0;
  double surrogate_incr_ms = 0.0;
  bool propose_measured = false;
  double propose_serial_ms = 0.0;
  double propose_parallel_ms = 0.0;
  bool propose_identical = true;
  // Exact GP refit vs rank-1 append (all sizes).
  double gp_refit_ms = 0.0;
  double gp_append_ms = 0.0;
  // Scalar vs blocked Cholesky on the kernel Gram matrix (all sizes).
  double chol_scalar_ms = 0.0;
  double chol_blocked_ms = 0.0;
  double chol_max_diff = 0.0;
  // RFF backend: full feature solve, per-trial append, accuracy vs exact.
  double rff_fit_ms = 0.0;
  double rff_append_ms = 0.0;
  double rff_mean_err_std = 0.0;
};

SizeResult measure(std::size_t n, int reps, int candidates, int rff_features,
                   util::ThreadPool& pool) {
  const conf::ConfigSpace space = make_space();
  const std::vector<core::Trial> history =
      make_history(space, n + static_cast<std::size_t>(reps), 1000 + n);
  SizeResult out;
  out.n = n;
  // Past 512 the O(n^3)-per-rep sections drop to one repetition so the
  // 4096 row finishes in minutes, not hours.
  const int cubic_reps = n > 512 ? 1 : reps;

  math::Matrix x(n, kDim);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const math::Vec e = space.encode(history[i].config);
    std::copy(e.begin(), e.end(), x.row(i).begin());
    y[i] = std::log(history[i].outcome.objective);
  }

  // ---- surrogate update: incremental (warm cache) vs full (cold model) ----
  if (n <= 512) {
    out.legacy_measured = true;
    core::SurrogateModel warm(space, fixed_hyper_options(), 1);
    warm.update(std::span(history).subspan(0, n));
    std::vector<double> incr_ms, full_ms;
    for (int r = 0; r < reps; ++r) {
      const auto span =
          std::span(history).subspan(0, n + static_cast<std::size_t>(r) + 1);
      util::Stopwatch watch;
      warm.update(span);  // extends the previous set by exactly one trial
      incr_ms.push_back(watch.elapsed_ms());

      core::SurrogateModel cold(space, fixed_hyper_options(), 1);
      watch.reset();
      cold.update(span);  // what every trial cost before the rank-1 path
      full_ms.push_back(watch.elapsed_ms());
    }
    out.surrogate_incr_ms = mean_ms(incr_ms);
    out.surrogate_full_ms = mean_ms(full_ms);
  }

  // ---- raw GP: refit vs append_observation ----
  {
    gp::GpOptions gp_options;
    gp_options.optimize_hyperparams = false;
    gp::GaussianProcess base(std::make_unique<gp::Matern52Ard>(kDim),
                             gp_options);
    base.refit(x, y);
    const math::Vec x_new = space.encode(history[n].config);
    const double y_new = std::log(history[n].outcome.objective);

    math::Matrix x_ext(n + 1, kDim);
    std::copy(x.data().begin(), x.data().end(), x_ext.data().begin());
    std::copy(x_new.begin(), x_new.end(), x_ext.row(n).begin());
    math::Vec y_ext = y;
    y_ext.push_back(y_new);

    std::vector<double> refit_ms, append_ms;
    for (int r = 0; r < cubic_reps; ++r) {
      gp::GaussianProcess copy(base);  // copy outside the timed region
      util::Stopwatch watch;
      const bool fast = copy.append_observation(x_new, y_new);
      append_ms.push_back(watch.elapsed_ms());
      if (!fast) std::cerr << "warning: append fell back to full refit\n";

      watch.reset();
      base.refit(x_ext, y_ext);
      refit_ms.push_back(watch.elapsed_ms());
      // Restore size n for the next rep (untimed O(n^3) side effect).
      if (r + 1 < cubic_reps) base.refit(x, y);
    }
    out.gp_append_ms = mean_ms(append_ms);
    out.gp_refit_ms = mean_ms(refit_ms);
  }

  // ---- Cholesky: scalar vs blocked on the jittered kernel Gram ----
  {
    gp::Matern52Ard kernel(kDim);
    math::Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = kernel.eval(x.row(i), x.row(j));
        gram(i, j) = v;
        gram(j, i) = v;
      }
      gram(i, i) += 1e-2;
    }
    std::vector<double> scalar_ms, blocked_ms;
    std::optional<math::CholeskyFactor> fs, fb;
    for (int r = 0; r < cubic_reps; ++r) {
      util::Stopwatch watch;
      fs = math::cholesky_scalar(gram);
      scalar_ms.push_back(watch.elapsed_ms());
      watch.reset();
      fb = math::cholesky_blocked(gram);
      blocked_ms.push_back(watch.elapsed_ms());
    }
    out.chol_scalar_ms = mean_ms(scalar_ms);
    out.chol_blocked_ms = mean_ms(blocked_ms);
    if (!fs || !fb) {
      std::cerr << "FAIL: Gram matrix not PD at n=" << n << "\n";
      out.chol_max_diff = 1e300;
    } else {
      out.chol_max_diff = math::Matrix::max_abs_diff(fs->lower, fb->lower);
    }
  }

  // ---- RFF backend: feature solve, per-trial append, accuracy ----
  {
    gp::RffOptions rff_options;
    rff_options.num_features = rff_features;
    rff_options.gp.optimize_hyperparams = false;
    gp::RffRegressor rff(std::make_unique<gp::Matern52Ard>(kDim), rff_options,
                         42);
    std::vector<double> fit_ms;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch watch;
      rff.refit(x, y);
      fit_ms.push_back(watch.elapsed_ms());
    }
    out.rff_fit_ms = mean_ms(fit_ms);

    // Accuracy vs the exact GP at the same (default) hyperparameters,
    // before the appends below mutate the model: held-out probes, error in
    // standardized target units.
    {
      gp::GpOptions gp_options;
      gp_options.optimize_hyperparams = false;
      gp::GaussianProcess exact(std::make_unique<gp::Matern52Ard>(kDim),
                                gp_options);
      exact.refit(x, y);
      const double sd = util::stddev(y);
      const double y_scale = sd > 1e-12 ? sd : 1.0;
      util::Rng probe_rng(7);
      double err_sum = 0.0;
      constexpr int kProbes = 16;
      for (int p = 0; p < kProbes; ++p) {
        math::Vec probe(kDim);
        for (std::size_t d = 0; d < kDim; ++d) probe[d] = probe_rng.uniform();
        err_sum += std::abs(rff.predict(probe).mean -
                            exact.predict(probe).mean) /
                   y_scale;
      }
      out.rff_mean_err_std = err_sum / kProbes;
    }

    std::vector<double> append_ms;
    for (int r = 0; r < reps; ++r) {
      const math::Vec x_new =
          space.encode(history[n + static_cast<std::size_t>(r)].config);
      const double y_new = std::log(
          history[n + static_cast<std::size_t>(r)].outcome.objective);
      util::Stopwatch watch;
      rff.append_observation(x_new, y_new);
      append_ms.push_back(watch.elapsed_ms());
    }
    out.rff_append_ms = mean_ms(append_ms);
  }

  // ---- acquisition proposal: serial vs pooled, identical winner ----
  if (n <= 1024) {
    out.propose_measured = true;
    core::SurrogateModel model(space, fixed_hyper_options(), 1);
    const auto span = std::span(history).subspan(0, n);
    model.update(span);
    core::AcqOptimizerOptions serial_options;
    serial_options.random_candidates = candidates;
    core::AcqOptimizerOptions pooled_options = serial_options;
    pooled_options.pool = &pool;

    std::vector<double> serial_ms, parallel_ms;
    for (int r = 0; r < reps; ++r) {
      util::Rng rng_a(77 + r), rng_b(77 + r);
      util::Stopwatch watch;
      const auto a = core::propose_candidate(
          model, core::AcquisitionKind::kLogEi, span, rng_a, serial_options);
      serial_ms.push_back(watch.elapsed_ms());
      watch.reset();
      const auto b = core::propose_candidate(
          model, core::AcquisitionKind::kLogEi, span, rng_b, pooled_options);
      parallel_ms.push_back(watch.elapsed_ms());
      if (!a || !b || !(*a == *b)) out.propose_identical = false;
    }
    out.propose_serial_ms = mean_ms(serial_ms);
    out.propose_parallel_ms = mean_ms(parallel_ms);
  }
  return out;
}

/// Wall-clock of 6 consecutive one-trial surrogate updates at n = 256 under
/// a refit schedule: per-trial hyperopt (the old default) vs every-8 with
/// the evidence trigger armed. Hyperopt budget is trimmed so the baseline
/// finishes; both policies share it.
double measure_policy_ms(const conf::ConfigSpace& space,
                         const std::vector<core::Trial>& history,
                         bool scheduled) {
  core::SurrogateOptions options;
  options.backend = core::SurrogateBackend::kExact;
  options.gp.optimize_hyperparams = true;
  options.gp.restarts = 0;
  options.gp.adam_iterations = 30;
  options.gp.polish_iterations = 0;
  if (scheduled) {
    options.hyperopt_every = 8;
    options.refit_nlml_degradation = 0.25;
  } else {
    options.hyperopt_every = 1;
  }
  core::SurrogateModel model(space, options, 1);
  model.update(std::span(history).subspan(0, 256));  // warmup, untimed
  util::Stopwatch watch;
  for (std::size_t r = 0; r < 6; ++r) {
    model.update(std::span(history).subspan(0, 257 + r));
  }
  return watch.elapsed_ms();
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false) || args.has("smoke");
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 3 : 8));
  const int candidates =
      static_cast<int>(args.get_int("candidates", smoke ? 256 : 512));
  const int rff_features =
      static_cast<int>(args.get_int("rff-features", 256));
  const std::size_t threads = static_cast<std::size_t>(args.get_int(
      "threads",
      std::max(2u, std::thread::hardware_concurrency())));
  const std::string out_path = args.get("out", "BENCH_inner_loop.json");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 64, 256}
            : std::vector<std::size_t>{16, 32,  64,   128,  256,
                                       512, 1024, 2048, 4096};

  util::ThreadPool pool(threads);
  bool all_identical = true;
  bool accuracy_ok = true;
  double err_sum = 0.0;
  util::JsonArray rows;
  std::vector<std::vector<std::string>> table;
  for (std::size_t n : sizes) {
    const SizeResult r = measure(n, reps, candidates, rff_features, pool);
    all_identical = all_identical && r.propose_identical;
    err_sum += r.rff_mean_err_std;
    if (r.rff_mean_err_std > kRffSizeErrGate) accuracy_ok = false;
    const double surrogate_speedup =
        r.surrogate_incr_ms > 0.0 ? r.surrogate_full_ms / r.surrogate_incr_ms
                                  : 0.0;
    const double gp_speedup =
        r.gp_append_ms > 0.0 ? r.gp_refit_ms / r.gp_append_ms : 0.0;
    const double chol_speedup =
        r.chol_blocked_ms > 0.0 ? r.chol_scalar_ms / r.chol_blocked_ms : 0.0;
    // Per-trial refit cost if hyperparameters must be re-applied: exact
    // O(n^3) refactorization vs the RFF backend's O(nm + m^3) append.
    const double rff_refit_speedup =
        r.rff_append_ms > 0.0 ? r.gp_refit_ms / r.rff_append_ms : 0.0;
    util::JsonObject row;
    row["n"] = static_cast<double>(r.n);
    if (r.legacy_measured) {
      row["surrogate_full_ms"] = r.surrogate_full_ms;
      row["surrogate_incremental_ms"] = r.surrogate_incr_ms;
      row["surrogate_speedup"] = surrogate_speedup;
    }
    row["gp_refit_ms"] = r.gp_refit_ms;
    row["gp_append_ms"] = r.gp_append_ms;
    row["gp_speedup"] = gp_speedup;
    row["chol_scalar_ms"] = r.chol_scalar_ms;
    row["chol_blocked_ms"] = r.chol_blocked_ms;
    row["chol_speedup"] = chol_speedup;
    row["chol_max_diff"] = r.chol_max_diff;
    row["rff_fit_ms"] = r.rff_fit_ms;
    row["rff_append_ms"] = r.rff_append_ms;
    row["rff_refit_speedup"] = rff_refit_speedup;
    row["rff_mean_err_std"] = r.rff_mean_err_std;
    if (r.propose_measured) {
      row["propose_serial_ms"] = r.propose_serial_ms;
      row["propose_parallel_ms"] = r.propose_parallel_ms;
      row["propose_identical"] = r.propose_identical;
    }
    rows.push_back(util::JsonValue(std::move(row)));
    table.push_back({std::to_string(n),
                     util::fmt(r.gp_refit_ms, 3),
                     util::fmt(r.gp_append_ms, 3),
                     util::fmt(gp_speedup, 3),
                     util::fmt(r.chol_scalar_ms, 3),
                     util::fmt(r.chol_blocked_ms, 3),
                     util::fmt(chol_speedup, 3),
                     util::fmt(r.rff_append_ms, 3),
                     util::fmt(rff_refit_speedup, 3),
                     util::fmt(r.rff_mean_err_std, 3),
                     r.propose_measured
                         ? (r.propose_identical ? "yes" : "NO")
                         : "-"});
  }

  // Refit-schedule policy comparison at n = 256 (see measure_policy_ms).
  const conf::ConfigSpace policy_space = make_space();
  const std::vector<core::Trial> policy_history =
      make_history(policy_space, 262, 9000);
  const double policy_per_trial_ms =
      measure_policy_ms(policy_space, policy_history, /*scheduled=*/false);
  const double policy_scheduled_ms =
      measure_policy_ms(policy_space, policy_history, /*scheduled=*/true);
  const double policy_speedup = policy_scheduled_ms > 0.0
                                    ? policy_per_trial_ms / policy_scheduled_ms
                                    : 0.0;

  const std::vector<std::string> header = {
      "n",        "gp_full_ms", "gp_incr_ms", "gp_x",
      "chol_scalar_ms", "chol_blocked_ms", "chol_x",
      "rff_incr_ms", "rff_x", "rff_err_std", "identical"};
  std::cout << "\n=== R-P11: BO inner-loop latency (reps=" << reps
            << ", threads=" << threads << ", candidates=" << candidates
            << ", rff_features=" << rff_features << ") ===\n"
            << util::render_table(header, table);
  std::cout << "csv," << util::join(header, ",") << "\n";
  for (const auto& row : table)
    std::cout << "csv," << util::join(row, ",") << "\n";
  std::cout << "refit schedule at n=256, 6 trials: per-trial hyperopt "
            << util::fmt(policy_per_trial_ms, 4) << " ms, every-8+evidence "
            << util::fmt(policy_scheduled_ms, 4) << " ms ("
            << util::fmt(policy_speedup, 3) << "x)\n";

  util::JsonObject doc;
  doc["bench"] = "inner_loop";
  doc["smoke"] = smoke;
  doc["reps"] = reps;
  doc["acq_threads"] = static_cast<double>(threads);
  doc["candidates"] = candidates;
  doc["rff_features"] = rff_features;
  doc["policy_per_trial_hyperopt_ms"] = policy_per_trial_ms;
  doc["policy_scheduled_refit_ms"] = policy_scheduled_ms;
  doc["policy_speedup"] = policy_speedup;
  doc["sizes"] = util::JsonValue(std::move(rows));
  util::write_file_atomic(out_path, util::dump_json(util::JsonValue(std::move(doc)), 2) + "\n");
  std::cout << "wrote " << out_path << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: parallel proposal diverged from serial\n";
    return 1;
  }
  const double err_mean = err_sum / static_cast<double>(sizes.size());
  if (err_mean > kRffMeanErrGate) accuracy_ok = false;
  if (!accuracy_ok) {
    std::cerr << "FAIL: RFF posterior mean error out of tolerance (mean "
              << err_mean << " vs " << kRffMeanErrGate
              << " std units, per-size cap " << kRffSizeErrGate << ")\n";
    return 1;
  }
  return 0;
}

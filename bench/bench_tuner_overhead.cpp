// Experiment R-F8 — the tuner's own computational overhead.
//
// google-benchmark microbenchmarks of the two per-iteration costs the tuner
// adds on top of the (dominant) training evaluations: fitting the surrogate
// and maximizing the acquisition, as a function of history size. The claim
// to reproduce: tuner overhead is seconds per iteration even at history
// sizes far beyond a realistic budget — negligible next to cluster-hours
// per evaluation.
#include <benchmark/benchmark.h>

#include "core/acquisition_optimizer.h"
#include "core/surrogate.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

namespace {

std::vector<core::Trial> make_history(const wl::Workload& workload,
                                      wl::Evaluator& evaluator, int n) {
  util::Rng rng(5);
  std::vector<core::Trial> trials;
  for (int i = 0; i < n; ++i) {
    const conf::Config c = evaluator.space().sample_uniform(rng);
    const wl::EvalResult r = evaluator.evaluate_ground_truth(c);
    trials.push_back(wl::to_trial(r, wl::Objective::kTimeToAccuracy));
  }
  (void)workload;
  return trials;
}

void BM_SurrogateUpdate(benchmark::State& state) {
  const auto& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator evaluator(workload, 1);
  const auto history =
      make_history(workload, evaluator, static_cast<int>(state.range(0)));
  core::SurrogateOptions options;
  options.gp.restarts = 1;
  options.gp.adam_iterations = 80;
  for (auto _ : state) {
    core::SurrogateModel model(evaluator.space(), options, 3);
    model.update(history);
    benchmark::DoNotOptimize(model.ready());
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SurrogateUpdate)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_AcquisitionProposal(benchmark::State& state) {
  const auto& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator evaluator(workload, 1);
  const auto history =
      make_history(workload, evaluator, static_cast<int>(state.range(0)));
  core::SurrogateOptions options;
  options.gp.restarts = 1;
  core::SurrogateModel model(evaluator.space(), options, 3);
  model.update(history);
  util::Rng rng(9);
  for (auto _ : state) {
    auto candidate = core::propose_candidate(
        model, core::AcquisitionKind::kLogEi, history, rng);
    benchmark::DoNotOptimize(candidate);
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AcquisitionProposal)->Arg(10)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_SingleSimulatedEvaluation(benchmark::State& state) {
  // For scale: what one black-box evaluation costs the *host* (the
  // simulated cluster cost is hours; this is the simulation wall time).
  const auto& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator evaluator(workload, 1);
  const conf::Config c =
      wl::default_expert_config(workload, evaluator.space());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_ground_truth(c).tta_seconds);
  }
}
BENCHMARK(BM_SingleSimulatedEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Experiment R-T1 — configuration matters.
//
// For every workload: evaluate a space-filling sample of configurations
// (noise-free ground truth) plus the hand "expert default", and report the
// spread of time-to-accuracy: best / median / worst / default, the
// best-vs-worst spread factor, the failure share (OOM + divergence), and
// the speedup left on the table by the default. The paper-typical claim
// this reproduces: the config space spans an order of magnitude or more,
// so automatic tuning has real headroom.
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto sweep = static_cast<std::size_t>(args.get_int("sweep", 250));

  std::vector<std::vector<std::string>> rows(wl::workload_suite().size());
  bench::parallel_tasks(rows.size(), [&](std::size_t i) {
    const wl::Workload& workload = wl::workload_suite()[i];
    wl::Evaluator evaluator(workload, 1);
    util::Rng rng(97 + i);
    std::vector<conf::Config> configs =
        conf::latin_hypercube(evaluator.space(), sweep, rng);

    std::vector<double> tta;
    int failures = 0;
    for (const conf::Config& c : configs) {
      const wl::EvalResult r = evaluator.evaluate_ground_truth(c);
      if (r.feasible) {
        tta.push_back(r.tta_seconds / 3600.0);
      } else {
        ++failures;
      }
    }
    const wl::EvalResult expert = evaluator.evaluate_ground_truth(
        wl::default_expert_config(workload, evaluator.space()));
    const util::Summary s = util::summarize(tta);

    rows[i] = {workload.name,
               util::fmt(s.min),
               util::fmt(s.median),
               util::fmt(s.max),
               util::fmt(expert.tta_seconds / 3600.0),
               bench::fmt_ratio(s.max / s.min),
               bench::fmt_ratio(expert.tta_seconds / 3600.0 / s.min),
               util::fmt(100.0 * failures / static_cast<double>(sweep), 3)};
  });

  bench::print_table(
      "R-T1  TTA spread across the configuration space (hours, " +
          std::to_string(sweep) + "-point LHS sweep)",
      {"workload", "best", "median", "worst", "default", "worst/best",
       "default/best", "fail%"},
      rows);
  return 0;
}

// Experiment R-A14 — asynchronous evaluation pipeline wall-clock.
//
// The async executor keeps up to `q` evaluations in flight, proposing
// against kriging-believer fantasies of the pending points while the pool
// works. On an evaluation-bound objective the search's wall-clock should
// then collapse ~q-fold: the critical path becomes ceil(N/q) evaluation
// latencies plus the (overlapped) proposal work, instead of N of each in
// strict alternation. This bench measures that on a thread-safe synthetic
// objective whose run() blocks for a fixed latency, sweeping q at a fixed
// evaluation count, and gates on >= 2.5x speedup at q=4.
//
// Results land in BENCH_async.json; CI runs `--smoke` and uploads the file
// as an artifact.
//
// Usage: bench_async [--smoke] [--eval-ms=N] [--evals=N]
//                    [--out=BENCH_async.json]
#include <chrono>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "util/arg_parse.h"
#include "util/fs.h"
#include "util/json.h"

using namespace autodml;

namespace {

// Evaluation-bound stand-in for a remote training cluster: the objective
// surface is a cheap deterministic bowl, but every run() blocks the calling
// thread for `eval_ms` of real time. No per-run mutable state (counters,
// rng streams), so concurrent runs are safe and results are independent of
// interleaving — exactly the contract concurrent_runs_safe() promises.
class SleepyObjective final : public core::ObjectiveFunction {
 public:
  explicit SleepyObjective(double eval_ms) : eval_ms_(eval_ms) {
    space_.add(conf::ParamSpec::continuous("x", 0.0, 1.0));
    space_.add(conf::ParamSpec::continuous("y", 0.0, 1.0));
    space_.add(conf::ParamSpec::integer("k", 1, 8));
  }

  const conf::ConfigSpace& space() const override { return space_; }
  double target_metric() const override { return 0.9; }
  bool concurrent_runs_safe() const override { return true; }

  core::RunOutcome run(const conf::Config& config,
                       core::RunController*) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(eval_ms_));
    const double x = config.get_double("x");
    const double y = config.get_double("y");
    const double k = static_cast<double>(config.get_int("k"));
    core::RunOutcome out;
    out.feasible = true;
    out.usd_per_hour = 1.0;
    out.objective = 5.0 + 30.0 * (x - 0.4) * (x - 0.4) +
                    20.0 * (y - 0.6) * (y - 0.6) + 0.5 * std::abs(k - 3.0);
    out.spent_seconds = out.objective;
    return out;
  }

 private:
  conf::ConfigSpace space_;
  double eval_ms_;
};

struct QResult {
  int q = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;  // vs q=1
  double best_objective = std::numeric_limits<double>::infinity();
};

QResult run_q(int q, int evals, double eval_ms, std::uint64_t seed) {
  SleepyObjective objective(eval_ms);
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = std::min(6, evals / 2);
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  options.async_q = q;
  core::BoTuner tuner(objective, options);
  util::Stopwatch watch;
  const core::TuningResult result = tuner.tune();
  QResult out;
  out.q = q;
  out.wall_ms = watch.elapsed_ms();
  out.best_objective = result.best_objective;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false) || args.has("smoke");
  const int evals = static_cast<int>(args.get_int("evals", smoke ? 16 : 32));
  const double eval_ms =
      static_cast<double>(args.get_int("eval-ms", smoke ? 40 : 80));
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 1 : 3));
  const std::string out_path = args.get("out", "BENCH_async.json");

  const std::vector<int> depths = smoke ? std::vector<int>{1, 2, 4}
                                        : std::vector<int>{1, 2, 4, 8};
  std::vector<QResult> results;
  for (const int q : depths) {
    QResult best;
    for (int r = 0; r < reps; ++r) {
      const QResult run = run_q(q, evals, eval_ms, /*seed=*/7100 + r);
      if (best.q == 0 || run.wall_ms < best.wall_ms) best = run;
    }
    results.push_back(best);
  }
  const double base_ms = results.front().wall_ms;
  for (QResult& r : results)
    r.speedup = r.wall_ms > 0.0 ? base_ms / r.wall_ms : 0.0;

  util::JsonArray rows;
  std::vector<std::vector<std::string>> table;
  for (const QResult& r : results) {
    util::JsonObject row;
    row["q"] = r.q;
    row["wall_ms"] = r.wall_ms;
    row["speedup_vs_q1"] = r.speedup;
    row["best_objective"] = r.best_objective;
    rows.push_back(util::JsonValue(std::move(row)));
    table.push_back({std::to_string(r.q), util::fmt(r.wall_ms, 4),
                     util::fmt(r.speedup, 3), util::fmt(r.best_objective, 4)});
  }

  bench::print_table("R-A14  async pipeline wall-clock (" +
                         std::to_string(evals) + " evals, " +
                         std::to_string(static_cast<int>(eval_ms)) +
                         " ms/eval, best of " + std::to_string(reps) +
                         " reps)",
                     {"async-q", "wall_ms", "speedup", "best"}, table);

  util::JsonObject doc;
  doc["bench"] = "async";
  doc["smoke"] = smoke;
  doc["evals"] = evals;
  doc["eval_ms"] = eval_ms;
  doc["reps"] = reps;
  doc["depths"] = util::JsonValue(std::move(rows));
  util::write_file_atomic(
      out_path, util::dump_json(util::JsonValue(std::move(doc)), 2) + "\n");
  std::cout << "wrote " << out_path << "\n";

  // Acceptance gate: evaluation-bound search must collapse at least 2.5x
  // at pipeline depth 4. (The theoretical bound is ~4x; proposal work and
  // the initial design's partial fill eat some of it.)
  for (const QResult& r : results) {
    if (r.q == 4 && r.speedup < 2.5) {
      std::cerr << "FAIL: async q=4 speedup " << util::fmt(r.speedup, 2)
                << "x < 2.5x\n";
      return 1;
    }
  }
  return 0;
}

// Experiment R-F13 (extension) — synchronous parallel tuning.
//
// Kriging-believer batch proposals (core::propose_batch) let `q`
// configurations train concurrently on separate clusters; the search's
// wall-clock per round is then the slowest run instead of the sum. Sweep
// q at a fixed total evaluation count. Expected shape: wall-clock drops
// ~q-fold while final quality degrades only mildly (fantasies lose some
// sequential information). Rounds remain straggler-bound; bench_async
// (R-A14) measures the asynchronous pipeline that removes the barrier.
#include "baselines/parallel_bo.h"
#include "bench_common.h"
#include "util/arg_parse.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int total_evals = static_cast<int>(args.get_int("evals", 24));
  const std::string workload_name = args.get("workload", "mlp-tabular");
  const wl::Workload& workload = wl::workload_by_name(workload_name);
  const bench::Oracle oracle =
      bench::compute_oracle(workload, wl::Objective::kTimeToAccuracy);

  const std::vector<int> batch_sizes = {1, 2, 4, 8};
  std::vector<std::vector<std::string>> rows(batch_sizes.size());
  bench::parallel_tasks(batch_sizes.size(), [&](std::size_t b) {
    const int q = batch_sizes[b];
    const int rounds = total_evals / q;
    std::vector<double> ratios, wall_hours, spent_hours;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 2600 + s;
      wl::Evaluator evaluator(workload, seed);
      wl::EvaluatorObjective objective(evaluator);
      baselines::ParallelBoOptions options;
      options.batch_size = q;
      options.rounds = rounds;
      options.seed = seed;
      options.surrogate.gp.restarts = 1;
      const baselines::ParallelBoResult result =
          baselines::parallel_bo(objective, options);
      wall_hours.push_back(result.wall_clock_seconds / 3600.0);
      spent_hours.push_back(evaluator.total_spent_seconds() / 3600.0);
      if (result.tuning.found_feasible()) {
        const wl::EvalResult truth =
            evaluator.evaluate_ground_truth(result.tuning.best_config);
        ratios.push_back(truth.feasible
                             ? truth.tta_seconds / oracle.objective
                             : 99.0);
      } else {
        ratios.push_back(99.0);
      }
    }
    rows[b] = {std::to_string(q), std::to_string(rounds),
               bench::fmt_ratio(util::mean(ratios)),
               util::fmt(util::mean(wall_hours)),
               util::fmt(util::mean(spent_hours))};
  });

  bench::print_table(
      "R-F13  " + workload_name + "  parallel BO at " +
          std::to_string(total_evals) + " total evaluations (seeds=" +
          std::to_string(seeds) + ")",
      {"batch-q", "rounds", "vs-oracle", "search-wall-hours",
       "search-cpu-hours"},
      rows);
  return 0;
}

// adml-service: minimal client for the tuning-as-a-service daemon
// (`autodml_cli serve --socket=PATH`). Reads line-delimited JSON requests
// from stdin, sends each over the Unix-domain socket, and prints the
// daemon's response line to stdout — the protocol is strictly one
// response per request, so a synchronous write/read loop is a complete
// client.
//
// usage: adml-service --socket=PATH < requests.ldjson
//
// Exit code 0 once stdin is exhausted, 1 on usage or socket errors
// (including the daemon closing the connection mid-request).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "util/arg_parse.h"

namespace {

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads from `fd` into `buffer` until it holds a full '\n'-terminated
/// line; pops and returns that line (without the newline).
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF or error with a partial frame
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const autodml::util::ArgParser args(argc, argv);
  const std::string path = args.get("socket", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: adml-service --socket=PATH < requests.ldjson\n");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "adml-service: socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("adml-service: socket");
    return 1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "adml-service: connect(%s): %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }

  std::string request;
  std::string buffer;
  std::string response;
  int status = 0;
  while (std::getline(std::cin, request)) {
    if (request.empty()) continue;
    if (!write_all(fd, request + "\n") || !read_line(fd, buffer, response)) {
      std::fprintf(stderr, "adml-service: connection lost\n");
      status = 1;
      break;
    }
    std::fputs((response + "\n").c_str(), stdout);
    std::fflush(stdout);
  }
  ::close(fd);
  return status;
}

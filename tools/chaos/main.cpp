// adml-chaos: randomized kill-point resume harness for the tuner CLI.
//
// For each seed it first records a *reference* session: one uninterrupted
// `autodml_cli tune` run with a journal and a session file. It then starts
// fresh chaos sessions against the same options and repeatedly kills the
// child at a randomized crash-point hit (ADML_CRASH_AFTER=k, exit code 86
// — see util/chaos.h), resuming from the journal after every kill, until
// the session completes. A completed chaos session must leave a journal
// and a session file byte-identical to the reference: resume-by-replay is
// only crash-safe if an arbitrarily interrupted run converges to exactly
// the uninterrupted result.
//
//   adml-chaos --cli=PATH [--workload=W] [--evals=N] [--seeds=1,2,3]
//              [--target-cycles=200] [--max-kill-hit=60]
//              [--workdir=DIR] [--chaos-seed=S] [--refit-every=K]
//              [--async-q=Q]
//
// Exit 0 when --target-cycles kill/resume cycles all recovered and every
// completed session matched its reference; nonzero (with the offending
// seed and files preserved in --workdir) otherwise. The default budget of
// 200 cycles across 3 seeds is what CI runs; the ctest smoke registration
// uses a reduced budget.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/arg_parse.h"
#include "util/chaos.h"
#include "util/fs.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

namespace fs = std::filesystem;

/// Run `command` through the shell; returns the child's exit code, or -1
/// when it died on a signal / could not be spawned.
int run(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

struct SessionPaths {
  std::string journal;
  std::string session;
};

std::string tune_command(const std::string& cli, const std::string& workload,
                         int evals, std::uint64_t seed, int refit_every,
                         int async_q, const SessionPaths& paths) {
  std::string command = cli + " tune --workload=" + workload +
                        " --evals=" + std::to_string(evals) +
                        " --seed=" + std::to_string(seed) +
                        " --refit-every=" + std::to_string(refit_every);
  // Async sessions must resume with the q they were written with, so the
  // flag goes on every child invocation (reference, kill, and resume).
  if (async_q > 1) command += " --async-q=" + std::to_string(async_q);
  return command + " --journal=" + paths.journal +
         " --session=" + paths.session + " >/dev/null 2>&1";
}

bool files_identical(const std::string& a, const std::string& b,
                     std::string* detail) {
  const std::string ca = autodml::util::read_file(a);
  const std::string cb = autodml::util::read_file(b);
  if (ca == cb) return true;
  *detail = a + " (" + std::to_string(ca.size()) + " bytes) vs " + b + " (" +
            std::to_string(cb.size()) + " bytes)";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const autodml::util::ArgParser args(argc, argv);
  const std::string cli = args.get("cli", "");
  if (cli.empty()) {
    std::fprintf(stderr, "usage: adml-chaos --cli=PATH [--flags]\n");
    return 1;
  }
  const std::string workload = args.get("workload", "logreg-ads");
  const int evals = static_cast<int>(args.get_int("evals", 10));
  const int refit_every = static_cast<int>(args.get_int("refit-every", 1));
  const int async_q = static_cast<int>(args.get_int("async-q", 1));
  const int target_cycles =
      static_cast<int>(args.get_int("target-cycles", 200));
  const int max_kill_hit =
      static_cast<int>(args.get_int("max-kill-hit", 60));
  const std::string workdir = args.get("workdir", "chaos_workdir");
  autodml::util::Rng rng(
      static_cast<std::uint64_t>(args.get_int("chaos-seed", 20260808)));

  std::vector<std::uint64_t> seeds;
  for (const std::string& s :
       autodml::util::split(args.get("seeds", "1,2,3"), ',')) {
    seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "adml-chaos: --seeds parsed to nothing\n");
    return 1;
  }

  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) {
    std::fprintf(stderr, "adml-chaos: cannot create %s: %s\n",
                 workdir.c_str(), ec.message().c_str());
    return 1;
  }

  // Phase 1: reference sessions, one uninterrupted run per seed.
  std::vector<SessionPaths> refs;
  std::vector<int> ref_exits;
  for (const std::uint64_t seed : seeds) {
    SessionPaths ref{workdir + "/ref_" + std::to_string(seed) + ".journal",
                     workdir + "/ref_" + std::to_string(seed) + ".session"};
    fs::remove(ref.journal, ec);
    fs::remove(ref.session, ec);
    const int code =
        run(tune_command(cli, workload, evals, seed, refit_every, async_q, ref));
    if (code != 0 && code != 2) {
      std::fprintf(stderr,
                   "adml-chaos: reference run (seed %llu) exited %d\n",
                   static_cast<unsigned long long>(seed), code);
      return 1;
    }
    refs.push_back(ref);
    ref_exits.push_back(code);
    std::printf("adml-chaos: reference for seed %llu recorded (exit %d)\n",
                static_cast<unsigned long long>(seed), code);
  }

  // Phase 2: chaos sessions, round-robin across seeds. Every child runs
  // with ADML_CRASH_AFTER=k for a fresh random k; exit 86 is an injected
  // kill (one survived resume cycle for the *next* child), any completion
  // must be byte-identical to the reference.
  int cycles = 0;
  int completed_sessions = 0;
  int runs = 0;
  // A child that draws k beyond its remaining crash-point hits simply
  // completes, so forward progress is certain; the cap only guards
  // against a regression that stops sessions from ever finishing.
  const int max_runs = target_cycles * 12 + 64;
  std::size_t which = 0;
  std::vector<SessionPaths> live(seeds.size());
  std::vector<bool> active(seeds.size(), false);
  while (cycles < target_cycles && runs < max_runs) {
    const std::size_t i = which % seeds.size();
    which += 1;
    if (!active[i]) {
      live[i] = {workdir + "/chaos_" + std::to_string(seeds[i]) + ".journal",
                 workdir + "/chaos_" + std::to_string(seeds[i]) + ".session"};
      fs::remove(live[i].journal, ec);
      fs::remove(live[i].session, ec);
      active[i] = true;
    }
    const auto kill_hit = rng.uniform_int(1, max_kill_hit + 1);
    const std::string command =
        "ADML_CRASH_AFTER=" + std::to_string(kill_hit) + " " +
        tune_command(cli, workload, evals, seeds[i], refit_every, async_q,
                     live[i]);
    const int code = run(command);
    runs += 1;
    if (code == autodml::util::chaos::kCrashExitCode) {
      // Killed as requested; the next run on this seed is the resume that
      // must recover. Count the cycle once the resume itself survives —
      // i.e. now, for the previous kill, since we only get here if the
      // prior resume did not fail hard.
      cycles += 1;
      if (cycles % 25 == 0) {
        std::printf("adml-chaos: %d/%d kill/resume cycles (%d runs)\n",
                    cycles, target_cycles, runs);
      }
      continue;
    }
    if (code != ref_exits[i]) {
      std::fprintf(stderr,
                   "adml-chaos: seed %llu: chaos run exited %d, reference "
                   "exited %d (artifacts kept in %s)\n",
                   static_cast<unsigned long long>(seeds[i]), code,
                   ref_exits[i], workdir.c_str());
      return 1;
    }
    std::string detail;
    if (!files_identical(refs[i].journal, live[i].journal, &detail) ||
        !files_identical(refs[i].session, live[i].session, &detail)) {
      std::fprintf(stderr,
                   "adml-chaos: seed %llu: resumed session diverged from "
                   "the uninterrupted run: %s\n",
                   static_cast<unsigned long long>(seeds[i]), detail.c_str());
      return 1;
    }
    completed_sessions += 1;
    active[i] = false;  // start a fresh chaos session on this seed
  }

  if (cycles < target_cycles) {
    std::fprintf(stderr,
                 "adml-chaos: only %d/%d cycles after %d runs — sessions "
                 "are not completing\n",
                 cycles, target_cycles, runs);
    return 1;
  }

  // Drain: sessions still mid-flight (killed, not yet completed) must
  // resume to completion unarmed and match their reference, so that every
  // counted kill has a proven recovery behind it.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (!active[i]) continue;
    const int code =
        run(tune_command(cli, workload, evals, seeds[i], refit_every,
                         async_q, live[i]));
    runs += 1;
    std::string detail;
    if (code != ref_exits[i] ||
        !files_identical(refs[i].journal, live[i].journal, &detail) ||
        !files_identical(refs[i].session, live[i].session, &detail)) {
      std::fprintf(stderr,
                   "adml-chaos: seed %llu: drain resume failed (exit %d, "
                   "expected %d)%s%s\n",
                   static_cast<unsigned long long>(seeds[i]), code,
                   ref_exits[i], detail.empty() ? "" : ": ",
                   detail.c_str());
      return 1;
    }
    completed_sessions += 1;
  }
  std::printf(
      "adml-chaos: OK — %d kill/resume cycles, %d completed sessions, "
      "%d child runs, every completion bit-identical to its reference\n",
      cycles, completed_sessions, runs);
  return 0;
}

// adml-lint CLI. Usage:
//
//   adml-lint [--werror] [--list-checks] <path>...
//
// Scans each path (file or directory, recursively) and prints findings
// one per line. Exit status: 0 clean (or warnings only), 1 when any
// error-severity finding fired (or any finding under --werror), 2 on
// usage / I/O problems.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int list_checks() {
  std::printf("adml-lint checks:\n");
  for (const adml_lint::CheckInfo& check : adml_lint::check_catalog()) {
    std::printf("  %s  %-7s  %s\n", std::string(check.code).c_str(),
                std::string(adml_lint::to_string(check.severity)).c_str(),
                std::string(check.summary).c_str());
  }
  std::printf(
      "\nsuppress a finding with an inline justification on the same "
      "line:\n  // adml-lint: allow(D003 lookup-only, never iterated)\n");
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--werror] [--list-checks] <path>...\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") return list_checks();
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  std::string io_error;
  const std::vector<adml_lint::Finding> findings =
      adml_lint::scan_paths(roots, &io_error);
  if (!io_error.empty()) {
    std::fprintf(stderr, "adml-lint: %s", io_error.c_str());
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const adml_lint::Finding& finding : findings) {
    if (finding.severity == adml_lint::Severity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
    std::printf("%s\n", finding.to_string().c_str());
  }
  if (errors + warnings > 0) {
    std::printf("adml-lint: %zu error(s), %zu warning(s)\n", errors,
                warnings);
  }
  const bool fail = errors > 0 || (werror && warnings > 0);
  return fail ? 1 : 0;
}

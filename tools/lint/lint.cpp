#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace adml_lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// True when `needle` occurs in `code` not immediately preceded by an
/// identifier character (so "srand(" does not match inside "mysrand(").
bool contains_token(std::string_view code, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    if (pos == 0 || !is_ident_char(code[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

// ---- Per-line lexical model ------------------------------------------------

/// One physical line, lexed: `code` is the line with comments removed and
/// string-literal *contents* dropped (the quotes survive, so structural
/// patterns like `ADML_SPAN("` still match); `strings` holds the dropped
/// literal contents for the rules that inspect them.
struct Line {
  std::string code;
  std::vector<std::string> strings;
  std::string raw;
};

/// Comment/string state machine across the whole file. Handles //, /*...*/
/// (multi-line), "..." with escapes, '...' char literals (kept in `code`:
/// they are single characters and the span-balance rule needs 'B'/'E'),
/// and basic R"(...)" raw strings.
std::vector<Line> lex(std::string_view content) {
  std::vector<Line> lines;
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_delim;  // the )delim" terminator of the active raw string

  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t eol = content.find('\n', start);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view raw = content.substr(start, eol - start);

    Line line;
    line.raw = std::string(raw);
    std::string& code = line.code;
    std::size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const std::size_t end = raw.find("*/", i);
        if (end == std::string_view::npos) {
          i = raw.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      if (in_raw_string) {
        const std::size_t end = raw.find(raw_delim, i);
        if (end == std::string_view::npos) {
          i = raw.size();
        } else {
          in_raw_string = false;
          code += '"';  // close the literal in the code view
          i = end + raw_delim.size();
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') break;
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"') {
        // R"delim( ... )delim" — only when R directly precedes the quote.
        if (!code.empty() && code.back() == 'R' &&
            (code.size() < 2 || !is_ident_char(code[code.size() - 2]))) {
          const std::size_t paren = raw.find('(', i + 1);
          if (paren != std::string_view::npos) {
            raw_delim = ")" + std::string(raw.substr(i + 1, paren - i - 1)) +
                        "\"";
            code += '"';
            in_raw_string = true;
            i = paren + 1;
            const std::size_t end = raw.find(raw_delim, i);
            if (end != std::string_view::npos) {
              line.strings.emplace_back(raw.substr(i, end - i));
              in_raw_string = false;
              code += '"';
              i = end + raw_delim.size();
            } else {
              i = raw.size();
            }
            continue;
          }
        }
        // Ordinary string literal.
        std::string value;
        code += '"';
        ++i;
        while (i < raw.size() && raw[i] != '"') {
          if (raw[i] == '\\' && i + 1 < raw.size()) {
            value += raw[i];
            value += raw[i + 1];
            i += 2;
          } else {
            value += raw[i];
            ++i;
          }
        }
        if (i < raw.size()) ++i;  // closing quote
        code += '"';
        line.strings.push_back(std::move(value));
        continue;
      }
      if (c == '\'') {
        // Char literal: copy verbatim (it is at most a few characters).
        code += c;
        ++i;
        while (i < raw.size() && raw[i] != '\'') {
          if (raw[i] == '\\' && i + 1 < raw.size()) {
            code += raw[i];
            code += raw[i + 1];
            i += 2;
          } else {
            code += raw[i];
            ++i;
          }
        }
        if (i < raw.size()) {
          code += '\'';
          ++i;
        }
        continue;
      }
      code += c;
      ++i;
    }

    lines.push_back(std::move(line));
    if (eol == content.size()) break;
    start = eol + 1;
  }
  return lines;
}

// ---- Path classification ---------------------------------------------------

struct PathInfo {
  std::string rel;        // repo-relative suffix ("src/core/session_io.cpp")
  bool in_src = false;
  bool in_tools = false;
  bool is_annotations = false;  // src/util/annotations.h
  bool is_util = false;         // src/util/ (the concurrency layer)
  bool is_util_rng = false;     // src/util/rng.{h,cpp}
  bool is_obs = false;          // src/obs/
  bool deterministic = false;   // dirs where wall clocks are banned
  bool ordered = false;         // dirs where unordered containers are banned
  bool serialization = false;   // files where floats must round-trip
  bool durable = false;         // files where IO returns must be checked
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

PathInfo classify(std::string_view path) {
  PathInfo info;
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');

  // Fixture corpus mirrors the real tree below this marker.
  static constexpr std::string_view kFixtureMarker = "tests/lint_fixtures/";
  std::string rel = norm;
  if (const std::size_t at = norm.find(kFixtureMarker);
      at != std::string::npos) {
    rel = norm.substr(at + kFixtureMarker.size());
  } else {
    // Match the last repo-relative "src/" or "tools/" component so
    // absolute paths classify identically to relative ones.
    for (const std::string_view root : {"src/", "tools/"}) {
      std::size_t best = std::string::npos;
      std::size_t pos = 0;
      while ((pos = norm.find(root, pos)) != std::string::npos) {
        if (pos == 0 || norm[pos - 1] == '/') best = pos;
        pos += 1;
      }
      if (best != std::string::npos) {
        rel = norm.substr(best);
        break;
      }
    }
  }
  info.rel = rel;
  info.in_src = starts_with(rel, "src/");
  info.in_tools = starts_with(rel, "tools/");
  info.is_annotations = rel == "src/util/annotations.h";
  info.is_util = starts_with(rel, "src/util/");
  info.is_util_rng = starts_with(rel, "src/util/rng.");
  info.is_obs = starts_with(rel, "src/obs/");

  // src/service is deterministic by contract: a session must replay to the
  // same incumbent as a standalone BoTuner, so the daemon may not consult
  // wall clocks (poll timeouts are waits, not reads) or unordered maps.
  static constexpr std::array<std::string_view, 10> kDeterministicDirs = {
      "src/core/",   "src/gp/",  "src/config/",    "src/math/",
      "src/ml/",     "src/sim/", "src/workloads/", "src/baselines/",
      "src/analysis/", "src/service/"};
  for (const auto dir : kDeterministicDirs) {
    if (starts_with(rel, dir)) info.deterministic = true;
  }
  // Everything deterministic plus obs: exports (trace JSON, metric
  // snapshots) must be byte-stable, so iteration order matters there too.
  info.ordered = info.deterministic || info.is_obs;

  static constexpr std::array<std::string_view, 7> kSerializationFiles = {
      "src/core/session_io",  "src/util/json",       "src/util/csv",
      "src/obs/metrics",      "src/obs/trace",       "src/service/protocol",
      "src/service/space_json"};
  for (const auto file : kSerializationFiles) {
    if (starts_with(rel, file)) info.serialization = true;
  }

  // The durability layer: files whose write/fsync/rename calls carry the
  // crash-safety contract (see DESIGN.md §6i).
  static constexpr std::array<std::string_view, 2> kDurableFiles = {
      "src/util/fs", "src/core/session_io"};
  for (const auto file : kDurableFiles) {
    if (starts_with(rel, file)) info.durable = true;
  }
  return info;
}

// ---- Suppressions ----------------------------------------------------------

struct Suppressions {
  std::vector<std::string> codes;  // codes allowed on this line
  bool bare = false;               // an allow() without a justification
};

/// Parses every suppression group — "allow(DNNN justification)" after the
/// tool-name marker — present on the line.
Suppressions parse_suppressions(std::string_view raw) {
  Suppressions out;
  // Split literal so the scanner does not match its own marker text.
  static constexpr std::string_view kMarker = "adml-lint: "
                                              "allow(";
  std::size_t pos = 0;
  while ((pos = raw.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    const std::size_t close = raw.find(')', pos);
    std::string_view body = raw.substr(
        pos, close == std::string_view::npos ? raw.size() - pos : close - pos);
    const std::size_t space = body.find(' ');
    std::string_view code = body.substr(0, space);
    std::string_view reason =
        space == std::string_view::npos ? "" : body.substr(space + 1);
    while (!reason.empty() && reason.front() == ' ') reason.remove_prefix(1);
    const bool code_ok =
        code.size() == 4 && code[0] == 'D' &&
        std::all_of(code.begin() + 1, code.end(), [](char c) {
          return c >= '0' && c <= '9';
        });
    if (code_ok && !reason.empty()) {
      out.codes.emplace_back(code);
    } else {
      out.bare = true;
    }
  }
  return out;
}

// ---- Rule table ------------------------------------------------------------

struct Needle {
  std::string_view text;
  bool token = false;  // require a non-identifier char before the match
};

constexpr std::array<Needle, 9> kRandomNeedles = {{
    {"std::random_device"},
    {"std::mt19937"},
    {"std::minstd_rand"},
    {"std::default_random_engine"},
    {"std::ranlux24"},
    {"std::ranlux48"},
    {"std::knuth_b"},
    {"std::rand("},
    {"srand(", /*token=*/true},
}};

constexpr std::array<Needle, 9> kClockNeedles = {{
    {"system_clock"},
    {"steady_clock"},
    {"high_resolution_clock"},
    {"gettimeofday", /*token=*/true},
    {"clock_gettime", /*token=*/true},
    {"std::time("},
    {"time(nullptr)", /*token=*/true},
    {"time(NULL)", /*token=*/true},
    {"std::clock("},
}};

constexpr std::array<Needle, 4> kUnorderedNeedles = {{
    {"std::unordered_map"},
    {"std::unordered_set"},
    {"std::unordered_multimap"},
    {"std::unordered_multiset"},
}};

/// Raw thread-spawning primitives. Everything above src/util must run work
/// on util::ThreadPool / util::AsyncEvalExecutor-style seams: ad-hoc
/// threads are invisible to -Wthread-safety, skip the pool's submission
/// ordering (the determinism contract for proposals and the async
/// executor), and leak past the scoped join the pool guarantees.
constexpr std::array<Needle, 3> kRawThreadNeedles = {{
    {"std::thread", /*token=*/true},
    {"std::jthread", /*token=*/true},
    {"std::async", /*token=*/true},
}};

constexpr std::array<Needle, 10> kRawMutexNeedles = {{
    {"std::mutex", /*token=*/true},
    {"std::recursive_mutex"},
    {"std::shared_mutex"},
    {"std::timed_mutex"},
    {"std::condition_variable"},
    {"std::scoped_lock"},
    {"std::unique_lock"},
    {"std::lock_guard"},
    {"std::call_once"},
    {"std::once_flag"},
}};

/// Calls whose return value encodes durability success; matched only in
/// durable files (util/fs, core/session_io). The member-call forms cover
/// the FileOps seam, the :: forms the raw syscall and stdio APIs ("::"
/// also matches the std:: spellings).
constexpr std::array<std::string_view, 16> kDurableIoNeedles = {{
    "::write(", "::fwrite(", "::fsync(", "::fdatasync(", "::rename(",
    "::fflush(", "::fclose(", "::close(", ".write(", "->write(", ".fsync(",
    "->fsync(", ".rename(", "->rename(", ".close(", "->close("}};

/// True when the durable-IO call whose needle matches `code` at `pos`
/// discards its return value. Heuristic on the statement prefix (text
/// between the previous ';'/'{'/'}' and the match): an empty prefix or a
/// bare identifier chain means nothing consumes the result; a prefix that
/// assigns, tests, casts, or returns ('=', '(', '!', comparison, "return",
/// any multi-token text) counts as checked. "(void)x.fsync(...)" contains
/// '(' and is therefore a *deliberate*, visible discard.
bool unchecked_io_call(std::string_view code, std::size_t pos) {
  std::size_t start = 0;
  if (pos > 0) {
    const std::size_t stmt = code.find_last_of(";{}", pos - 1);
    if (stmt != std::string_view::npos) start = stmt + 1;
  }
  std::string_view prefix = code.substr(start, pos - start);
  while (!prefix.empty() && prefix.front() == ' ') prefix.remove_prefix(1);
  while (!prefix.empty() && prefix.back() == ' ') prefix.remove_suffix(1);
  if (prefix.empty()) return true;
  if (prefix == "return") return false;
  if (prefix.find_first_of("=(!<>,?&|") != std::string_view::npos) {
    return false;
  }
  if (prefix.find(' ') != std::string_view::npos) return false;
  return true;
}

bool match_any(std::string_view code, std::string_view include_header,
               const Needle* needles, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const Needle& n = needles[i];
    if (n.token ? contains_token(code, n.text) : contains(code, n.text)) {
      return true;
    }
  }
  return !include_header.empty() && contains(code, "#include") &&
         contains(code, include_header);
}

/// True when `spec` (a printf conversion starting at '%') is a
/// floating-point conversion other than the round-trip "%.17g".
/// Returns the matched spec length via *len (0 if not a float conversion).
bool lossy_float_spec(std::string_view s, std::size_t* len) {
  *len = 0;
  if (s.empty() || s[0] != '%') return false;
  std::size_t i = 1;
  if (i < s.size() && s[i] == '%') {
    *len = 2;
    return false;
  }
  static constexpr std::string_view kSpecChars = "-+ #0123456789.*lhLqjzt";
  while (i < s.size() && kSpecChars.find(s[i]) != std::string_view::npos) ++i;
  if (i >= s.size()) return false;
  const char conv = s[i];
  *len = i + 1;
  static constexpr std::string_view kFloatConvs = "fFeEgGaA";
  if (kFloatConvs.find(conv) == std::string_view::npos) return false;
  return s.substr(0, *len) != "%.17g";
}

/// Detects a `Mutex <identifier>;` member declaration (excluding
/// MutexLock and constructor calls).
bool declares_mutex_member(std::string_view code) {
  std::size_t pos = 0;
  while ((pos = code.find("Mutex", pos)) != std::string_view::npos) {
    const std::size_t after = pos + 5;
    if (pos > 0 && is_ident_char(code[pos - 1])) {
      pos = after;
      continue;
    }
    std::size_t i = after;
    if (i < code.size() && is_ident_char(code[i])) {  // MutexLock etc.
      pos = after;
      continue;
    }
    while (i < code.size() && code[i] == ' ') ++i;
    std::size_t ident = i;
    while (i < code.size() && is_ident_char(code[i])) ++i;
    if (i == ident) {
      pos = after;
      continue;
    }
    while (i < code.size() && code[i] == ' ') ++i;
    if (i < code.size() && code[i] == ';') return true;
    pos = after;
  }
  return false;
}

bool valid_span_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  });
}

class FileScan {
 public:
  FileScan(std::string_view path, std::string_view content)
      : path_(path), info_(classify(path)), lines_(lex(content)) {}

  std::vector<Finding> run() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      scan_line(i + 1, lines_[i]);
    }
    finish_file_checks();
    return std::move(findings_);
  }

 private:
  void add(std::string_view code, Severity severity, std::size_t line_no,
           const Suppressions& allowed, std::string message,
           std::string hint = "") {
    if (std::find(allowed.codes.begin(), allowed.codes.end(), code) !=
        allowed.codes.end()) {
      return;
    }
    findings_.push_back(Finding{std::string(code), severity, path_, line_no,
                                std::move(message), std::move(hint)});
  }

  void scan_line(std::size_t line_no, const Line& line) {
    const std::string& code = line.code;
    const Suppressions allowed = parse_suppressions(line.raw);
    if (allowed.bare) {
      findings_.push_back(Finding{
          std::string(kBareSuppression), Severity::kError, path_, line_no,
          "suppression without a justification",
          "write `// adml-lint: "
          "allow(DNNN why this is safe)`"});
    }
    const bool is_define = contains(code, "#define");

    // D001: nondeterministic randomness outside util::rng.
    if (!info_.is_util_rng &&
        match_any(code, "<random>", kRandomNeedles.data(),
                  kRandomNeedles.size())) {
      if (contains(code, "#include")) {
        if (contains(code, "<random>")) {
          add(kRandomHeader, Severity::kWarning, line_no, allowed,
              "<random> included outside util::rng",
              "draw from util::Rng so fixed-seed replay stays exact");
        }
      } else {
        add(kNondetRandom, Severity::kError, line_no, allowed,
            "nondeterministic randomness source outside util::rng",
            "derive an explicit util::Rng (seeded, splittable) instead");
      }
    }

    // D002: wall-clock reads on deterministic paths.
    if (info_.deterministic &&
        match_any(code, "", kClockNeedles.data(), kClockNeedles.size())) {
      add(kWallClock, Severity::kError, line_no, allowed,
          "wall-clock read on a deterministic path",
          "simulated time must come from the event queue / evaluator "
          "ledger; real time belongs in src/obs or src/util only");
    }

    // D003: unordered containers where iteration order reaches output.
    if (info_.ordered) {
      const bool use = match_any(code, "", kUnorderedNeedles.data(),
                                 kUnorderedNeedles.size());
      const bool include =
          contains(code, "#include") && contains(code, "<unordered_");
      if (use || include) {
        add(kUnorderedContainer, Severity::kError, line_no, allowed,
            "std::unordered_* on a proposal/journal/export path",
            "iteration order is implementation-defined; use std::map / "
            "std::set (or justify a lookup-only use inline)");
      }
    }

    // D004: hand-rolled span events outside the tracer implementation.
    if (info_.in_src && !info_.is_obs) {
      const bool manual_record =
          (contains(code, ".record(") || contains(code, "->record(")) &&
          (contains(code, "'B'") || contains(code, "'E'"));
      if (manual_record || contains_token(code, "ScopedSpan")) {
        add(kManualSpanEvent, Severity::kError, line_no, allowed,
            "manual trace span event bypasses RAII balancing",
            "open spans with ADML_SPAN(\"name\") so every 'B' closes");
      }
    }

    // D005: lossy float formats in round-trip serialization files.
    if (info_.serialization) {
      for (const std::string& literal : line.strings) {
        std::string_view s = literal;
        std::size_t pos = 0;
        while ((pos = s.find('%', pos)) != std::string_view::npos) {
          std::size_t len = 0;
          if (lossy_float_spec(s.substr(pos), &len)) {
            add(kLossyFloatFormat, Severity::kError, line_no, allowed,
                "float serialized with a non-round-trip format (" +
                    std::string(s.substr(pos, len)) + ")",
                "use %.17g; journal replay depends on exact round-trips");
          }
          pos += len > 0 ? len : 1;
        }
      }
    }

    // D006: unannotated std locking primitives.
    if ((info_.in_src || info_.in_tools) && !info_.is_annotations) {
      const bool use = match_any(code, "", kRawMutexNeedles.data(),
                                 kRawMutexNeedles.size());
      const bool include =
          contains(code, "#include") &&
          (contains(code, "<mutex>") ||
           contains(code, "<condition_variable>") ||
           contains(code, "<shared_mutex>"));
      if (use || include) {
        add(kRawMutex, Severity::kError, line_no, allowed,
            "raw std locking primitive is invisible to -Wthread-safety",
            "use util::Mutex / util::MutexLock / util::CondVar from "
            "util/annotations.h and annotate the guarded members");
      }
    }

    // D010: ad-hoc thread spawning outside the concurrency layer.
    if ((info_.in_src || info_.in_tools) && !info_.is_util) {
      const bool use = match_any(code, "", kRawThreadNeedles.data(),
                                 kRawThreadNeedles.size());
      // <future> stays legal: std::future is ThreadPool::submit's return
      // type, so pool *consumers* hold futures without spawning anything.
      const bool include =
          contains(code, "#include") && contains(code, "<thread>");
      if (use || include) {
        add(kRawThread, Severity::kError, line_no, allowed,
            "raw std::thread/std::jthread/std::async outside src/util",
            "run the work on util::ThreadPool (or the async executor "
            "built on it): ad-hoc threads skip the pool's ordering and "
            "join guarantees and are invisible to -Wthread-safety");
      }
    }

    // D007 / D103: span name hygiene.
    if (!is_define) {
      for (const std::string_view macro :
           {std::string_view("ADML_SPAN("),
            std::string_view("ADML_TRACE_INSTANT(")}) {
        const std::size_t at = code.find(macro);
        if (at == std::string_view::npos) continue;
        std::size_t i = at + macro.size();
        while (i < code.size() && code[i] == ' ') ++i;
        if (i >= code.size() || code[i] != '"') {
          add(kNonLiteralSpanName, Severity::kError, line_no, allowed,
              "span name is not a string literal",
              "the tracer stores the pointer, not a copy; non-literal "
              "names dangle after export");
        } else if (!line.strings.empty() &&
                   !valid_span_name(line.strings.front())) {
          add(kBadSpanName, Severity::kWarning, line_no, allowed,
              "span name '" + line.strings.front() +
                  "' leaves the [a-z0-9_.] taxonomy",
              "keep span names short, stable, lowercase, dot-scoped "
              "(DESIGN.md 6f)");
        }
      }
    }

    // D009: durable-path IO whose result nobody looks at. A write or
    // fsync that "fails silently" here is exactly the corruption the
    // chaos harness exists to rule out.
    if (info_.durable && !is_define) {
      for (const std::string_view needle : kDurableIoNeedles) {
        std::size_t pos = 0;
        while ((pos = code.find(needle, pos)) != std::string_view::npos) {
          if (unchecked_io_call(code, pos)) {
            add(kUncheckedIo, Severity::kError, line_no, allowed,
                "unchecked return of durable IO call (" +
                    std::string(needle.substr(0, needle.size() - 1)) + ")",
                "check the result and surface a typed IoError with the "
                "path, or discard explicitly with (void) and justify");
            break;  // one finding per call site is enough
          }
          pos += needle.size();
        }
      }
    }

    // D102 candidates: Mutex members (resolved at end of file).
    if (info_.in_src && !info_.is_annotations &&
        declares_mutex_member(code)) {
      mutex_members_.push_back({line_no, allowed});
    }

    // D104: std::endl flushes on every use.
    if (info_.in_src && contains(code, "std::endl")) {
      add(kEndlFlush, Severity::kWarning, line_no, allowed,
          "std::endl flushes the stream on every use",
          "write '\\n' and flush once at the end");
    }

    if (contains(code, "ADML_GUARDED_BY")) file_has_guarded_by_ = true;
  }

  void finish_file_checks() {
    if (file_has_guarded_by_) return;
    for (const auto& [line_no, allowed] : mutex_members_) {
      add(kUnguardedMutexMember, Severity::kWarning, line_no, allowed,
          "Mutex member but no ADML_GUARDED_BY in this file",
          "annotate the members the mutex protects (or justify inline if "
          "it guards a resource, not data)");
    }
  }

  std::string path_;
  PathInfo info_;
  std::vector<Line> lines_;
  std::vector<std::pair<std::size_t, Suppressions>> mutex_members_;
  bool file_has_guarded_by_ = false;
  std::vector<Finding> findings_;
};

}  // namespace

std::string_view to_string(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Finding::to_string() const {
  std::ostringstream out;
  out << path << ":" << line << ": " << code << " "
      << adml_lint::to_string(severity) << ": " << message;
  if (!hint.empty()) out << "; hint: " << hint;
  return out.str();
}

std::vector<CheckInfo> check_catalog() {
  return {
      {kNondetRandom, Severity::kError,
       "randomness source outside util::rng (std::rand, random_device, "
       "std engines)"},
      {kWallClock, Severity::kError,
       "wall-clock read on a deterministic path (core/gp/sim/...)"},
      {kUnorderedContainer, Severity::kError,
       "std::unordered_* on a proposal/journal/export path"},
      {kManualSpanEvent, Severity::kError,
       "manual 'B'/'E' trace events or raw ScopedSpan outside src/obs"},
      {kLossyFloatFormat, Severity::kError,
       "float format other than %.17g in round-trip serialization files"},
      {kRawMutex, Severity::kError,
       "raw std::mutex/condition_variable/lock outside util/annotations.h"},
      {kNonLiteralSpanName, Severity::kError,
       "ADML_SPAN / ADML_TRACE_INSTANT name is not a string literal"},
      {kBareSuppression, Severity::kError,
       "adml-lint: "
       "allow(...) without a justification"},
      {kUncheckedIo, Severity::kError,
       "unchecked write/fsync/rename/close return on a durability path "
       "(util/fs, core/session_io)"},
      {kRawThread, Severity::kError,
       "std::thread/std::jthread/std::async (or #include <thread>) outside "
       "src/util"},
      {kRandomHeader, Severity::kWarning,
       "#include <random> outside util::rng"},
      {kUnguardedMutexMember, Severity::kWarning,
       "Mutex member in a file with no ADML_GUARDED_BY annotation"},
      {kBadSpanName, Severity::kWarning,
       "span name outside the [a-z0-9_.] taxonomy"},
      {kEndlFlush, Severity::kWarning, "std::endl (flushes on every use)"},
  };
}

std::vector<Finding> scan_file(std::string_view path,
                               std::string_view content) {
  return FileScan(path, content).run();
}

namespace {

bool scannable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool skip_dir(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' ||
         name.rfind("build", 0) == 0;
}

}  // namespace

std::vector<Finding> scan_paths(const std::vector<std::string>& roots,
                                std::string* error) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.emplace_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      if (error != nullptr) {
        *error += "not a file or directory: " + root + "\n";
      }
      continue;
    }
    fs::recursive_directory_iterator it(root, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && scannable(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error != nullptr) {
        *error += "unreadable: " + file.string() + "\n";
      }
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings =
        scan_file(file.generic_string(), buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  // File-level checks (D102) report out of line order within a file.
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.code) <
                     std::tie(b.path, b.line, b.code);
            });
  return findings;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

}  // namespace adml_lint

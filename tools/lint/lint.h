// adml-lint: the in-tree determinism & concurrency-discipline linter.
//
// A standalone token-level scanner (plain std C++, no libclang) encoding
// repo invariants no off-the-shelf tool knows:
//
//   - every random draw flows through util::rng (fixed-seed replay),
//   - deterministic paths never read a wall clock,
//   - containers iterated on proposal/journal/export paths have defined
//     iteration order,
//   - trace spans are RAII-balanced and their names form a stable
//     taxonomy,
//   - floats that must round-trip are serialized with %.17g,
//   - every lock is an annotated util::Mutex that clang -Wthread-safety
//     can see.
//
// Diagnostics carry stable codes: D0xx are errors (the invariant is
// broken), D1xx are warnings (suspicious; legal). A finding on a line is
// suppressed by an inline justification comment on that same line:
//
//   std::map<K,V> m;  // adml-lint: allow(D003 lookup-only, never iterated)
//
// The code must match and a justification must follow it; bare
// suppressions are themselves an error (D008). See DESIGN.md §6g for the
// full catalog and conventions.
//
// The scanner is line-based with a small comment/string state machine:
// rule needles never match inside comments or string literals (except the
// format-string rule, which inspects string literals on purpose). It is
// deliberately dumb — no preprocessor, no templates — which keeps it fast
// (whole repo in milliseconds) and its false-positive surface small
// enough that every finding is actionable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adml_lint {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity severity);

// ---- Error codes (a repo invariant is broken) ------------------------------
inline constexpr std::string_view kNondetRandom = "D001";
inline constexpr std::string_view kWallClock = "D002";
inline constexpr std::string_view kUnorderedContainer = "D003";
inline constexpr std::string_view kManualSpanEvent = "D004";
inline constexpr std::string_view kLossyFloatFormat = "D005";
inline constexpr std::string_view kRawMutex = "D006";
inline constexpr std::string_view kNonLiteralSpanName = "D007";
inline constexpr std::string_view kBareSuppression = "D008";
inline constexpr std::string_view kUncheckedIo = "D009";
inline constexpr std::string_view kRawThread = "D010";

// ---- Warning codes (legal but suspicious) ----------------------------------
inline constexpr std::string_view kRandomHeader = "D101";
inline constexpr std::string_view kUnguardedMutexMember = "D102";
inline constexpr std::string_view kBadSpanName = "D103";
inline constexpr std::string_view kEndlFlush = "D104";

struct Finding {
  std::string code;  // one of the D0xx/D1xx constants above
  Severity severity = Severity::kError;
  std::string path;       // file the finding is in (as passed to scan_file)
  std::size_t line = 0;   // 1-based
  std::string message;
  std::string hint;  // actionable suggestion; may be empty

  /// "src/core/foo.cpp:12: D001 error: ...; hint: ...".
  std::string to_string() const;
};

struct CheckInfo {
  std::string_view code;
  Severity severity;
  std::string_view summary;
};

/// The full catalog, errors first (for --list-checks and the docs test).
std::vector<CheckInfo> check_catalog();

/// Scan one file's contents. `path` drives the path-sensitive rules; it
/// is matched on its repo-relative suffix, so absolute paths work, and a
/// prefix ending in "tests/lint_fixtures/" is stripped first (fixtures
/// mirror the real tree underneath that directory).
std::vector<Finding> scan_file(std::string_view path, std::string_view content);

/// Recursively scan every .h/.hpp/.cc/.cpp file under each root (a root
/// may also be a single file). Skips build*/ and hidden directories.
/// Returns findings sorted by (path, line). I/O failures are reported in
/// `*error` (set to an explanatory message; the scan still covers every
/// readable file).
std::vector<Finding> scan_paths(const std::vector<std::string>& roots,
                                std::string* error);

bool has_errors(const std::vector<Finding>& findings);

}  // namespace adml_lint

# Empty compiler generated dependencies file for autodml_math.
# This may be replaced when dependencies are built.

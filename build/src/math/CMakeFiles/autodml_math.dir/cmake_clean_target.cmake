file(REMOVE_RECURSE
  "libautodml_math.a"
)

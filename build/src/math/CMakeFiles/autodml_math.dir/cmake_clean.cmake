file(REMOVE_RECURSE
  "CMakeFiles/autodml_math.dir/cholesky.cpp.o"
  "CMakeFiles/autodml_math.dir/cholesky.cpp.o.d"
  "CMakeFiles/autodml_math.dir/matrix.cpp.o"
  "CMakeFiles/autodml_math.dir/matrix.cpp.o.d"
  "CMakeFiles/autodml_math.dir/optimize.cpp.o"
  "CMakeFiles/autodml_math.dir/optimize.cpp.o.d"
  "libautodml_math.a"
  "libautodml_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

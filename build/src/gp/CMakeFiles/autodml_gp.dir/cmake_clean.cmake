file(REMOVE_RECURSE
  "CMakeFiles/autodml_gp.dir/gp.cpp.o"
  "CMakeFiles/autodml_gp.dir/gp.cpp.o.d"
  "CMakeFiles/autodml_gp.dir/kernel.cpp.o"
  "CMakeFiles/autodml_gp.dir/kernel.cpp.o.d"
  "libautodml_gp.a"
  "libautodml_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautodml_gp.a"
)

# Empty dependencies file for autodml_gp.
# This may be replaced when dependencies are built.

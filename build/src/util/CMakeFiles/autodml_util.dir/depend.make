# Empty dependencies file for autodml_util.
# This may be replaced when dependencies are built.

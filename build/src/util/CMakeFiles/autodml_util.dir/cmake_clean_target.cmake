file(REMOVE_RECURSE
  "libautodml_util.a"
)

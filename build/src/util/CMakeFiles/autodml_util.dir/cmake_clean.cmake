file(REMOVE_RECURSE
  "CMakeFiles/autodml_util.dir/arg_parse.cpp.o"
  "CMakeFiles/autodml_util.dir/arg_parse.cpp.o.d"
  "CMakeFiles/autodml_util.dir/csv.cpp.o"
  "CMakeFiles/autodml_util.dir/csv.cpp.o.d"
  "CMakeFiles/autodml_util.dir/json.cpp.o"
  "CMakeFiles/autodml_util.dir/json.cpp.o.d"
  "CMakeFiles/autodml_util.dir/log.cpp.o"
  "CMakeFiles/autodml_util.dir/log.cpp.o.d"
  "CMakeFiles/autodml_util.dir/rng.cpp.o"
  "CMakeFiles/autodml_util.dir/rng.cpp.o.d"
  "CMakeFiles/autodml_util.dir/stats.cpp.o"
  "CMakeFiles/autodml_util.dir/stats.cpp.o.d"
  "CMakeFiles/autodml_util.dir/string_util.cpp.o"
  "CMakeFiles/autodml_util.dir/string_util.cpp.o.d"
  "CMakeFiles/autodml_util.dir/thread_pool.cpp.o"
  "CMakeFiles/autodml_util.dir/thread_pool.cpp.o.d"
  "libautodml_util.a"
  "libautodml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for autodml_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autodml_baselines.dir/baseline_tuners.cpp.o"
  "CMakeFiles/autodml_baselines.dir/baseline_tuners.cpp.o.d"
  "CMakeFiles/autodml_baselines.dir/parallel_bo.cpp.o"
  "CMakeFiles/autodml_baselines.dir/parallel_bo.cpp.o.d"
  "libautodml_baselines.a"
  "libautodml_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

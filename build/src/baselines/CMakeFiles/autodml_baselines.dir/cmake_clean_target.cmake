file(REMOVE_RECURSE
  "libautodml_baselines.a"
)

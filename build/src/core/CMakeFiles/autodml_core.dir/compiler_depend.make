# Empty compiler generated dependencies file for autodml_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquisition.cpp" "src/core/CMakeFiles/autodml_core.dir/acquisition.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/acquisition.cpp.o.d"
  "/root/repo/src/core/acquisition_optimizer.cpp" "src/core/CMakeFiles/autodml_core.dir/acquisition_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/acquisition_optimizer.cpp.o.d"
  "/root/repo/src/core/bo_tuner.cpp" "src/core/CMakeFiles/autodml_core.dir/bo_tuner.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/bo_tuner.cpp.o.d"
  "/root/repo/src/core/early_termination.cpp" "src/core/CMakeFiles/autodml_core.dir/early_termination.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/early_termination.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/autodml_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/session_io.cpp" "src/core/CMakeFiles/autodml_core.dir/session_io.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/session_io.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/core/CMakeFiles/autodml_core.dir/surrogate.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/surrogate.cpp.o.d"
  "/root/repo/src/core/tuner_types.cpp" "src/core/CMakeFiles/autodml_core.dir/tuner_types.cpp.o" "gcc" "src/core/CMakeFiles/autodml_core.dir/tuner_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/autodml_config.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/autodml_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autodml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autodml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/autodml_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autodml_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/autodml_core.dir/acquisition.cpp.o"
  "CMakeFiles/autodml_core.dir/acquisition.cpp.o.d"
  "CMakeFiles/autodml_core.dir/acquisition_optimizer.cpp.o"
  "CMakeFiles/autodml_core.dir/acquisition_optimizer.cpp.o.d"
  "CMakeFiles/autodml_core.dir/bo_tuner.cpp.o"
  "CMakeFiles/autodml_core.dir/bo_tuner.cpp.o.d"
  "CMakeFiles/autodml_core.dir/early_termination.cpp.o"
  "CMakeFiles/autodml_core.dir/early_termination.cpp.o.d"
  "CMakeFiles/autodml_core.dir/sensitivity.cpp.o"
  "CMakeFiles/autodml_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/autodml_core.dir/session_io.cpp.o"
  "CMakeFiles/autodml_core.dir/session_io.cpp.o.d"
  "CMakeFiles/autodml_core.dir/surrogate.cpp.o"
  "CMakeFiles/autodml_core.dir/surrogate.cpp.o.d"
  "CMakeFiles/autodml_core.dir/tuner_types.cpp.o"
  "CMakeFiles/autodml_core.dir/tuner_types.cpp.o.d"
  "libautodml_core.a"
  "libautodml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

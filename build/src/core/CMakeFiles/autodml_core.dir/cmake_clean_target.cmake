file(REMOVE_RECURSE
  "libautodml_core.a"
)

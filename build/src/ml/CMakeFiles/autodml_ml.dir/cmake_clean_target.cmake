file(REMOVE_RECURSE
  "libautodml_ml.a"
)

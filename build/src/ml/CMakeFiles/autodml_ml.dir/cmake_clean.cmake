file(REMOVE_RECURSE
  "CMakeFiles/autodml_ml.dir/convergence.cpp.o"
  "CMakeFiles/autodml_ml.dir/convergence.cpp.o.d"
  "CMakeFiles/autodml_ml.dir/curve_fit.cpp.o"
  "CMakeFiles/autodml_ml.dir/curve_fit.cpp.o.d"
  "CMakeFiles/autodml_ml.dir/micro_trainer.cpp.o"
  "CMakeFiles/autodml_ml.dir/micro_trainer.cpp.o.d"
  "libautodml_ml.a"
  "libautodml_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/convergence.cpp" "src/ml/CMakeFiles/autodml_ml.dir/convergence.cpp.o" "gcc" "src/ml/CMakeFiles/autodml_ml.dir/convergence.cpp.o.d"
  "/root/repo/src/ml/curve_fit.cpp" "src/ml/CMakeFiles/autodml_ml.dir/curve_fit.cpp.o" "gcc" "src/ml/CMakeFiles/autodml_ml.dir/curve_fit.cpp.o.d"
  "/root/repo/src/ml/micro_trainer.cpp" "src/ml/CMakeFiles/autodml_ml.dir/micro_trainer.cpp.o" "gcc" "src/ml/CMakeFiles/autodml_ml.dir/micro_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autodml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/autodml_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autodml_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

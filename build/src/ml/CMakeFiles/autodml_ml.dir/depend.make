# Empty dependencies file for autodml_ml.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for autodml_workloads.
# This may be replaced when dependencies are built.

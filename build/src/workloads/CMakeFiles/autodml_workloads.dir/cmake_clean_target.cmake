file(REMOVE_RECURSE
  "libautodml_workloads.a"
)

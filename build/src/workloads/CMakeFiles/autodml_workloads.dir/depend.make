# Empty dependencies file for autodml_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autodml_workloads.dir/evaluator.cpp.o"
  "CMakeFiles/autodml_workloads.dir/evaluator.cpp.o.d"
  "CMakeFiles/autodml_workloads.dir/objective_adapter.cpp.o"
  "CMakeFiles/autodml_workloads.dir/objective_adapter.cpp.o.d"
  "CMakeFiles/autodml_workloads.dir/workload.cpp.o"
  "CMakeFiles/autodml_workloads.dir/workload.cpp.o.d"
  "libautodml_workloads.a"
  "libautodml_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

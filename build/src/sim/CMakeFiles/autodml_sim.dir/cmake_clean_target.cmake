file(REMOVE_RECURSE
  "libautodml_sim.a"
)

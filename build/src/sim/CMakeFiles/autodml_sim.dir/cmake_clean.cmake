file(REMOVE_RECURSE
  "CMakeFiles/autodml_sim.dir/allreduce_runtime.cpp.o"
  "CMakeFiles/autodml_sim.dir/allreduce_runtime.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/analytic_model.cpp.o"
  "CMakeFiles/autodml_sim.dir/analytic_model.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/cluster.cpp.o"
  "CMakeFiles/autodml_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/event_queue.cpp.o"
  "CMakeFiles/autodml_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/flow_network.cpp.o"
  "CMakeFiles/autodml_sim.dir/flow_network.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/job.cpp.o"
  "CMakeFiles/autodml_sim.dir/job.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/memory_model.cpp.o"
  "CMakeFiles/autodml_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/ps_runtime.cpp.o"
  "CMakeFiles/autodml_sim.dir/ps_runtime.cpp.o.d"
  "CMakeFiles/autodml_sim.dir/system_sim.cpp.o"
  "CMakeFiles/autodml_sim.dir/system_sim.cpp.o.d"
  "libautodml_sim.a"
  "libautodml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/allreduce_runtime.cpp" "src/sim/CMakeFiles/autodml_sim.dir/allreduce_runtime.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/allreduce_runtime.cpp.o.d"
  "/root/repo/src/sim/analytic_model.cpp" "src/sim/CMakeFiles/autodml_sim.dir/analytic_model.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/analytic_model.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/autodml_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/autodml_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/flow_network.cpp" "src/sim/CMakeFiles/autodml_sim.dir/flow_network.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/flow_network.cpp.o.d"
  "/root/repo/src/sim/job.cpp" "src/sim/CMakeFiles/autodml_sim.dir/job.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/job.cpp.o.d"
  "/root/repo/src/sim/memory_model.cpp" "src/sim/CMakeFiles/autodml_sim.dir/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/memory_model.cpp.o.d"
  "/root/repo/src/sim/ps_runtime.cpp" "src/sim/CMakeFiles/autodml_sim.dir/ps_runtime.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/ps_runtime.cpp.o.d"
  "/root/repo/src/sim/system_sim.cpp" "src/sim/CMakeFiles/autodml_sim.dir/system_sim.cpp.o" "gcc" "src/sim/CMakeFiles/autodml_sim.dir/system_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autodml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for autodml_sim.
# This may be replaced when dependencies are built.

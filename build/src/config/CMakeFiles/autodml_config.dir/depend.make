# Empty dependencies file for autodml_config.
# This may be replaced when dependencies are built.

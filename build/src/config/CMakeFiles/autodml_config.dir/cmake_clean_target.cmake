file(REMOVE_RECURSE
  "libautodml_config.a"
)

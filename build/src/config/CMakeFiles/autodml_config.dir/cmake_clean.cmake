file(REMOVE_RECURSE
  "CMakeFiles/autodml_config.dir/config_space.cpp.o"
  "CMakeFiles/autodml_config.dir/config_space.cpp.o.d"
  "CMakeFiles/autodml_config.dir/param.cpp.o"
  "CMakeFiles/autodml_config.dir/param.cpp.o.d"
  "CMakeFiles/autodml_config.dir/sampler.cpp.o"
  "CMakeFiles/autodml_config.dir/sampler.cpp.o.d"
  "libautodml_config.a"
  "libautodml_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/acquisition_test.dir/acquisition_test.cpp.o"
  "CMakeFiles/acquisition_test.dir/acquisition_test.cpp.o.d"
  "acquisition_test"
  "acquisition_test.pdb"
  "acquisition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquisition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

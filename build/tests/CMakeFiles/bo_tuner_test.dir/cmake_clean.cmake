file(REMOVE_RECURSE
  "CMakeFiles/bo_tuner_test.dir/bo_tuner_test.cpp.o"
  "CMakeFiles/bo_tuner_test.dir/bo_tuner_test.cpp.o.d"
  "bo_tuner_test"
  "bo_tuner_test.pdb"
  "bo_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memory_analytic_test.
# This may be replaced when dependencies are built.

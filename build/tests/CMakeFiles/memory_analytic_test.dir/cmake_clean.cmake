file(REMOVE_RECURSE
  "CMakeFiles/memory_analytic_test.dir/memory_analytic_test.cpp.o"
  "CMakeFiles/memory_analytic_test.dir/memory_analytic_test.cpp.o.d"
  "memory_analytic_test"
  "memory_analytic_test.pdb"
  "memory_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

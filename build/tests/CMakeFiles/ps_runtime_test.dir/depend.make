# Empty dependencies file for ps_runtime_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ps_runtime_test.dir/ps_runtime_test.cpp.o"
  "CMakeFiles/ps_runtime_test.dir/ps_runtime_test.cpp.o.d"
  "ps_runtime_test"
  "ps_runtime_test.pdb"
  "ps_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/early_term_test.dir/early_term_test.cpp.o"
  "CMakeFiles/early_term_test.dir/early_term_test.cpp.o.d"
  "early_term_test"
  "early_term_test.pdb"
  "early_term_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_term_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

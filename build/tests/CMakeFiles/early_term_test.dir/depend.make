# Empty dependencies file for early_term_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/acq_optimizer_test.dir/acq_optimizer_test.cpp.o"
  "CMakeFiles/acq_optimizer_test.dir/acq_optimizer_test.cpp.o.d"
  "acq_optimizer_test"
  "acq_optimizer_test.pdb"
  "acq_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

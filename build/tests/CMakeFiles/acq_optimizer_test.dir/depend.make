# Empty dependencies file for acq_optimizer_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/gp_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/flow_network_test[1]_include.cmake")
include("/root/repo/build/tests/ps_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/allreduce_test[1]_include.cmake")
include("/root/repo/build/tests/memory_analytic_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/acquisition_test[1]_include.cmake")
include("/root/repo/build/tests/surrogate_test[1]_include.cmake")
include("/root/repo/build/tests/early_term_test[1]_include.cmake")
include("/root/repo/build/tests/bo_tuner_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/acq_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/session_resume.dir/session_resume.cpp.o"
  "CMakeFiles/session_resume.dir/session_resume.cpp.o.d"
  "session_resume"
  "session_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

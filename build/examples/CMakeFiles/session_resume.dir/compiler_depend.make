# Empty compiler generated dependencies file for session_resume.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for early_stopping_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/early_stopping_demo.dir/early_stopping_demo.cpp.o"
  "CMakeFiles/early_stopping_demo.dir/early_stopping_demo.cpp.o.d"
  "early_stopping_demo"
  "early_stopping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_stopping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tune_resnet_cluster.dir/tune_resnet_cluster.cpp.o"
  "CMakeFiles/tune_resnet_cluster.dir/tune_resnet_cluster.cpp.o.d"
  "tune_resnet_cluster"
  "tune_resnet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_resnet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

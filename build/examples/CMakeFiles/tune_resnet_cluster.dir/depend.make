# Empty dependencies file for tune_resnet_cluster.
# This may be replaced when dependencies are built.

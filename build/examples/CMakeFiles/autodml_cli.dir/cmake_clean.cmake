file(REMOVE_RECURSE
  "CMakeFiles/autodml_cli.dir/autodml_cli.cpp.o"
  "CMakeFiles/autodml_cli.dir/autodml_cli.cpp.o.d"
  "autodml_cli"
  "autodml_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodml_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for autodml_cli.
# This may be replaced when dependencies are built.

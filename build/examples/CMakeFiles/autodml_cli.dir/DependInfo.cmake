
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/autodml_cli.cpp" "examples/CMakeFiles/autodml_cli.dir/autodml_cli.cpp.o" "gcc" "examples/CMakeFiles/autodml_cli.dir/autodml_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/autodml_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autodml_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autodml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autodml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autodml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/autodml_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/autodml_config.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/autodml_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autodml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

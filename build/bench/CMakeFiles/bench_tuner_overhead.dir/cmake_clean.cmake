file(REMOVE_RECURSE
  "CMakeFiles/bench_tuner_overhead.dir/bench_tuner_overhead.cpp.o"
  "CMakeFiles/bench_tuner_overhead.dir/bench_tuner_overhead.cpp.o.d"
  "bench_tuner_overhead"
  "bench_tuner_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuner_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_tuner_overhead.
# This may be replaced when dependencies are built.

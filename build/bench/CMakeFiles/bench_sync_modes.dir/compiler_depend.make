# Empty compiler generated dependencies file for bench_sync_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_modes.dir/bench_sync_modes.cpp.o"
  "CMakeFiles/bench_sync_modes.dir/bench_sync_modes.cpp.o.d"
  "bench_sync_modes"
  "bench_sync_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_budget_table.dir/bench_budget_table.cpp.o"
  "CMakeFiles/bench_budget_table.dir/bench_budget_table.cpp.o.d"
  "bench_budget_table"
  "bench_budget_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

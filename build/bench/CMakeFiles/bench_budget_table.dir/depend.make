# Empty dependencies file for bench_budget_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_early_term.dir/bench_early_term.cpp.o"
  "CMakeFiles/bench_early_term.dir/bench_early_term.cpp.o.d"
  "bench_early_term"
  "bench_early_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_early_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_early_term.
# This may be replaced when dependencies are built.

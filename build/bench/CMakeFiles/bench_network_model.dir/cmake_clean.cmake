file(REMOVE_RECURSE
  "CMakeFiles/bench_network_model.dir/bench_network_model.cpp.o"
  "CMakeFiles/bench_network_model.dir/bench_network_model.cpp.o.d"
  "bench_network_model"
  "bench_network_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_network_model.
# This may be replaced when dependencies are built.

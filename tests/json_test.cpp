#include <gtest/gtest.h>

#include <cmath>

#include "util/json.h"

namespace autodml::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  const JsonValue v = parse_json("  {\n\t\"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const JsonValue v = parse_json(
      R"({"name":"run","tags":["a","b"],"meta":{"depth":2,"ok":true}})");
  EXPECT_EQ(v.at("name").as_string(), "run");
  EXPECT_EQ(v.at("tags").as_array()[1].as_string(), "b");
  EXPECT_DOUBLE_EQ(v.at("meta").at("depth").as_number(), 2.0);
  EXPECT_TRUE(v.at("meta").at("ok").as_bool());
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = parse_json(R"("line\nquote\"tab\tslash\\u:A")");
  EXPECT_EQ(v.as_string(), "line\nquote\"tab\tslash\\u:A");
}

TEST(JsonParse, UnicodeEscapeToUtf8) {
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");  // é
  EXPECT_EQ(parse_json(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
}

TEST(JsonParse, Errors) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"open", "{\"a\":}", "1 2", "{'a':1}",
        "[1,]x", "nul", "--3", "\"\\u00g1\""}) {
    EXPECT_THROW(parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, TrailingGarbageRejected) {
  EXPECT_THROW(parse_json("{} {}"), std::invalid_argument);
}

TEST(JsonDump, CompactRoundTrip) {
  const char* doc =
      R"({"a":[1,2.5,true,null],"b":{"c":"x"},"d":false})";
  const JsonValue v = parse_json(doc);
  const JsonValue again = parse_json(dump_json(v));
  EXPECT_EQ(v, again);
}

TEST(JsonDump, PrettyRoundTrip) {
  const JsonValue v = parse_json(R"({"k":[{"n":1},{"n":2}],"s":"v"})");
  const std::string pretty = dump_json(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse_json(pretty), v);
}

TEST(JsonDump, IntegersPrintWithoutFraction) {
  EXPECT_EQ(dump_json(JsonValue(7.0)), "7");
  EXPECT_EQ(dump_json(JsonValue(-12345.0)), "-12345");
  EXPECT_EQ(dump_json(JsonValue(0.5)), "0.5");
}

TEST(JsonDump, LargeDoublesRoundTripExactly) {
  const double x = 1.2345678901234567e-12;
  EXPECT_DOUBLE_EQ(parse_json(dump_json(JsonValue(x))).as_number(), x);
}

TEST(JsonDump, StringsEscaped) {
  EXPECT_EQ(dump_json(JsonValue("a\"b\\c\nd")), R"("a\"b\\c\nd")");
}

TEST(JsonValueApi, AtAndContains) {
  const JsonValue v = parse_json(R"({"x":1})");
  EXPECT_TRUE(v.contains("x"));
  EXPECT_FALSE(v.contains("y"));
  EXPECT_THROW(v.at("y"), std::out_of_range);
  EXPECT_FALSE(parse_json("3").contains("x"));
}

TEST(JsonValueApi, TypeMismatchThrows) {
  const JsonValue v = parse_json("\"str\"");
  EXPECT_THROW(v.as_number(), std::bad_variant_access);
  EXPECT_THROW(v.as_array(), std::bad_variant_access);
}

}  // namespace
}  // namespace autodml::util

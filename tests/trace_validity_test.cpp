// Structural validation of exported traces: a real traced tuning session
// must produce a Chrome trace-event document that parses, carries every
// Perfetto-required field, and has properly nested begin/end spans with
// monotonic timestamps on each thread.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/bo_tuner.h"
#include "obs/trace.h"
#include "util/json.h"
#include "workloads/objective_adapter.h"

namespace autodml {
namespace {

std::string traced_session_json() {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  wl::Evaluator evaluator(workload, 21);
  wl::EvaluatorObjective objective(evaluator);
  core::BoOptions options;
  options.seed = 21;
  options.max_evaluations = 6;
  options.initial_design_size = 4;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 40;
  options.acq_optimizer.random_candidates = 128;
  core::BoTuner tuner(objective, options);
  tuner.tune();
  tracer.stop();
  const std::string json = tracer.export_chrome_json();
  tracer.clear();
  return json;
}

TEST(TraceValidity, ExportedSessionTraceIsWellFormed) {
  const util::JsonValue doc = util::parse_json(traced_session_json());

  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 20u) << "a 6-trial session must emit real spans";

  // Per-thread span stack (names) and last-seen timestamp.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& e = events[i];
    // Perfetto-required fields on every event.
    ASSERT_TRUE(e.contains("name")) << "event " << i;
    ASSERT_TRUE(e.contains("ph")) << "event " << i;
    ASSERT_TRUE(e.contains("ts")) << "event " << i;
    ASSERT_TRUE(e.contains("pid")) << "event " << i;
    ASSERT_TRUE(e.contains("tid")) << "event " << i;
    ASSERT_FALSE(e.at("name").as_string().empty()) << "event " << i;

    const int tid = static_cast<int>(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    // Events are grouped per thread buffer in append order, so timestamps
    // must be non-decreasing within a tid.
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]) << "event " << i << " on tid " << tid;
    }
    last_ts[tid] = ts;

    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") {
      stacks[tid].push_back(e.at("name").as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty())
          << "event " << i << ": 'E' with no open span on tid " << tid;
      // Strict nesting: an end always closes the innermost open span.
      EXPECT_EQ(stacks[tid].back(), e.at("name").as_string())
          << "event " << i;
      stacks[tid].pop_back();
    } else {
      ASSERT_EQ(ph, "i") << "event " << i << ": unexpected phase " << ph;
      EXPECT_EQ(e.at("s").as_string(), "t") << "event " << i;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unbalanced span(s) left open on tid " << tid;
  }
}

TEST(TraceValidity, SessionEmitsTheCanonicalSpanTaxonomy) {
  const util::JsonValue doc = util::parse_json(traced_session_json());
  std::map<std::string, int> names;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "B") ++names[e.at("name").as_string()];
  }
  EXPECT_EQ(names["tuner.tune"], 1);
  EXPECT_EQ(names["tuner.initial_design"], 1);
  EXPECT_EQ(names["tuner.evaluate"], 6);
  EXPECT_EQ(names["eval.run"], 6);
  EXPECT_GE(names["tuner.iteration"], 1);
  EXPECT_GE(names["surrogate.update"], 1);
  EXPECT_GE(names["gp.fit"], 1);
  EXPECT_GE(names["sim.ps_run"] + names["sim.allreduce_run"], 1);
}

}  // namespace
}  // namespace autodml

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.h"

namespace autodml::core {
namespace {

// ---- normal distribution helpers -----------------------------------------------

TEST(NormalDist, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.39894228, 1e-7);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072, 1e-7);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalDist, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(NormalDist, LogCdfMatchesDirectInSafeRange) {
  for (double z : {-5.0, -2.0, 0.0, 1.5, 4.0}) {
    EXPECT_NEAR(log_normal_cdf(z), std::log(normal_cdf(z)), 1e-6) << z;
  }
}

TEST(NormalDist, LogCdfStableInDeepTail) {
  // Direct computation underflows; asymptotic must stay finite, monotone.
  double prev = log_normal_cdf(-10.0);
  EXPECT_TRUE(std::isfinite(prev));
  for (double z : {-20.0, -30.0, -50.0}) {
    const double v = log_normal_cdf(z);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(v, prev);
    prev = v;
  }
  // Continuity across the switchover near z = -8.
  EXPECT_NEAR(log_normal_cdf(-7.999), log_normal_cdf(-8.001), 0.02);
}

// ---- EI ---------------------------------------------------------------------------

TEST(ExpectedImprovement, NonNegative) {
  for (double mean : {-2.0, 0.0, 3.0}) {
    for (double var : {0.0, 0.5, 4.0}) {
      EXPECT_GE(expected_improvement(mean, var, 0.0), 0.0);
    }
  }
}

TEST(ExpectedImprovement, ZeroVarianceIsPlainImprovement) {
  EXPECT_DOUBLE_EQ(expected_improvement(1.0, 0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, 0.0, 3.0), 0.0);
}

TEST(ExpectedImprovement, IncreasesWithVarianceAtIncumbentMean) {
  const double best = 0.0;
  double prev = expected_improvement(best, 0.01, best);
  for (double var : {0.1, 1.0, 10.0}) {
    const double ei = expected_improvement(best, var, best);
    EXPECT_GT(ei, prev);
    prev = ei;
  }
}

TEST(ExpectedImprovement, DecreasesAsMeanWorsens) {
  double prev = expected_improvement(-1.0, 1.0, 0.0);
  for (double mean : {0.0, 1.0, 3.0}) {
    const double ei = expected_improvement(mean, 1.0, 0.0);
    EXPECT_LT(ei, prev);
    prev = ei;
  }
}

TEST(LogExpectedImprovement, MatchesLogOfEiInSafeRange) {
  for (double mean : {-1.0, 0.0, 2.0}) {
    const double ei = expected_improvement(mean, 1.0, 0.5);
    EXPECT_NEAR(log_expected_improvement(mean, 1.0, 0.5), std::log(ei), 1e-6);
  }
}

TEST(LogExpectedImprovement, FiniteWhereEiUnderflows) {
  // mean far above incumbent with tiny variance: EI underflows to 0 but
  // log-EI must still rank candidates.
  const double a = log_expected_improvement(50.0, 0.01, 0.0);
  const double b = log_expected_improvement(60.0, 0.01, 0.0);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_GT(a, b);  // closer candidate still preferred
  EXPECT_EQ(expected_improvement(50.0, 0.01, 0.0), 0.0);  // plain EI dead
}

TEST(LogExpectedImprovement, ZeroVarianceCases) {
  EXPECT_DOUBLE_EQ(log_expected_improvement(1.0, 0.0, 3.0), std::log(2.0));
  EXPECT_LT(log_expected_improvement(5.0, 0.0, 3.0), -1e90);
}

// ---- UCB / PI -----------------------------------------------------------------------

TEST(Ucb, PrefersLowMeanAndHighVariance) {
  EXPECT_GT(ucb_score(0.0, 1.0, 2.0), ucb_score(1.0, 1.0, 2.0));
  EXPECT_GT(ucb_score(0.0, 4.0, 2.0), ucb_score(0.0, 1.0, 2.0));
}

TEST(Pi, ProbabilityBoundsAndMonotonicity) {
  const double pi_better = probability_of_improvement(-1.0, 1.0, 0.0);
  const double pi_worse = probability_of_improvement(1.0, 1.0, 0.0);
  EXPECT_GT(pi_better, 0.5);
  EXPECT_LT(pi_worse, 0.5);
  EXPECT_DOUBLE_EQ(probability_of_improvement(-1.0, 0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(probability_of_improvement(1.0, 0.0, 0.0), 0.0);
}

// ---- dispatch ------------------------------------------------------------------------

TEST(ScoreAcquisition, FeasibilityScalesEi) {
  AcquisitionInputs in;
  in.mean = -0.5;
  in.variance = 1.0;
  in.incumbent = 0.0;
  in.prob_feasible = 1.0;
  const double full = score_acquisition(AcquisitionKind::kEi, in);
  in.prob_feasible = 0.25;
  const double quarter = score_acquisition(AcquisitionKind::kEi, in);
  EXPECT_NEAR(quarter, full * 0.25, 1e-12);
}

TEST(ScoreAcquisition, FeasibilityPenalizesUcbAdditively) {
  AcquisitionInputs in;
  in.mean = -3.0;  // negative score region
  in.variance = 0.5;
  in.incumbent = 0.0;
  in.prob_feasible = 1.0;
  const double feasible = score_acquisition(AcquisitionKind::kUcb, in);
  in.prob_feasible = 0.1;
  const double risky = score_acquisition(AcquisitionKind::kUcb, in);
  EXPECT_GT(feasible, risky);
}

TEST(ScoreAcquisition, EiPerCostPrefersCheaperCandidate) {
  AcquisitionInputs cheap;
  cheap.mean = -0.5;
  cheap.variance = 1.0;
  cheap.incumbent = 0.0;
  cheap.log_cost = std::log(100.0);
  AcquisitionInputs expensive = cheap;
  expensive.log_cost = std::log(10000.0);
  EXPECT_GT(score_acquisition(AcquisitionKind::kEiPerCost, cheap),
            score_acquisition(AcquisitionKind::kEiPerCost, expensive));
}

TEST(ScoreAcquisition, LogEiOrdersLikeEi) {
  AcquisitionInputs a, b;
  a.mean = -0.5;
  a.variance = 1.0;
  a.incumbent = 0.0;
  b = a;
  b.mean = 0.5;
  EXPECT_GT(score_acquisition(AcquisitionKind::kEi, a),
            score_acquisition(AcquisitionKind::kEi, b));
  EXPECT_GT(score_acquisition(AcquisitionKind::kLogEi, a),
            score_acquisition(AcquisitionKind::kLogEi, b));
}

TEST(AcquisitionKindStrings, RoundTrip) {
  for (const auto kind :
       {AcquisitionKind::kEi, AcquisitionKind::kLogEi, AcquisitionKind::kUcb,
        AcquisitionKind::kPi, AcquisitionKind::kEiPerCost}) {
    EXPECT_EQ(acquisition_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(acquisition_from_string("thompson"), std::invalid_argument);
}

}  // namespace
}  // namespace autodml::core

#include <gtest/gtest.h>

#include <memory>

#include "config/config_space.h"
#include "workloads/workload.h"

namespace autodml::conf {
namespace {

ConfigSpace small_space() {
  ConfigSpace space;
  space.add(ParamSpec::categorical("mode", {"a", "b"}));
  space.add(ParamSpec::integer("level", 1, 10).only_when("mode", {"a"}));
  space.add(ParamSpec::int_choice("size", {8, 16, 32}));
  space.add(ParamSpec::continuous("rate", 0.01, 1.0, /*log_scale=*/true));
  space.add(ParamSpec::boolean("turbo"));
  return space;
}

// ---- ParamSpec ---------------------------------------------------------------

TEST(ParamSpec, IntegerValidation) {
  const auto p = ParamSpec::integer("x", 1, 5);
  EXPECT_TRUE(p.is_valid(ParamValue{std::int64_t{3}}));
  EXPECT_FALSE(p.is_valid(ParamValue{std::int64_t{6}}));
  EXPECT_FALSE(p.is_valid(ParamValue{2.0}));  // wrong alternative
  EXPECT_EQ(p.cardinality(), 5u);
  EXPECT_THROW(ParamSpec::integer("x", 5, 1), std::invalid_argument);
  EXPECT_THROW(ParamSpec::integer("x", 0, 5, /*log_scale=*/true),
               std::invalid_argument);
}

TEST(ParamSpec, IntChoiceValidation) {
  const auto p = ParamSpec::int_choice("b", {8, 16, 32});
  EXPECT_TRUE(p.is_valid(ParamValue{std::int64_t{16}}));
  EXPECT_FALSE(p.is_valid(ParamValue{std::int64_t{17}}));
  EXPECT_THROW(ParamSpec::int_choice("b", {}), std::invalid_argument);
  EXPECT_THROW(ParamSpec::int_choice("b", {16, 8}), std::invalid_argument);
}

TEST(ParamSpec, ContinuousValidation) {
  const auto p = ParamSpec::continuous("r", 0.1, 2.0);
  EXPECT_TRUE(p.is_valid(ParamValue{1.0}));
  EXPECT_FALSE(p.is_valid(ParamValue{2.5}));
  EXPECT_EQ(p.cardinality(), 0u);
  EXPECT_THROW(ParamSpec::continuous("r", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParamSpec::continuous("r", 0.0, 1.0, true),
               std::invalid_argument);
}

TEST(ParamSpec, CategoricalValidation) {
  const auto p = ParamSpec::categorical("m", {"x", "y", "z"});
  EXPECT_TRUE(p.is_valid(ParamValue{std::string("y")}));
  EXPECT_FALSE(p.is_valid(ParamValue{std::string("w")}));
  EXPECT_EQ(p.encoded_width(), 3u);
  EXPECT_THROW(ParamSpec::categorical("m", {"only"}), std::invalid_argument);
}

TEST(ParamSpec, DefaultValues) {
  EXPECT_EQ(std::get<std::int64_t>(ParamSpec::integer("x", 2, 5).default_value()), 2);
  EXPECT_EQ(std::get<std::string>(
                ParamSpec::categorical("m", {"p", "q"}).default_value()),
            "p");
  EXPECT_FALSE(std::get<bool>(ParamSpec::boolean("t").default_value()));
}

TEST(ParamValue, ToString) {
  EXPECT_EQ(to_string(ParamValue{std::int64_t{5}}), "5");
  EXPECT_EQ(to_string(ParamValue{std::string("abc")}), "abc");
  EXPECT_EQ(to_string(ParamValue{true}), "true");
}

// ---- ConfigSpace construction ---------------------------------------------------

TEST(ConfigSpace, RejectsDuplicates) {
  ConfigSpace space;
  space.add(ParamSpec::boolean("x"));
  EXPECT_THROW(space.add(ParamSpec::boolean("x")), std::invalid_argument);
}

TEST(ConfigSpace, RejectsUnknownParent) {
  ConfigSpace space;
  EXPECT_THROW(
      space.add(ParamSpec::integer("y", 0, 1).only_when("nope", {"a"})),
      std::invalid_argument);
}

TEST(ConfigSpace, RejectsNonCategoricalParent) {
  ConfigSpace space;
  space.add(ParamSpec::integer("x", 0, 3));
  EXPECT_THROW(space.add(ParamSpec::integer("y", 0, 1).only_when("x", {"1"})),
               std::invalid_argument);
}

TEST(ConfigSpace, RejectsUnknownParentCategory) {
  ConfigSpace space;
  space.add(ParamSpec::categorical("m", {"a", "b"}));
  EXPECT_THROW(space.add(ParamSpec::integer("y", 0, 1).only_when("m", {"c"})),
               std::invalid_argument);
}

TEST(ConfigSpace, EncodedDimension) {
  const ConfigSpace space = small_space();
  // mode(2) + level(1) + size(1) + rate(1) + turbo(1) = 6
  EXPECT_EQ(space.encoded_dimension(), 6u);
  EXPECT_EQ(space.num_params(), 5u);
}

// ---- activation / canonicalization -----------------------------------------------

TEST(ConfigSpace, ConditionalActivation) {
  const ConfigSpace space = small_space();
  Config c = space.default_config();
  c.set_cat("mode", "a");
  EXPECT_TRUE(space.is_active(c, space.index_of("level")));
  c.set_cat("mode", "b");
  EXPECT_FALSE(space.is_active(c, space.index_of("level")));
}

TEST(ConfigSpace, CanonicalizeResetsInactive) {
  const ConfigSpace space = small_space();
  Config c = space.default_config();
  c.set_cat("mode", "a");
  c.set_int("level", 7);
  c.set_cat("mode", "b");  // level becomes inactive but still holds 7
  space.canonicalize(c);
  EXPECT_EQ(c.get_int("level"), 1);  // reset to default
}

TEST(ConfigSpace, NestedConditionals) {
  ConfigSpace space;
  space.add(ParamSpec::categorical("a", {"on", "off"}));
  space.add(ParamSpec::categorical("b", {"x", "y"}).only_when("a", {"on"}));
  space.add(ParamSpec::integer("c", 0, 9).only_when("b", {"x"}));
  Config cfg = space.default_config();
  cfg.set_cat("a", "on");
  cfg.set_cat("b", "x");
  EXPECT_TRUE(space.is_active(cfg, space.index_of("c")));
  cfg.set_cat("a", "off");
  // b inactive -> c inactive transitively even though b still says "x".
  EXPECT_FALSE(space.is_active(cfg, space.index_of("c")));
}

TEST(ConfigSpace, BooleanParent) {
  ConfigSpace space;
  space.add(ParamSpec::boolean("flag"));
  space.add(ParamSpec::integer("x", 0, 3).only_when("flag", {"true"}));
  Config c = space.default_config();
  EXPECT_FALSE(space.is_active(c, space.index_of("x")));
  c.set_bool("flag", true);
  EXPECT_TRUE(space.is_active(c, space.index_of("x")));
}

// ---- validate ----------------------------------------------------------------------

TEST(ConfigSpace, ValidateCatchesBadValue) {
  const ConfigSpace space = small_space();
  Config c = space.default_config();
  space.validate(c);  // default must pass
  c.set_int("size", 12);  // not in menu
  EXPECT_THROW(space.validate(c), std::invalid_argument);
}

TEST(ConfigSpace, ValidateAcceptsStructurallyIdenticalForeignConfig) {
  // Configs travel across evaluator instances (warm starts, ground-truth
  // re-evaluation); an identically-shaped space must accept them.
  const ConfigSpace space = small_space();
  const ConfigSpace other = small_space();
  const Config c = other.default_config();
  EXPECT_NO_THROW(space.validate(c));
}

TEST(ConfigSpace, ValidateRejectsWrongWidthConfig) {
  const ConfigSpace space = small_space();
  ConfigSpace narrow;
  narrow.add(ParamSpec::boolean("only"));
  const Config c = narrow.default_config();
  EXPECT_THROW(space.validate(c), std::invalid_argument);
}

// ---- lifetime contract ----------------------------------------------------

TEST(Config, NameBasedAccessThrowsAfterSpaceDestruction) {
  auto space = std::make_unique<ConfigSpace>(small_space());
  Config c = space->default_config();
  EXPECT_EQ(c.get_cat("mode"), "a");
  space.reset();
  // Name-based access needs the space; it must fail loudly, not dangle.
  EXPECT_THROW(c.get_cat("mode"), std::logic_error);
  EXPECT_THROW(c.set_int("size", 16), std::logic_error);
  // Index-based access carries no space dependency and keeps working
  // (warm-start trials rely on this; see the Config lifetime contract).
  EXPECT_EQ(c.size(), 5u);
  EXPECT_NO_THROW(c.value_at(0));
  // to_string degrades to raw values instead of touching the dead space.
  EXPECT_NE(c.to_string().find("<stale space>"), std::string::npos);
}

TEST(Config, MovedSpaceKeepsItsConfigsAlive) {
  ConfigSpace original = small_space();
  Config c = original.default_config();
  const ConfigSpace moved = std::move(original);
  // The liveness token moves with the space's storage; the config stays
  // usable for value access against the moved-to space via validate().
  EXPECT_NO_THROW(moved.validate(c));
}

// ---- encode / decode ------------------------------------------------------------------

TEST(ConfigSpace, EncodeRangeIsUnitCube) {
  const ConfigSpace space = small_space();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Config c = space.sample_uniform(rng);
    for (const double u : space.encode(c)) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(ConfigSpace, DecodeEncodeRoundTrip) {
  const ConfigSpace space = small_space();
  util::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Config c = space.sample_uniform(rng);
    space.canonicalize(c);
    const Config back = space.decode(space.encode(c));
    // Continuous params may round within float tolerance; compare encoded.
    const auto e1 = space.encode(c);
    const auto e2 = space.encode(back);
    for (std::size_t d = 0; d < e1.size(); ++d) {
      EXPECT_NEAR(e1[d], e2[d], 1e-9) << "dim " << d << " config " << c.to_string();
    }
  }
}

TEST(ConfigSpace, DecodeClampsOutOfRange) {
  const ConfigSpace space = small_space();
  math::Vec x(space.encoded_dimension(), 2.0);  // above 1
  const Config c = space.decode(x);
  space.validate(c);
  math::Vec lo(space.encoded_dimension(), -3.0);
  space.validate(space.decode(lo));
}

TEST(ConfigSpace, DecodeWrongDimensionThrows) {
  const ConfigSpace space = small_space();
  EXPECT_THROW(space.decode(math::Vec(2, 0.5)), std::invalid_argument);
}

TEST(ConfigSpace, LogScaleEncodingIsLogarithmic) {
  ConfigSpace space;
  space.add(ParamSpec::continuous("lr", 0.001, 1.0, /*log_scale=*/true));
  Config c = space.default_config();
  c.set_double("lr", 0.0316227766);  // ~sqrt(0.001*1.0): log-midpoint
  const auto x = space.encode(c);
  EXPECT_NEAR(x[0], 0.5, 1e-3);
}

TEST(ConfigSpace, EncodeCanonicalizesInactive) {
  const ConfigSpace space = small_space();
  Config c1 = space.default_config();
  c1.set_cat("mode", "b");
  Config c2 = c1;
  c2.set_int("level", 9);  // inactive: must not affect encoding
  EXPECT_EQ(space.encode(c1), space.encode(c2));
}

// ---- sampling / neighbors ------------------------------------------------------------

TEST(ConfigSpace, SampleUniformAlwaysValid) {
  const ConfigSpace space = small_space();
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const Config c = space.sample_uniform(rng);
    space.validate(c);
  }
}

TEST(ConfigSpace, NeighborChangesExactlyOneActiveParamOrCascades) {
  const ConfigSpace space = small_space();
  util::Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    Config c = space.sample_uniform(rng);
    space.canonicalize(c);
    const Config n = space.neighbor(c, rng);
    space.validate(n);
    EXPECT_FALSE(n == c) << c.to_string();
  }
}

TEST(ConfigSpace, NeighborRebindsToCalledSpace) {
  // Regression: a neighbor generated from a config bound to another
  // (possibly destroyed) space instance must belong to the live space —
  // warm-start trials hit exactly this.
  const ConfigSpace live = small_space();
  Config foreign = [&] {
    const auto other = std::make_unique<ConfigSpace>(small_space());
    return other->default_config();
  }();  // `other` destroyed; foreign's space pointer dangles
  util::Rng rng(21);
  const Config n = live.neighbor(foreign, rng);
  EXPECT_EQ(n.space(), &live);
  live.validate(n);
  n.get_cat("mode");  // getters resolve through the live space
}

TEST(ConfigSpace, NeighborKeepsValuesInRange) {
  const ConfigSpace space = small_space();
  util::Rng rng(7);
  Config c = space.default_config();
  for (int i = 0; i < 500; ++i) {
    c = space.neighbor(c, rng);
    space.validate(c);
  }
}

// ---- grid / enumerate -----------------------------------------------------------------

TEST(ConfigSpace, GridCoversDiscreteAxes) {
  ConfigSpace space;
  space.add(ParamSpec::int_choice("a", {1, 2}));
  space.add(ParamSpec::boolean("b"));
  const auto grid = space.grid(5);
  EXPECT_EQ(grid.size(), 4u);
}

TEST(ConfigSpace, GridThrowsWhenTooLarge) {
  ConfigSpace space;
  space.add(ParamSpec::integer("a", 0, 1000));
  space.add(ParamSpec::integer("b", 0, 1000));
  EXPECT_THROW(space.grid(1001, 1000), std::invalid_argument);
}

TEST(ConfigSpace, DiscreteSizeAndEnumerate) {
  ConfigSpace space;
  space.add(ParamSpec::categorical("m", {"a", "b"}));
  space.add(ParamSpec::integer("x", 0, 2).only_when("m", {"a"}));
  const auto size = space.discrete_size();
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 6u);
  const auto all = space.enumerate();
  // Canonicalization collapses m=b rows into one: 3 (m=a) + 1 (m=b) = 4
  // distinct canonical configs, but enumerate may return duplicates only
  // adjacent-deduped; all must be valid.
  for (const auto& c : all) space.validate(c);
  EXPECT_GE(all.size(), 4u);
  EXPECT_LE(all.size(), 6u);
}

TEST(ConfigSpace, DiscreteSizeNulloptWithContinuous) {
  const ConfigSpace space = small_space();
  EXPECT_FALSE(space.discrete_size().has_value());
  EXPECT_THROW(space.enumerate(), std::invalid_argument);
}

// ---- round trips over the real workload spaces ----------------------------------------

class WorkloadSpaceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSpaceTest, EncodeDecodeRoundTripHolds) {
  const auto& workload = wl::workload_by_name(GetParam());
  const ConfigSpace space = wl::build_config_space(workload);
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    Config c = space.sample_uniform(rng);
    space.canonicalize(c);
    const auto e1 = space.encode(c);
    const auto e2 = space.encode(space.decode(e1));
    for (std::size_t d = 0; d < e1.size(); ++d) {
      ASSERT_NEAR(e1[d], e2[d], 1e-9) << c.to_string();
    }
  }
}

TEST_P(WorkloadSpaceTest, NeighborsStayValid) {
  const auto& workload = wl::workload_by_name(GetParam());
  const ConfigSpace space = wl::build_config_space(workload);
  util::Rng rng(13);
  Config c = space.default_config();
  for (int i = 0; i < 300; ++i) {
    c = space.neighbor(c, rng);
    space.validate(c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSpaceTest,
    ::testing::Values("logreg-ads", "mf-recsys", "mlp-tabular", "cnn-cifar",
                      "resnet-imagenet", "word2vec-text"));

}  // namespace
}  // namespace autodml::conf

#include <gtest/gtest.h>

#include <cmath>

#include "gp/gp.h"
#include "gp/kernel.h"
#include "math/cholesky.h"
#include "math/optimize.h"
#include "util/rng.h"

namespace autodml::gp {
namespace {

math::Matrix random_inputs(std::size_t n, std::size_t dim, util::Rng& rng) {
  math::Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.uniform();
  return x;
}

// ---- kernels -------------------------------------------------------------------

template <typename K>
class KernelTest : public ::testing::Test {};

using KernelTypes = ::testing::Types<SquaredExponentialArd, Matern52Ard>;
TYPED_TEST_SUITE(KernelTest, KernelTypes);

TYPED_TEST(KernelTest, SelfCovarianceIsSignalVariance) {
  TypeParam k(3);
  const math::Vec x{0.2, 0.5, 0.9};
  EXPECT_NEAR(k.eval(x, x), k.signal_variance(), 1e-12);
}

TYPED_TEST(KernelTest, SymmetricAndDecaying) {
  TypeParam k(2);
  const math::Vec a{0.1, 0.2}, b{0.4, 0.9}, c{0.9, 0.95};
  EXPECT_DOUBLE_EQ(k.eval(a, b), k.eval(b, a));
  // Farther point has lower covariance with a.
  EXPECT_GT(k.eval(a, b), k.eval(a, c));
  EXPECT_GT(k.eval(a, a), k.eval(a, b));
}

TYPED_TEST(KernelTest, GramMatrixIsPsd) {
  util::Rng rng(3);
  TypeParam k(4);
  const math::Matrix x = random_inputs(12, 4, rng);
  math::Matrix gram(12, 12);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j) gram(i, j) = k.eval(x.row(i), x.row(j));
  EXPECT_NO_THROW(math::cholesky_with_jitter(gram));
}

TYPED_TEST(KernelTest, HyperparameterRoundTrip) {
  TypeParam k(3);
  math::Vec theta = k.hyperparams();
  theta[0] = std::log(0.7);
  theta[3] = std::log(2.5);
  k.set_hyperparams(theta);
  const math::Vec back = k.hyperparams();
  for (std::size_t i = 0; i < theta.size(); ++i)
    EXPECT_NEAR(back[i], theta[i], 1e-12);
}

TYPED_TEST(KernelTest, GradientMatchesNumerical) {
  util::Rng rng(5);
  TypeParam k(3);
  // Non-trivial hyperparameters.
  math::Vec theta = k.hyperparams();
  theta[0] = std::log(0.3);
  theta[1] = std::log(1.2);
  theta[2] = std::log(0.8);
  theta[3] = std::log(2.0);
  k.set_hyperparams(theta);
  for (int trial = 0; trial < 20; ++trial) {
    math::Vec a(3), b(3);
    for (int d = 0; d < 3; ++d) {
      a[d] = rng.uniform();
      b[d] = rng.uniform();
    }
    const math::Vec analytic = k.grad_hyper(a, b);
    const auto f = [&](std::span<const double> t) {
      auto probe = k.clone();
      probe->set_hyperparams(t);
      return probe->eval(a, b);
    };
    const math::Vec numeric = math::numerical_gradient(f, k.hyperparams());
    for (std::size_t i = 0; i < analytic.size(); ++i) {
      EXPECT_NEAR(analytic[i], numeric[i], 1e-5)
          << "hyper " << i << " trial " << trial;
    }
  }
}

TYPED_TEST(KernelTest, CloneIsIndependent) {
  TypeParam k(2);
  auto c = k.clone();
  math::Vec theta = k.hyperparams();
  theta[0] = std::log(5.0);
  k.set_hyperparams(theta);
  EXPECT_NE(c->hyperparams()[0], k.hyperparams()[0]);
}

TEST(Kernel, RejectsZeroDim) {
  EXPECT_THROW(Matern52Ard k(0), std::invalid_argument);
}

TEST(Kernel, RejectsDimensionMismatch) {
  Matern52Ard k(2);
  EXPECT_THROW(k.eval(math::Vec{0.5}, math::Vec{0.5, 0.6}),
               std::invalid_argument);
}

TEST(Kernel, InverseLengthscales) {
  SquaredExponentialArd k(2);
  math::Vec theta{std::log(0.5), std::log(2.0), std::log(1.0)};
  k.set_hyperparams(theta);
  const math::Vec inv = k.inverse_lengthscales();
  EXPECT_NEAR(inv[0], 2.0, 1e-12);
  EXPECT_NEAR(inv[1], 0.5, 1e-12);
}

// ---- GP regression -----------------------------------------------------------------

TEST(GaussianProcess, InterpolatesNoiselessData) {
  util::Rng rng(7);
  const std::size_t n = 15;
  math::Matrix x(n, 1);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / static_cast<double>(n - 1);
    y[i] = std::sin(4.0 * x(i, 0));
  }
  GpOptions options;
  options.noise_hi = 1e-3;  // force near-interpolation
  options.initial_noise = 1e-5;
  GaussianProcess gp(std::make_unique<Matern52Ard>(1), options);
  gp.fit(x, y, rng);
  for (std::size_t i = 0; i < n; ++i) {
    const GpPrediction p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 0.05) << "at " << x(i, 0);
  }
}

TEST(GaussianProcess, PredictsHeldOutSmoothFunction) {
  util::Rng rng(8);
  const std::size_t n = 25;
  math::Matrix x(n, 1);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = x(i, 0) * x(i, 0) + 0.5 * x(i, 0);
  }
  GaussianProcess gp(std::make_unique<Matern52Ard>(1));
  gp.fit(x, y, rng);
  for (double t : {0.15, 0.42, 0.77}) {
    const GpPrediction p = gp.predict(math::Vec{t});
    EXPECT_NEAR(p.mean, t * t + 0.5 * t, 0.05);
  }
}

TEST(GaussianProcess, VarianceNonNegativeAndShrinksNearData) {
  util::Rng rng(9);
  math::Matrix x(5, 1);
  math::Vec y{0.0, 1.0, 0.5, -0.5, 0.2};
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 0.1 + 0.2 * static_cast<double>(i);
  GaussianProcess gp(std::make_unique<SquaredExponentialArd>(1));
  gp.fit(x, y, rng);
  const GpPrediction at_data = gp.predict(math::Vec{0.3});
  const GpPrediction far = gp.predict(math::Vec{0.99});
  EXPECT_GE(at_data.variance, 0.0);
  EXPECT_GE(far.variance, 0.0);
  EXPECT_GT(far.variance, at_data.variance);
}

TEST(GaussianProcess, StandardizationMakesFitShiftInvariant) {
  util::Rng rng1(10), rng2(10);
  const std::size_t n = 12;
  math::Matrix x(n, 1);
  math::Vec y(n), y_shifted(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / 11.0;
    y[i] = std::cos(3.0 * x(i, 0));
    y_shifted[i] = 1000.0 + 50.0 * y[i];
  }
  GaussianProcess gp1(std::make_unique<Matern52Ard>(1));
  GaussianProcess gp2(std::make_unique<Matern52Ard>(1));
  gp1.fit(x, y, rng1);
  gp2.fit(x, y_shifted, rng2);
  const double m1 = gp1.predict(math::Vec{0.5}).mean;
  const double m2 = gp2.predict(math::Vec{0.5}).mean;
  EXPECT_NEAR(m2, 1000.0 + 50.0 * m1, 1.0);
}

TEST(GaussianProcess, HyperoptImprovesMarginalLikelihood) {
  util::Rng rng(11);
  const std::size_t n = 20;
  math::Matrix x(n, 2);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = std::sin(5.0 * x(i, 0));  // second dim irrelevant
  }
  GpOptions no_opt;
  no_opt.optimize_hyperparams = false;
  GaussianProcess fixed(std::make_unique<Matern52Ard>(2), no_opt);
  fixed.refit(x, y);
  GaussianProcess tuned(std::make_unique<Matern52Ard>(2));
  tuned.fit(x, y, rng);
  EXPECT_GT(tuned.log_marginal_likelihood(),
            fixed.log_marginal_likelihood() - 1e-9);
}

TEST(GaussianProcess, ArdDownweightsIrrelevantDimension) {
  util::Rng rng(12);
  const std::size_t n = 40;
  math::Matrix x(n, 2);
  math::Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = std::sin(6.0 * x(i, 0)) + 0.01 * rng.normal();
  }
  GaussianProcess gp(std::make_unique<Matern52Ard>(2));
  gp.fit(x, y, rng);
  const auto* ard = dynamic_cast<const ArdKernelBase*>(&gp.kernel());
  ASSERT_NE(ard, nullptr);
  const math::Vec inv = ard->inverse_lengthscales();
  EXPECT_GT(inv[0], 2.0 * inv[1]);  // active dim much more relevant
}

TEST(GaussianProcess, NoiseRecovery) {
  util::Rng rng(13);
  const std::size_t n = 60;
  math::Matrix x(n, 1);
  math::Vec y(n);
  const double true_noise_sd = 0.2;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(3.0 * x(i, 0)) + true_noise_sd * rng.normal();
  }
  GaussianProcess gp(std::make_unique<Matern52Ard>(1));
  gp.fit(x, y, rng);
  const double fitted_sd = std::sqrt(gp.noise_variance());
  EXPECT_GT(fitted_sd, true_noise_sd / 3.0);
  EXPECT_LT(fitted_sd, true_noise_sd * 3.0);
}

TEST(GaussianProcess, ErrorsOnMisuse) {
  GaussianProcess gp(std::make_unique<Matern52Ard>(2));
  EXPECT_THROW(gp.predict(math::Vec{0.5, 0.5}), std::logic_error);
  util::Rng rng(1);
  math::Matrix x(2, 1);  // wrong dim
  math::Vec y{1.0, 2.0};
  EXPECT_THROW(gp.fit(x, y, rng), std::invalid_argument);
  math::Matrix x2(3, 2);
  EXPECT_THROW(gp.fit(x2, y, rng), std::invalid_argument);  // size mismatch
  EXPECT_THROW(GaussianProcess(nullptr), std::invalid_argument);
}

TEST(GaussianProcess, ConstantTargetsHandled) {
  util::Rng rng(14);
  math::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 0.2 * static_cast<double>(i);
  const math::Vec y(5, 3.0);
  GaussianProcess gp(std::make_unique<Matern52Ard>(1));
  gp.fit(x, y, rng);
  EXPECT_NEAR(gp.predict(math::Vec{0.5}).mean, 3.0, 0.2);
}

TEST(GaussianProcess, CopyIsDeep) {
  util::Rng rng(15);
  math::Matrix x(6, 1);
  math::Vec y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = static_cast<double>(i) / 5.0;
    y[i] = static_cast<double>(i);
  }
  GaussianProcess gp(std::make_unique<Matern52Ard>(1));
  gp.fit(x, y, rng);
  const GaussianProcess copy(gp);
  EXPECT_NEAR(copy.predict(math::Vec{0.5}).mean,
              gp.predict(math::Vec{0.5}).mean, 1e-12);
}

// ---- analytic LML gradient vs numeric (through the public fit path) --------------

TEST(GaussianProcess, RefitKeepsHyperparameters) {
  util::Rng rng(16);
  math::Matrix x(8, 1);
  math::Vec y(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x(i, 0) = static_cast<double>(i) / 7.0;
    y[i] = std::sin(2.0 * x(i, 0));
  }
  GaussianProcess gp(std::make_unique<Matern52Ard>(1));
  gp.fit(x, y, rng);
  const double lml1 = gp.log_marginal_likelihood();
  gp.refit(x, y);  // same data, no hyperopt
  EXPECT_NEAR(gp.log_marginal_likelihood(), lml1, 1e-9);
}

}  // namespace
}  // namespace autodml::gp

// The random-Fourier-feature backend and the surrogate layer around it:
// kernel approximation quality, seed-determinism, the bitwise
// append-equals-refit contract, backend auto-switching with its metrics,
// refit scheduling counters, and journal resume across a backend switch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/bo_tuner.h"
#include "core/surrogate.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "gp/rff.h"
#include "math/matrix.h"
#include "obs/metrics.h"
#include "synthetic_objective.h"
#include "util/rng.h"

namespace autodml {
namespace {

using core::BoOptions;
using core::BoTuner;
using core::SurrogateBackend;
using core::SurrogateModel;
using core::SurrogateOptions;
using core::Trial;
using core::TuningResult;
using testing::SyntheticObjective;

constexpr std::size_t kDim = 4;

// Smooth deterministic training set: y = sum of per-dimension sinusoids.
void make_data(std::size_t n, math::Matrix& x, std::vector<double>& y,
               std::uint64_t seed = 5) {
  util::Rng rng(seed);
  x = math::Matrix(n, kDim);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) {
      x(i, d) = rng.uniform(0.0, 1.0);
      y[i] += std::sin(3.0 * x(i, d) + static_cast<double>(d));
    }
  }
}

gp::RffOptions rff_options(int features) {
  gp::RffOptions options;
  options.num_features = features;
  options.gp.optimize_hyperparams = false;  // hold kernel defaults fixed
  return options;
}

TEST(Rff, FeatureDotProductsApproximateTheKernel) {
  math::Matrix x;
  std::vector<double> y;
  make_data(16, x, y);
  const gp::Matern52Ard reference(kDim);

  const auto max_kernel_error = [&](int m) {
    gp::RffRegressor model(std::make_unique<gp::Matern52Ard>(kDim),
                           rff_options(m), /*feature_seed=*/17);
    model.refit(x, y);
    double worst = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const math::Vec phi_i = model.features(x.row(i));
      for (std::size_t j = 0; j <= i; ++j) {
        const math::Vec phi_j = model.features(x.row(j));
        const double approx = math::dot(phi_i, phi_j);
        const double exact = reference.eval(x.row(i), x.row(j));
        worst = std::max(worst, std::abs(approx - exact));
      }
    }
    return worst;
  };

  // Monte-Carlo O(1/sqrt(m)) convergence: more features, better kernel.
  const double err_coarse = max_kernel_error(32);
  const double err_fine = max_kernel_error(2048);
  EXPECT_LT(err_fine, err_coarse);
  EXPECT_LT(err_fine, 0.08);
}

TEST(Rff, SameSeedGivesBitIdenticalModels) {
  math::Matrix x;
  std::vector<double> y;
  make_data(24, x, y);
  gp::RffRegressor a(std::make_unique<gp::Matern52Ard>(kDim),
                     rff_options(64), 99);
  gp::RffRegressor b(std::make_unique<gp::Matern52Ard>(kDim),
                     rff_options(64), 99);
  a.refit(x, y);
  b.refit(x, y);
  util::Rng probe_rng(3);
  for (int p = 0; p < 10; ++p) {
    math::Vec probe(kDim);
    for (auto& v : probe) v = probe_rng.uniform(0.0, 1.0);
    const gp::GpPrediction pa = a.predict(probe);
    const gp::GpPrediction pb = b.predict(probe);
    EXPECT_EQ(pa.mean, pb.mean);
    EXPECT_EQ(pa.variance, pb.variance);
  }
  EXPECT_EQ(a.log_marginal_likelihood(), b.log_marginal_likelihood());
}

TEST(Rff, DifferentSeedsDrawDifferentFeatures) {
  math::Matrix x;
  std::vector<double> y;
  make_data(24, x, y);
  gp::RffRegressor a(std::make_unique<gp::Matern52Ard>(kDim),
                     rff_options(64), 1);
  gp::RffRegressor b(std::make_unique<gp::Matern52Ard>(kDim),
                     rff_options(64), 2);
  a.refit(x, y);
  b.refit(x, y);
  EXPECT_NE(a.predict(x.row(0)).mean, b.predict(x.row(0)).mean);
}

TEST(Rff, AppendObservationMatchesRefitBitwise) {
  // The append path's feature-Gram update replays refit's summation order,
  // so growing a model one row at a time must land on exactly the model a
  // from-scratch refit on the full data produces — not merely close.
  math::Matrix full_x;
  std::vector<double> full_y;
  make_data(30, full_x, full_y);
  math::Matrix head_x(29, kDim);
  for (std::size_t i = 0; i < 29; ++i)
    for (std::size_t d = 0; d < kDim; ++d) head_x(i, d) = full_x(i, d);
  const std::vector<double> head_y(full_y.begin(), full_y.end() - 1);

  gp::RffRegressor grown(std::make_unique<gp::Matern52Ard>(kDim),
                         rff_options(64), 7);
  grown.refit(head_x, head_y);
  ASSERT_TRUE(grown.append_observation(full_x.row(29), full_y[29]));

  gp::RffRegressor direct(std::make_unique<gp::Matern52Ard>(kDim),
                          rff_options(64), 7);
  direct.refit(full_x, full_y);

  EXPECT_EQ(grown.num_points(), direct.num_points());
  util::Rng probe_rng(11);
  for (int p = 0; p < 10; ++p) {
    math::Vec probe(kDim);
    for (auto& v : probe) v = probe_rng.uniform(0.0, 1.0);
    const gp::GpPrediction pg = grown.predict(probe);
    const gp::GpPrediction pd = direct.predict(probe);
    EXPECT_EQ(pg.mean, pd.mean);
    EXPECT_EQ(pg.variance, pd.variance);
  }
  EXPECT_EQ(grown.log_marginal_likelihood(),
            direct.log_marginal_likelihood());
}

TEST(Rff, FitRecoversSmoothFunction) {
  math::Matrix x;
  std::vector<double> y;
  make_data(64, x, y);
  gp::RffOptions options;
  options.num_features = 256;
  gp::RffRegressor model(std::make_unique<gp::Matern52Ard>(kDim), options,
                         13);
  util::Rng rng(1);
  model.fit(x, y, rng);
  double sq_err = 0.0, sq_dev = 0.0, mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double err = model.predict(x.row(i)).mean - y[i];
    sq_err += err * err;
    sq_dev += (y[i] - mean) * (y[i] - mean);
  }
  // Training-set RMSE well under the target's own spread: the subset
  // hyperopt + feature solve actually fit the function.
  EXPECT_LT(std::sqrt(sq_err / static_cast<double>(x.rows())),
            0.5 * std::sqrt(sq_dev / static_cast<double>(x.rows())));
}

// ---- Surrogate-layer integration -----------------------------------------------

Trial make_trial(const SyntheticObjective& objective, util::Rng& rng) {
  Trial t;
  conf::Config c = objective.space().sample_uniform(rng);
  c.set_double("x", rng.uniform(0.0, 0.9));  // stay out of the crash region
  t.config = c;
  t.outcome.feasible = true;
  t.outcome.objective = objective.true_value(c);
  t.outcome.spent_seconds = t.outcome.objective;
  return t;
}

TEST(SurrogateRff, AutoBackendSwitchesAtThreshold) {
  obs::MetricsRegistry::instance().enable();
  obs::MetricsRegistry::instance().reset();
  SyntheticObjective objective;
  SurrogateOptions options;
  options.backend = SurrogateBackend::kAuto;
  options.rff_threshold = 8;
  options.rff_features = 64;
  SurrogateModel model(objective.space(), options, 21);
  util::Rng rng(22);
  std::vector<Trial> trials;
  for (int i = 0; i < 6; ++i) trials.push_back(make_trial(objective, rng));
  model.update(trials);
  EXPECT_STREQ(model.objective_backend(), "exact");
  while (trials.size() < 10) trials.push_back(make_trial(objective, rng));
  model.update(trials);
  EXPECT_STREQ(model.objective_backend(), "rff");
  EXPECT_GE(obs::MetricsRegistry::instance()
                .counter("surrogate.backend_switches")
                .value(),
            1);
  EXPECT_TRUE(model.ready());
  // Scores still flow through the new backend.
  const auto score = model.score(trials.front().config);
  EXPECT_TRUE(std::isfinite(score.mean));
  EXPECT_GT(score.variance, 0.0);
  obs::MetricsRegistry::instance().disable();
}

TEST(SurrogateRff, ExactBackendIgnoresThreshold) {
  SyntheticObjective objective;
  SurrogateOptions options;
  options.backend = SurrogateBackend::kExact;
  options.rff_threshold = 2;
  SurrogateModel model(objective.space(), options, 23);
  util::Rng rng(24);
  std::vector<Trial> trials;
  for (int i = 0; i < 8; ++i) trials.push_back(make_trial(objective, rng));
  model.update(trials);
  EXPECT_STREQ(model.objective_backend(), "exact");
}

TEST(SurrogateRff, RefitSchedulingCountsSkipsAndRounds) {
  obs::MetricsRegistry::instance().enable();
  obs::MetricsRegistry::instance().reset();
  SyntheticObjective objective;
  SurrogateOptions options;
  options.hyperopt_every = 4;
  options.refit_nlml_degradation = 0.0;  // isolate the schedule
  options.backend = SurrogateBackend::kExact;
  SurrogateModel model(objective.space(), options, 31);
  util::Rng rng(32);
  std::vector<Trial> trials;
  for (int i = 0; i < 4; ++i) trials.push_back(make_trial(objective, rng));
  model.update(trials);  // first fit: hyperopt, resets the counter
  for (int i = 0; i < 6; ++i) {
    trials.push_back(make_trial(objective, rng));
    model.update(trials);  // single-trial appends between scheduled rounds
  }
  auto& registry = obs::MetricsRegistry::instance();
  // 7 updates: #1 first fit, #5 scheduled (counter reaches 4), rest skip.
  EXPECT_EQ(registry.counter("surrogate.hyperopt_scheduled").value(), 2);
  EXPECT_EQ(registry.counter("surrogate.refit_skipped").value(), 5);
  EXPECT_EQ(registry.counter("surrogate.refit_evidence").value(), 0);
  obs::MetricsRegistry::instance().disable();
}

TEST(SurrogateRff, EvidenceTriggerForcesEarlyHyperopt) {
  obs::MetricsRegistry::instance().enable();
  obs::MetricsRegistry::instance().reset();
  SyntheticObjective objective;
  SurrogateOptions options;
  options.hyperopt_every = 1000;          // schedule would never fire again
  options.refit_nlml_degradation = 1e-9;  // hair trigger
  options.backend = SurrogateBackend::kExact;
  SurrogateModel model(objective.space(), options, 41);
  util::Rng rng(42);
  std::vector<Trial> trials;
  for (int i = 0; i < 5; ++i) trials.push_back(make_trial(objective, rng));
  model.update(trials);  // hyperopt on first fit; baseline recorded
  // A batch of new observations the stale hyperparameters must explain
  // strictly worse than the data they were tuned on.
  for (int i = 0; i < 10; ++i) trials.push_back(make_trial(objective, rng));
  model.update(trials);
  EXPECT_GE(obs::MetricsRegistry::instance()
                .counter("surrogate.refit_evidence")
                .value(),
            1);
  obs::MetricsRegistry::instance().disable();
}

// ---- Tuner-level determinism and resume ----------------------------------------

BoOptions tuner_options(std::uint64_t seed, int evals) {
  BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  return options;
}

TEST(SurrogateRff, BoTunerIsDeterministicOnTheRffBackend) {
  BoOptions options = tuner_options(51, 12);
  options.surrogate.backend = SurrogateBackend::kRff;
  options.surrogate.rff_features = 64;
  SyntheticObjective obj1, obj2;
  BoTuner t1(obj1, options);
  BoTuner t2(obj2, options);
  const TuningResult r1 = t1.tune();
  const TuningResult r2 = t2.tune();
  ASSERT_EQ(r1.trials.size(), r2.trials.size());
  for (std::size_t i = 0; i < r1.trials.size(); ++i) {
    EXPECT_TRUE(r1.trials[i].config == r2.trials[i].config) << i;
    EXPECT_DOUBLE_EQ(r1.trials[i].outcome.objective,
                     r2.trials[i].outcome.objective)
        << i;
  }
  EXPECT_TRUE(r1.best_config == r2.best_config);
}

TEST(SurrogateRff, JournalResumeReplaysAcrossABackendSwitch) {
  // A run whose surrogate switches exact -> RFF mid-session, interrupted
  // after the switch and resumed from the journal, must land on the same
  // trials as the uninterrupted run: replay rebuilds the surrogate through
  // the same backend transitions.
  const int full_budget = 12;
  const int crash_after = 9;
  const auto configure = [](BoOptions options) {
    options.surrogate.backend = SurrogateBackend::kAuto;
    options.surrogate.rff_threshold = 6;
    options.surrogate.rff_features = 64;
    return options;
  };

  SyntheticObjective reference;
  BoTuner full(reference, configure(tuner_options(61, full_budget)));
  const TuningResult want = full.tune();
  EXPECT_STREQ(full.surrogate().objective_backend(), "rff");

  const std::string journal =
      ::testing::TempDir() + "/autodml_rff_switch.journal";
  std::remove(journal.c_str());
  {
    SyntheticObjective objective;
    BoOptions options = configure(tuner_options(61, crash_after));
    options.journal_path = journal;
    BoTuner tuner(objective, options);
    tuner.tune();
  }
  SyntheticObjective resumed;
  BoOptions options = configure(tuner_options(61, full_budget));
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult got = tuner.tune();

  EXPECT_EQ(tuner.replayed_trials(), static_cast<std::size_t>(crash_after));
  ASSERT_EQ(got.trials.size(), want.trials.size());
  for (std::size_t i = 0; i < got.trials.size(); ++i) {
    EXPECT_TRUE(got.trials[i].config == want.trials[i].config) << i;
    EXPECT_DOUBLE_EQ(got.trials[i].outcome.objective,
                     want.trials[i].outcome.objective)
        << i;
  }
  EXPECT_TRUE(got.best_config == want.best_config);
  EXPECT_DOUBLE_EQ(got.best_objective, want.best_objective);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace autodml

#include <gtest/gtest.h>

#include <cmath>

#include "core/surrogate.h"
#include "synthetic_objective.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

Trial make_trial(const conf::Config& config, double objective, bool feasible,
                 bool aborted = false) {
  Trial t;
  t.config = config;
  t.outcome.feasible = feasible;
  t.outcome.aborted = aborted;
  t.outcome.objective = feasible && !aborted
                            ? objective
                            : std::numeric_limits<double>::infinity();
  t.outcome.spent_seconds = feasible ? objective : 1.0;
  return t;
}

std::vector<Trial> sample_trials(SyntheticObjective& objective, int n,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Trial> trials;
  for (int i = 0; i < n; ++i) {
    const conf::Config c = objective.space().sample_uniform(rng);
    const bool feasible = c.get_double("x") <= 0.92;
    trials.push_back(
        make_trial(c, feasible ? objective.true_value(c) : 0.0, feasible));
  }
  return trials;
}

TEST(Surrogate, NotReadyWithFewSuccesses) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  EXPECT_FALSE(model.ready());
  util::Rng rng(2);
  const conf::Config c = objective.space().sample_uniform(rng);
  std::vector<Trial> one{make_trial(c, 5.0, true)};
  model.update(one);
  EXPECT_FALSE(model.ready());
  EXPECT_THROW(model.score(c), std::logic_error);
}

TEST(Surrogate, ReadyAfterTwoSuccesses) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto trials = sample_trials(objective, 8, 3);
  model.update(trials);
  EXPECT_TRUE(model.ready());
}

TEST(Surrogate, PredictsLogObjectiveOrdering) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto trials = sample_trials(objective, 40, 4);
  model.update(trials);

  // Near-optimal config must score lower mean than a clearly bad one.
  conf::Config good = objective.space().default_config();
  good.set_double("x", 0.3);
  good.set_cat("mode", "a");
  good.set_int("k", 7);
  conf::Config bad = good;
  bad.set_double("x", 0.85);
  bad.set_cat("mode", "b");
  bad.set_int("k", 1);
  EXPECT_LT(model.score(good).mean, model.score(bad).mean);
}

TEST(Surrogate, IncumbentIsMinimumLogObjective) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto trials = sample_trials(objective, 25, 5);
  model.update(trials);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& t : trials) {
    if (t.succeeded()) best = std::min(best, std::log(t.outcome.objective));
  }
  EXPECT_DOUBLE_EQ(model.incumbent_log(), best);
}

TEST(Surrogate, FeasibilityLowNearFailures) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  // Deliberately include many crashes in the x > 0.92 region.
  std::vector<Trial> trials = sample_trials(objective, 30, 6);
  conf::Config crash = objective.space().default_config();
  for (double x : {0.93, 0.95, 0.97, 0.99, 0.94, 0.96}) {
    crash.set_double("x", x);
    trials.push_back(make_trial(crash, 0.0, false));
  }
  model.update(trials);

  conf::Config safe = objective.space().default_config();
  safe.set_double("x", 0.3);
  conf::Config risky = objective.space().default_config();
  risky.set_double("x", 0.97);
  EXPECT_GT(model.score(safe).prob_feasible,
            model.score(risky).prob_feasible);
  EXPECT_LT(model.score(risky).prob_feasible, 0.6);
}

TEST(Surrogate, AllFeasibleGivesFullConfidence) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> trials;
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", 0.2 + 0.05 * i);  // all safe
    trials.push_back(make_trial(c, objective.true_value(c), true));
  }
  model.update(trials);
  EXPECT_DOUBLE_EQ(model.score(trials[0].config).prob_feasible, 1.0);
}

TEST(Surrogate, AbortedRunsAreCensoredFromObjective) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> trials = sample_trials(objective, 10, 8);
  // A slate of aborted runs at an extreme-looking config must not crash or
  // skew the incumbent.
  conf::Config c = objective.space().default_config();
  c.set_double("x", 0.5);
  for (int i = 0; i < 5; ++i) trials.push_back(make_trial(c, 0.0, true, true));
  const double incumbent_before = [&] {
    SurrogateModel m(objective.space(), {}, 1);
    m.update(std::span<const Trial>(trials.data(), 10));
    return m.incumbent_log();
  }();
  model.update(trials);
  EXPECT_DOUBLE_EQ(model.incumbent_log(), incumbent_before);
}

TEST(Surrogate, CostModelTracksSpentSeconds) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto trials = sample_trials(objective, 30, 9);
  model.update(trials);
  // Cheap config (low objective = low spent) vs expensive one.
  conf::Config cheap = objective.space().default_config();
  cheap.set_double("x", 0.3);
  cheap.set_cat("mode", "a");
  cheap.set_int("k", 7);
  conf::Config costly = cheap;
  costly.set_cat("mode", "b");
  costly.set_int("k", 1);
  EXPECT_LT(model.score(cheap).log_cost, model.score(costly).log_cost);
}

TEST(Surrogate, ArdRelevanceHasEncodedDimension) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  EXPECT_TRUE(model.ard_relevance().empty());
  const auto trials = sample_trials(objective, 25, 10);
  model.update(trials);
  EXPECT_EQ(model.ard_relevance().size(),
            objective.space().encoded_dimension());
}

TEST(Surrogate, UpdateIsIdempotent) {
  SyntheticObjective objective;
  SurrogateOptions options;
  options.hyperopt_every = 1000;  // freeze hyperparameters after first fit
  SurrogateModel model(objective.space(), options, 1);
  const auto trials = sample_trials(objective, 15, 11);
  model.update(trials);
  const double mean1 = model.score(trials[0].config).mean;
  model.update(trials);
  const double mean2 = model.score(trials[0].config).mean;
  EXPECT_NEAR(mean1, mean2, 1e-9);
}

}  // namespace
}  // namespace autodml::core

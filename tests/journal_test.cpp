// Crash-safe tuning sessions: the append-only trial journal, resume
// semantics (a killed process continues to the same incumbent), torn-tail
// tolerance, and atomic session saves.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "synthetic_objective.h"
#include "util/fs.h"
#include "workloads/eval_supervisor.h"
#include "workloads/objective_adapter.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

BoOptions fast_options(std::uint64_t seed, int evals) {
  BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  return options;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(Journal, ResumeReachesTheSameIncumbentAsUninterruptedRun) {
  const int full_budget = 12;
  const int crash_after = 7;

  // Reference: an uninterrupted run.
  SyntheticObjective reference;
  BoTuner full(reference, fast_options(42, full_budget));
  const TuningResult want = full.tune();

  // "Crashed" run: journal the first trials, then abandon the process.
  const std::string journal = temp_path("autodml_resume.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(42, crash_after);
    options.journal_path = journal;
    BoTuner tuner(objective, options);
    tuner.tune();
  }

  // Resumed run: same seed and options, bigger budget. The journaled
  // trials replay without touching the objective.
  SyntheticObjective resumed;
  BoOptions options = fast_options(42, full_budget);
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult got = tuner.tune();

  EXPECT_EQ(tuner.replayed_trials(), static_cast<std::size_t>(crash_after));
  EXPECT_EQ(resumed.total_runs(), full_budget - crash_after);
  ASSERT_EQ(got.trials.size(), want.trials.size());
  EXPECT_DOUBLE_EQ(got.best_objective, want.best_objective);
  EXPECT_TRUE(got.best_config == want.best_config);
  for (std::size_t i = 0; i < got.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.trials[i].outcome.objective,
                     want.trials[i].outcome.objective)
        << i;
  }
  std::remove(journal.c_str());
}

TEST(Journal, ResumeReproducesSupervisedEvaluatorRuns) {
  // End-to-end with the real evaluator under faults: the resumed session
  // must reproduce the uninterrupted one bit-for-bit, which exercises
  // notify_replayed's seed-stream advancement (per-run and per-eval).
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  const int full_budget = 8;
  wl::EvaluatorOptions eval_options;
  eval_options.faults = sim::light_fault_spec();

  const auto run_tuner = [&](int evals, const std::string& journal_path) {
    wl::Evaluator evaluator(workload, /*seed=*/31, eval_options);
    wl::EvalSupervisor supervisor(evaluator, wl::RetryPolicy{}, 31);
    wl::SupervisedObjective objective(supervisor);
    BoOptions options = fast_options(31, evals);
    options.initial_design_size = 4;
    options.journal_path = journal_path;
    BoTuner tuner(objective, options);
    return tuner.tune();
  };

  const TuningResult want = run_tuner(full_budget, "");
  const std::string journal = temp_path("autodml_supervised.journal");
  run_tuner(5, journal);
  const TuningResult got = run_tuner(full_budget, journal);

  ASSERT_EQ(got.trials.size(), want.trials.size());
  EXPECT_TRUE(got.best_config == want.best_config);
  EXPECT_DOUBLE_EQ(got.best_objective, want.best_objective);
  for (std::size_t i = 0; i < got.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.trials[i].outcome.objective,
                     want.trials[i].outcome.objective)
        << i;
    EXPECT_EQ(got.trials[i].outcome.attempts, want.trials[i].outcome.attempts)
        << i;
    EXPECT_DOUBLE_EQ(got.trials[i].outcome.spent_seconds,
                     want.trials[i].outcome.spent_seconds)
        << i;
  }
  std::remove(journal.c_str());
}

TEST(Journal, ReplayedTrialsCountTowardTheBudget) {
  const std::string journal = temp_path("autodml_budget.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(7, 6);
    options.journal_path = journal;
    BoTuner(objective, options).tune();
  }
  SyntheticObjective resumed;
  BoOptions options = fast_options(7, 6);
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 6u);
  EXPECT_EQ(resumed.total_runs(), 0);  // everything came from the journal
  std::remove(journal.c_str());
}

TEST(Journal, TornTailIsSkippedAndRepaired) {
  const std::string journal = temp_path("autodml_torn.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(9, 5);
    options.journal_path = journal;
    BoTuner(objective, options).tune();
  }
  // Simulate a crash mid-append: a partial record with no closing brace.
  {
    std::ofstream file(journal, std::ios::app);
    file << "{\"config\": {\"x\": 0.5, \"mo";
  }
  const SyntheticObjective probe;
  const LoadedJournal before = load_journal(journal, probe.space());
  EXPECT_TRUE(before.torn_tail);
  EXPECT_EQ(before.trials.size(), 5u);

  // Construction repairs the file; the replayed budget is intact.
  SyntheticObjective resumed;
  BoOptions options = fast_options(9, 7);
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const LoadedJournal after = load_journal(journal, probe.space());
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.trials.size(), 5u);
  const TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 7u);
  EXPECT_EQ(resumed.total_runs(), 2);
  std::remove(journal.c_str());
}

TEST(Journal, CorruptInteriorRecordThrowsWithContext) {
  const std::string journal = temp_path("autodml_corrupt.journal");
  const SyntheticObjective probe;
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(9, 4);
    options.journal_path = journal;
    BoTuner(objective, options).tune();
  }
  // Clobber an interior line (not the tail): unrecoverable.
  std::string contents = slurp(journal);
  const std::size_t first_nl = contents.find('\n');
  const std::size_t second_nl = contents.find('\n', first_nl + 1);
  contents.replace(first_nl + 1, second_nl - first_nl - 1, "garbage!");
  util::write_file_atomic(journal, contents);
  try {
    load_journal(journal, probe.space());
    FAIL() << "corrupt interior record was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt journal record"),
              std::string::npos)
        << e.what();
  }
  std::remove(journal.c_str());
}

TEST(Journal, SeedMismatchIsRejectedWithClearMessage) {
  const std::string journal = temp_path("autodml_seed.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(1, 4);
    options.journal_path = journal;
    BoTuner(objective, options).tune();
  }
  SyntheticObjective other;
  BoOptions options = fast_options(2, 4);
  options.journal_path = journal;
  try {
    BoTuner tuner(other, options);
    FAIL() << "journal with mismatched seed was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
  std::remove(journal.c_str());
}

TEST(SessionIo, SaveTrialsLeavesNoTempResidue) {
  SyntheticObjective objective;
  util::Rng rng(4);
  std::vector<Trial> trials;
  for (int i = 0; i < 3; ++i) {
    Trial t;
    t.config = objective.space().sample_uniform(rng);
    t.outcome = objective.run(t.config, nullptr);
    trials.push_back(std::move(t));
  }
  const std::string dir = ::testing::TempDir() + "/autodml_atomic";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/session.json";
  save_trials(path, trials);
  EXPECT_EQ(load_trials(path, objective.space()).size(), trials.size());
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "session.json");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SessionIo, TruncatedSessionFileThrowsWithPathContext) {
  const std::string path = temp_path("autodml_truncated.json");
  {
    std::ofstream file(path);
    file << "{\"trials\": [";
  }
  const SyntheticObjective probe;
  try {
    load_trials(path, probe.space());
    FAIL() << "truncated session file was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("autodml_truncated.json"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autodml::core

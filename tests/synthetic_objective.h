// Shared test double: a cheap, deterministic black box for tuner tests.
//
// Space: x in [0,1] (continuous), mode in {a,b}, k in 1..10 (int).
// Objective (seconds): quadratic bowl in x + categorical offset + |k-7| term,
// optimum at (x=0.3, mode=a, k=7) with value kOptimum. Configurations with
// x > 0.92 "crash" (feasible=false), giving the feasibility model something
// to learn. Runs stream a simple saturating metric curve so early-
// termination controllers can be exercised.
#pragma once

#include <cmath>

#include "core/tuner_types.h"
#include "util/rng.h"

namespace autodml::testing {

class SyntheticObjective final : public core::ObjectiveFunction {
 public:
  static constexpr double kOptimum = 10.0;

  explicit SyntheticObjective(double noise_sigma = 0.0,
                              std::uint64_t noise_seed = 99)
      : noise_sigma_(noise_sigma), rng_(noise_seed) {
    space_.add(conf::ParamSpec::continuous("x", 0.0, 1.0));
    space_.add(conf::ParamSpec::categorical("mode", {"a", "b"}));
    space_.add(conf::ParamSpec::integer("k", 1, 10));
    // Deliberately irrelevant knob: sensitivity analysis must rank it last.
    space_.add(conf::ParamSpec::continuous("dud", 0.0, 1.0));
  }

  const conf::ConfigSpace& space() const override { return space_; }
  double target_metric() const override { return 0.9; }

  double true_value(const conf::Config& c) const {
    const double x = c.get_double("x");
    const double mode_term = c.get_cat("mode") == "a" ? 0.0 : 8.0;
    const double k_term =
        0.8 * std::abs(static_cast<double>(c.get_int("k")) - 7.0);
    return kOptimum + 40.0 * (x - 0.3) * (x - 0.3) + mode_term + k_term;
  }

  core::RunOutcome run(const conf::Config& config,
                       core::RunController* controller) override {
    ++total_runs_;
    core::RunOutcome out;
    out.usd_per_hour = 1.0;
    if (config.get_double("x") > 0.92) {
      out.feasible = false;
      out.failure = "crash region";
      out.spent_seconds = 1.0;
      total_spent_ += out.spent_seconds;
      return out;
    }
    double value = true_value(config);
    if (noise_sigma_ > 0.0) value *= rng_.lognormal_median(1.0, noise_sigma_);

    out.feasible = true;
    if (controller != nullptr) {
      controller->on_run_start(out.usd_per_hour);
      // Saturating curve hitting the target metric (0.9) exactly at
      // wall = value; 16 checkpoints.
      const int checkpoints = 16;
      for (int i = 1; i <= checkpoints; ++i) {
        core::RunCheckpoint cp;
        cp.wall_seconds = value * static_cast<double>(i) /
                          static_cast<double>(checkpoints + 1);
        cp.samples = cp.wall_seconds * 100.0;
        const double frac = cp.wall_seconds / value;
        // Power-law shape matching the library's learning curves.
        cp.metric = 0.95 - 0.85 * std::pow(1.0 + frac / 0.18, -1.4);
        if (controller->should_abort(cp)) {
          out.aborted = true;
          out.spent_seconds = cp.wall_seconds;
          total_spent_ += out.spent_seconds;
          return out;
        }
      }
    }
    out.objective = value;
    out.spent_seconds = value;
    total_spent_ += out.spent_seconds;
    return out;
  }

  int total_runs() const { return total_runs_; }
  double total_spent() const { return total_spent_; }

 private:
  conf::ConfigSpace space_;
  double noise_sigma_;
  util::Rng rng_;
  int total_runs_ = 0;
  double total_spent_ = 0.0;
};

}  // namespace autodml::testing

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.h"

namespace autodml::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(5.0, [&] {
    q.schedule_after(2.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(1.0, [&] { ran = true; });
  q.cancel(id);
  q.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun) {
  EventQueue q;
  const EventId id = q.schedule_at(1.0, [] {});
  q.run();
  q.cancel(id);  // already ran: no-op
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunLimitsEventCount) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(static_cast<double>(i), [&] { ++count; });
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  q.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  q.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(1.0, [&] { ran = true; });
  q.schedule_at(2.0, [] {});
  q.cancel(id);
  q.run_until(1.5);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.schedule_after(1.0, recurse);
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(q.now(), 49.0);
}

}  // namespace
}  // namespace autodml::sim

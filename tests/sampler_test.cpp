#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "config/sampler.h"

namespace autodml::conf {
namespace {

ConfigSpace cube_space(int dims) {
  ConfigSpace space;
  for (int d = 0; d < dims; ++d) {
    space.add(ParamSpec::continuous("x" + std::to_string(d), 0.0, 1.0));
  }
  return space;
}

TEST(UniformBatch, SizeAndValidity) {
  const ConfigSpace space = cube_space(3);
  util::Rng rng(1);
  const auto batch = sample_uniform_batch(space, 50, rng);
  EXPECT_EQ(batch.size(), 50u);
  for (const auto& c : batch) space.validate(c);
}

TEST(LatinHypercube, OneSamplePerStratum) {
  const ConfigSpace space = cube_space(2);
  util::Rng rng(2);
  const std::size_t n = 16;
  const auto batch = latin_hypercube(space, n, rng);
  ASSERT_EQ(batch.size(), n);
  // Project each dimension: every 1/n bin must contain exactly one point.
  for (std::size_t d = 0; d < 2; ++d) {
    std::set<std::size_t> bins;
    for (const auto& c : batch) {
      const auto x = space.encode(c);
      bins.insert(std::min<std::size_t>(
          n - 1, static_cast<std::size_t>(x[d] * static_cast<double>(n))));
    }
    EXPECT_EQ(bins.size(), n) << "dimension " << d;
  }
}

TEST(LatinHypercube, EmptyRequest) {
  const ConfigSpace space = cube_space(2);
  util::Rng rng(3);
  EXPECT_TRUE(latin_hypercube(space, 0, rng).empty());
}

TEST(LatinHypercube, BetterCoverageThanClumping) {
  // The min pairwise distance of an LHS design should rarely be pathological.
  const ConfigSpace space = cube_space(4);
  util::Rng rng(4);
  const auto batch = latin_hypercube(space, 20, rng);
  double min_dist = 1e9;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      const auto a = space.encode(batch[i]);
      const auto b = space.encode(batch[j]);
      double d2 = 0;
      for (std::size_t k = 0; k < a.size(); ++k)
        d2 += (a[k] - b[k]) * (a[k] - b[k]);
      min_dist = std::min(min_dist, std::sqrt(d2));
    }
  }
  EXPECT_GT(min_dist, 0.02);
}

TEST(Halton, PointsInUnitCube) {
  util::Rng rng(5);
  const auto points = halton_points(6, 100, rng);
  ASSERT_EQ(points.size(), 100u);
  for (const auto& p : points) {
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Halton, FirstDimensionIsEquidistributed) {
  util::Rng rng(6);
  const std::size_t n = 256;
  const auto points = halton_points(1, n, rng, /*skip=*/0);
  // Count per quartile; van der Corput base 2 is perfectly balanced.
  std::array<int, 4> quartiles{};
  for (const auto& p : points)
    quartiles[std::min<std::size_t>(3, static_cast<std::size_t>(p[0] * 4))]++;
  for (int q : quartiles) EXPECT_EQ(q, 64);
}

TEST(Halton, DistinctPoints) {
  util::Rng rng(7);
  const auto points = halton_points(3, 200, rng);
  std::set<math::Vec> unique(points.begin(), points.end());
  EXPECT_EQ(unique.size(), points.size());
}

TEST(Halton, DimensionLimitEnforced) {
  util::Rng rng(8);
  EXPECT_THROW(halton_points(37, 10, rng), std::invalid_argument);
}

TEST(Halton, SequenceDecodesToValidConfigs) {
  ConfigSpace space;
  space.add(ParamSpec::categorical("m", {"a", "b", "c"}));
  space.add(ParamSpec::int_choice("k", {1, 2, 4, 8}));
  space.add(ParamSpec::continuous("r", 0.1, 10.0, true));
  util::Rng rng(9);
  const auto configs = halton_sequence(space, 64, rng);
  EXPECT_EQ(configs.size(), 64u);
  std::set<std::string> modes;
  for (const auto& c : configs) {
    space.validate(c);
    modes.insert(c.get_cat("m"));
  }
  EXPECT_EQ(modes.size(), 3u);  // space-filling hits every category
}

TEST(Halton, DeterministicGivenSameRngState) {
  util::Rng rng1(10), rng2(10);
  const auto a = halton_points(4, 32, rng1);
  const auto b = halton_points(4, 32, rng2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace autodml::conf

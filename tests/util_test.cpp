#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/arg_parse.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace autodml::util {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanHalf) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(11);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(0, 4)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, n * 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(2.0, 0.4));
  EXPECT_NEAR(median(xs), 2.0, 0.05);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, LognormalRejectsNonPositiveMedian) {
  Rng rng(1);
  EXPECT_THROW(rng.lognormal_median(0.0, 0.5), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(2.0);
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexThrowsOnZero) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Distinct streams from successive splits.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child1.next_u64() == child2.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{2.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{2.0, 4.0, 6.0, 8.0, 10.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.median, 6.0);
  EXPECT_DOUBLE_EQ(s.p25, 4.0);
  EXPECT_DOUBLE_EQ(s.p75, 8.0);
}

TEST(Stats, BootstrapCiContainsTruthForGaussian) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(5.0, 1.0));
  Rng boot(8);
  const BootstrapCI ci = bootstrap_mean_ci(xs, 0.95, 1000, boot);
  EXPECT_LT(ci.lo, 5.0);
  EXPECT_GT(ci.hi, 5.0);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{2, 4, 6};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, SpearmanMonotone) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, SpearmanHandlesTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 2, 3};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

// ---- csv --------------------------------------------------------------------

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  w.build().add(std::string_view("x")).add(1.5).done();
  EXPECT_EQ(os.str(), "a,b\nx,1.5\n");
}

TEST(Csv, WidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::logic_error);
}

TEST(Csv, DoubleHeaderThrows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a"});
  EXPECT_THROW(w.header({"a"}), std::logic_error);
}

TEST(Csv, FmtPrecision) {
  EXPECT_EQ(fmt(1.0 / 3.0, 3), "0.333");
}

// ---- string_util -------------------------------------------------------------

TEST(StringUtil, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, JoinInvertsSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");  // no truncation
}

TEST(StringUtil, RenderTableAligns) {
  const auto table = render_table({"name", "v"}, {{"x", "10"}, {"longer", "2"}});
  EXPECT_NE(table.find("name"), std::string::npos);
  EXPECT_NE(table.find("longer"), std::string::npos);
  // Every line has the same prefix width for the first column.
  EXPECT_NE(table.find("x     "), std::string::npos);
}

// ---- arg_parse ----------------------------------------------------------------

TEST(ArgParse, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--x=3", "--name=abc", "--flag", "positional"};
  const ArgParser args(5, argv);
  EXPECT_TRUE(args.has("x"));
  EXPECT_EQ(args.get_int("x", 0), 3);
  EXPECT_EQ(args.get("name", ""), "abc");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.has("positional"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

TEST(ArgParse, BoolSpellings) {
  const char* argv[] = {"prog", "--a=TRUE", "--b=0", "--c=on", "--d=no"};
  const ArgParser args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

// ---- thread_pool ----------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  parallel_for(pool, 100, [&](std::size_t) { counter++; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

// The remaining ThreadPool tests exist mainly for the TSan leg of
// scripts/check.sh: they drive the pool from many client threads at once
// so the sanitizer sees the submit/worker/shutdown interleavings.

TEST(ThreadPool, ConcurrentSubmittersFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> clients;
  std::vector<std::future<int>> futures[8];  // one slot per client thread
  clients.reserve(8);
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&pool, &counter, &futures, t] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.submit([&counter, i] {
          counter++;
          return i;
        });
        futures[t].push_back(std::move(f));
      }
    });
  }
  for (auto& c : clients) c.join();
  int sum = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) sum += f.get();
  }
  EXPECT_EQ(counter.load(), 8 * 50);
  EXPECT_EQ(sum, 8 * (49 * 50 / 2));
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&completed] { completed++; });
    }
    // Destructor must wait for every queued task, not just running ones.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, SubmitAfterWorkCompletesStillRuns) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> counter{0};
    parallel_for(pool, 20, [&](std::size_t) { counter++; });
    EXPECT_EQ(counter.load(), 20);
  }
}

}  // namespace
}  // namespace autodml::util

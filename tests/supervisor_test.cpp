// EvalSupervisor: retry/backoff mechanics, transient-vs-deterministic
// classification, ledger accounting, and the feasibility-model exclusion
// of transient failures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/early_termination.h"
#include "core/surrogate.h"
#include "ml/convergence.h"
#include "workloads/eval_supervisor.h"
#include "workloads/objective_adapter.h"

namespace autodml::wl {
namespace {

const Workload& test_workload() { return workload_by_name("mlp-tabular"); }

conf::Config expert_config(const Evaluator& evaluator) {
  return default_expert_config(evaluator.workload(), evaluator.space());
}

/// A kill rate so high that every attempt dies almost immediately.
EvaluatorOptions certain_kill_options() {
  EvaluatorOptions options;
  options.faults.job_kill_rate_per_hour = 1e7;
  return options;
}

TEST(Backoff, GrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_seconds = 100.0;
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 1), 30.0);
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 2), 60.0);
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 3), 100.0);  // capped (120)
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 9), 100.0);
}

TEST(Supervisor, RetriesTransientFailuresUpToTheCap) {
  Evaluator evaluator(test_workload(), /*seed=*/5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 4;
  EvalSupervisor supervisor(evaluator, policy, /*seed=*/5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 4);
  ASSERT_EQ(out.attempt_kinds.size(), 4u);
  for (const core::FailureKind kind : out.attempt_kinds) {
    EXPECT_EQ(kind, core::FailureKind::kInfraCrash);
  }
  EXPECT_FALSE(out.result.feasible);
  EXPECT_TRUE(core::is_transient(out.result.failure_kind));
  EXPECT_GT(out.backoff_seconds, 0.0);
}

TEST(Supervisor, BackoffStaysInsideJitterBounds) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_seconds = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_seconds = 600.0;
  policy.jitter_fraction = 0.25;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  // Two retries: means 30 and 60, each jittered by at most 25%.
  EXPECT_GE(out.backoff_seconds, 90.0 * 0.75);
  EXPECT_LE(out.backoff_seconds, 90.0 * 1.25);
}

TEST(Supervisor, BackoffAndAllAttemptsChargeTheLedger) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_NEAR(evaluator.total_spent_seconds(), out.total_spent_seconds, 1e-9);
  EXPECT_GT(out.total_spent_seconds, out.backoff_seconds);
}

TEST(Supervisor, JitterIsDeterministicGivenSeed) {
  SupervisedOutcome outs[2];
  for (int i = 0; i < 2; ++i) {
    Evaluator evaluator(test_workload(), 5, certain_kill_options());
    EvalSupervisor supervisor(evaluator, RetryPolicy{}, /*seed=*/17);
    outs[i] = supervisor.evaluate(expert_config(evaluator));
  }
  EXPECT_DOUBLE_EQ(outs[0].backoff_seconds, outs[1].backoff_seconds);
  EXPECT_DOUBLE_EQ(outs[0].total_spent_seconds, outs[1].total_spent_seconds);
}

TEST(Supervisor, DeterministicFailuresAreNotRetried) {
  // An impossible SLO makes every run a deterministic deadline failure.
  EvaluatorOptions options;
  options.deadline_seconds = 1.0;
  Evaluator evaluator(test_workload(), 5, options);
  RetryPolicy policy;
  policy.max_attempts = 5;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.result.feasible);
  EXPECT_EQ(out.result.failure_kind, core::FailureKind::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(out.backoff_seconds, 0.0);
}

TEST(Supervisor, TimeoutBecomesDeterministicEvalTimeout) {
  Evaluator probe(test_workload(), 5, EvaluatorOptions{});
  const EvalResult truth = probe.evaluate_ground_truth(expert_config(probe));
  ASSERT_TRUE(truth.feasible);

  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_seconds = truth.tta_seconds / 4.0;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 1);  // hung evaluations are not retried
  EXPECT_FALSE(out.result.feasible);
  EXPECT_FALSE(out.result.terminated_early);
  EXPECT_EQ(out.result.failure_kind, core::FailureKind::kEvalTimeout);
}

TEST(Supervisor, RetryCanRecoverAnEvaluation) {
  // Tune the kill rate to ~50% per attempt for this config's duration:
  // some attempts die, some survive, so with enough evaluations at least
  // one must succeed only thanks to a retry. Deterministic given the seed.
  Evaluator probe(test_workload(), 11, EvaluatorOptions{});
  const conf::Config config = expert_config(probe);
  const EvalResult truth = probe.evaluate_ground_truth(config);
  ASSERT_TRUE(truth.feasible);

  EvaluatorOptions options;
  options.faults.job_kill_rate_per_hour = 0.7 * 3600.0 / truth.tta_seconds;
  Evaluator evaluator(test_workload(), 11, options);
  RetryPolicy policy;
  policy.max_attempts = 5;
  EvalSupervisor supervisor(evaluator, policy, 11);
  bool recovered = false;
  for (int i = 0; i < 30 && !recovered; ++i) {
    const SupervisedOutcome out = supervisor.evaluate(config);
    recovered = out.result.feasible && out.attempts > 1;
  }
  EXPECT_TRUE(recovered);
}

TEST(Supervisor, AttemptBoundaryIsAnnouncedBeforeAnyCheckpoint) {
  // run_attempt's contract: every attempt that streams checkpoints first
  // announces itself through on_run_start, so controllers can reset
  // per-attempt verdict state (the early-termination confirmation streak).
  struct SpyController final : core::RunController {
    int starts = 0;
    int checkpoints = 0;
    bool checkpoint_before_start = false;
    void on_run_start(double) override { ++starts; }
    bool should_abort(const core::RunCheckpoint&) override {
      if (starts == 0) checkpoint_before_start = true;
      ++checkpoints;
      return false;
    }
  };
  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  EvalSupervisor supervisor(evaluator, RetryPolicy{}, 5);
  SpyController spy;
  const SupervisedOutcome out =
      supervisor.evaluate(expert_config(evaluator), &spy);
  EXPECT_TRUE(out.result.feasible);
  EXPECT_EQ(spy.starts, 1);
  EXPECT_GT(spy.checkpoints, 0);
  EXPECT_FALSE(spy.checkpoint_before_start);
}

TEST(Supervisor, EarlyTerminationStaysSoundAfterARetriedFirstAttempt) {
  // Regression (companion to the policy-level test in early_term_test):
  // on_run_start used to carry the hopeless streak and the streamed
  // checkpoints across attempts. The inherited streak could insta-abort a
  // fresh retry at its first checkpoint, and the inherited points — a
  // retry re-streams the curve from wall-clock zero, so they arrive as
  // non-monotone replicates — broke every later curve fit, so a genuinely
  // hopeless retry could never be killed at all. Feed the policy a doomed
  // first attempt by hand (checkpoints on the configuration's own curve),
  // then run a supervised evaluation with it: run_attempt's on_run_start
  // must reset the verdict state, and the evaluation must still be killed
  // on this attempt's own evidence.
  Evaluator probe(test_workload(), 5, EvaluatorOptions{});
  const conf::Config config = expert_config(probe);
  const EvalResult truth = probe.evaluate_ground_truth(config);
  ASSERT_TRUE(truth.feasible);
  ASSERT_GT(truth.tta_seconds, 600.0);  // streams enough real checkpoints

  core::EarlyTermOptions term;
  term.target_metric = test_workload().stat.target_metric;
  term.min_checkpoints = 6;
  term.confirmations = 2;
  core::EarlyTerminationPolicy policy(term,
                                      /*incumbent=*/truth.tta_seconds / 100.0);

  // "First attempt": six checkpoints of the config's own curve — hopeless
  // against an incumbent 100x faster — building verdict state (streak one
  // short of the kill) before the attempt dies transiently.
  policy.on_run_start(truth.usd_per_hour);
  for (int k = 1; k <= 6; ++k) {
    core::RunCheckpoint cp;
    cp.wall_seconds = truth.tta_seconds * k / 40.0;
    cp.samples = truth.runtime.samples_per_second * cp.wall_seconds;
    cp.metric =
        ml::metric_at(test_workload().stat, cp.samples, truth.samples_needed);
    ASSERT_FALSE(policy.should_abort(cp)) << "checkpoint " << k;
  }

  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  EvalSupervisor supervisor(evaluator, RetryPolicy{}, 5);
  const SupervisedOutcome out = supervisor.evaluate(config, &policy);
  // Killed — but on the retry's own evidence: at least min_checkpoints +
  // confirmations - 1 checkpoints (60s apart) streamed first. An inherited
  // streak would have aborted at the first checkpoint; inherited points
  // would have prevented the abort entirely.
  EXPECT_TRUE(out.result.terminated_early);
  EXPECT_GE(out.result.spent_seconds,
            (term.min_checkpoints + term.confirmations - 1) * 60.0);
}

TEST(Supervisor, FeasibilityModelIgnoresTransientFailures) {
  // A history whose only failures are transient must leave the feasibility
  // model certain: every deterministic data point says "feasible".
  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  const conf::ConfigSpace& space = evaluator.space();
  util::Rng rng(3);

  std::vector<core::Trial> trials;
  for (int i = 0; i < 12; ++i) {
    core::Trial t;
    t.config = space.sample_uniform(rng);
    if (i % 2 == 0) {
      t.outcome.feasible = true;
      t.outcome.objective = 100.0 + i;
    } else {
      t.outcome.feasible = false;
      t.outcome.failure_kind = core::FailureKind::kPreempted;
      t.outcome.failure = "spot preemption";
    }
    t.outcome.spent_seconds = 1.0;
    trials.push_back(std::move(t));
  }

  core::SurrogateOptions options;
  options.gp.restarts = 1;
  options.gp.adam_iterations = 40;
  core::SurrogateModel surrogate(space, options, /*seed=*/9);
  surrogate.update(trials);
  ASSERT_TRUE(surrogate.ready());
  for (const core::Trial& t : trials) {
    EXPECT_NEAR(surrogate.score(t.config).prob_feasible, 1.0, 1e-6);
  }
}

TEST(SupervisedObjective, ReportsAttemptsAndAggregateCost) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  EvalSupervisor supervisor(evaluator, policy, 5);
  SupervisedObjective objective(supervisor);
  const core::RunOutcome out =
      objective.run(expert_config(evaluator), nullptr);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_TRUE(out.transient_failure());
  EXPECT_NEAR(out.spent_seconds, evaluator.total_spent_seconds(), 1e-9);
}

}  // namespace
}  // namespace autodml::wl

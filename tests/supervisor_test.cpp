// EvalSupervisor: retry/backoff mechanics, transient-vs-deterministic
// classification, ledger accounting, and the feasibility-model exclusion
// of transient failures.
#include <gtest/gtest.h>

#include <cmath>

#include "core/surrogate.h"
#include "workloads/eval_supervisor.h"
#include "workloads/objective_adapter.h"

namespace autodml::wl {
namespace {

const Workload& test_workload() { return workload_by_name("mlp-tabular"); }

conf::Config expert_config(const Evaluator& evaluator) {
  return default_expert_config(evaluator.workload(), evaluator.space());
}

/// A kill rate so high that every attempt dies almost immediately.
EvaluatorOptions certain_kill_options() {
  EvaluatorOptions options;
  options.faults.job_kill_rate_per_hour = 1e7;
  return options;
}

TEST(Backoff, GrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_seconds = 100.0;
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 1), 30.0);
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 2), 60.0);
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 3), 100.0);  // capped (120)
  EXPECT_DOUBLE_EQ(backoff_mean_seconds(policy, 9), 100.0);
}

TEST(Supervisor, RetriesTransientFailuresUpToTheCap) {
  Evaluator evaluator(test_workload(), /*seed=*/5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 4;
  EvalSupervisor supervisor(evaluator, policy, /*seed=*/5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 4);
  ASSERT_EQ(out.attempt_kinds.size(), 4u);
  for (const core::FailureKind kind : out.attempt_kinds) {
    EXPECT_EQ(kind, core::FailureKind::kInfraCrash);
  }
  EXPECT_FALSE(out.result.feasible);
  EXPECT_TRUE(core::is_transient(out.result.failure_kind));
  EXPECT_GT(out.backoff_seconds, 0.0);
}

TEST(Supervisor, BackoffStaysInsideJitterBounds) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_seconds = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_seconds = 600.0;
  policy.jitter_fraction = 0.25;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  // Two retries: means 30 and 60, each jittered by at most 25%.
  EXPECT_GE(out.backoff_seconds, 90.0 * 0.75);
  EXPECT_LE(out.backoff_seconds, 90.0 * 1.25);
}

TEST(Supervisor, BackoffAndAllAttemptsChargeTheLedger) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_NEAR(evaluator.total_spent_seconds(), out.total_spent_seconds, 1e-9);
  EXPECT_GT(out.total_spent_seconds, out.backoff_seconds);
}

TEST(Supervisor, JitterIsDeterministicGivenSeed) {
  SupervisedOutcome outs[2];
  for (int i = 0; i < 2; ++i) {
    Evaluator evaluator(test_workload(), 5, certain_kill_options());
    EvalSupervisor supervisor(evaluator, RetryPolicy{}, /*seed=*/17);
    outs[i] = supervisor.evaluate(expert_config(evaluator));
  }
  EXPECT_DOUBLE_EQ(outs[0].backoff_seconds, outs[1].backoff_seconds);
  EXPECT_DOUBLE_EQ(outs[0].total_spent_seconds, outs[1].total_spent_seconds);
}

TEST(Supervisor, DeterministicFailuresAreNotRetried) {
  // An impossible SLO makes every run a deterministic deadline failure.
  EvaluatorOptions options;
  options.deadline_seconds = 1.0;
  Evaluator evaluator(test_workload(), 5, options);
  RetryPolicy policy;
  policy.max_attempts = 5;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.result.feasible);
  EXPECT_EQ(out.result.failure_kind, core::FailureKind::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(out.backoff_seconds, 0.0);
}

TEST(Supervisor, TimeoutBecomesDeterministicEvalTimeout) {
  Evaluator probe(test_workload(), 5, EvaluatorOptions{});
  const EvalResult truth = probe.evaluate_ground_truth(expert_config(probe));
  ASSERT_TRUE(truth.feasible);

  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_seconds = truth.tta_seconds / 4.0;
  EvalSupervisor supervisor(evaluator, policy, 5);
  const SupervisedOutcome out = supervisor.evaluate(expert_config(evaluator));
  EXPECT_EQ(out.attempts, 1);  // hung evaluations are not retried
  EXPECT_FALSE(out.result.feasible);
  EXPECT_FALSE(out.result.terminated_early);
  EXPECT_EQ(out.result.failure_kind, core::FailureKind::kEvalTimeout);
}

TEST(Supervisor, RetryCanRecoverAnEvaluation) {
  // Tune the kill rate to ~50% per attempt for this config's duration:
  // some attempts die, some survive, so with enough evaluations at least
  // one must succeed only thanks to a retry. Deterministic given the seed.
  Evaluator probe(test_workload(), 11, EvaluatorOptions{});
  const conf::Config config = expert_config(probe);
  const EvalResult truth = probe.evaluate_ground_truth(config);
  ASSERT_TRUE(truth.feasible);

  EvaluatorOptions options;
  options.faults.job_kill_rate_per_hour = 0.7 * 3600.0 / truth.tta_seconds;
  Evaluator evaluator(test_workload(), 11, options);
  RetryPolicy policy;
  policy.max_attempts = 5;
  EvalSupervisor supervisor(evaluator, policy, 11);
  bool recovered = false;
  for (int i = 0; i < 30 && !recovered; ++i) {
    const SupervisedOutcome out = supervisor.evaluate(config);
    recovered = out.result.feasible && out.attempts > 1;
  }
  EXPECT_TRUE(recovered);
}

TEST(Supervisor, FeasibilityModelIgnoresTransientFailures) {
  // A history whose only failures are transient must leave the feasibility
  // model certain: every deterministic data point says "feasible".
  Evaluator evaluator(test_workload(), 5, EvaluatorOptions{});
  const conf::ConfigSpace& space = evaluator.space();
  util::Rng rng(3);

  std::vector<core::Trial> trials;
  for (int i = 0; i < 12; ++i) {
    core::Trial t;
    t.config = space.sample_uniform(rng);
    if (i % 2 == 0) {
      t.outcome.feasible = true;
      t.outcome.objective = 100.0 + i;
    } else {
      t.outcome.feasible = false;
      t.outcome.failure_kind = core::FailureKind::kPreempted;
      t.outcome.failure = "spot preemption";
    }
    t.outcome.spent_seconds = 1.0;
    trials.push_back(std::move(t));
  }

  core::SurrogateOptions options;
  options.gp.restarts = 1;
  options.gp.adam_iterations = 40;
  core::SurrogateModel surrogate(space, options, /*seed=*/9);
  surrogate.update(trials);
  ASSERT_TRUE(surrogate.ready());
  for (const core::Trial& t : trials) {
    EXPECT_NEAR(surrogate.score(t.config).prob_feasible, 1.0, 1e-6);
  }
}

TEST(SupervisedObjective, ReportsAttemptsAndAggregateCost) {
  Evaluator evaluator(test_workload(), 5, certain_kill_options());
  RetryPolicy policy;
  policy.max_attempts = 3;
  EvalSupervisor supervisor(evaluator, policy, 5);
  SupervisedObjective objective(supervisor);
  const core::RunOutcome out =
      objective.run(expert_config(evaluator), nullptr);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_TRUE(out.transient_failure());
  EXPECT_NEAR(out.spent_seconds, evaluator.total_spent_seconds(), 1e-9);
}

}  // namespace
}  // namespace autodml::wl

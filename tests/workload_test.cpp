#include <gtest/gtest.h>

#include <cmath>

#include "workloads/evaluator.h"
#include "workloads/objective_adapter.h"
#include "workloads/workload.h"

namespace autodml::wl {
namespace {

// ---- suite -----------------------------------------------------------------------

TEST(WorkloadSuite, SixDistinctWorkloads) {
  const auto& suite = workload_suite();
  EXPECT_EQ(suite.size(), 6u);
  std::set<std::string> names;
  for (const auto& w : suite) {
    names.insert(w.name);
    EXPECT_GT(w.model_bytes, 0.0);
    EXPECT_GT(w.flops_per_sample, 0.0);
    EXPECT_GT(w.stat.base_samples, 0.0);
    EXPECT_GT(w.stat.metric_ceiling, w.stat.target_metric);
    EXPECT_FALSE(w.worker_menu.empty());
    EXPECT_FALSE(w.batch_menu.empty());
    EXPECT_FALSE(w.worker_instance_menu.empty());
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(WorkloadSuite, LookupByName) {
  EXPECT_EQ(workload_by_name("cnn-cifar").name, "cnn-cifar");
  EXPECT_THROW(workload_by_name("not-a-workload"), std::invalid_argument);
}

// ---- config space binding -----------------------------------------------------------

TEST(ConfigSpaceBinding, HasExpectedParams) {
  const conf::ConfigSpace space =
      build_config_space(workload_by_name("mlp-tabular"));
  for (const char* name :
       {"arch", "sync", "staleness", "num_workers", "num_servers",
        "batch_per_worker", "learning_rate", "comm_threads", "compression",
        "worker_type"}) {
    EXPECT_TRUE(space.contains(name)) << name;
  }
  EXPECT_EQ(space.num_params(), 10u);
}

TEST(ConfigSpaceBinding, ConditionalsFollowArchitecture) {
  const auto& workload = workload_by_name("mlp-tabular");
  const conf::ConfigSpace space = build_config_space(workload);
  conf::Config c = space.default_config();
  c.set_cat("arch", "allreduce");
  space.canonicalize(c);
  EXPECT_FALSE(space.is_active(c, space.index_of("sync")));
  EXPECT_FALSE(space.is_active(c, space.index_of("num_servers")));
  EXPECT_FALSE(space.is_active(c, space.index_of("comm_threads")));
  c.set_cat("arch", "ps");
  c.set_cat("sync", "ssp");
  EXPECT_TRUE(space.is_active(c, space.index_of("staleness")));
  c.set_cat("sync", "bsp");
  EXPECT_FALSE(space.is_active(c, space.index_of("staleness")));
}

TEST(ConfigSpaceBinding, ToSystemConfigMapsFields) {
  const auto& workload = workload_by_name("mf-recsys");
  const conf::ConfigSpace space = build_config_space(workload);
  conf::Config c = space.default_config();
  c.set_cat("arch", "ps");
  c.set_cat("sync", "ssp");
  c.set_int("staleness", 5);
  c.set_int("num_workers", 8);
  c.set_int("num_servers", 4);
  c.set_int("batch_per_worker", 64);
  c.set_double("learning_rate", 0.01);
  c.set_int("comm_threads", 2);
  c.set_cat("compression", "int8");
  c.set_cat("worker_type", "net8");
  space.canonicalize(c);

  const sim::SystemConfig sys = to_system_config(workload, c);
  EXPECT_EQ(sys.arch, sim::Arch::kPs);
  EXPECT_EQ(sys.cluster.num_workers, 8);
  EXPECT_EQ(sys.cluster.num_servers, 4);
  EXPECT_EQ(sys.cluster.worker_type, "net8");
  EXPECT_EQ(sys.job.sync, sim::SyncMode::kSsp);
  EXPECT_EQ(sys.job.staleness, 5);
  EXPECT_EQ(sys.job.batch_per_worker, 64);
  EXPECT_EQ(sys.job.comm_threads, 2);
  EXPECT_EQ(sys.job.compression, sim::Compression::kInt8);
  EXPECT_DOUBLE_EQ(sys.job.model_bytes, workload.model_bytes);
}

TEST(ConfigSpaceBinding, AllReduceForcesSynchronousNoServers) {
  const auto& workload = workload_by_name("cnn-cifar");
  const conf::ConfigSpace space = build_config_space(workload);
  conf::Config c = space.default_config();
  c.set_cat("arch", "allreduce");
  space.canonicalize(c);
  const sim::SystemConfig sys = to_system_config(workload, c);
  EXPECT_EQ(sys.arch, sim::Arch::kAllReduce);
  EXPECT_EQ(sys.cluster.num_servers, 0);
  EXPECT_EQ(sys.job.sync, sim::SyncMode::kBsp);
  EXPECT_EQ(sys.job.staleness, 0);
}

TEST(ConfigSpaceBinding, DefaultExpertConfigIsValid) {
  for (const auto& workload : workload_suite()) {
    const conf::ConfigSpace space = build_config_space(workload);
    const conf::Config c = default_expert_config(workload, space);
    EXPECT_NO_THROW(space.validate(c)) << workload.name;
    EXPECT_EQ(c.get_cat("arch"), "ps");
  }
}

// ---- evaluator ------------------------------------------------------------------------

TEST(Evaluator, DefaultConfigIsFeasible) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 3);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult r = evaluator.evaluate(c);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.tta_seconds, 0.0);
  EXPECT_GT(r.cost_usd, 0.0);
  EXPECT_GT(r.usd_per_hour, 0.0);
  EXPECT_GT(r.samples_needed, 0.0);
  EXPECT_FALSE(r.terminated_early);
}

TEST(Evaluator, GroundTruthIsDeterministicAndUncharged) {
  const auto& workload = workload_by_name("mlp-tabular");
  Evaluator evaluator(workload, 4);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult a = evaluator.evaluate_ground_truth(c);
  const EvalResult b = evaluator.evaluate_ground_truth(c);
  EXPECT_DOUBLE_EQ(a.tta_seconds, b.tta_seconds);
  EXPECT_DOUBLE_EQ(evaluator.total_spent_seconds(), 0.0);
  EXPECT_EQ(evaluator.num_runs(), 0u);
}

TEST(Evaluator, RepeatedEvaluationsAreNoisy) {
  const auto& workload = workload_by_name("mlp-tabular");
  Evaluator evaluator(workload, 5);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult a = evaluator.evaluate(c);
  const EvalResult b = evaluator.evaluate(c);
  EXPECT_NE(a.tta_seconds, b.tta_seconds);
  // ... but within the noise envelope.
  EXPECT_NEAR(std::log(a.tta_seconds / b.tta_seconds), 0.0, 1.0);
}

TEST(Evaluator, LedgerChargesFullRuns) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 6);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult r = evaluator.evaluate(c);
  EXPECT_EQ(evaluator.num_runs(), 1u);
  EXPECT_NEAR(evaluator.total_spent_seconds(), r.spent_seconds, 1e-9);
  EXPECT_GT(r.spent_seconds, r.tta_seconds);  // includes provisioning
}

TEST(Evaluator, OomConfigFailsFastAndCheap) {
  const auto& workload = workload_by_name("resnet-imagenet");
  Evaluator evaluator(workload, 7);
  conf::Config c = default_expert_config(workload, evaluator.space());
  c.set_cat("worker_type", "std16");  // 64 GB
  c.set_int("batch_per_worker", 512); // 512*3e7 = 15 GB activations; fine...
  c.set_cat("arch", "allreduce");     // + optimizer state on workers
  evaluator.space().canonicalize(c);
  // Make it definitively OOM by the largest batch on the smallest shape.
  const EvalResult r = evaluator.evaluate(c);
  if (!r.feasible) {
    EXPECT_FALSE(r.failure.empty());
    EXPECT_LT(r.spent_seconds, 600.0);  // only provisioning overhead
    EXPECT_TRUE(std::isinf(r.objective_value(Objective::kTimeToAccuracy)));
  }
}

TEST(Evaluator, DivergentLrReportsDivergence) {
  const auto& workload = workload_by_name("cnn-cifar");
  Evaluator evaluator(workload, 8);
  conf::Config c = default_expert_config(workload, evaluator.space());
  c.set_double("learning_rate", workload.lr_hi);  // way above optimum
  c.set_int("batch_per_worker", 8);
  c.set_int("num_workers", 1);
  evaluator.space().canonicalize(c);
  const EvalResult r = evaluator.evaluate(c);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.failure, "diverged");
  EXPECT_GT(r.spent_seconds, 0.0);
}

TEST(Evaluator, CheckpointStreamIsMonotone) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 9);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  auto run = evaluator.start(c);
  ASSERT_FALSE(run->failed());
  double prev_time = 0.0, prev_metric = -1.0;
  int count = 0;
  while (auto cp = run->next_checkpoint()) {
    EXPECT_GT(cp->wall_seconds, prev_time);
    EXPECT_GT(cp->metric, prev_metric);
    EXPECT_LE(cp->metric, workload.stat.target_metric + 1e-9);
    prev_time = cp->wall_seconds;
    prev_metric = cp->metric;
    ++count;
  }
  EXPECT_GT(count, 3);
  EXPECT_LE(count, evaluator.options().max_checkpoints_per_run);
  const EvalResult r = run->result();
  EXPECT_TRUE(r.feasible);
}

TEST(Evaluator, AbortChargesOnlyTimeSpent) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator full_eval(workload, 10);
  Evaluator abort_eval(workload, 10);
  const conf::Config c = default_expert_config(workload, full_eval.space());

  const EvalResult full = full_eval.evaluate(c);

  auto run = abort_eval.start(c);
  ASSERT_TRUE(run->next_checkpoint().has_value());
  ASSERT_TRUE(run->next_checkpoint().has_value());
  const EvalResult aborted = run->abort();
  EXPECT_TRUE(aborted.terminated_early);
  EXPECT_LT(aborted.spent_seconds, full.spent_seconds);
  EXPECT_TRUE(std::isinf(aborted.objective_value(Objective::kTimeToAccuracy)));
  EXPECT_LT(abort_eval.total_spent_seconds(), full_eval.total_spent_seconds());
}

TEST(Evaluator, ResultIsIdempotent) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 11);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  auto run = evaluator.start(c);
  const EvalResult a = run->result();
  const double spent_after_first = evaluator.total_spent_seconds();
  const EvalResult b = run->result();  // no double charge
  EXPECT_DOUBLE_EQ(a.tta_seconds, b.tta_seconds);
  EXPECT_DOUBLE_EQ(evaluator.total_spent_seconds(), spent_after_first);
}

TEST(Evaluator, CostObjectiveUsesDollars) {
  const auto& workload = workload_by_name("logreg-ads");
  EvaluatorOptions options;
  options.objective = Objective::kCostToAccuracy;
  Evaluator evaluator(workload, 12, options);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult r = evaluator.evaluate(c);
  EXPECT_DOUBLE_EQ(r.objective_value(Objective::kCostToAccuracy), r.cost_usd);
  EXPECT_NEAR(r.cost_usd, r.tta_seconds / 3600.0 * r.usd_per_hour, 1e-6);
}

// ---- objective adapter --------------------------------------------------------------

TEST(ObjectiveAdapter, FullRunMapsFields) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 13);
  EvaluatorObjective objective(evaluator);
  EXPECT_DOUBLE_EQ(objective.target_metric(), workload.stat.target_metric);
  EXPECT_FALSE(objective.objective_is_cost());
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const core::RunOutcome outcome = objective.run(c, nullptr);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_FALSE(outcome.aborted);
  EXPECT_GT(outcome.objective, 0.0);
  EXPECT_TRUE(std::isfinite(outcome.objective));
}

namespace {
class AbortAfterN final : public core::RunController {
 public:
  explicit AbortAfterN(int n) : n_(n) {}
  bool should_abort(const core::RunCheckpoint&) override { return ++seen_ >= n_; }
  int seen() const { return seen_; }

 private:
  int n_;
  int seen_ = 0;
};
}  // namespace

TEST(ObjectiveAdapter, ControllerCanAbort) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 14);
  EvaluatorObjective objective(evaluator);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  AbortAfterN controller(3);
  const core::RunOutcome outcome = objective.run(c, &controller);
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(controller.seen(), 3);
  EXPECT_TRUE(std::isinf(outcome.objective));
  EXPECT_GT(outcome.spent_seconds, 0.0);
}

TEST(ObjectiveAdapter, ToTrialConversion) {
  const auto& workload = workload_by_name("logreg-ads");
  Evaluator evaluator(workload, 15);
  const conf::Config c = default_expert_config(workload, evaluator.space());
  const EvalResult r = evaluator.evaluate(c);
  const core::Trial trial = to_trial(r, Objective::kTimeToAccuracy);
  EXPECT_TRUE(trial.succeeded());
  EXPECT_DOUBLE_EQ(trial.outcome.objective, r.tta_seconds);
}

}  // namespace
}  // namespace autodml::wl

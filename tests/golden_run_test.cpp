// Golden-run regression test: the canonical demo tuning session
// (logreg-ads, 30 evaluations, seed 1 — what `autodml_cli tune --demo`
// runs) compared field-by-field against a checked-in snapshot of its trial
// sequence, incumbent trajectory, and final metrics.
//
// Any intentional change to proposal order, simulator physics, surrogate
// numerics, or metric instrumentation shows up here as a precise diff path;
// regenerate with scripts/update_golden.sh (or AUTODML_UPDATE_GOLDEN=1)
// and review the golden diff like any other code change.
//
// Exactness: doubles are serialized with %.17g throughout util/json, which
// round-trips every finite double bit-exactly, so the comparison below
// uses == on numbers — no tolerances. The run is serial (acq_threads=1)
// and every recorded metric is simulated/algorithmic, so the snapshot is
// scheduling-independent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "obs/metrics.h"
#include "util/fs.h"
#include "util/json.h"
#include "workloads/objective_adapter.h"

namespace autodml {
namespace {

const char* kGoldenPath = AUTODML_SOURCE_DIR "/tests/golden/demo_run.json";

util::JsonValue run_demo_session() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.enable();

  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  wl::Evaluator evaluator(workload, 1);
  wl::EvaluatorObjective objective(evaluator);
  core::BoOptions options;  // defaults = the CLI demo: 30 evals, LogEI
  options.seed = 1;
  core::BoTuner tuner(objective, options);
  const core::TuningResult result = tuner.tune();

  registry.disable();

  util::JsonObject doc;
  doc["schema"] = "autodml.golden.v1";
  doc["workload"] = workload.name;
  doc["seed"] = 1;
  util::JsonArray trials;
  for (const core::Trial& t : result.trials)
    trials.push_back(core::trial_to_json(t));
  doc["trials"] = std::move(trials);
  // Same convention as session files: infinity (no incumbent yet) -> null.
  util::JsonArray curve;
  for (double v : result.incumbent_curve) {
    curve.push_back(std::isfinite(v) ? util::JsonValue(v)
                                     : util::JsonValue(nullptr));
  }
  doc["incumbent_curve"] = std::move(curve);
  doc["best_objective"] = result.found_feasible()
                              ? util::JsonValue(result.best_objective)
                              : util::JsonValue(nullptr);
  doc["total_spent_seconds"] = result.total_spent_seconds;
  doc["metrics"] = registry.snapshot_json();
  return util::JsonValue(std::move(doc));
}

std::string type_name(const util::JsonValue& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return "bool";
  if (v.is_number()) return "number";
  if (v.is_string()) return "string";
  if (v.is_array()) return "array";
  return "object";
}

/// Recursive field-by-field comparison; every mismatch is reported with
/// its full JSON path so a golden diff pinpoints what moved.
void expect_same(const util::JsonValue& golden, const util::JsonValue& actual,
                 const std::string& path) {
  if (type_name(golden) != type_name(actual)) {
    ADD_FAILURE() << path << ": golden is " << type_name(golden)
                  << " but run produced " << type_name(actual);
    return;
  }
  if (golden.is_number()) {
    if (!(golden.as_number() == actual.as_number())) {
      ADD_FAILURE() << path << ": golden " << util::dump_json(golden)
                    << " != actual " << util::dump_json(actual);
    }
  } else if (golden.is_array()) {
    const auto& g = golden.as_array();
    const auto& a = actual.as_array();
    if (g.size() != a.size()) {
      ADD_FAILURE() << path << ": golden has " << g.size()
                    << " elements but run produced " << a.size();
      return;
    }
    for (std::size_t i = 0; i < g.size(); ++i)
      expect_same(g[i], a[i], path + "[" + std::to_string(i) + "]");
  } else if (golden.is_object()) {
    const auto& g = golden.as_object();
    const auto& a = actual.as_object();
    for (const auto& [key, value] : g) {
      if (!actual.contains(key)) {
        ADD_FAILURE() << path << "." << key << ": missing from run output";
        continue;
      }
      expect_same(value, a.at(key), path + "." + key);
    }
    for (const auto& [key, value] : a) {
      if (!golden.contains(key))
        ADD_FAILURE() << path << "." << key << ": not in golden file";
    }
  } else if (!(golden == actual)) {
    ADD_FAILURE() << path << ": golden " << util::dump_json(golden)
                  << " != actual " << util::dump_json(actual);
  }
}

TEST(GoldenRun, DemoSessionMatchesCheckedInSnapshot) {
  const util::JsonValue actual = run_demo_session();

  if (std::getenv("AUTODML_UPDATE_GOLDEN") != nullptr) {
    util::write_file_atomic(kGoldenPath, util::dump_json(actual, 1) + "\n");
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath
                 << "; review the diff and rerun without "
                    "AUTODML_UPDATE_GOLDEN";
  }

  const util::JsonValue golden = util::parse_json(util::read_file(kGoldenPath));
  // Cheap sanity on the golden file itself before diving into the diff.
  ASSERT_EQ(golden.at("schema").as_string(), "autodml.golden.v1");
  ASSERT_EQ(golden.at("trials").as_array().size(), 30u);
  expect_same(golden, actual, "$");
}

TEST(GoldenRun, DemoSessionIsRunToRunDeterministic) {
  // The golden comparison is only meaningful if the session reproduces at
  // all; a flaky mismatch here means nondeterminism, not a golden drift.
  EXPECT_TRUE(run_demo_session() == run_demo_session());
}

}  // namespace
}  // namespace autodml

// Negative-compile check for clang Thread Safety Analysis.
//
// This file contains a seeded lock-discipline violation: a member
// declared ADML_GUARDED_BY is written without holding the mutex. It is
// compiled (syntax-only) with -Werror=thread-safety and registered in
// ctest with WILL_FAIL TRUE — if the compile *succeeds*, the analysis
// silently stopped seeing our annotations and the test suite fails.
#include <cstddef>

#include "util/annotations.h"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    ++count_;  // BUG (on purpose): writes count_ without holding mu_
  }

  std::size_t value() {
    autodml::util::MutexLock lock(mu_);
    return count_;
  }

 private:
  autodml::util::Mutex mu_;
  std::size_t count_ ADML_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return static_cast<int>(c.value());
}

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "math/cholesky.h"
#include "math/matrix.h"
#include "math/optimize.h"
#include "util/rng.h"

namespace autodml::math {
namespace {

// ---- vector helpers -----------------------------------------------------------

TEST(VecOps, DotAndNorm) {
  const Vec a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{3, 4}), 5.0);
  EXPECT_THROW(dot(a, Vec{1}), std::invalid_argument);
}

TEST(VecOps, AxpyAndArithmetic) {
  Vec y{1, 1};
  axpy(2.0, Vec{3, 4}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_EQ(scaled(Vec{1, 2}, 3.0), (Vec{3, 6}));
  EXPECT_EQ(added(Vec{1, 2}, Vec{3, 4}), (Vec{4, 6}));
  EXPECT_EQ(subtracted(Vec{3, 4}, Vec{1, 2}), (Vec{2, 2}));
}

// ---- Matrix ---------------------------------------------------------------------

TEST(Matrix, IdentityAndIndexing) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 5;
  m(1, 1) = 7;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, MatmulKnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatvecAndTransposedMatvec) {
  Matrix a(2, 3);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = static_cast<double>(i * 3 + j + 1);
  const Vec v{1, 0, -1};
  const Vec out = a.matvec(v);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
  const Vec w{1, 2};
  const Vec tout = a.matvec_transposed(w);
  EXPECT_DOUBLE_EQ(tout[0], 9.0);
  EXPECT_DOUBLE_EQ(tout[1], 12.0);
  EXPECT_DOUBLE_EQ(tout[2], 15.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
  EXPECT_THROW(a.matvec(Vec{1, 2}), std::invalid_argument);
}

// ---- Cholesky -------------------------------------------------------------------

Matrix random_spd(std::size_t n, util::Rng& rng, double diag_boost = 0.5) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd = a.matmul(a.transposed());
  spd.add_to_diagonal(diag_boost * static_cast<double>(n));
  return spd;
}

TEST(Cholesky, ReconstructsMatrix) {
  util::Rng rng(5);
  const Matrix a = random_spd(8, rng);
  const auto f = cholesky(a);
  ASSERT_TRUE(f.has_value());
  const Matrix rebuilt = f->lower.matmul(f->lower.transposed());
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, a), 1e-9);
}

TEST(Cholesky, SolveMatchesDirect) {
  util::Rng rng(6);
  const Matrix a = random_spd(6, rng);
  Vec b(6);
  for (auto& x : b) x = rng.normal();
  const auto f = cholesky(a);
  ASSERT_TRUE(f.has_value());
  const Vec x = f->solve(b);
  const Vec back = a.matvec(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

TEST(Cholesky, LogDetMatchesKnown) {
  Matrix d(3, 3);
  d(0, 0) = 2.0;
  d(1, 1) = 3.0;
  d(2, 2) = 4.0;
  const auto f = cholesky(d);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->log_det(), std::log(24.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(m).has_value());
}

TEST(Cholesky, JitterRescuesSingular) {
  // Rank-deficient PSD matrix (outer product).
  Matrix m(3, 3);
  const Vec v{1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = v[i] * v[j];
  const CholeskyFactor f = cholesky_with_jitter(m);
  EXPECT_GT(f.jitter, 0.0);
  const Matrix rebuilt = f.lower.matmul(f.lower.transposed());
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, m), 1e-3);
}

TEST(Cholesky, JitterGivesUpOnNegativeDefinite) {
  Matrix m(2, 2);
  m(0, 0) = -10.0;
  m(1, 1) = -10.0;
  EXPECT_THROW(cholesky_with_jitter(m, 1e-10, 3), std::runtime_error);
}

TEST(Cholesky, JitterFailureNamesOffendingPivot) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = -50.0;  // pivot 1 is the culprit
  m(2, 2) = 1.0;
  try {
    cholesky_with_jitter(m, 1e-10, 3);
    FAIL() << "expected cholesky_with_jitter to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pivot 1"), std::string::npos) << what;
  }
}

// ---- Blocked Cholesky ---------------------------------------------------------

// The scalar and blocked paths compute the same factor up to floating-point
// summation order. For a well-conditioned SPD matrix with O(n)-scale entries
// the reordering error is ~ n * eps * ||A|| ≈ 200 * 2.2e-16 * O(10²) ≈ 1e-11;
// the 1e-9 bound leaves two orders of slack without ever admitting an
// algorithmic divergence (those show up at O(1)).
TEST(CholeskyBlocked, MatchesScalarWithinReorderingTolerance) {
  util::Rng rng(11);
  for (const std::size_t n : {130u, 200u, 257u}) {  // none divide the block
    const Matrix a = random_spd(n, rng);
    const auto scalar = cholesky_scalar(a);
    const auto blocked = cholesky_blocked(a);
    ASSERT_TRUE(scalar.has_value()) << n;
    ASSERT_TRUE(blocked.has_value()) << n;
    EXPECT_LT(Matrix::max_abs_diff(scalar->lower, blocked->lower), 1e-9) << n;
    const Matrix rebuilt = blocked->lower.matmul(blocked->lower.transposed());
    EXPECT_LT(Matrix::max_abs_diff(rebuilt, a), 1e-7) << n;
  }
}

TEST(CholeskyBlocked, SmallBlockSizesExerciseEveryPanelShape) {
  util::Rng rng(12);
  const Matrix a = random_spd(23, rng);
  const auto scalar = cholesky_scalar(a);
  ASSERT_TRUE(scalar.has_value());
  for (const std::size_t block : {1u, 2u, 3u, 7u, 23u, 64u}) {
    const auto blocked = cholesky_blocked(a, block);
    ASSERT_TRUE(blocked.has_value()) << "block=" << block;
    EXPECT_LT(Matrix::max_abs_diff(scalar->lower, blocked->lower), 1e-10)
        << "block=" << block;
  }
}

TEST(CholeskyBlocked, DispatchUsesBlockedPathPastThreshold) {
  // cholesky() must produce bit-identical factors to the path it dispatches
  // to on either side of the threshold — the dispatch is a pure selector.
  util::Rng rng(13);
  const Matrix small = random_spd(kCholeskyBlockedThreshold - 1, rng);
  const Matrix large = random_spd(kCholeskyBlockedThreshold, rng);
  const auto via_dispatch_small = cholesky(small);
  const auto via_scalar = cholesky_scalar(small);
  ASSERT_TRUE(via_dispatch_small.has_value() && via_scalar.has_value());
  EXPECT_EQ(Matrix::max_abs_diff(via_dispatch_small->lower,
                                 via_scalar->lower),
            0.0);
  const auto via_dispatch_large = cholesky(large);
  const auto via_blocked = cholesky_blocked(large);
  ASSERT_TRUE(via_dispatch_large.has_value() && via_blocked.has_value());
  EXPECT_EQ(Matrix::max_abs_diff(via_dispatch_large->lower,
                                 via_blocked->lower),
            0.0);
}

TEST(CholeskyBlocked, RejectsIndefiniteLargeMatrix) {
  // Indefinite matrix big enough to route through the blocked path, with
  // the negative direction buried in the trailing submatrix so the panel
  // recurrence (not input validation) must catch it.
  util::Rng rng(14);
  Matrix m = random_spd(160, rng);
  m(150, 150) = -1e4;
  EXPECT_FALSE(cholesky(m).has_value());
  EXPECT_FALSE(cholesky_blocked(m).has_value());
}

TEST(CholeskyBlocked, JitterRescuesNearSingularLargeMatrix) {
  // Rank-deficient Gram matrix (n points in a 3-dim feature space) above
  // the blocked threshold: plain factorization fails, the jitter ladder in
  // cholesky_with_jitter succeeds through the blocked path, and the factor
  // reconstructs the jittered matrix.
  const std::size_t n = 140;
  util::Rng rng(15);
  Matrix feats(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < 3; ++j) feats(i, j) = rng.normal();
  const Matrix gram = feats.matmul(feats.transposed());  // rank 3
  EXPECT_FALSE(cholesky(gram).has_value());
  const CholeskyFactor f = cholesky_with_jitter(gram);
  EXPECT_GT(f.jitter, 0.0);
  Matrix target = gram;
  target.add_to_diagonal(f.jitter);
  const Matrix rebuilt = f.lower.matmul(f.lower.transposed());
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, target), 1e-6);
}

TEST(CholeskyBlocked, AppendRowStaysWithinReorderingToleranceOfBlocked) {
  // append_row replays the scalar recurrence, so against a blocked base
  // factor the appended row differs only by the same summation-order bound
  // the blocked-vs-scalar tests pin (see append_row's contract).
  util::Rng rng(16);
  const std::size_t n = 150;
  const Matrix full = random_spd(n, rng);
  Matrix head(n - 1, n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    for (std::size_t j = 0; j + 1 < n; ++j) head(i, j) = full(i, j);
  auto factor = cholesky_blocked(head);
  ASSERT_TRUE(factor.has_value());
  Vec b(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) b[i] = full(i, n - 1);
  ASSERT_TRUE(factor->append_row(b, full(n - 1, n - 1)));
  const auto direct = cholesky_scalar(full);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LT(Matrix::max_abs_diff(factor->lower, direct->lower), 1e-9);
}

// ---- AUTODML_CHECKED invariants (active in scripts/check.sh's ASan leg) ----

TEST(CheckedMode, MatrixIndexOutOfBoundsThrows) {
#if AUTODML_CHECKED_ENABLED
  Matrix m(2, 3);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 3), std::logic_error);
  EXPECT_THROW(m.row(2), std::logic_error);
  EXPECT_NO_THROW(m(1, 2));
#else
  GTEST_SKIP() << "build with -DAUTODML_CHECKED=ON to enable";
#endif
}

TEST(CheckedMode, CheckFiniteNamesOffendingEntry) {
#if AUTODML_CHECKED_ENABLED
  Matrix m(2, 2);
  m(1, 0) = std::numeric_limits<double>::quiet_NaN();
  try {
    check_finite(m, "test matrix");
    FAIL() << "expected check_finite to throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(1,0)"), std::string::npos) << what;
    EXPECT_NE(what.find("test matrix"), std::string::npos) << what;
  }
  const Vec v = {0.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(check_finite(v, "test vec"), std::logic_error);
#else
  Matrix m(2, 2);
  m(1, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NO_THROW(check_finite(m, "test matrix"));  // compiled out
#endif
}

TEST(CheckedMode, CholeskyRejectsNonFiniteInputWithLocation) {
#if AUTODML_CHECKED_ENABLED
  Matrix m = Matrix::identity(3);
  m(2, 1) = std::numeric_limits<double>::quiet_NaN();
  try {
    cholesky(m);
    FAIL() << "expected cholesky to throw on non-finite input";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("(2,1)"), std::string::npos)
        << e.what();
  }
#else
  GTEST_SKIP() << "build with -DAUTODML_CHECKED=ON to enable";
#endif
}

TEST(Cholesky, SolveLowerUpperConsistency) {
  util::Rng rng(9);
  const Matrix a = random_spd(5, rng);
  const auto f = cholesky(a);
  ASSERT_TRUE(f.has_value());
  Vec b(5);
  for (auto& x : b) x = rng.normal();
  const Vec y = f->solve_lower(b);
  const Vec ly = f->lower.matvec(y);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(ly[i], b[i], 1e-10);
}

// ---- Nelder-Mead -------------------------------------------------------------------

TEST(NelderMead, MinimizesQuadratic) {
  const auto f = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const OptResult r = nelder_mead(f, Vec{0.0, 0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_LT(r.value, 1e-7);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto rosen = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  const OptResult r = nelder_mead(rosen, Vec{-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead([](std::span<const double>) { return 0.0; }, Vec{}),
               std::invalid_argument);
}

TEST(NelderMead, RespectsIterationBudget) {
  int calls = 0;
  const auto f = [&](std::span<const double> x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5;
  nelder_mead(f, Vec{10.0}, opts);
  EXPECT_LT(calls, 40);  // a handful per iteration at most
}

// ---- Adam -------------------------------------------------------------------------

TEST(Adam, MinimizesQuadraticWithGradient) {
  const auto f = [](std::span<const double> x, std::span<double> g) {
    g[0] = 2.0 * (x[0] - 4.0);
    g[1] = 2.0 * (x[1] + 2.0);
    return (x[0] - 4.0) * (x[0] - 4.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  AdamOptions opts;
  opts.max_iterations = 2000;
  opts.learning_rate = 0.1;
  const OptResult r = adam(f, Vec{0.0, 0.0}, opts);
  EXPECT_NEAR(r.x[0], 4.0, 1e-2);
  EXPECT_NEAR(r.x[1], -2.0, 1e-2);
}

TEST(Adam, KeepsBestSeenPoint) {
  // Pathological gradient that diverges after a good start; best-seen must
  // be retained even if later iterates get worse.
  int calls = 0;
  const auto f = [&](std::span<const double> x, std::span<double> g) {
    ++calls;
    g[0] = calls < 3 ? 2.0 * x[0] : -100.0;  // then runs away
    return calls < 3 ? x[0] * x[0] : 1e6;
  };
  AdamOptions opts;
  opts.max_iterations = 20;
  const OptResult r = adam(f, Vec{1.0}, opts);
  EXPECT_LE(r.value, 1.0);
}

TEST(Adam, StopsOnSmallGradient) {
  const auto f = [](std::span<const double> x, std::span<double> g) {
    g[0] = 0.0;
    return x[0];
  };
  const OptResult r = adam(f, Vec{5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Adam, ProjectsIterateOntoBounds) {
  // Unconstrained minimum at x=4, box [0,2]: the projected iterate must
  // converge to the boundary. Without projection the raw iterate would run
  // past 2 and keep collecting the stale boundary gradient while the
  // returned point stays clamped — the bug this option exists to fix.
  int out_of_bounds_evals = 0;
  const auto f = [&](std::span<const double> x, std::span<double> g) {
    if (x[0] < 0.0 || x[0] > 2.0) ++out_of_bounds_evals;
    g[0] = 2.0 * (x[0] - 4.0);
    return (x[0] - 4.0) * (x[0] - 4.0);
  };
  AdamOptions opts;
  opts.max_iterations = 500;
  opts.learning_rate = 0.1;
  opts.lower_bounds = Vec{0.0};
  opts.upper_bounds = Vec{2.0};
  const OptResult r = adam(f, Vec{1.0}, opts);
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_EQ(out_of_bounds_evals, 0);  // f only ever sees feasible points
}

TEST(Adam, ProjectsStartPointAndValidatesBoundSizes) {
  const auto f = [](std::span<const double> x, std::span<double> g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  AdamOptions opts;
  opts.lower_bounds = Vec{-1.0};
  opts.upper_bounds = Vec{1.0};
  opts.max_iterations = 0;
  const OptResult r = adam(f, Vec{50.0}, opts);  // start outside the box
  EXPECT_DOUBLE_EQ(r.x[0], 1.0);

  AdamOptions bad;
  bad.lower_bounds = Vec{0.0, 0.0};  // wrong size
  bad.upper_bounds = Vec{1.0, 1.0};
  EXPECT_THROW(adam(f, Vec{0.5}, bad), std::invalid_argument);
}

TEST(Adam, NonFiniteEvaluationsDoNotPoisonMoments) {
  // Every third evaluation blows up (NaN value, garbage gradient). The old
  // implementation fed that gradient into the m/v moment estimates, turning
  // them — and every subsequent step — into NaN. Fixed: non-finite evals
  // contribute zero gradient, momentum decays, and the search still lands
  // near the minimum.
  int calls = 0;
  const auto f = [&](std::span<const double> x, std::span<double> g) {
    ++calls;
    if (calls % 3 == 0) {
      g[0] = std::numeric_limits<double>::quiet_NaN();
      return std::numeric_limits<double>::quiet_NaN();
    }
    g[0] = 2.0 * (x[0] - 1.0);
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  AdamOptions opts;
  opts.max_iterations = 1000;
  opts.learning_rate = 0.05;
  const OptResult r = adam(f, Vec{-2.0}, opts);
  ASSERT_TRUE(std::isfinite(r.value));
  ASSERT_TRUE(std::isfinite(r.x[0]));
  EXPECT_NEAR(r.x[0], 1.0, 0.1);
}

TEST(Adam, NonFiniteInitialValueReportsInfinityNotNan) {
  // When every evaluation is non-finite the run is a washout, but it must
  // report +inf — which loses cleanly against any finite restart — rather
  // than NaN, which the old best-seen comparison propagated to the caller.
  const auto f = [](std::span<const double>, std::span<double> g) {
    g[0] = std::numeric_limits<double>::quiet_NaN();
    return std::numeric_limits<double>::quiet_NaN();
  };
  AdamOptions opts;
  opts.max_iterations = 20;
  const OptResult r = adam(f, Vec{0.5}, opts);
  EXPECT_FALSE(std::isnan(r.value));
  EXPECT_EQ(r.value, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(r.x[0]));  // iterate never NaN-poisoned
}

// ---- golden section ------------------------------------------------------------------

TEST(GoldenSection, FindsMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 0.5; };
  const OptResult r = golden_section(f, 0.0, 5.0);
  EXPECT_NEAR(r.x[0], 1.7, 1e-6);
  EXPECT_TRUE(r.converged);
}

TEST(GoldenSection, HandlesSwappedBounds) {
  const auto f = [](double x) { return std::abs(x - 2.0); };
  const OptResult r = golden_section(f, 5.0, 0.0);
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
}

// ---- numerical gradient ---------------------------------------------------------------

TEST(NumericalGradient, MatchesAnalytic) {
  const auto f = [](std::span<const double> x) {
    return std::sin(x[0]) + x[1] * x[1];
  };
  const Vec x{0.7, -1.3};
  const Vec g = numerical_gradient(f, x);
  EXPECT_NEAR(g[0], std::cos(0.7), 1e-6);
  EXPECT_NEAR(g[1], -2.6, 1e-6);
}

}  // namespace
}  // namespace autodml::math

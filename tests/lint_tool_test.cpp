// Drives adml-lint (tools/lint) against the fixture corpus under
// tests/lint_fixtures/. Every fixture line carrying an `expect(DNNN)`
// marker must produce exactly that finding, and no fixture may produce a
// finding without a marker — the comparison is an exact two-way match,
// so both false negatives and false positives fail loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace adml_lint {
namespace {

namespace fs = std::filesystem;

fs::path fixtures_root() {
  return fs::path(AUTODML_SOURCE_DIR) / "tests" / "lint_fixtures";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// (line, code) pairs from `expect(DNNN)` markers in the raw text.
std::multiset<std::pair<std::size_t, std::string>> expected_findings(
    const std::string& content) {
  std::multiset<std::pair<std::size_t, std::string>> out;
  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t pos = 0;
    while ((pos = line.find("expect(D", pos)) != std::string::npos) {
      const std::string code = line.substr(pos + 7, 4);
      out.emplace(line_no, code);
      pos += 8;
    }
  }
  return out;
}

std::vector<fs::path> fixture_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(fixtures_root())) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 6u) << "fixture corpus went missing";
  return files;
}

TEST(LintFixtures, EveryMarkerMatchesExactlyOneFinding) {
  for (const fs::path& file : fixture_files()) {
    const std::string content = read_file(file);
    const auto expected = expected_findings(content);
    std::multiset<std::pair<std::size_t, std::string>> actual;
    for (const Finding& f : scan_file(file.generic_string(), content)) {
      actual.emplace(f.line, f.code);
    }
    EXPECT_EQ(actual, expected) << "in fixture " << file << ":\n"
                                << [&] {
                                     std::string s;
                                     for (const Finding& f :
                                          scan_file(file.generic_string(),
                                                    content)) {
                                       s += f.to_string() + "\n";
                                     }
                                     return s;
                                   }();
  }
}

TEST(LintFixtures, CorpusExercisesMostOfTheCatalog) {
  std::set<std::string> codes;
  for (const fs::path& file : fixture_files()) {
    for (const auto& [line, code] : expected_findings(read_file(file))) {
      codes.insert(code);
    }
  }
  // The corpus must cover every error code and most warnings.
  for (const std::string_view code :
       {kNondetRandom, kWallClock, kUnorderedContainer, kManualSpanEvent,
        kLossyFloatFormat, kRawMutex, kNonLiteralSpanName, kBareSuppression,
        kUncheckedIo, kRawThread, kRandomHeader, kUnguardedMutexMember,
        kBadSpanName, kEndlFlush}) {
    EXPECT_TRUE(codes.count(std::string(code))) << "no fixture for " << code;
  }
}

TEST(LintFixtures, ScanPathsCoversTheCorpusSorted) {
  std::string error;
  const auto findings =
      scan_paths({fixtures_root().generic_string()}, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(findings.empty());
  EXPECT_TRUE(has_errors(findings));
  const bool sorted = std::is_sorted(
      findings.begin(), findings.end(), [](const auto& a, const auto& b) {
        return std::tie(a.path, a.line) < std::tie(b.path, b.line);
      });
  EXPECT_TRUE(sorted);
}

// ---- unit tests on synthetic content ---------------------------------------

TEST(LintScanner, JustifiedSuppressionSilencesOnlyThatCode) {
  const std::string content =
      "std::unordered_map<int,int> m;  "
      "// adml-lint: allow(D003 lookup-only, never iterated)\n"
      "std::unordered_map<int,int> n;\n";
  const auto findings = scan_file("src/core/x.cpp", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, kUnorderedContainer);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintScanner, BareSuppressionIsItselfAnError) {
  const auto findings =
      scan_file("src/core/x.cpp", "int a;  // adml-lint: allow(D003)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, kBareSuppression);
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(LintScanner, NeedlesInCommentsAndStringsAreInert) {
  const std::string content =
      "// std::mt19937 in a comment\n"
      "/* std::unordered_map across\n"
      "   lines */\n"
      "const char* s = \"std::rand() and std::endl\";\n";
  EXPECT_TRUE(scan_file("src/core/x.cpp", content).empty());
}

TEST(LintScanner, PathSensitivity) {
  const std::string clock = "auto t = std::chrono::steady_clock::now();\n";
  // Deterministic dir: error. Observability/util: legal.
  EXPECT_FALSE(scan_file("src/gp/x.cpp", clock).empty());
  EXPECT_TRUE(scan_file("src/obs/x.cpp", clock).empty());
  EXPECT_TRUE(scan_file("src/util/stopwatch.cpp", clock).empty());
  // Absolute path classifies by repo-relative suffix.
  EXPECT_FALSE(scan_file("/home/u/repo/src/gp/x.cpp", clock).empty());
}

TEST(LintScanner, FindingFormattingIsStable) {
  const auto findings =
      scan_file("src/core/x.cpp", "std::mt19937 gen;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string line = findings[0].to_string();
  EXPECT_NE(line.find("src/core/x.cpp:1:"), std::string::npos) << line;
  EXPECT_NE(line.find("D001 error:"), std::string::npos) << line;
  EXPECT_NE(line.find("hint:"), std::string::npos) << line;
}

TEST(LintScanner, UncheckedDurableIoFlagsOnlyDurablePaths) {
  const std::string bad = "ops.fsync(fd);\n";
  EXPECT_FALSE(scan_file("src/util/fs.cpp", bad).empty());
  EXPECT_FALSE(scan_file("src/core/session_io.cpp", bad).empty());
  // Same text outside the durability layer is not D009's business.
  EXPECT_TRUE(scan_file("src/core/bo_tuner.cpp", bad).empty());
  // Tested, captured, and explicitly discarded results are all clean.
  EXPECT_TRUE(
      scan_file("src/util/fs.cpp", "if (ops.fsync(fd) != 0) fail();\n")
          .empty());
  EXPECT_TRUE(
      scan_file("src/util/fs.cpp", "const int rc = ops.fsync(fd);\n")
          .empty());
  EXPECT_TRUE(
      scan_file("src/util/fs.cpp", "(void)ops.fsync(fd);\n").empty());
}

TEST(LintScanner, RawThreadPrimitivesFlagOnlyOutsideUtil) {
  const std::string spawn = "std::thread t([] {});\n";
  EXPECT_FALSE(scan_file("src/core/x.cpp", spawn).empty());
  EXPECT_FALSE(scan_file("tools/chaos/main.cpp", spawn).empty());
  // src/util is the concurrency layer: primitives live there by design.
  EXPECT_TRUE(scan_file("src/util/thread_pool.h", spawn).empty());
  // Futures alone are legal anywhere: they're the pool's return type.
  EXPECT_TRUE(
      scan_file("src/core/x.cpp", "std::future<int> f = pool.submit(g);\n")
          .empty());
}

TEST(LintScanner, CatalogListsEveryCodeOnceErrorsFirst) {
  const auto catalog = check_catalog();
  std::set<std::string_view> codes;
  bool seen_warning = false;
  for (const CheckInfo& check : catalog) {
    EXPECT_TRUE(codes.insert(check.code).second) << check.code;
    if (check.severity == Severity::kWarning) seen_warning = true;
    // Errors first: no error may follow a warning.
    EXPECT_FALSE(seen_warning && check.severity == Severity::kError);
  }
  EXPECT_EQ(codes.size(), 14u);
}

TEST(LintScanner, RealTreeIsClean) {
  std::string error;
  const auto findings = scan_paths(
      {(fs::path(AUTODML_SOURCE_DIR) / "src").generic_string(),
       (fs::path(AUTODML_SOURCE_DIR) / "tools").generic_string()},
      &error);
  EXPECT_TRUE(error.empty()) << error;
  std::string rendered;
  for (const Finding& f : findings) rendered += f.to_string() + "\n";
  EXPECT_TRUE(findings.empty()) << rendered;
}

}  // namespace
}  // namespace adml_lint

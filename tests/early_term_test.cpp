#include <gtest/gtest.h>

#include <cmath>

#include "core/early_termination.h"
#include "ml/convergence.h"

namespace autodml::core {
namespace {

// Checkpoints generated from the library's own learning-curve family:
// a run that reaches `target_metric` after `total_seconds`.
std::vector<RunCheckpoint> make_curve(double total_seconds, double target,
                                      int count, double rate = 1000.0) {
  ml::StatModelParams params;
  params.target_metric = target;
  params.metric_ceiling = target + 0.05;
  params.initial_metric = 0.1;
  std::vector<RunCheckpoint> cps;
  const double total_samples = total_seconds * rate;
  for (int i = 1; i <= count; ++i) {
    RunCheckpoint cp;
    cp.wall_seconds =
        total_seconds * static_cast<double>(i) / static_cast<double>(count + 4);
    cp.samples = cp.wall_seconds * rate;
    cp.metric = ml::metric_at(params, cp.samples, total_samples);
    cps.push_back(cp);
  }
  return cps;
}

EarlyTermOptions options_for(double target = 0.9) {
  EarlyTermOptions options;
  options.target_metric = target;
  options.min_checkpoints = 6;
  options.confirmations = 2;
  options.kill_factor = 1.3;
  options.optimism = 0.7;
  return options;
}

int feed_until_abort(EarlyTerminationPolicy& policy,
                     const std::vector<RunCheckpoint>& cps) {
  for (std::size_t i = 0; i < cps.size(); ++i) {
    if (policy.should_abort(cps[i])) return static_cast<int>(i) + 1;
  }
  return -1;
}

TEST(EarlyTermination, KillsClearlyHopelessRun) {
  // Run needs ~100x the incumbent; must be killed well before completion.
  EarlyTerminationPolicy policy(options_for(), /*incumbent=*/100.0);
  const auto cps = make_curve(10000.0, 0.9, 40);
  const int killed_at = feed_until_abort(policy, cps);
  ASSERT_GT(killed_at, 0);
  EXPECT_LE(killed_at, 12);  // within a few checkpoints after min
  EXPECT_LT(cps[killed_at - 1].wall_seconds, 10000.0 * 0.4);
}

TEST(EarlyTermination, SparesRunThatBeatsIncumbent) {
  EarlyTerminationPolicy policy(options_for(), /*incumbent=*/1000.0);
  const auto cps = make_curve(400.0, 0.9, 40);  // 2.5x better
  EXPECT_EQ(feed_until_abort(policy, cps), -1);
}

TEST(EarlyTermination, SparesComparableRun) {
  // Run ~ equal to incumbent: within kill_factor, must not be killed.
  EarlyTerminationPolicy policy(options_for(), /*incumbent=*/1000.0);
  const auto cps = make_curve(1000.0, 0.9, 40);
  EXPECT_EQ(feed_until_abort(policy, cps), -1);
}

TEST(EarlyTermination, NeverKillsWithoutIncumbent) {
  EarlyTerminationPolicy policy(
      options_for(), std::numeric_limits<double>::infinity());
  const auto cps = make_curve(1e7, 0.9, 40);
  EXPECT_EQ(feed_until_abort(policy, cps), -1);
}

TEST(EarlyTermination, RespectsMinCheckpoints) {
  EarlyTermOptions options = options_for();
  options.min_checkpoints = 10;
  EarlyTerminationPolicy policy(options, 1.0);  // absurdly good incumbent
  const auto cps = make_curve(1e6, 0.9, 40);
  const int killed_at = feed_until_abort(policy, cps);
  ASSERT_GT(killed_at, 0);
  EXPECT_GE(killed_at, 10 + options.confirmations - 1);
}

TEST(EarlyTermination, ConfirmationStreakRequired) {
  EarlyTermOptions options = options_for();
  options.confirmations = 5;
  EarlyTerminationPolicy few(options_for(), 100.0);
  EarlyTerminationPolicy many(options, 100.0);
  const auto cps = make_curve(10000.0, 0.9, 40);
  const int killed_few = feed_until_abort(few, cps);
  const int killed_many = feed_until_abort(many, cps);
  ASSERT_GT(killed_few, 0);
  ASSERT_GT(killed_many, 0);
  EXPECT_GE(killed_many, killed_few + 3);
}

TEST(EarlyTermination, RetryAttemptStartsFromACleanSlate) {
  // Regression: on_run_start used to reset only the dollar rate. Two
  // distinct failures followed. The inherited confirmation streak could
  // kill a fresh retry at its very first checkpoint; and the inherited
  // checkpoint history — a retry re-streams the curve from wall-clock
  // zero, so the old points are non-monotone replicates — violated the
  // curve fitter's strictly-increasing-samples precondition, leaving every
  // later fit failing, the streak perpetually reset, and a genuinely
  // hopeless retry unkillable. A retry must be judged exactly like a first
  // attempt: same verdicts, same kill checkpoint.
  EarlyTermOptions options = options_for();
  options.confirmations = 3;
  EarlyTerminationPolicy policy(options, /*incumbent=*/1.0);
  policy.on_run_start(/*usd_per_hour=*/0.0);
  const auto cps = make_curve(1e6, 0.9, 40);  // hopeless at every checkpoint
  const int killed_first = feed_until_abort(policy, cps);
  ASSERT_GT(killed_first, 0);  // streak == confirmations at the abort

  // The attempt dies (say, to a transient infra failure) and the
  // supervisor retries, re-announcing the attempt via on_run_start.
  policy.on_run_start(/*usd_per_hour=*/0.0);
  const int killed_retry = feed_until_abort(policy, cps);
  ASSERT_GT(killed_retry, 0);                         // still killable
  EXPECT_GE(killed_retry, options.confirmations);     // not insta-aborted
  EXPECT_EQ(killed_retry, killed_first);              // judged like attempt 1
}

TEST(EarlyTermination, DisabledPolicyNeverKills) {
  EarlyTermOptions options = options_for();
  options.enabled = false;
  EarlyTerminationPolicy policy(options, 1.0);
  const auto cps = make_curve(1e8, 0.9, 40);
  EXPECT_EQ(feed_until_abort(policy, cps), -1);
}

TEST(EarlyTermination, KillsRunWhoseCeilingMissesTarget) {
  // Curve saturates at 0.7 but the target is 0.9: unreachable.
  EarlyTerminationPolicy policy(options_for(0.9), 1000.0);
  std::vector<RunCheckpoint> cps;
  for (int i = 1; i <= 30; ++i) {
    RunCheckpoint cp;
    cp.wall_seconds = 10.0 * i;
    cp.samples = cp.wall_seconds * 100.0;
    cp.metric = 0.7 - 0.6 * std::exp(-cp.wall_seconds / 40.0);
    cps.push_back(cp);
  }
  const int killed_at = feed_until_abort(policy, cps);
  EXPECT_GT(killed_at, 0);
}

TEST(EarlyTermination, CostModeConvertsThroughDollarRate) {
  EarlyTermOptions options = options_for();
  options.objective_is_cost = true;
  // Incumbent 10 dollars; run needs ~3600s at 100 $/h = 100 dollars.
  EarlyTerminationPolicy policy(options, 10.0);
  policy.on_run_start(/*usd_per_hour=*/100.0);
  const auto cps = make_curve(3600.0, 0.9, 40);
  EXPECT_GT(feed_until_abort(policy, cps), 0);

  // Same trajectory on a cheap cluster is fine.
  EarlyTerminationPolicy cheap_policy(options, 10.0);
  cheap_policy.on_run_start(/*usd_per_hour=*/1.0);
  EXPECT_EQ(feed_until_abort(cheap_policy, cps), -1);
}

TEST(EarlyTermination, ProjectionIsReasonablyAccurate) {
  EarlyTerminationPolicy policy(options_for(), 1e18);  // never kills
  const double truth = 5000.0;
  const auto cps = make_curve(truth, 0.9, 40);
  feed_until_abort(policy, cps);
  // Projection (with optimism 0.7) should land within a small factor.
  EXPECT_GT(policy.last_projection(), truth * 0.25);
  EXPECT_LT(policy.last_projection(), truth * 2.5);
}

}  // namespace
}  // namespace autodml::core

#include <gtest/gtest.h>

#include <cmath>

#include "core/bo_tuner.h"
#include "core/sensitivity.h"
#include "synthetic_objective.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

BoOptions fast_options(std::uint64_t seed, int evals) {
  BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  return options;
}

// A constructible space the linter must reject: duplicate categorical
// entries make the one-hot encoding ambiguous (diagnostic L011).
class BrokenSpaceObjective final : public ObjectiveFunction {
 public:
  BrokenSpaceObjective() {
    space_.add(conf::ParamSpec::categorical("mode", {"a", "a"}));
  }
  const conf::ConfigSpace& space() const override { return space_; }
  double target_metric() const override { return 0.9; }
  RunOutcome run(const conf::Config&, RunController*) override {
    ++runs_;
    return RunOutcome{};
  }
  int runs() const { return runs_; }

 private:
  conf::ConfigSpace space_;
  int runs_ = 0;
};

TEST(BoTuner, RefusesSpaceWithLintErrorsBeforeSpendingBudget) {
  BrokenSpaceObjective objective;
  try {
    BoTuner tuner(objective, fast_options(1, 5));
    FAIL() << "BoTuner accepted a space with lint errors";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("L011"), std::string::npos) << what;
    EXPECT_NE(what.find("mode"), std::string::npos) << what;
  }
  EXPECT_EQ(objective.runs(), 0);  // no evaluation budget was spent
}

TEST(BoTuner, RejectsWarmStartTrialsFromDifferentSpaceShape) {
  SyntheticObjective objective;
  BoOptions options = fast_options(1, 5);
  Trial stale;
  stale.config = conf::Config(&objective.space(), {});  // zero values
  options.warm_start.push_back(stale);
  EXPECT_THROW(BoTuner(objective, std::move(options)), std::invalid_argument);
}

TEST(BoTuner, RespectsEvaluationBudgetExactly) {
  SyntheticObjective objective;
  BoTuner tuner(objective, fast_options(1, 15));
  const TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 15u);
  EXPECT_EQ(objective.total_runs(), 15);
  EXPECT_EQ(result.incumbent_curve.size(), 15u);
}

TEST(BoTuner, IncumbentCurveIsMonotoneNonIncreasing) {
  SyntheticObjective objective;
  BoTuner tuner(objective, fast_options(2, 20));
  const TuningResult result = tuner.tune();
  for (std::size_t i = 1; i < result.incumbent_curve.size(); ++i) {
    EXPECT_LE(result.incumbent_curve[i], result.incumbent_curve[i - 1]);
  }
}

TEST(BoTuner, FindsNearOptimum) {
  SyntheticObjective objective;
  BoTuner tuner(objective, fast_options(3, 30));
  const TuningResult result = tuner.tune();
  ASSERT_TRUE(result.found_feasible());
  // Optimum is 10; within 30 evaluations BO should get close.
  EXPECT_LT(result.best_objective, SyntheticObjective::kOptimum * 1.6);
  EXPECT_EQ(result.best_config.get_cat("mode"), "a");
}

TEST(BoTuner, BeatsRandomSamplingOnAverage) {
  double bo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SyntheticObjective bo_objective;
    BoTuner tuner(bo_objective, fast_options(seed, 25));
    bo_total += tuner.tune().best_objective;

    SyntheticObjective random_objective;
    util::Rng rng(seed);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 25; ++i) {
      const conf::Config c = random_objective.space().sample_uniform(rng);
      const RunOutcome outcome = random_objective.run(c, nullptr);
      if (outcome.feasible) best = std::min(best, outcome.objective);
    }
    random_total += best;
  }
  EXPECT_LT(bo_total, random_total);
}

TEST(BoTuner, DeterministicGivenSeed) {
  SyntheticObjective obj1, obj2;
  BoTuner t1(obj1, fast_options(7, 15));
  BoTuner t2(obj2, fast_options(7, 15));
  const TuningResult r1 = t1.tune();
  const TuningResult r2 = t2.tune();
  EXPECT_DOUBLE_EQ(r1.best_objective, r2.best_objective);
  ASSERT_EQ(r1.trials.size(), r2.trials.size());
  for (std::size_t i = 0; i < r1.trials.size(); ++i) {
    EXPECT_TRUE(r1.trials[i].config == r2.trials[i].config) << i;
  }
}

TEST(BoTuner, SurvivesCrashRegion) {
  // Even if many initial samples crash, the tuner must finish and learn.
  SyntheticObjective objective;
  BoOptions options = fast_options(11, 25);
  options.initial_design_size = 10;
  BoTuner tuner(objective, options);
  const TuningResult result = tuner.tune();
  EXPECT_TRUE(result.found_feasible());
  // Late trials should rarely be crashes once the feasibility model kicks in.
  int late_crashes = 0;
  for (std::size_t i = 15; i < result.trials.size(); ++i) {
    if (!result.trials[i].outcome.feasible) ++late_crashes;
  }
  EXPECT_LE(late_crashes, 4);
}

TEST(BoTuner, WarmStartSkipsColdExploration) {
  // Build a history from one tuning session and warm-start another.
  SyntheticObjective first;
  BoTuner pilot(first, fast_options(13, 20));
  const TuningResult pilot_result = pilot.tune();

  SyntheticObjective cold_obj, warm_obj;
  BoOptions cold_options = fast_options(14, 8);
  BoTuner cold(cold_obj, cold_options);
  BoOptions warm_options = fast_options(14, 8);
  warm_options.warm_start = pilot_result.trials;
  warm_options.initial_design_size = 2;  // prior knowledge replaces design
  BoTuner warm(warm_obj, warm_options);

  const double cold_best = cold.tune().best_objective;
  const double warm_best = warm.tune().best_objective;
  EXPECT_LE(warm_best, cold_best * 1.25);  // warm never much worse
}

TEST(BoTuner, WarmStartTrialsNotCountedInBudget) {
  SyntheticObjective pilot_obj;
  BoTuner pilot(pilot_obj, fast_options(15, 10));
  const TuningResult pilot_result = pilot.tune();

  SyntheticObjective objective;
  BoOptions options = fast_options(16, 5);
  options.warm_start = pilot_result.trials;
  BoTuner tuner(objective, options);
  const TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 5u);
  EXPECT_EQ(objective.total_runs(), 5);
}

TEST(BoTuner, SpentBudgetStopsSearch) {
  SyntheticObjective objective;
  BoOptions options = fast_options(17, 1000);
  options.max_spent_seconds = 100.0;  // a handful of runs at ~10-60 s each
  BoTuner tuner(objective, options);
  const TuningResult result = tuner.tune();
  EXPECT_LT(result.trials.size(), 30u);
  // The overshoot is at most one run.
  EXPECT_GE(result.total_spent_seconds, 100.0);
}

TEST(BoTuner, EarlyTerminationAbortsBadCandidates) {
  SyntheticObjective objective;
  BoOptions options = fast_options(19, 30);
  options.early_term.enabled = true;
  options.early_term.min_checkpoints = 4;
  options.early_term.kill_factor = 1.3;  // aggressive enough for the small
                                         // spread of the synthetic bowl
  BoTuner tuner(objective, options);
  const TuningResult result = tuner.tune();
  int aborted = 0;
  for (const auto& t : result.trials) aborted += t.outcome.aborted;
  EXPECT_GT(aborted, 0);  // bad modes/ks get killed from their curves
  EXPECT_TRUE(result.found_feasible());
}

TEST(BoTuner, SensitivityRanksIrrelevantKnobLast) {
  // x, mode, and k all drive the objective; "dud" does not. The ARD
  // relevance must put the dud at the bottom of the ranking.
  SyntheticObjective objective;
  BoTuner tuner(objective, fast_options(21, 35));
  tuner.tune();
  const math::Vec relevance = tuner.surrogate().ard_relevance();
  ASSERT_FALSE(relevance.empty());
  const auto importance =
      ard_param_importance(objective.space(), relevance);
  ASSERT_EQ(importance.size(), 4u);
  double total = 0.0;
  for (const auto& p : importance) total += p.importance;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(importance.back().param, "dud");
  EXPECT_LT(importance.back().importance, 0.25);
}

TEST(Sensitivity, DimensionMismatchThrows) {
  SyntheticObjective objective;
  EXPECT_THROW(ard_param_importance(objective.space(), math::Vec{1.0}),
               std::invalid_argument);
}

TEST(RecordTrial, TracksBestAndSpent) {
  SyntheticObjective objective;
  TuningResult result;
  util::Rng rng(23);
  conf::Config c = objective.space().sample_uniform(rng);
  c.set_double("x", 0.3);

  Trial good;
  good.config = c;
  good.outcome.feasible = true;
  good.outcome.objective = 12.0;
  good.outcome.spent_seconds = 12.0;
  record_trial(result, good);

  Trial failed;
  failed.config = c;
  failed.outcome.feasible = false;
  failed.outcome.spent_seconds = 1.0;
  record_trial(result, failed);

  EXPECT_DOUBLE_EQ(result.best_objective, 12.0);
  EXPECT_DOUBLE_EQ(result.total_spent_seconds, 13.0);
  EXPECT_EQ(result.incumbent_curve.size(), 2u);
  EXPECT_DOUBLE_EQ(result.incumbent_curve[1], 12.0);
}

}  // namespace
}  // namespace autodml::core

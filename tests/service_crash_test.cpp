// Crash/resume for service sessions: a daemon killed at each of the
// journal-append durability points (PR 8 chaos layer) must leave a
// journal that a fresh create-session resumes by replay, and the
// continuation must land byte-identical to an uninterrupted standalone
// reference. Death tests use the threadsafe style: the manager's worker
// pool is live when the armed crash point fires.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/bo_tuner.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/space_json.h"
#include "synthetic_objective.h"
#include "util/chaos.h"
#include "util/fs.h"
#include "util/json.h"

namespace autodml::service {
namespace {

using testing::SyntheticObjective;
using util::JsonValue;
namespace chaos = util::chaos;

constexpr int kEvals = 6;

core::BoOptions crash_options(std::uint64_t seed) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = kEvals;
  options.initial_design_size = 3;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 20;
  options.acq_optimizer.random_candidates = 32;
  options.early_term.enabled = false;
  options.async_q = 1;
  options.async_workers = 1;
  return options;
}

std::string create_line(const std::string& id, std::uint64_t seed,
                        const std::string& journal) {
  const SyntheticObjective probe;
  return R"({"op":"create-session","session":")" + id + R"(","seed":)" +
         std::to_string(seed) + R"(,"target_metric":0.9,"journal":")" +
         journal +
         R"(","options":{"max_evaluations":)" + std::to_string(kEvals) +
         R"(,"initial_design_size":3,"gp_restarts":1,)"
         R"("gp_adam_iterations":20,"acq_random_candidates":32,)"
         R"("early_term":false},"space":)" +
         util::dump_json(space_to_json(probe.space())) + "}";
}

JsonValue expect_ok(SessionManager& manager, const std::string& line) {
  JsonValue response = util::parse_json(manager.handle_line(line));
  EXPECT_TRUE(response.at("ok").as_bool())
      << line << " -> " << util::dump_json(response);
  return response;
}

/// Serial suggest/evaluate/report loop until the budget runs dry.
JsonValue drive_to_completion(SessionManager& manager,
                              const std::string& id) {
  SyntheticObjective objective;
  while (true) {
    const JsonValue ask = util::parse_json(manager.handle_line(
        R"({"op":"suggest","session":")" + id + R"("})"));
    if (!ask.at("ok").as_bool()) {
      EXPECT_EQ(ask.at("error").as_string(), "budget-exhausted");
      break;
    }
    conf::Config config =
        config_from_json(ask.at("config"), objective.space());
    const core::RunOutcome outcome = objective.run(config, nullptr);
    expect_ok(manager,
              R"({"op":"report","session":")" + id + R"(","ticket":)" +
                  std::to_string(static_cast<std::int64_t>(
                      ask.at("ticket").as_number())) +
                  R"(,"outcome":)" +
                  util::dump_json(outcome_to_json(outcome)) + "}");
  }
  return expect_ok(manager, R"({"op":"status","session":")" + id + R"("})");
}

/// The death-test body: arm one journal-append crash point (the journal
/// header is append #1, trial i is append #i+2) and drive a fresh session
/// until the armed append kills the process with _exit(86).
void drive_until_crash(const char* point, int hit, std::uint64_t seed,
                       const std::string& journal) {
  chaos::disarm_all();
  chaos::arm_crash_point(point, hit);
  SessionManager manager;
  expect_ok(manager, create_line("victim", seed, journal));
  (void)drive_to_completion(manager, "victim");
  // Reached only if the crash point never fired — fail the exit match.
  chaos::disarm_all();
}

/// Full scenario for one durability point: reference run, crash mid-
/// session at append `hit`, resume under a fresh manager, byte-compare.
void crash_and_resume(const char* point, std::uint64_t seed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string suffix =
      std::to_string(seed) + "_" + std::string(point).substr(
          std::string(point).rfind('.') + 1);
  const std::string ref_journal =
      ::testing::TempDir() + "/svc_crash_ref_" + suffix + ".journal";
  std::remove(ref_journal.c_str());
  SyntheticObjective reference;
  core::BoOptions options = crash_options(seed);
  options.journal_path = ref_journal;
  core::BoTuner tuner(reference, options);
  const core::TuningResult want = tuner.tune();

  const std::string journal =
      ::testing::TempDir() + "/svc_crash_" + suffix + ".journal";
  std::remove(journal.c_str());
  const int hit = 4;  // dies appending trial 2 (header + trials 0, 1 landed)
  EXPECT_EXIT(drive_until_crash(point, hit, seed, journal),
              ::testing::ExitedWithCode(chaos::kCrashExitCode), "");

  // pre_write dies before the record reaches the file; the other three
  // points die after the write() so the bytes survive process death.
  const std::size_t journaled =
      std::strcmp(point, "journal.append.pre_write") == 0
          ? static_cast<std::size_t>(hit - 2)
          : static_cast<std::size_t>(hit - 1);

  SessionManager manager;
  const JsonValue created =
      expect_ok(manager, create_line("resumed", seed, journal));
  EXPECT_EQ(created.at("replayed").as_number(),
            static_cast<double>(journaled));
  const JsonValue status = drive_to_completion(manager, "resumed");
  EXPECT_TRUE(status.at("done").as_bool());
  EXPECT_EQ(static_cast<std::size_t>(status.at("trials").as_number()),
            want.trials.size());
  EXPECT_EQ(status.at("best_objective").as_number(), want.best_objective);
  EXPECT_EQ(util::read_file(journal), util::read_file(ref_journal));
  std::remove(ref_journal.c_str());
  std::remove(journal.c_str());
}

TEST(ServiceCrashDeathTest, ResumesAfterCrashBeforeWrite) {
  crash_and_resume("journal.append.pre_write", 51);
}

TEST(ServiceCrashDeathTest, ResumesAfterCrashAfterWrite) {
  crash_and_resume("journal.append.post_write", 52);
}

TEST(ServiceCrashDeathTest, ResumesAfterCrashBeforeFsync) {
  crash_and_resume("journal.append.pre_fsync", 53);
}

TEST(ServiceCrashDeathTest, ResumesAfterCrashAfterFsync) {
  crash_and_resume("journal.append.post_fsync", 54);
}

}  // namespace
}  // namespace autodml::service

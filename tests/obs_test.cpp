// Unit coverage for the observability layer: Tracer span recording and
// export, and MetricsRegistry instrument semantics / snapshots.
//
// Both objects are process-wide singletons, so every test restores the
// disabled/cleared state it found — other test binaries rely on obs being
// a no-op by default.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/string_util.h"

namespace autodml {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().clear();
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  {
    ADML_SPAN("noop.outer");
    ADML_TRACE_INSTANT("noop.marker");
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(TracerTest, SpansRecordBalancedPairs) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  {
    ADML_SPAN("outer");
    {
      ADML_SPAN("inner");
    }
    ADML_TRACE_INSTANT("marker");
  }
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 5u);  // 2 B + 2 E + 1 instant

  const auto totals = tracer.span_totals();
  ASSERT_TRUE(totals.count("outer"));
  ASSERT_TRUE(totals.count("inner"));
  EXPECT_EQ(totals.at("outer").count, 1u);
  EXPECT_EQ(totals.at("inner").count, 1u);
  EXPECT_GE(totals.at("outer").total_seconds,
            totals.at("inner").total_seconds);
  EXPECT_FALSE(totals.count("marker"));  // instants are not spans
}

TEST_F(TracerTest, SpanOpenAcrossStopStillCloses) {
  // The balance guarantee: a span that saw tracing enabled at construction
  // emits its 'E' even if the tracer is stopped before destruction.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  {
    ADML_SPAN("straddler");
    tracer.stop();
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.span_totals().at("straddler").count, 1u);
}

TEST_F(TracerTest, StartDiscardsPreviousSession) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  { ADML_SPAN("first"); }
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 2u);
  tracer.start();
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TracerTest, ExportIsValidChromeTraceJson) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  {
    ADML_SPAN("exported");
    ADML_TRACE_INSTANT("point");
  }
  tracer.stop();
  const util::JsonValue doc = util::parse_json(tracer.export_chrome_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& e : events) {
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ph").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
  }
  EXPECT_EQ(events[0].at("ph").as_string(), "B");
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(events[1].at("s").as_string(), "t");  // instant scope
  EXPECT_EQ(events[2].at("ph").as_string(), "E");
  EXPECT_LE(events[0].at("ts").as_number(), events[2].at("ts").as_number());
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().enable();
  }
  void TearDown() override {
    obs::MetricsRegistry::instance().disable();
    obs::MetricsRegistry::instance().reset();
  }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  obs::Counter& c = obs::MetricsRegistry::instance().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  obs::MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0);
  // Same name resolves to the same instrument.
  obs::MetricsRegistry::instance().counter("test.counter").add(7);
  EXPECT_EQ(c.value(), 7);
}

TEST_F(MetricsTest, GaugeSetAddMax) {
  obs::Gauge& g = obs::MetricsRegistry::instance().gauge("test.gauge");
  g.set(2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.max_of(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.max_of(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST_F(MetricsTest, HistogramBucketsValuesInclusively) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("test.hist", bounds);
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 100.0}) h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2);  // v <= 1.0 (bound is inclusive)
  EXPECT_EQ(s.counts[1], 2);  // 1.0 < v <= 2.0
  EXPECT_EQ(s.counts[2], 1);  // 2.0 < v <= 4.0
  EXPECT_EQ(s.counts[3], 1);  // overflow
  EXPECT_EQ(s.count, 6);
  EXPECT_DOUBLE_EQ(s.sum, 108.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST_F(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  const std::vector<double> first = {1.0, 2.0};
  const std::vector<double> second = {1.0, 3.0};
  obs::MetricsRegistry::instance().histogram("test.rebind", first);
  EXPECT_THROW(
      obs::MetricsRegistry::instance().histogram("test.rebind", second),
      std::invalid_argument);
}

TEST_F(MetricsTest, MergeMatchesSerialAccumulation) {
  obs::Histogram serial({1.0, 2.0});
  obs::Histogram part_a({1.0, 2.0});
  obs::Histogram part_b({1.0, 2.0});
  for (double v : {0.5, 1.5, 3.0}) {
    serial.record(v);
    part_a.record(v);
  }
  for (double v : {1.0, 7.0}) {
    serial.record(v);
    part_b.record(v);
  }
  const obs::HistogramSnapshot merged =
      obs::merge(part_a.snapshot(), part_b.snapshot());
  const obs::HistogramSnapshot expected = serial.snapshot();
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
  EXPECT_DOUBLE_EQ(merged.min, expected.min);
  EXPECT_DOUBLE_EQ(merged.max, expected.max);

  obs::Histogram mismatched({5.0});
  EXPECT_THROW(obs::merge(part_a.snapshot(), mismatched.snapshot()),
               std::invalid_argument);
}

TEST_F(MetricsTest, DisabledMacroSitesAreNoOps) {
  obs::MetricsRegistry::instance().disable();
  ADML_COUNT("test.gated", 1);
  ADML_GAUGE_SET("test.gated_gauge", 5.0);
  obs::MetricsRegistry::instance().enable();
  // The gated sites must not even have registered the instruments.
  const util::JsonValue snap = obs::MetricsRegistry::instance().snapshot_json();
  EXPECT_FALSE(snap.at("counters").contains("test.gated"));
  EXPECT_FALSE(snap.at("gauges").contains("test.gated_gauge"));
}

TEST_F(MetricsTest, SnapshotJsonShape) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  const std::vector<double> two_buckets = {1.0, 2.0};
  const std::vector<double> one_bucket = {1.0};
  reg.counter("snap.counter").add(3);
  reg.gauge("snap.gauge").set(1.25);
  reg.histogram("snap.hist", two_buckets).record(1.5);
  reg.histogram("snap.empty_hist", one_bucket);
  const util::JsonValue snap = reg.snapshot_json();
  EXPECT_DOUBLE_EQ(snap.at("counters").at("snap.counter").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("snap.gauge").as_number(), 1.25);
  const util::JsonValue& h = snap.at("histograms").at("snap.hist");
  EXPECT_EQ(h.at("counts").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 1.5);
  // Empty histogram: min/max are not representable in JSON -> null.
  const util::JsonValue& empty = snap.at("histograms").at("snap.empty_hist");
  EXPECT_TRUE(empty.at("min").is_null());
  EXPECT_TRUE(empty.at("max").is_null());
  // Round-trips through the serializer.
  EXPECT_EQ(util::parse_json(util::dump_json(snap, 1)), snap);
}

TEST_F(MetricsTest, SnapshotCsvRows) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  const std::vector<double> one_bucket = {1.0};
  reg.counter("csv.counter").add(2);
  reg.histogram("csv.hist", one_bucket).record(0.5);
  const std::string csv = reg.snapshot_csv();
  EXPECT_NE(csv.find("counter,csv.counter,2"), std::string::npos);
  EXPECT_NE(csv.find("csv.hist.count,1"), std::string::npos);
  EXPECT_NE(csv.find("csv.hist.le_inf"), std::string::npos);
}

}  // namespace
}  // namespace autodml

// Tests for the incremental/parallel BO inner loop: rank-1 Cholesky
// append, GP append-vs-refit equivalence, analytic LML gradients, and
// thread-count invariance of acquisition proposals.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/acquisition_optimizer.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "math/cholesky.h"
#include "math/optimize.h"
#include "synthetic_objective.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace autodml {
namespace {

math::Matrix random_spd(std::size_t n, util::Rng& rng) {
  math::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  math::Matrix a = m.matmul(m.transposed());
  a.add_to_diagonal(static_cast<double>(n));
  return a;
}

math::Matrix leading_block(const math::Matrix& a, std::size_t n) {
  math::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) out(i, j) = a(i, j);
  return out;
}

// ---- rank-1 Cholesky append ----------------------------------------------

TEST(CholeskyAppend, MatchesFullRefactorization) {
  util::Rng rng(21);
  for (std::size_t n : {1u, 2u, 5u, 16u, 40u}) {
    const math::Matrix a_ext = random_spd(n + 1, rng);
    const auto full = math::cholesky(a_ext);
    ASSERT_TRUE(full.has_value()) << "n=" << n;

    auto base = math::cholesky(leading_block(a_ext, n));
    ASSERT_TRUE(base.has_value());
    math::Vec b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = a_ext(i, n);
    ASSERT_TRUE(base->append_row(b, a_ext(n, n)));

    // Same recurrence in the same order as the from-scratch factorization,
    // so the factors agree bit for bit.
    ASSERT_EQ(base->lower.rows(), n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        EXPECT_DOUBLE_EQ(base->lower(i, j), full->lower(i, j))
            << "n=" << n << " (" << i << "," << j << ")";
  }
}

TEST(CholeskyAppend, SequentialAppendsStayConsistent) {
  // Grow 4 -> 12 one row at a time; L L^T must track the full matrix.
  util::Rng rng(22);
  const std::size_t target = 12;
  const math::Matrix a = random_spd(target, rng);
  auto factor = math::cholesky(leading_block(a, 4));
  ASSERT_TRUE(factor.has_value());
  for (std::size_t n = 4; n < target; ++n) {
    math::Vec b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = a(i, n);
    ASSERT_TRUE(factor->append_row(b, a(n, n)));
  }
  const math::Matrix rebuilt =
      factor->lower.matmul(factor->lower.transposed());
  EXPECT_LT(math::Matrix::max_abs_diff(rebuilt, a), 1e-9);
}

TEST(CholeskyAppend, CarriesJitterIntoNewDiagonal) {
  // A factor obtained with jitter must append rows against the *jittered*
  // matrix, or later solves would mix two different systems. Build such a
  // factor explicitly: factorize A + jitter*I and stamp the jitter, exactly
  // the state cholesky_with_jitter leaves behind.
  util::Rng rng(23);
  const std::size_t n = 6;
  const double jitter = 1e-4;
  const math::Matrix a_ext = random_spd(n, rng);
  math::Matrix base_jittered = leading_block(a_ext, n - 1);
  base_jittered.add_to_diagonal(jitter);
  auto plain = math::cholesky(base_jittered);
  ASSERT_TRUE(plain.has_value());
  math::CholeskyFactor factor{plain->lower, jitter};
  math::Vec b(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) b[i] = a_ext(i, n - 1);
  ASSERT_TRUE(factor.append_row(b, a_ext(n - 1, n - 1)));
  math::Matrix jittered = a_ext;
  jittered.add_to_diagonal(jitter);
  const math::Matrix rebuilt =
      factor.lower.matmul(factor.lower.transposed());
  EXPECT_LT(math::Matrix::max_abs_diff(rebuilt, jittered), 1e-9);
}

TEST(CholeskyAppend, RejectsNonPositiveDefiniteExtension) {
  util::Rng rng(24);
  const std::size_t n = 5;
  const math::Matrix a = random_spd(n, rng);
  auto factor = math::cholesky(a);
  ASSERT_TRUE(factor.has_value());
  const math::Matrix before = factor->lower;
  // New column equal to A's first column with diagonal A(0,0): the extended
  // matrix duplicates row 0, so the Schur pivot is <= 0.
  math::Vec b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = a(i, 0);
  EXPECT_FALSE(factor->append_row(b, a(0, 0) - 1.0));
  // Factor unchanged on failure.
  EXPECT_EQ(math::Matrix::max_abs_diff(before, factor->lower), 0.0);
}

TEST(CholeskyAppend, LowerInverseMatchesUnitSolves) {
  util::Rng rng(25);
  const std::size_t n = 9;
  const math::Matrix a = random_spd(n, rng);
  const auto factor = math::cholesky(a);
  ASSERT_TRUE(factor.has_value());
  const math::Matrix inv = factor->lower_inverse();
  for (std::size_t j = 0; j < n; ++j) {
    math::Vec e(n, 0.0);
    e[j] = 1.0;
    const math::Vec col = factor->solve_lower(e);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(inv(i, j), col[i], 1e-12);
  }
}

// ---- GP incremental update -----------------------------------------------

struct GpData {
  math::Matrix x;
  math::Vec y;
};

GpData smooth_data(std::size_t n, std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  GpData d{math::Matrix(n, dim), math::Vec(n)};
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      d.x(i, k) = rng.uniform();
      v += std::sin(3.0 * (static_cast<double>(k) + 1.0) * d.x(i, k));
    }
    d.y[i] = v + 0.05 * rng.normal();
  }
  return d;
}

TEST(GpAppend, PosteriorMatchesRefitOnExtendedData) {
  const std::size_t n = 20, dim = 3;
  const GpData d = smooth_data(n + 1, dim, 31);
  gp::GpOptions options;
  options.optimize_hyperparams = false;

  gp::GaussianProcess incremental(std::make_unique<gp::Matern52Ard>(dim),
                                  options);
  math::Matrix head(n, dim);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < dim; ++k) head(i, k) = d.x(i, k);
  incremental.refit(head, std::span(d.y).subspan(0, n));
  ASSERT_TRUE(incremental.append_observation(d.x.row(n), d.y[n]));

  gp::GaussianProcess full(std::make_unique<gp::Matern52Ard>(dim), options);
  full.refit(d.x, d.y);

  EXPECT_EQ(incremental.num_points(), n + 1);
  EXPECT_NEAR(incremental.log_marginal_likelihood(),
              full.log_marginal_likelihood(), 1e-9);
  util::Rng rng(32);
  for (int t = 0; t < 10; ++t) {
    math::Vec probe(dim);
    for (auto& v : probe) v = rng.uniform();
    const gp::GpPrediction a = incremental.predict(probe);
    const gp::GpPrediction b = full.predict(probe);
    EXPECT_NEAR(a.mean, b.mean, 1e-9);
    EXPECT_NEAR(a.variance, b.variance, 1e-9);
  }
}

TEST(GpAppend, RepeatedAppendsTrackFullRefit) {
  const std::size_t start = 8, extra = 6, dim = 2;
  const GpData d = smooth_data(start + extra, dim, 33);
  gp::GpOptions options;
  options.optimize_hyperparams = false;
  gp::GaussianProcess incremental(
      std::make_unique<gp::SquaredExponentialArd>(dim), options);
  math::Matrix head(start, dim);
  for (std::size_t i = 0; i < start; ++i)
    for (std::size_t k = 0; k < dim; ++k) head(i, k) = d.x(i, k);
  incremental.refit(head, std::span(d.y).subspan(0, start));
  for (std::size_t i = start; i < start + extra; ++i)
    ASSERT_TRUE(incremental.append_observation(d.x.row(i), d.y[i]));

  gp::GaussianProcess full(std::make_unique<gp::SquaredExponentialArd>(dim),
                           options);
  full.refit(d.x, d.y);
  EXPECT_NEAR(incremental.log_marginal_likelihood(),
              full.log_marginal_likelihood(), 1e-9);
  EXPECT_NEAR(incremental.predict(math::Vec{0.4, 0.6}).mean,
              full.predict(math::Vec{0.4, 0.6}).mean, 1e-9);
}

TEST(GpAppend, RejectsMisuse) {
  gp::GaussianProcess gp(std::make_unique<gp::Matern52Ard>(2));
  EXPECT_THROW(gp.append_observation(math::Vec{0.5, 0.5}, 1.0),
               std::logic_error);  // not fitted yet
  const GpData d = smooth_data(5, 2, 34);
  gp::GpOptions options;
  options.optimize_hyperparams = false;
  gp::GaussianProcess fitted(std::make_unique<gp::Matern52Ard>(2), options);
  fitted.refit(d.x, d.y);
  EXPECT_THROW(fitted.append_observation(math::Vec{0.5}, 1.0),
               std::invalid_argument);  // wrong dim
  EXPECT_THROW(
      fitted.append_observation(math::Vec{0.5, 0.5},
                                std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

// ---- negative LML: analytic vs numerical gradient ------------------------

template <typename K>
class LmlGradientTest : public ::testing::Test {};

using LmlKernels = ::testing::Types<gp::SquaredExponentialArd,
                                    gp::Matern52Ard>;
TYPED_TEST_SUITE(LmlGradientTest, LmlKernels);

TYPED_TEST(LmlGradientTest, AnalyticMatchesNumericalAcrossNoiseLevels) {
  const std::size_t n = 12, dim = 2;
  const GpData d = smooth_data(n, dim, 35);
  gp::GpOptions options;
  options.optimize_hyperparams = false;
  gp::GaussianProcess gp(std::make_unique<TypeParam>(dim), options);
  gp.refit(d.x, d.y);

  for (const double noise : {1e-4, 1e-2, 0.3}) {
    // Packed layout: [kernel log-hypers..., log noise]. Perturb the kernel
    // hypers away from the defaults so no gradient component is trivially 0.
    math::Vec packed = gp.kernel().hyperparams();
    for (std::size_t i = 0; i < packed.size(); ++i)
      packed[i] += 0.1 * static_cast<double>(i + 1);
    packed.push_back(std::log(noise));

    const gp::GaussianProcess::LmlResult result = gp.negative_lml(packed);
    const auto value_only = [&](std::span<const double> t) {
      return gp.negative_lml(t).value;
    };
    const math::Vec numeric = math::numerical_gradient(value_only, packed);
    ASSERT_EQ(result.grad.size(), packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i) {
      const double scale = std::max(1.0, std::abs(result.grad[i]));
      EXPECT_NEAR(result.grad[i], numeric[i], 1e-4 * scale)
          << "noise=" << noise << " component " << i;
    }
  }
}

TEST(LmlGradient, MemoInvalidatedWhenDataChanges) {
  const GpData d = smooth_data(10, 2, 36);
  gp::GpOptions options;
  options.optimize_hyperparams = false;
  gp::GaussianProcess gp(std::make_unique<gp::Matern52Ard>(2), options);
  math::Matrix head(9, 2);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t k = 0; k < 2; ++k) head(i, k) = d.x(i, k);
  gp.refit(head, std::span(d.y).subspan(0, 9));

  math::Vec packed = gp.kernel().hyperparams();
  packed.push_back(std::log(1e-2));
  const double v1 = gp.negative_lml(packed).value;
  EXPECT_DOUBLE_EQ(gp.negative_lml(packed).value, v1);  // memo hit
  gp.append_observation(d.x.row(9), d.y[9]);
  // Same theta, different data: the memo must not serve the stale value.
  EXPECT_NE(gp.negative_lml(packed).value, v1);
}

// ---- proposal determinism across thread counts ---------------------------

TEST(ProposeCandidate, BitIdenticalAcrossThreadCounts) {
  testing::SyntheticObjective objective;
  core::SurrogateModel model(objective.space(), {}, 1);
  util::Rng hist_rng(41);
  std::vector<core::Trial> history;
  for (int i = 0; i < 24; ++i) {
    core::Trial t;
    conf::Config c = objective.space().sample_uniform(hist_rng);
    if (c.get_double("x") > 0.9) c.set_double("x", 0.9);
    t.config = c;
    t.outcome.feasible = true;
    t.outcome.objective = objective.true_value(c);
    t.outcome.spent_seconds = t.outcome.objective;
    history.push_back(std::move(t));
  }
  model.update(history);

  util::ThreadPool pool2(2), pool8(8);
  for (const auto kind :
       {core::AcquisitionKind::kLogEi, core::AcquisitionKind::kEiPerCost}) {
    for (std::uint64_t seed : {7u, 8u, 9u}) {
      util::Rng r1(seed), r2(seed), r8(seed);
      core::AcqOptimizerOptions serial;
      core::AcqOptimizerOptions two = serial, eight = serial;
      two.pool = &pool2;
      eight.pool = &pool8;
      const auto a = core::propose_candidate(model, kind, history, r1, serial);
      const auto b = core::propose_candidate(model, kind, history, r2, two);
      const auto c = core::propose_candidate(model, kind, history, r8, eight);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      ASSERT_TRUE(c.has_value());
      EXPECT_TRUE(*a == *b) << "1 vs 2 threads, seed " << seed;
      EXPECT_TRUE(*a == *c) << "1 vs 8 threads, seed " << seed;
      // The serial RNG and the pooled RNGs must have consumed identically.
      EXPECT_EQ(r1.next_u64(), r2.next_u64());
    }
  }
}

}  // namespace
}  // namespace autodml

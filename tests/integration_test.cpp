// End-to-end integration tests: the full stack (tuner -> adapter ->
// evaluator -> DES + convergence model) on real workloads, with small
// budgets to keep runtime reasonable.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baseline_tuners.h"
#include "core/bo_tuner.h"
#include "core/sensitivity.h"
#include "workloads/objective_adapter.h"

namespace autodml {
namespace {

core::BoOptions small_bo(std::uint64_t seed, int evals) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 200;
  return options;
}

TEST(Integration, TunerBeatsExpertDefaultOnLogreg) {
  const auto& workload = wl::workload_by_name("logreg-ads");
  wl::Evaluator evaluator(workload, 101);
  wl::EvaluatorObjective objective(evaluator);
  core::BoTuner tuner(objective, small_bo(101, 18));
  const core::TuningResult result = tuner.tune();
  ASSERT_TRUE(result.found_feasible());

  const wl::EvalResult tuned =
      evaluator.evaluate_ground_truth(result.best_config);
  const wl::EvalResult expert = evaluator.evaluate_ground_truth(
      wl::default_expert_config(workload, evaluator.space()));
  ASSERT_TRUE(tuned.feasible);
  EXPECT_LT(tuned.tta_seconds, expert.tta_seconds);
}

TEST(Integration, DeterministicEndToEnd) {
  const auto run_once = [] {
    const auto& workload = wl::workload_by_name("mlp-tabular");
    wl::Evaluator evaluator(workload, 55);
    wl::EvaluatorObjective objective(evaluator);
    core::BoTuner tuner(objective, small_bo(55, 12));
    return tuner.tune().best_objective;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Integration, EarlyTerminationSavesSearchCost) {
  const auto& workload = wl::workload_by_name("mlp-tabular");

  wl::Evaluator with_et(workload, 77);
  wl::EvaluatorObjective obj_et(with_et);
  core::BoOptions et_options = small_bo(77, 16);
  et_options.early_term.enabled = true;
  core::BoTuner tuner_et(obj_et, et_options);
  const core::TuningResult r_et = tuner_et.tune();

  wl::Evaluator without_et(workload, 77);
  wl::EvaluatorObjective obj_full(without_et);
  core::BoOptions full_options = small_bo(77, 16);
  full_options.early_term.enabled = false;
  core::BoTuner tuner_full(obj_full, full_options);
  const core::TuningResult r_full = tuner_full.tune();

  ASSERT_TRUE(r_et.found_feasible());
  ASSERT_TRUE(r_full.found_feasible());
  // Early termination must cut evaluation cost...
  EXPECT_LT(with_et.total_spent_seconds(),
            without_et.total_spent_seconds());
  // ...without wrecking final quality (generous factor for small budgets).
  EXPECT_LT(r_et.best_objective, r_full.best_objective * 3.0);
}

TEST(Integration, CostObjectiveFindsCheaperClusters) {
  const auto& workload = wl::workload_by_name("logreg-ads");
  wl::EvaluatorOptions time_opts;
  time_opts.objective = wl::Objective::kTimeToAccuracy;
  wl::EvaluatorOptions cost_opts;
  cost_opts.objective = wl::Objective::kCostToAccuracy;

  wl::Evaluator time_eval(workload, 31, time_opts);
  wl::EvaluatorObjective time_obj(time_eval);
  core::BoTuner time_tuner(time_obj, small_bo(31, 18));
  const core::TuningResult time_result = time_tuner.tune();

  wl::Evaluator cost_eval(workload, 31, cost_opts);
  wl::EvaluatorObjective cost_obj(cost_eval);
  core::BoTuner cost_tuner(cost_obj, small_bo(31, 18));
  const core::TuningResult cost_result = cost_tuner.tune();

  ASSERT_TRUE(time_result.found_feasible());
  ASSERT_TRUE(cost_result.found_feasible());
  const wl::EvalResult cost_best =
      cost_eval.evaluate_ground_truth(cost_result.best_config);
  const wl::EvalResult expert = cost_eval.evaluate_ground_truth(
      wl::default_expert_config(workload, cost_eval.space()));
  ASSERT_TRUE(cost_best.feasible);
  // Cost-objective tuning must at least beat the hand default on dollars.
  EXPECT_LT(cost_best.cost_usd, expert.cost_usd);
}

TEST(Integration, BaselinesRunOnRealWorkload) {
  const auto& workload = wl::workload_by_name("logreg-ads");
  for (const auto& entry : baselines::tuner_registry()) {
    if (entry.name == "autodml" || entry.name == "cherrypick") continue;
    wl::Evaluator evaluator(workload, 13);
    wl::EvaluatorObjective objective(evaluator);
    const core::TuningResult result = entry.fn(objective, 8, 13);
    EXPECT_FALSE(result.trials.empty()) << entry.name;
  }
}

TEST(Integration, TunerHandlesHeavyOomProneWorkload) {
  // resnet-imagenet has real OOM regions (big batches on small shapes).
  const auto& workload = wl::workload_by_name("resnet-imagenet");
  wl::Evaluator evaluator(workload, 303);
  wl::EvaluatorObjective objective(evaluator);
  core::BoTuner tuner(objective, small_bo(303, 15));
  const core::TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 15u);
  EXPECT_TRUE(result.found_feasible());
}

TEST(Integration, SensitivityOnRealWorkloadSumsToOne) {
  const auto& workload = wl::workload_by_name("mf-recsys");
  wl::Evaluator evaluator(workload, 404);
  wl::EvaluatorObjective objective(evaluator);
  core::BoTuner tuner(objective, small_bo(404, 16));
  tuner.tune();
  const auto relevance = tuner.surrogate().ard_relevance();
  ASSERT_FALSE(relevance.empty());
  const auto importance =
      core::ard_param_importance(evaluator.space(), relevance);
  double total = 0.0;
  for (const auto& p : importance) total += p.importance;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(importance.size(), evaluator.space().num_params());
}

}  // namespace
}  // namespace autodml

// The IO-fault seam (util/fs): every durability error path is exercised
// deterministically through FaultyFileOps, and every failure surfaces as a
// typed IoError carrying the operation, the path, and the errno — never as
// silent corruption.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/session_io.h"
#include "synthetic_objective.h"
#include "util/fs.h"
#include "util/rng.h"

namespace autodml::util {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(IoError, CarriesOpPathAndErrno) {
  const IoError e("append failed", "/data/t.journal", ENOSPC);
  EXPECT_EQ(e.op(), "append failed");
  EXPECT_EQ(e.path(), "/data/t.journal");
  EXPECT_EQ(e.error_code(), ENOSPC);
  const std::string what = e.what();
  EXPECT_NE(what.find("append failed"), std::string::npos) << what;
  EXPECT_NE(what.find("/data/t.journal"), std::string::npos) << what;
}

TEST(FaultShim, ShortWriteIsRetriedTransparently) {
  const std::string path = temp_path("fs_short.journal");
  FaultPlan plan;
  plan.short_writes[1] = 3;  // first write accepts only 3 bytes
  FaultyFileOps faulty(plan);
  {
    ScopedFileOps scoped(&faulty);
    DurableAppender appender(path);
    appender.append("hello world\n");
  }
  EXPECT_EQ(faulty.injected_faults(), 1u);
  EXPECT_EQ(read_file(path), "hello world\n");
  std::remove(path.c_str());
}

TEST(FaultShim, EintrIsRetriedTransparently) {
  const std::string path = temp_path("fs_eintr.journal");
  FaultPlan plan;
  plan.write_eintr.insert(1);
  FaultyFileOps faulty(plan);
  {
    ScopedFileOps scoped(&faulty);
    DurableAppender appender(path);
    appender.append("record\n");
  }
  EXPECT_EQ(faulty.injected_faults(), 1u);
  EXPECT_EQ(read_file(path), "record\n");
  std::remove(path.c_str());
}

TEST(FaultShim, EnospcSurfacesTypedErrorAndPriorRecordsSurvive) {
  const std::string path = temp_path("fs_enospc.journal");
  FaultPlan plan;
  plan.write_errors[2] = ENOSPC;  // first record lands, second does not
  FaultyFileOps faulty(plan);
  {
    ScopedFileOps scoped(&faulty);
    DurableAppender appender(path);
    appender.append("first\n");
    try {
      appender.append("second\n");
      FAIL() << "ENOSPC write was swallowed";
    } catch (const IoError& e) {
      EXPECT_EQ(e.error_code(), ENOSPC);
      EXPECT_EQ(e.path(), path);
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
  }
  // The failed append tore nothing that was already durable.
  EXPECT_EQ(read_file(path), "first\n");
  std::remove(path.c_str());
}

TEST(FaultShim, FsyncFailureSurfacesTypedError) {
  const std::string path = temp_path("fs_fsync.journal");
  FaultPlan plan;
  plan.fsync_errors[1] = EIO;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  DurableAppender appender(path);
  try {
    appender.append("record\n");
    FAIL() << "fsync failure was swallowed";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find("fsync"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(FaultShim, OpenFailureSurfacesOnConstruction) {
  const std::string path = temp_path("fs_open.journal");
  FaultPlan plan;
  plan.open_errors[1] = EACCES;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  EXPECT_THROW(DurableAppender appender(path), IoError);
}

TEST(FaultShim, AtomicWriteRenameFailureLeavesOriginalAndNoResidue) {
  const std::string dir = ::testing::TempDir() + "/fs_rename_dir";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/target.json";
  write_file_atomic(path, "old contents");

  FaultPlan plan;
  plan.rename_errors[1] = EACCES;
  FaultyFileOps faulty(plan);
  {
    ScopedFileOps scoped(&faulty);
    try {
      write_file_atomic(path, "new contents");
      FAIL() << "rename failure was swallowed";
    } catch (const IoError& e) {
      EXPECT_EQ(e.error_code(), EACCES);
      EXPECT_NE(std::string(e.what()).find("rename"), std::string::npos);
    }
  }
  // Readers still see the previous contents, and the temp file is gone.
  EXPECT_EQ(read_file(path), "old contents");
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "target.json");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(FaultShim, AtomicWriteEnospcCleansUpAndKeepsOriginal) {
  const std::string path = temp_path("fs_atomic_enospc.json");
  write_file_atomic(path, "old contents");
  FaultPlan plan;
  plan.write_errors[1] = ENOSPC;
  FaultyFileOps faulty(plan);
  {
    ScopedFileOps scoped(&faulty);
    EXPECT_THROW(write_file_atomic(path, "new contents"), IoError);
  }
  EXPECT_EQ(read_file(path), "old contents");
  std::remove(path.c_str());
}

TEST(FaultShim, IdenticalPlansBehaveIdentically) {
  // Determinism of the shim itself: two runs against the same plan inject
  // the same faults at the same operation indices.
  for (int round = 0; round < 2; ++round) {
    const std::string path =
        temp_path("fs_det_" + std::to_string(round) + ".journal");
    FaultPlan plan;
    plan.short_writes[1] = 2;
    plan.write_errors[3] = ENOSPC;
    FaultyFileOps faulty(plan);
    ScopedFileOps scoped(&faulty);
    DurableAppender appender(path);
    appender.append("aaaa\n");  // writes 1 (short) + 2 (remainder)
    EXPECT_THROW(appender.append("bbbb\n"), IoError);  // write 3
    EXPECT_EQ(faulty.injected_faults(), 2u);
    EXPECT_EQ(read_file(path), "aaaa\n");
    std::remove(path.c_str());
  }
}

TEST(SessionIoFaults, SaveTrialsSurfacesIoErrorWithPathContext) {
  const std::string path =
      ::testing::TempDir() + "/no_such_dir_adml/session.json";
  try {
    core::save_trials(path, {});
    FAIL() << "save into a missing directory was swallowed";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_dir_adml"),
              std::string::npos)
        << e.what();
  }
}

TEST(SessionIoFaults, JournalAppendPropagatesTypedErrorWithPath) {
  const std::string path = temp_path("fs_journal_typed.journal");
  core::JournalHeader header;
  header.seed = 7;
  header.num_params = 3;
  core::TrialJournal journal(path, header);  // header line written cleanly

  const autodml::testing::SyntheticObjective objective;
  util::Rng rng(7);
  core::Trial trial;
  trial.config = objective.space().sample_uniform(rng);
  trial.outcome.feasible = true;
  trial.outcome.objective = 1.0;

  FaultPlan plan;
  plan.write_errors[1] = ENOSPC;
  FaultyFileOps faulty(plan);
  ScopedFileOps scoped(&faulty);
  try {
    journal.append(trial);
    FAIL() << "journal append error was swallowed";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.error_code(), ENOSPC);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autodml::util

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition_optimizer.h"
#include "synthetic_objective.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

Trial completed_trial(const conf::Config& config, double objective) {
  Trial t;
  t.config = config;
  t.outcome.feasible = true;
  t.outcome.objective = objective;
  t.outcome.spent_seconds = objective;
  return t;
}

std::vector<Trial> quadratic_history(SyntheticObjective& objective, int n,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Trial> history;
  for (int i = 0; i < n; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    if (c.get_double("x") > 0.9) c.set_double("x", 0.9);  // stay feasible
    history.push_back(completed_trial(c, objective.true_value(c)));
  }
  return history;
}

TEST(AcqOptimizer, NeverProposesEvaluatedConfig) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto history = quadratic_history(objective, 20, 2);
  model.update(history);
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    for (const Trial& t : history) {
      EXPECT_FALSE(*candidate == t.config);
    }
  }
}

TEST(AcqOptimizer, ReturnsNulloptWhenSpaceExhausted) {
  // Tiny fully-discrete space: once everything is evaluated there is
  // nothing left to propose.
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::boolean("a"));
  space.add(conf::ParamSpec::boolean("b"));
  std::vector<Trial> history;
  util::Rng rng(5);
  for (const conf::Config& c : space.enumerate()) {
    history.push_back(completed_trial(c, 1.0 + rng.uniform()));
  }
  SurrogateModel model(space, {}, 1);
  model.update(history);
  const auto candidate =
      propose_candidate(model, AcquisitionKind::kEi, history, rng);
  EXPECT_FALSE(candidate.has_value());
}

TEST(AcqOptimizer, ProposalsConcentrateNearOptimum) {
  // With a well-sampled quadratic bowl, most proposals should land near the
  // optimum x=0.3 / mode=a rather than uniformly.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 40, 7);
  model.update(history);
  util::Rng rng(8);
  int near = 0;
  const int proposals = 12;
  for (int i = 0; i < proposals; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    if (std::abs(candidate->get_double("x") - 0.3) < 0.25 &&
        candidate->get_cat("mode") == "a") {
      ++near;
    }
    // Feed it back so successive proposals keep moving.
    history.push_back(
        completed_trial(*candidate, objective.true_value(*candidate)));
    model.update(history);
  }
  EXPECT_GE(near, proposals / 2);
}

TEST(AcqOptimizer, ImputedProjectionsRaisePredictionsInKilledRegion) {
  // Adding aborted trials that carry terrible projections must raise the
  // surrogate's predicted objective in that region relative to the same
  // model without them — killed runs are evidence, not silence.
  SyntheticObjective objective;
  // Base history visits only mode=a, so the model knows nothing of mode=b;
  // the imputed (killed) runs are its only evidence there.
  std::vector<Trial> base;
  for (Trial& t : quadratic_history(objective, 16, 9)) {
    t.config.set_cat("mode", "a");
    objective.space().canonicalize(t.config);
    t.outcome.objective = objective.true_value(t.config);
    base.push_back(std::move(t));
  }
  std::vector<Trial> with_imputed = base;
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    c.set_cat("mode", "b");
    Trial t;
    t.config = c;
    t.outcome.feasible = true;
    t.outcome.aborted = true;
    t.outcome.projected_objective = 5000.0;
    t.outcome.spent_seconds = 5.0;
    with_imputed.push_back(std::move(t));
  }
  SurrogateModel plain(objective.space(), {}, 1);
  plain.update(base);
  SurrogateModel informed(objective.space(), {}, 1);
  informed.update(with_imputed);

  conf::Config probe_b = objective.space().default_config();
  probe_b.set_double("x", 0.4);
  probe_b.set_cat("mode", "b");
  EXPECT_GT(informed.score(probe_b).mean, plain.score(probe_b).mean + 0.5);
  // And the incumbent is untouched (projections are not real observations).
  EXPECT_DOUBLE_EQ(informed.incumbent_log(), plain.incumbent_log());
}

TEST(AcqOptimizer, CostAwareAcquisitionShiftsProposals) {
  // Same objective everywhere, but mode=b "costs" 100x more to evaluate:
  // EI-per-cost should mostly propose mode=a.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history;
  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    Trial t = completed_trial(c, 20.0 + rng.uniform());
    t.outcome.spent_seconds = c.get_cat("mode") == "b" ? 2000.0 : 20.0;
    history.push_back(std::move(t));
  }
  model.update(history);
  int cheap = 0;
  const int proposals = 10;
  util::Rng prop_rng(12);
  for (int i = 0; i < proposals; ++i) {
    const auto candidate = propose_candidate(
        model, AcquisitionKind::kEiPerCost, history, prop_rng);
    ASSERT_TRUE(candidate.has_value());
    cheap += candidate->get_cat("mode") == "a";
    history.push_back(completed_trial(*candidate, 20.0));
    history.back().outcome.spent_seconds =
        candidate->get_cat("mode") == "b" ? 2000.0 : 20.0;
    model.update(history);
  }
  EXPECT_GE(cheap, proposals * 6 / 10);
}

TEST(AcqOptimizer, NeighborhoodSeedsComeFromBestTrials) {
  // With a single excellent trial far from everything else, local
  // neighborhoods should produce at least some proposals adjacent to it.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 15, 13);
  conf::Config star = objective.space().default_config();
  star.set_double("x", 0.31);
  star.set_cat("mode", "a");
  star.set_int("k", 7);
  history.push_back(completed_trial(star, SyntheticObjective::kOptimum));
  model.update(history);

  AcqOptimizerOptions options;
  options.random_candidates = 0;  // neighborhoods only
  options.top_k = 1;
  options.neighbors_per_seed = 32;
  util::Rng rng(14);
  const auto candidate = propose_candidate(model, AcquisitionKind::kLogEi,
                                           history, rng, options);
  ASSERT_TRUE(candidate.has_value());
  // A neighbor differs from the seed in a bounded way.
  EXPECT_LT(std::abs(candidate->get_double("x") - 0.31), 0.45);
}

TEST(ProposeBatch, UniformFallbackRespectsEvaluatedConfigs) {
  // Four-config discrete space, three already evaluated — all infeasible,
  // so the surrogate never becomes ready and every proposal goes through
  // the uniform fallback. The fallback must skip the evaluated configs
  // (resubmitting one wastes an hours-long run) and stop once the space is
  // exhausted instead of padding the batch with duplicates.
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::boolean("a"));
  space.add(conf::ParamSpec::boolean("b"));
  const std::vector<conf::Config> all = space.enumerate();
  ASSERT_EQ(all.size(), 4u);
  std::vector<Trial> history;
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    Trial t;
    t.config = all[i];
    t.outcome.feasible = false;  // crashed: no surrogate signal
    history.push_back(std::move(t));
  }
  util::Rng rng(17);
  const std::vector<conf::Config> batch = propose_batch(
      space, {}, AcquisitionKind::kLogEi, history, /*batch_size=*/4, rng);
  ASSERT_EQ(batch.size(), 1u);  // only one config was never evaluated
  EXPECT_TRUE(batch[0] == all.back());
  for (const Trial& t : history) {
    EXPECT_FALSE(batch[0] == t.config);
  }
}

TEST(ProposeBatch, LiarTrialsCarryNoFabricatedCost) {
  // Replay propose_batch's constant-liar loop by hand: fit on the real
  // history, propose, append a lie at the incumbent objective with *zero*
  // cost, repeat. propose_batch must produce the identical batch — if it
  // fabricated a cost for the lie (the old bug set spent_seconds to the
  // objective, feeding fake observations into the cost GP), the cost-aware
  // acquisition surface would diverge from this reference on the second
  // proposal.
  SyntheticObjective objective;
  const auto history = quadratic_history(objective, 25, 19);

  const std::uint64_t seed = 23;
  util::Rng batch_rng(seed);
  const std::vector<conf::Config> batch =
      propose_batch(objective.space(), {}, AcquisitionKind::kEiPerCost,
                    history, /*batch_size=*/3, batch_rng);
  ASSERT_EQ(batch.size(), 3u);

  util::Rng mirror_rng(seed);
  SurrogateOptions mirror_options;
  mirror_options.hyperopt_every = 1 << 20;
  SurrogateModel model(objective.space(), mirror_options,
                       mirror_rng.split().next_u64());
  std::vector<Trial> augmented = history;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    model.update(augmented);
    const auto expected = propose_candidate(
        model, AcquisitionKind::kEiPerCost, augmented, mirror_rng);
    ASSERT_TRUE(expected.has_value());
    EXPECT_TRUE(batch[i] == *expected) << "batch member " << i;
    Trial lie;
    lie.config = *expected;
    lie.outcome.feasible = true;
    lie.outcome.objective = std::exp(model.incumbent_log());
    lie.outcome.spent_seconds = 0.0;  // the contract under test
    augmented.push_back(std::move(lie));
  }
}

}  // namespace
}  // namespace autodml::core

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition_optimizer.h"
#include "synthetic_objective.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

Trial completed_trial(const conf::Config& config, double objective) {
  Trial t;
  t.config = config;
  t.outcome.feasible = true;
  t.outcome.objective = objective;
  t.outcome.spent_seconds = objective;
  return t;
}

std::vector<Trial> quadratic_history(SyntheticObjective& objective, int n,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Trial> history;
  for (int i = 0; i < n; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    if (c.get_double("x") > 0.9) c.set_double("x", 0.9);  // stay feasible
    history.push_back(completed_trial(c, objective.true_value(c)));
  }
  return history;
}

TEST(AcqOptimizer, NeverProposesEvaluatedConfig) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto history = quadratic_history(objective, 20, 2);
  model.update(history);
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    for (const Trial& t : history) {
      EXPECT_FALSE(*candidate == t.config);
    }
  }
}

TEST(AcqOptimizer, ReturnsNulloptWhenSpaceExhausted) {
  // Tiny fully-discrete space: once everything is evaluated there is
  // nothing left to propose.
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::boolean("a"));
  space.add(conf::ParamSpec::boolean("b"));
  std::vector<Trial> history;
  util::Rng rng(5);
  for (const conf::Config& c : space.enumerate()) {
    history.push_back(completed_trial(c, 1.0 + rng.uniform()));
  }
  SurrogateModel model(space, {}, 1);
  model.update(history);
  const auto candidate =
      propose_candidate(model, AcquisitionKind::kEi, history, rng);
  EXPECT_FALSE(candidate.has_value());
}

TEST(AcqOptimizer, ProposalsConcentrateNearOptimum) {
  // With a well-sampled quadratic bowl, most proposals should land near the
  // optimum x=0.3 / mode=a rather than uniformly.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 40, 7);
  model.update(history);
  util::Rng rng(8);
  int near = 0;
  const int proposals = 12;
  for (int i = 0; i < proposals; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    if (std::abs(candidate->get_double("x") - 0.3) < 0.25 &&
        candidate->get_cat("mode") == "a") {
      ++near;
    }
    // Feed it back so successive proposals keep moving.
    history.push_back(
        completed_trial(*candidate, objective.true_value(*candidate)));
    model.update(history);
  }
  EXPECT_GE(near, proposals / 2);
}

TEST(AcqOptimizer, ImputedProjectionsRaisePredictionsInKilledRegion) {
  // Adding aborted trials that carry terrible projections must raise the
  // surrogate's predicted objective in that region relative to the same
  // model without them — killed runs are evidence, not silence.
  SyntheticObjective objective;
  // Base history visits only mode=a, so the model knows nothing of mode=b;
  // the imputed (killed) runs are its only evidence there.
  std::vector<Trial> base;
  for (Trial& t : quadratic_history(objective, 16, 9)) {
    t.config.set_cat("mode", "a");
    objective.space().canonicalize(t.config);
    t.outcome.objective = objective.true_value(t.config);
    base.push_back(std::move(t));
  }
  std::vector<Trial> with_imputed = base;
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    c.set_cat("mode", "b");
    Trial t;
    t.config = c;
    t.outcome.feasible = true;
    t.outcome.aborted = true;
    t.outcome.projected_objective = 5000.0;
    t.outcome.spent_seconds = 5.0;
    with_imputed.push_back(std::move(t));
  }
  SurrogateModel plain(objective.space(), {}, 1);
  plain.update(base);
  SurrogateModel informed(objective.space(), {}, 1);
  informed.update(with_imputed);

  conf::Config probe_b = objective.space().default_config();
  probe_b.set_double("x", 0.4);
  probe_b.set_cat("mode", "b");
  EXPECT_GT(informed.score(probe_b).mean, plain.score(probe_b).mean + 0.5);
  // And the incumbent is untouched (projections are not real observations).
  EXPECT_DOUBLE_EQ(informed.incumbent_log(), plain.incumbent_log());
}

TEST(AcqOptimizer, CostAwareAcquisitionShiftsProposals) {
  // Same objective everywhere, but mode=b "costs" 100x more to evaluate:
  // EI-per-cost should mostly propose mode=a.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history;
  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    Trial t = completed_trial(c, 20.0 + rng.uniform());
    t.outcome.spent_seconds = c.get_cat("mode") == "b" ? 2000.0 : 20.0;
    history.push_back(std::move(t));
  }
  model.update(history);
  int cheap = 0;
  const int proposals = 10;
  util::Rng prop_rng(12);
  for (int i = 0; i < proposals; ++i) {
    const auto candidate = propose_candidate(
        model, AcquisitionKind::kEiPerCost, history, prop_rng);
    ASSERT_TRUE(candidate.has_value());
    cheap += candidate->get_cat("mode") == "a";
    history.push_back(completed_trial(*candidate, 20.0));
    history.back().outcome.spent_seconds =
        candidate->get_cat("mode") == "b" ? 2000.0 : 20.0;
    model.update(history);
  }
  EXPECT_GE(cheap, proposals * 6 / 10);
}

TEST(AcqOptimizer, NeighborhoodSeedsComeFromBestTrials) {
  // With a single excellent trial far from everything else, local
  // neighborhoods should produce at least some proposals adjacent to it.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 15, 13);
  conf::Config star = objective.space().default_config();
  star.set_double("x", 0.31);
  star.set_cat("mode", "a");
  star.set_int("k", 7);
  history.push_back(completed_trial(star, SyntheticObjective::kOptimum));
  model.update(history);

  AcqOptimizerOptions options;
  options.random_candidates = 0;  // neighborhoods only
  options.top_k = 1;
  options.neighbors_per_seed = 32;
  util::Rng rng(14);
  const auto candidate = propose_candidate(model, AcquisitionKind::kLogEi,
                                           history, rng, options);
  ASSERT_TRUE(candidate.has_value());
  // A neighbor differs from the seed in a bounded way.
  EXPECT_LT(std::abs(candidate->get_double("x") - 0.31), 0.45);
}

TEST(ProposeBatch, UniformFallbackRespectsEvaluatedConfigs) {
  // Four-config discrete space, three already evaluated — all infeasible,
  // so the surrogate never becomes ready and every proposal goes through
  // the uniform fallback. The fallback must skip the evaluated configs
  // (resubmitting one wastes an hours-long run) and stop once the space is
  // exhausted instead of padding the batch with duplicates.
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::boolean("a"));
  space.add(conf::ParamSpec::boolean("b"));
  const std::vector<conf::Config> all = space.enumerate();
  ASSERT_EQ(all.size(), 4u);
  std::vector<Trial> history;
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    Trial t;
    t.config = all[i];
    t.outcome.feasible = false;  // crashed: no surrogate signal
    history.push_back(std::move(t));
  }
  util::Rng rng(17);
  const std::vector<conf::Config> batch = propose_batch(
      space, {}, AcquisitionKind::kLogEi, history, /*batch_size=*/4, rng);
  ASSERT_EQ(batch.size(), 1u);  // only one config was never evaluated
  EXPECT_TRUE(batch[0] == all.back());
  for (const Trial& t : history) {
    EXPECT_FALSE(batch[0] == t.config);
  }
}

TEST(ProposeBatch, BatchMirrorsKrigingBelieverByHand) {
  // Replay propose_batch's kriging-believer loop by hand: fit on the real
  // history, propose, append a make_fantasy_trial belief at the posterior
  // mean, repeat. propose_batch must produce the identical batch — any
  // divergence means its internal fantasy construction drifted from the
  // documented heuristic (e.g. the removed constant liar at the incumbent).
  SyntheticObjective objective;
  const auto history = quadratic_history(objective, 25, 19);

  const std::uint64_t seed = 23;
  util::Rng batch_rng(seed);
  const std::vector<conf::Config> batch =
      propose_batch(objective.space(), {}, AcquisitionKind::kEiPerCost,
                    history, /*batch_size=*/3, batch_rng);
  ASSERT_EQ(batch.size(), 3u);

  util::Rng mirror_rng(seed);
  SurrogateOptions mirror_options;
  mirror_options.hyperopt_every = 1 << 20;
  SurrogateModel model(objective.space(), mirror_options,
                       mirror_rng.split().next_u64());
  std::vector<Trial> augmented = history;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    model.update(augmented);
    const auto expected = propose_candidate(
        model, AcquisitionKind::kEiPerCost, augmented, mirror_rng);
    ASSERT_TRUE(expected.has_value());
    EXPECT_TRUE(batch[i] == *expected) << "batch member " << i;
    augmented.push_back(make_fantasy_trial(model, *expected));
  }
}

TEST(MakeFantasyTrial, BelievesThePosteriorMeanAndNeverCountsAsSuccess) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto history = quadratic_history(objective, 20, 29);
  conf::Config probe = objective.space().default_config();
  probe.set_double("x", 0.5);

  // Not ready: no belief — the fantasy only dedups the pending config.
  // (The removed constant-liar code fabricated objective = 1.0 here.)
  const Trial blind = make_fantasy_trial(model, probe);
  EXPECT_TRUE(blind.fantasized);
  EXPECT_FALSE(blind.succeeded());
  EXPECT_TRUE(std::isinf(blind.outcome.objective));

  model.update(history);
  ASSERT_TRUE(model.ready());
  const Trial fantasy = make_fantasy_trial(model, probe);
  EXPECT_TRUE(fantasy.fantasized);
  EXPECT_FALSE(fantasy.succeeded());  // never an incumbent / neighborhood seed
  EXPECT_DOUBLE_EQ(fantasy.outcome.objective,
                   std::exp(model.score(probe).mean));
  EXPECT_DOUBLE_EQ(fantasy.outcome.spent_seconds, 0.0);
}

TEST(MakeFantasyTrial, FantasiesLeaveFeasibilityAndCostModelsUntouched) {
  // Regression for the constant-liar leak: batch placeholders are labeled
  // `feasible = true`, and untagged they trained the feasibility GP toward
  // "feasible" at pending points — in the worst case inside a known crash
  // region. A model fit on history + fantasies must score feasibility,
  // cost, and the incumbent exactly as a history-only fit does.
  SyntheticObjective objective;
  std::vector<Trial> history = quadratic_history(objective, 18, 31);
  util::Rng rng(32);
  for (int i = 0; i < 6; ++i) {  // teach the model a real crash region
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", 0.93 + 0.01 * i);
    Trial t;
    t.config = c;
    t.outcome.feasible = false;
    t.outcome.failure = "crash region";
    t.outcome.spent_seconds = 1.0;
    history.push_back(std::move(t));
  }

  SurrogateModel plain(objective.space(), {}, 7);
  plain.update(history);
  ASSERT_TRUE(plain.ready());

  // Fantasize pending evaluations *inside* the crash region — the most
  // damaging spot for a leaked `feasible = true` label.
  std::vector<Trial> augmented = history;
  for (double x : {0.94, 0.96, 0.98}) {
    conf::Config c = objective.space().default_config();
    c.set_double("x", x);
    augmented.push_back(make_fantasy_trial(plain, c));
  }
  SurrogateModel with_fantasies(objective.space(), {}, 7);
  with_fantasies.update(augmented);
  ASSERT_TRUE(with_fantasies.ready());

  EXPECT_DOUBLE_EQ(with_fantasies.incumbent_log(), plain.incumbent_log());
  util::Rng probe_rng(33);
  for (int i = 0; i < 12; ++i) {
    conf::Config probe = objective.space().sample_uniform(probe_rng);
    const SurrogateScore a = plain.score(probe);
    const SurrogateScore b = with_fantasies.score(probe);
    EXPECT_DOUBLE_EQ(a.prob_feasible, b.prob_feasible) << probe.to_string();
    EXPECT_DOUBLE_EQ(a.log_cost, b.log_cost) << probe.to_string();
  }
}

}  // namespace
}  // namespace autodml::core

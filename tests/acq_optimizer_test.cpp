#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition_optimizer.h"
#include "synthetic_objective.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

Trial completed_trial(const conf::Config& config, double objective) {
  Trial t;
  t.config = config;
  t.outcome.feasible = true;
  t.outcome.objective = objective;
  t.outcome.spent_seconds = objective;
  return t;
}

std::vector<Trial> quadratic_history(SyntheticObjective& objective, int n,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Trial> history;
  for (int i = 0; i < n; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    if (c.get_double("x") > 0.9) c.set_double("x", 0.9);  // stay feasible
    history.push_back(completed_trial(c, objective.true_value(c)));
  }
  return history;
}

TEST(AcqOptimizer, NeverProposesEvaluatedConfig) {
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  const auto history = quadratic_history(objective, 20, 2);
  model.update(history);
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    for (const Trial& t : history) {
      EXPECT_FALSE(*candidate == t.config);
    }
  }
}

TEST(AcqOptimizer, ReturnsNulloptWhenSpaceExhausted) {
  // Tiny fully-discrete space: once everything is evaluated there is
  // nothing left to propose.
  conf::ConfigSpace space;
  space.add(conf::ParamSpec::boolean("a"));
  space.add(conf::ParamSpec::boolean("b"));
  std::vector<Trial> history;
  util::Rng rng(5);
  for (const conf::Config& c : space.enumerate()) {
    history.push_back(completed_trial(c, 1.0 + rng.uniform()));
  }
  SurrogateModel model(space, {}, 1);
  model.update(history);
  const auto candidate =
      propose_candidate(model, AcquisitionKind::kEi, history, rng);
  EXPECT_FALSE(candidate.has_value());
}

TEST(AcqOptimizer, ProposalsConcentrateNearOptimum) {
  // With a well-sampled quadratic bowl, most proposals should land near the
  // optimum x=0.3 / mode=a rather than uniformly.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 40, 7);
  model.update(history);
  util::Rng rng(8);
  int near = 0;
  const int proposals = 12;
  for (int i = 0; i < proposals; ++i) {
    const auto candidate =
        propose_candidate(model, AcquisitionKind::kLogEi, history, rng);
    ASSERT_TRUE(candidate.has_value());
    if (std::abs(candidate->get_double("x") - 0.3) < 0.25 &&
        candidate->get_cat("mode") == "a") {
      ++near;
    }
    // Feed it back so successive proposals keep moving.
    history.push_back(
        completed_trial(*candidate, objective.true_value(*candidate)));
    model.update(history);
  }
  EXPECT_GE(near, proposals / 2);
}

TEST(AcqOptimizer, ImputedProjectionsRaisePredictionsInKilledRegion) {
  // Adding aborted trials that carry terrible projections must raise the
  // surrogate's predicted objective in that region relative to the same
  // model without them — killed runs are evidence, not silence.
  SyntheticObjective objective;
  // Base history visits only mode=a, so the model knows nothing of mode=b;
  // the imputed (killed) runs are its only evidence there.
  std::vector<Trial> base;
  for (Trial& t : quadratic_history(objective, 16, 9)) {
    t.config.set_cat("mode", "a");
    objective.space().canonicalize(t.config);
    t.outcome.objective = objective.true_value(t.config);
    base.push_back(std::move(t));
  }
  std::vector<Trial> with_imputed = base;
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    c.set_cat("mode", "b");
    Trial t;
    t.config = c;
    t.outcome.feasible = true;
    t.outcome.aborted = true;
    t.outcome.projected_objective = 5000.0;
    t.outcome.spent_seconds = 5.0;
    with_imputed.push_back(std::move(t));
  }
  SurrogateModel plain(objective.space(), {}, 1);
  plain.update(base);
  SurrogateModel informed(objective.space(), {}, 1);
  informed.update(with_imputed);

  conf::Config probe_b = objective.space().default_config();
  probe_b.set_double("x", 0.4);
  probe_b.set_cat("mode", "b");
  EXPECT_GT(informed.score(probe_b).mean, plain.score(probe_b).mean + 0.5);
  // And the incumbent is untouched (projections are not real observations).
  EXPECT_DOUBLE_EQ(informed.incumbent_log(), plain.incumbent_log());
}

TEST(AcqOptimizer, CostAwareAcquisitionShiftsProposals) {
  // Same objective everywhere, but mode=b "costs" 100x more to evaluate:
  // EI-per-cost should mostly propose mode=a.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history;
  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    conf::Config c = objective.space().sample_uniform(rng);
    c.set_double("x", std::min(c.get_double("x"), 0.9));
    Trial t = completed_trial(c, 20.0 + rng.uniform());
    t.outcome.spent_seconds = c.get_cat("mode") == "b" ? 2000.0 : 20.0;
    history.push_back(std::move(t));
  }
  model.update(history);
  int cheap = 0;
  const int proposals = 10;
  util::Rng prop_rng(12);
  for (int i = 0; i < proposals; ++i) {
    const auto candidate = propose_candidate(
        model, AcquisitionKind::kEiPerCost, history, prop_rng);
    ASSERT_TRUE(candidate.has_value());
    cheap += candidate->get_cat("mode") == "a";
    history.push_back(completed_trial(*candidate, 20.0));
    history.back().outcome.spent_seconds =
        candidate->get_cat("mode") == "b" ? 2000.0 : 20.0;
    model.update(history);
  }
  EXPECT_GE(cheap, proposals * 6 / 10);
}

TEST(AcqOptimizer, NeighborhoodSeedsComeFromBestTrials) {
  // With a single excellent trial far from everything else, local
  // neighborhoods should produce at least some proposals adjacent to it.
  SyntheticObjective objective;
  SurrogateModel model(objective.space(), {}, 1);
  std::vector<Trial> history = quadratic_history(objective, 15, 13);
  conf::Config star = objective.space().default_config();
  star.set_double("x", 0.31);
  star.set_cat("mode", "a");
  star.set_int("k", 7);
  history.push_back(completed_trial(star, SyntheticObjective::kOptimum));
  model.update(history);

  AcqOptimizerOptions options;
  options.random_candidates = 0;  // neighborhoods only
  options.top_k = 1;
  options.neighbors_per_seed = 32;
  util::Rng rng(14);
  const auto candidate = propose_candidate(model, AcquisitionKind::kLogEi,
                                           history, rng, options);
  ASSERT_TRUE(candidate.has_value());
  // A neighbor differs from the seed in a bounded way.
  EXPECT_LT(std::abs(candidate->get_double("x") - 0.31), 0.45);
}

}  // namespace
}  // namespace autodml::core

// Protocol conformance for the tuning service: every malformed frame,
// unknown id, out-of-contract op, and admission-control rejection must
// come back as a typed {"ok":false,"error":CODE} response — never an
// uncaught exception, never a crash — and a seeded fuzz loop over mutated
// frames holds the same invariant. Also pins the space/config JSON
// round-trip the wire format depends on.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "service/error.h"
#include "service/session_manager.h"
#include "service/space_json.h"
#include "synthetic_objective.h"
#include "util/json.h"
#include "util/rng.h"

namespace autodml::service {
namespace {

using testing::SyntheticObjective;
using util::JsonValue;

constexpr const char* kSpace =
    R"({"params":[{"name":"x","kind":"continuous","lo":0,"hi":1},)"
    R"({"name":"mode","kind":"categorical","categories":["a","b"]},)"
    R"({"name":"k","kind":"int","lo":1,"hi":10},)"
    R"({"name":"dud","kind":"continuous","lo":0,"hi":1}]})";

constexpr const char* kCheapOptions =
    R"("options":{"max_evaluations":4,"initial_design_size":2,)"
    R"("gp_restarts":1,"gp_adam_iterations":10,"acq_random_candidates":32,)"
    R"("early_term":false})";

std::string create_line(const std::string& id,
                        const std::string& extra = "") {
  return R"({"op":"create-session","session":")" + id + R"(","seed":3,)" +
         extra + kCheapOptions + R"(,"space":)" + kSpace + "}";
}

std::string ok_outcome(double objective) {
  return R"({"feasible":true,"aborted":false,"failure":"",)"
         R"("objective":)" +
         std::to_string(objective) +
         R"(,"spent_seconds":1.0,"usd_per_hour":1.0})";
}

/// Sends one frame and parses the response (which must always be JSON).
JsonValue call(SessionManager& manager, const std::string& line) {
  const std::string response = manager.handle_line(line);
  JsonValue value(nullptr);
  EXPECT_NO_THROW(value = util::parse_json(response))
      << "non-JSON response: " << response;
  EXPECT_TRUE(value.is_object()) << response;
  EXPECT_TRUE(value.contains("ok")) << response;
  return value;
}

void expect_error(SessionManager& manager, const std::string& line,
                  const std::string& code) {
  const JsonValue response = call(manager, line);
  EXPECT_FALSE(response.at("ok").as_bool()) << line;
  ASSERT_TRUE(response.contains("error")) << line;
  EXPECT_EQ(response.at("error").as_string(), code)
      << line << " -> " << response.at("detail").as_string();
}

JsonValue expect_ok(SessionManager& manager, const std::string& line) {
  const JsonValue response = call(manager, line);
  EXPECT_TRUE(response.at("ok").as_bool())
      << line << " -> " << util::dump_json(response);
  return response;
}

// ---- frame-level errors ----------------------------------------------------

TEST(ServiceProtocol, MalformedFramesAreTypedBadFrame) {
  SessionManager manager;
  expect_error(manager, "not json at all", errc::kBadFrame);
  expect_error(manager, R"({"op":"ping")", errc::kBadFrame);  // truncated
  expect_error(manager, R"([1,2,3])", errc::kBadFrame);  // non-object
  expect_error(manager, R"("ping")", errc::kBadFrame);
  expect_error(manager, R"({"op":"ping",})", errc::kBadFrame);
}

TEST(ServiceProtocol, MissingOrIllTypedFieldsAreBadRequest) {
  SessionManager manager;
  expect_error(manager, R"({"id":7})", errc::kBadRequest);  // no op
  expect_error(manager, R"({"op":42})", errc::kBadRequest);
  expect_error(manager, R"({"op":"status","session":9})", errc::kBadRequest);
  expect_error(manager, R"({"op":"status"})", errc::kBadRequest);  // no id
}

TEST(ServiceProtocol, UnknownOpIsTyped) {
  SessionManager manager;
  expect_error(manager, R"({"op":"restart-universe"})", errc::kUnknownOp);
}

TEST(ServiceProtocol, RequestIdIsEchoedOnSuccessAndError) {
  SessionManager manager;
  JsonValue ok = expect_ok(manager, R"({"op":"ping","id":"abc-1"})");
  EXPECT_EQ(ok.at("id").as_string(), "abc-1");
  JsonValue err = call(manager, R"({"op":"nope","id":17})");
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("id").as_number(), 17.0);
}

// ---- session-level errors --------------------------------------------------

TEST(ServiceProtocol, OpsAgainstUnknownSessionAreTyped) {
  SessionManager manager;
  for (const char* op : {"suggest", "report", "status", "close-session"}) {
    expect_error(manager,
                 std::string(R"({"op":")") + op + R"(","session":"ghost"})",
                 errc::kUnknownSession);
  }
}

TEST(ServiceProtocol, CreateRejectsBadSpacesLoudly) {
  SessionManager manager;
  expect_error(manager, R"({"op":"create-session","session":"a"})",
               errc::kBadRequest);  // no space at all
  expect_error(manager,
               R"({"op":"create-session","session":"a","space":{}})",
               errc::kInvalidSpace);
  expect_error(
      manager,
      R"({"op":"create-session","session":"a","space":{"params":[]}})",
      errc::kInvalidSpace);
  expect_error(manager,
               R"({"op":"create-session","session":"a","space":{"params":)"
               R"([{"name":"x","kind":"warp-field"}]}})",
               errc::kInvalidSpace);
  // Inverted bounds are caught by the ParamSpec factories.
  expect_error(manager,
               R"({"op":"create-session","session":"a","space":{"params":)"
               R"([{"name":"x","kind":"continuous","lo":2,"hi":1}]}})",
               errc::kInvalidSpace);
  // A failed create must not leak a registration: the id stays available.
  expect_ok(manager, create_line("a"));
}

TEST(ServiceProtocol, CreateRejectsUnknownOptionKeysAndDuplicateIds) {
  SessionManager manager;
  expect_error(manager,
               R"({"op":"create-session","session":"b","options":)"
               R"({"max_evals":9},"space":)" +
                   std::string(kSpace) + "}",
               errc::kBadRequest);  // typo'd key, rejected loudly
  expect_ok(manager, create_line("b"));
  expect_error(manager, create_line("b"), errc::kSessionExists);
}

TEST(ServiceProtocol, ReportForNeverSuggestedTicketIsUnknownTicket) {
  SessionManager manager;
  expect_ok(manager, create_line("s"));
  expect_error(manager,
               R"({"op":"report","session":"s","ticket":0,"outcome":)" +
                   ok_outcome(5.0) + "}",
               errc::kUnknownTicket);
  expect_ok(manager, R"({"op":"suggest","session":"s"})");
  expect_error(manager,
               R"({"op":"report","session":"s","ticket":12,"outcome":)" +
                   ok_outcome(5.0) + "}",
               errc::kUnknownTicket);
  expect_ok(manager,
            R"({"op":"report","session":"s","ticket":0,"outcome":)" +
                ok_outcome(5.0) + "}");
  // A second report for the same ticket is the classic double-tell.
  expect_error(manager,
               R"({"op":"report","session":"s","ticket":0,"outcome":)" +
                   ok_outcome(5.0) + "}",
               errc::kUnknownTicket);
}

TEST(ServiceProtocol, InvalidOutcomesAreRejectedBeforeMutation) {
  SessionManager manager;
  expect_ok(manager, create_line("s"));
  expect_ok(manager, R"({"op":"suggest","session":"s"})");
  const std::string prefix = R"({"op":"report","session":"s","ticket":0,)";
  expect_error(manager, prefix + R"("outcome":42})", errc::kInvalidOutcome);
  expect_error(manager, prefix + R"("outcome":{"feasible":true}})",
               errc::kInvalidOutcome);
  expect_error(manager,
               prefix +
                   R"("outcome":{"feasible":true,"aborted":false,)"
                   R"("failure":"","objective":1,"spent_seconds":-3,)"
                   R"("usd_per_hour":1}})",
               errc::kInvalidOutcome);
  expect_error(manager, prefix.substr(0, prefix.size() - 1) + "}",
               errc::kBadRequest);  // no outcome at all
  // The rejected reports must not have consumed the ticket.
  expect_ok(manager,
            R"({"op":"report","session":"s","ticket":0,"outcome":)" +
                ok_outcome(4.0) + "}");
}

TEST(ServiceProtocol, DoubleCloseSessionIsTyped) {
  SessionManager manager;
  expect_ok(manager, create_line("s"));
  JsonValue closed = expect_ok(manager,
                               R"({"op":"close-session","session":"s"})");
  EXPECT_TRUE(closed.at("closed").as_bool());
  // The registry entry is gone, so the second close reports unknown.
  expect_error(manager, R"({"op":"close-session","session":"s"})",
               errc::kUnknownSession);
  EXPECT_EQ(manager.active_sessions(), 0u);
}

TEST(ServiceProtocol, SuggestPastMaxPendingIsTyped) {
  SessionManager manager;
  expect_ok(manager,
            R"({"op":"create-session","session":"s","seed":3,)"
            R"("options":{"max_evaluations":8,"initial_design_size":2,)"
            R"("max_pending":2,"gp_restarts":1,"gp_adam_iterations":10,)"
            R"("acq_random_candidates":32,"early_term":false},"space":)" +
                std::string(kSpace) + "}");
  expect_ok(manager, R"({"op":"suggest","session":"s"})");
  expect_ok(manager, R"({"op":"suggest","session":"s"})");
  expect_error(manager, R"({"op":"suggest","session":"s"})",
               errc::kTooManyPending);
}

TEST(ServiceProtocol, SuggestPastBudgetIsTyped) {
  SessionManager manager;
  expect_ok(manager,
            R"({"op":"create-session","session":"s","seed":3,)"
            R"("options":{"max_evaluations":2,"initial_design_size":2,)"
            R"("gp_restarts":1,"gp_adam_iterations":10,)"
            R"("acq_random_candidates":32,"early_term":false},"space":)" +
                std::string(kSpace) + "}");
  for (int ticket = 0; ticket < 2; ++ticket) {
    expect_ok(manager, R"({"op":"suggest","session":"s"})");
    expect_ok(manager, R"({"op":"report","session":"s","ticket":)" +
                           std::to_string(ticket) +
                           R"(,"outcome":)" + ok_outcome(9.0) + "}");
  }
  JsonValue status = expect_ok(manager, R"({"op":"status","session":"s"})");
  EXPECT_TRUE(status.at("done").as_bool());
  expect_error(manager, R"({"op":"suggest","session":"s"})",
               errc::kBudgetExhausted);
}

TEST(ServiceProtocol, AdmissionControlCapsLiveSessions) {
  ServiceOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  expect_ok(manager, create_line("a"));
  expect_ok(manager, create_line("b"));
  expect_error(manager, create_line("c"), errc::kTooManySessions);
  expect_ok(manager, R"({"op":"close-session","session":"a"})");
  expect_ok(manager, create_line("c"));  // slot freed by the close
}

TEST(ServiceProtocol, LiveSessionsCannotShareAJournal) {
  // Regression for the TrialJournal single-owner contract: two live
  // writers would interleave records and corrupt replay, so the manager's
  // journal registry must reject the second create — and release the path
  // when the owner closes.
  const std::string journal =
      ::testing::TempDir() + "/service_shared.journal";
  std::remove(journal.c_str());
  SessionManager manager;
  const std::string extra = R"("journal":")" + journal + R"(",)";
  expect_ok(manager, create_line("owner", extra));
  expect_error(manager, create_line("thief", extra), errc::kJournalInUse);
  expect_ok(manager, R"({"op":"close-session","session":"owner"})");
  expect_ok(manager, create_line("heir", extra));  // resume is legal
  std::remove(journal.c_str());
}

// ---- wire-format round trips -----------------------------------------------

TEST(ServiceProtocol, SpaceJsonRoundTripsTheSyntheticSpace) {
  const SyntheticObjective objective;
  const JsonValue encoded = space_to_json(objective.space());
  const conf::ConfigSpace decoded = space_from_json(encoded);
  ASSERT_EQ(decoded.num_params(), objective.space().num_params());
  // A second encode of the decoded space must be byte-stable.
  EXPECT_EQ(util::dump_json(space_to_json(decoded)),
            util::dump_json(encoded));
  const conf::Config config = objective.space().default_config();
  const conf::Config back =
      config_from_json(config_to_json(config), decoded);
  EXPECT_EQ(util::dump_json(config_to_json(back)),
            util::dump_json(config_to_json(config)));
}

// ---- fuzz ------------------------------------------------------------------

TEST(ServiceProtocol, FuzzedFramesNeverCrashAndAlwaysAnswerJson) {
  SessionManager manager;
  expect_ok(manager, create_line("fz"));
  const std::vector<std::string> corpus = {
      R"({"op":"ping"})",
      create_line("fz2"),
      R"({"op":"suggest","session":"fz"})",
      R"({"op":"report","session":"fz","ticket":0,"outcome":)" +
          ok_outcome(7.0) + "}",
      R"({"op":"status","session":"fz","id":[1,{"k":null}]})",
      R"({"op":"close-session","session":"fz"})",
      R"({"op":"stats"})",
  };
  util::Rng rng(20240808);
  const std::string garbage = R"(" {}[],:truefalsenull0.5e-)";
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string frame =
        corpus[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const int mutations = static_cast<int>(rng.uniform_int(0, 4));
    for (int m = 0; m < mutations && !frame.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0:  // truncate
          frame.resize(pos);
          break;
        case 1:  // flip one byte to printable garbage
          frame[pos] = garbage[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(garbage.size()) - 1))];
          break;
        case 2:  // splice a chunk of another corpus entry
          frame.insert(
              pos, corpus[static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(corpus.size()) - 1))]
                       .substr(0, 13));
          break;
        default:  // delete a span
          frame.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 9)));
          break;
      }
    }
    if (frame.empty()) continue;
    // The only invariant fuzzing can assert — and the one that matters:
    // whatever arrives, the response is one well-formed JSON object with
    // an "ok" field, and the process is still here to send it.
    (void)call(manager, frame);
  }
}

}  // namespace
}  // namespace autodml::service

// Fixture: determinism violations on the approximate-surrogate path.
// Never compiled — scanned by lint_tool_test. Mirrors the shapes a naive
// RFF/refit-scheduling implementation would reach for: timing refits with
// a wall clock and caching feature rows in hash containers whose
// iteration order would leak into proposals.
#include <unordered_map>  // expect(D003)

namespace fixture {

double refit_deadline_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())  // expect(D002)
      .count();
}

bool should_refit(double last_refit) {
  const auto now = std::chrono::steady_clock::now();  // expect(D002)
  (void)now;
  return last_refit > 0.0;
}

double cached_feature(int key) {
  std::unordered_map<int, double> feature_cache;  // expect(D003)
  return feature_cache[key];
}

}  // namespace fixture

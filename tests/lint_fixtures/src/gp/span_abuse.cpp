// Fixture: trace-span discipline violations outside src/obs.
namespace fixture {

struct Buffer {
  void record(char phase, const char* name);
};

void bad_spans(Buffer& buf) {
  buf.record('B', "gp.fit");  // expect(D004)
  obs::ScopedSpan span("gp.fit");  // expect(D004)
  const char* name = "gp.fit";
  ADML_SPAN(name);  // expect(D007)
  ADML_SPAN("Fit GP");  // expect(D103)
  ADML_SPAN("gp.fit.cholesky");
  buf.record('E', "gp.fit");  // expect(D004)
}

}  // namespace fixture

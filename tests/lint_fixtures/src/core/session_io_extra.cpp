// Fixture: lossy float formats in a serialization file (path classifies
// as src/core/session_io*, where every float must round-trip).
#include <cstdio>

namespace fixture {

void write(double objective, double seconds, char* buf, unsigned long n) {
  std::snprintf(buf, n, "%g", objective);  // expect(D005)
  std::snprintf(buf, n, "%.6f", seconds);  // expect(D005)
  std::snprintf(buf, n, "%.17g", objective);
  std::snprintf(buf, n, "%d %s %zu", 1, "ok", n);
  std::snprintf(buf, n, "100%% done");
}

}  // namespace fixture

// Fixture: determinism violations on a core (proposal) path. Never
// compiled — scanned by lint_tool_test. A trailing marker naming a
// diagnostic code means the scanner must emit exactly that finding for
// the line; the test fails on both missed and extra findings.
#include <unordered_map>  // expect(D003)

#include <random>  // expect(D101)

namespace fixture {

int draw() {
  std::mt19937 gen(42);  // expect(D001)
  std::random_device rd;  // expect(D001)
  return static_cast<int>(gen() + rd());
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // expect(D002)
      .count();
}

int lookup(int k) {
  std::unordered_map<int, int> m;  // expect(D003)
  return m[k];
}

// Needles inside comments must not fire: std::mt19937, steady_clock::now,
// std::unordered_set.
const char* kDoc =
    "strings are inert too: std::rand() and system_clock::now()";

}  // namespace fixture

// Fixture: ad-hoc thread spawning on a core path. Never compiled —
// scanned by lint_tool_test. Work above src/util must run on
// util::ThreadPool; raw threads skip its ordering/join guarantees and are
// invisible to -Wthread-safety (see D010).
#include <thread>  // expect(D010)

#include <future>  // legal: futures are ThreadPool::submit's return type

namespace fixture {

void fire_and_forget() {
  std::thread worker([] {});  // expect(D010)
  worker.detach();
  std::jthread scoped([] {});  // expect(D010)
}

int eager() {
  auto f = std::async([] { return 7; });  // expect(D010)
  return f.get();
}

// A pool consumer holding a result is clean: no spawn happens here.
std::future<int> pending_result;

// Needles in comments and strings stay inert: std::thread, std::async.
const char* kDoc = "docs may say std::jthread without firing";

// A justified suppression silences the finding (e.g. a platform probe).
const unsigned kCores =
    std::thread::hardware_concurrency();  // adml-lint: allow(D010 query only, nothing is spawned)

}  // namespace fixture

// Fixture: determinism violations inside the service daemon. Never
// compiled — scanned by lint_tool_test. src/service is a deterministic
// path by contract (a session must replay to the same incumbent as a
// standalone BoTuner), so wall clocks and unordered containers are banned
// exactly as they are in src/core.
#include <unordered_map>  // expect(D003)

namespace fixture {

double session_age_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())  // expect(D002)
      .count();
}

int route(int session_id) {
  std::unordered_map<int, int> shard_of;  // expect(D003)
  return shard_of[session_id];
}

// Waits are not reads: a poll()/CondVar timeout may bound shutdown
// latency without making results time-dependent, so no needle fires here.
constexpr int kAcceptPollMs = 200;

}  // namespace fixture

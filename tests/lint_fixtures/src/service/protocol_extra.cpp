// Fixture: lossy float formatting in the wire-protocol serialization
// layer. Never compiled — scanned by lint_tool_test. src/service/protocol
// and src/service/space_json carry journal-grade round-trip guarantees
// (a config suggested over the wire is byte-compared against the journal
// on replay), so they classify as serialization files like
// core/session_io: every float must be %.17g.
#include <cstdio>

namespace fixture {

void emit(double objective) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%f", objective);    // expect(D005)
  std::snprintf(buf, sizeof(buf), "%.6g", objective);  // expect(D005)
  std::snprintf(buf, sizeof(buf), "%.17g", objective);  // round-trip: clean
}

}  // namespace fixture

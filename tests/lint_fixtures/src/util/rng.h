// Fixture: mirrors the real src/util/rng.h path, which IS exempt from
// the randomness rules — the scanner must report nothing here.
#pragma once

#include <random>

namespace fixture {

inline unsigned seed_engine() {
  std::mt19937 gen(12345);
  return static_cast<unsigned>(gen());
}

}  // namespace fixture

// Fixture: D009 — durable-path IO (util/fs*, core/session_io*) must check
// write/fsync/rename/close returns; a silently failed write here is
// silent journal corruption.
#include <cstdio>

namespace fixture {

struct Ops {
  long write(int fd, const void* buf, unsigned long n);
  int fsync(int fd);
  int rename(const char* from, const char* to);
  int close(int fd);
};

void durable_io(Ops& ops, Ops* pops, int fd, const void* buf,
                unsigned long n) {
  ops.write(fd, buf, n);  // expect(D009)
  pops->fsync(fd);        // expect(D009)
  ::fsync(fd);            // expect(D009)
  std::rename("a", "b");  // expect(D009)
  if (ops.write(fd, buf, n) < 0) return;  // result tested: clean
  const int rc = ops.fsync(fd);           // result captured: clean
  if (rc != 0) return;
  (void)ops.close(fd);  // explicit visible discard: clean
  if (::rename("a", "b") != 0) return;    // raw call, tested: clean
  ops.rename("a", "b");  // adml-lint: allow(D009 fixture: justified discard)
}

}  // namespace fixture

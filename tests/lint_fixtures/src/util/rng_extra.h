// Fixture: util/rng* files are exempt from D001/D101 — the whole point
// of the rule is that randomness is *centralized* here.
#pragma once

// NOTE: path is src/util/rng_extra.h, which does NOT match the
// src/util/rng.* exemption — so the include below must still flag.
#include <random>  // expect(D101)

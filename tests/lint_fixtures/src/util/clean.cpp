// Fixture: a file the scanner must pass with zero findings. Exercises
// the comment/string state machine and justified suppressions.
#include <map>
#include <string>
#include <thread>  // legal: src/util owns the thread primitives

#include "util/annotations.h"
#include "util/rng.h"

namespace fixture {

/* Block comments are inert: std::mt19937, std::unordered_map<int,int>,
   std::mutex, steady_clock::now(), std::endl. */

// util/ is not a deterministic dir, so clock needles are legal here even
// outside strings; keep one in a string anyway:
const char* kMsg = "timings use steady_clock::now() upstream";

struct Holder {
  // A justified suppression silences the unguarded-member warning.
  util::Mutex mu;  // adml-lint: allow(D102 guards construction of the pool, not data)
};

double draw(autodml::util::Rng& rng) { return rng.next_double(); }

// Raw strings hide needles too.
const char* kRaw = R"(std::rand() inside a raw string)";

// src/util IS the concurrency layer: raw thread primitives are legal here
// (D010 fires on them everywhere else).
struct PoolLike {
  void spawn() { workers.emplace_back(); }
  std::vector<std::thread> workers;
};

}  // namespace fixture

// Fixture: locking-discipline violations.
#include <mutex>  // expect(D006)

#include "util/annotations.h"

namespace fixture {

class Bad {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);  // expect(D006)
    ++count_;
  }

 private:
  std::mutex mu_;  // expect(D006)
  util::Mutex annotated_mu_;  // expect(D102)
  long count_ = 0;  // adml-lint: allow(D003)  expect(D008)
};

void log_progress() {
  std::cout << "done" << std::endl;  // expect(D104)
}

}  // namespace fixture

#include <gtest/gtest.h>

#include <cmath>

#include "sim/flow_network.h"
#include "util/rng.h"

namespace autodml::sim {
namespace {

TEST(FlowNetwork, SingleFlowExactDuration) {
  EventQueue q;
  FlowNetwork net(q);
  const LinkId link = net.add_link(1e6);  // 1 Mbit/s
  double done_at = -1.0;
  net.start_flow({link}, 2e6, [&] { done_at = q.now(); });  // 2 Mbit
  q.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(FlowNetwork, TwoEqualFlowsShareFairly) {
  EventQueue q;
  FlowNetwork net(q);
  const LinkId link = net.add_link(1e6);
  double t1 = -1, t2 = -1;
  net.start_flow({link}, 1e6, [&] { t1 = q.now(); });
  net.start_flow({link}, 1e6, [&] { t2 = q.now(); });
  q.run();
  // Both progress at 0.5 Mbit/s -> both finish at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(FlowNetwork, ShortFlowDepartsAndLongFlowSpeedsUp) {
  EventQueue q;
  FlowNetwork net(q);
  const LinkId link = net.add_link(1e6);
  double t_short = -1, t_long = -1;
  net.start_flow({link}, 0.5e6, [&] { t_short = q.now(); });
  net.start_flow({link}, 1.5e6, [&] { t_long = q.now(); });
  q.run();
  // Phase 1: both at 0.5 Mb/s; short needs 0.5Mb -> done at t=1.
  // Phase 2: long has 1.0 Mb left at full rate -> done at t=2.
  EXPECT_NEAR(t_short, 1.0, 1e-9);
  EXPECT_NEAR(t_long, 2.0, 1e-9);
}

TEST(FlowNetwork, MaxMinWithHeterogeneousPaths) {
  // Classic water-filling example: two links; flow A crosses both,
  // flow B only link 0, flow C only link 1. cap0 = 1, cap1 = 2 (Mbit/s).
  // Round 1: link0 fair share = 0.5 (2 flows), link1 = 1.0 -> bottleneck
  // link0 freezes A and B at 0.5. Round 2: C alone on link1 residual 1.5.
  EventQueue q;
  FlowNetwork net(q);
  const LinkId l0 = net.add_link(1e6);
  const LinkId l1 = net.add_link(2e6);
  const FlowId a = net.start_flow({l0, l1}, 1e7, [] {});
  const FlowId b = net.start_flow({l0}, 1e7, [] {});
  const FlowId c = net.start_flow({l1}, 1e7, [] {});
  EXPECT_NEAR(net.flow_rate(a), 0.5e6, 1.0);
  EXPECT_NEAR(net.flow_rate(b), 0.5e6, 1.0);
  EXPECT_NEAR(net.flow_rate(c), 1.5e6, 1.0);
}

TEST(FlowNetwork, UtilizationNeverExceedsCapacity) {
  EventQueue q;
  FlowNetwork net(q);
  util::Rng rng(3);
  std::vector<LinkId> links;
  for (int i = 0; i < 6; ++i)
    links.push_back(net.add_link(rng.uniform(1e5, 1e7)));
  for (int f = 0; f < 40; ++f) {
    std::vector<LinkId> path{links[rng.index(6)]};
    if (rng.bernoulli(0.5)) {
      LinkId extra = links[rng.index(6)];
      if (extra != path[0]) path.push_back(extra);
    }
    net.start_flow(path, rng.uniform(1e4, 1e6), [] {});
  }
  for (LinkId l = 0; l < net.num_links(); ++l) {
    EXPECT_LE(net.link_utilization(l), net.link_capacity(l) * (1.0 + 1e-9));
  }
}

TEST(FlowNetwork, EveryFlowGetsPositiveRateAndSomeLinkSaturates) {
  EventQueue q;
  FlowNetwork net(q);
  util::Rng rng(4);
  std::vector<LinkId> links;
  for (int i = 0; i < 4; ++i) links.push_back(net.add_link(1e6 * (i + 1)));
  std::vector<FlowId> flows;
  for (int f = 0; f < 12; ++f) {
    flows.push_back(net.start_flow({links[rng.index(4)]}, 1e9, [] {}));
  }
  for (FlowId f : flows) {
    EXPECT_GT(net.flow_rate(f), 0.0);
  }
  bool any_saturated = false;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    if (net.link_utilization(l) > 0.999 * net.link_capacity(l))
      any_saturated = true;
  }
  EXPECT_TRUE(any_saturated);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  EventQueue q;
  FlowNetwork net(q);
  const LinkId link = net.add_link(1e6);
  bool done = false;
  net.start_flow({link}, 0.0, [&] { done = true; });
  q.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(FlowNetwork, EmptyPathFlowCompletesImmediately) {
  EventQueue q;
  FlowNetwork net(q);
  bool done = false;
  net.start_flow({}, 1e9, [&] { done = true; });
  q.run();
  EXPECT_TRUE(done);
}

TEST(FlowNetwork, RejectsBadInputs) {
  EventQueue q;
  FlowNetwork net(q);
  EXPECT_THROW(net.add_link(0.0), std::invalid_argument);
  EXPECT_THROW(net.add_link(-5.0), std::invalid_argument);
  const LinkId l = net.add_link(1e6);
  EXPECT_THROW(net.start_flow({l + 10}, 100.0, [] {}), std::invalid_argument);
  EXPECT_THROW(net.start_flow({l}, -1.0, [] {}), std::invalid_argument);
}

TEST(FlowNetwork, LongVirtualTimesDoNotLivelock) {
  // Regression: once now() is large, the last bits of a flow used to need a
  // time step below the clock's ULP and the completion event spun forever.
  EventQueue q;
  FlowNetwork net(q);
  const LinkId link = net.add_link(1e9);
  // Push the clock far out first.
  q.schedule_at(1e6, [] {});
  q.run();
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    net.start_flow({link}, 512.0, [&] { ++completed; });
  }
  const std::size_t executed = q.run(100000);
  EXPECT_EQ(completed, 200);
  EXPECT_LT(executed, 100000u);  // must terminate well below the guard
}

TEST(StarFabric, TransferTimeIsLatencyPlusSerialization) {
  EventQueue q;
  FlowNetwork net(q);
  StarFabric fabric(q, net);
  const std::size_t a = fabric.add_node(8e6);  // 8 Mbit/s = 1 MB/s
  const std::size_t b = fabric.add_node(8e6);
  double done_at = -1;
  fabric.send(a, b, 1e6, 0.25, [&] { done_at = q.now(); });  // 1 MB
  q.run();
  EXPECT_NEAR(done_at, 0.25 + 1.0, 1e-9);
}

TEST(StarFabric, SameNodeTransferIsLatencyOnly) {
  EventQueue q;
  FlowNetwork net(q);
  StarFabric fabric(q, net);
  const std::size_t a = fabric.add_node(1e3);  // absurdly slow NIC
  double done_at = -1;
  fabric.send(a, a, 1e9, 0.1, [&] { done_at = q.now(); });
  q.run();
  EXPECT_NEAR(done_at, 0.1, 1e-12);
}

TEST(StarFabric, UplinkContentionSlowsConcurrentSends) {
  EventQueue q;
  FlowNetwork net(q);
  StarFabric fabric(q, net);
  const std::size_t src = fabric.add_node(8e6);
  const std::size_t d1 = fabric.add_node(8e6);
  const std::size_t d2 = fabric.add_node(8e6);
  double t1 = -1, t2 = -1;
  fabric.send(src, d1, 1e6, 0.0, [&] { t1 = q.now(); });
  fabric.send(src, d2, 1e6, 0.0, [&] { t2 = q.now(); });
  q.run();
  // Shared uplink: both take ~2 s instead of 1 s.
  EXPECT_NEAR(t1, 2.0, 1e-6);
  EXPECT_NEAR(t2, 2.0, 1e-6);
}

TEST(StarFabric, DownlinkContentionForSharedReceiver) {
  EventQueue q;
  FlowNetwork net(q);
  StarFabric fabric(q, net);
  const std::size_t s1 = fabric.add_node(8e6);
  const std::size_t s2 = fabric.add_node(8e6);
  const std::size_t dst = fabric.add_node(8e6);
  double t1 = -1, t2 = -1;
  fabric.send(s1, dst, 1e6, 0.0, [&] { t1 = q.now(); });
  fabric.send(s2, dst, 1e6, 0.0, [&] { t2 = q.now(); });
  q.run();
  EXPECT_NEAR(t1, 2.0, 1e-6);
  EXPECT_NEAR(t2, 2.0, 1e-6);
}

TEST(StarFabric, RejectsUnknownNodeAndBadLatency) {
  EventQueue q;
  FlowNetwork net(q);
  StarFabric fabric(q, net);
  const std::size_t a = fabric.add_node(1e6);
  EXPECT_THROW(fabric.send(a, 99, 10.0, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(fabric.send(a, a, 10.0, -0.5, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace autodml::sim

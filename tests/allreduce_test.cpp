#include <gtest/gtest.h>

#include "sim/allreduce_runtime.h"
#include "sim/analytic_model.h"

namespace autodml::sim {
namespace {

Cluster workers_only(int n, const std::string& type = "std8",
                     double straggler = 0.0) {
  ClusterSpec spec;
  spec.worker_type = type;
  spec.server_type = "mem8";
  spec.num_workers = n;
  spec.num_servers = 0;
  spec.heterogeneity_sigma = 0.0;
  spec.straggler_sigma = straggler;
  util::Rng rng(1);
  return provision(spec, rng);
}

JobParams job_of(double model_bytes = 60e6, int batch = 32) {
  JobParams job;
  job.model_bytes = model_bytes;
  job.flops_per_sample = 1e8;
  job.batch_per_worker = batch;
  return job;
}

RuntimeStats run(const Cluster& cluster, const JobParams& job,
                 std::uint64_t seed = 5, int measure = 12) {
  util::Rng rng(seed);
  AllReduceSimOptions options;
  options.warmup_iterations = 2;
  options.measure_iterations = measure;
  return simulate_allreduce(cluster, job, rng, options);
}

TEST(AllReduce, SingleWorkerHasNoCommunication) {
  const RuntimeStats stats = run(workers_only(1), job_of());
  EXPECT_TRUE(stats.completed);
  EXPECT_DOUBLE_EQ(stats.bytes_per_update, 0.0);
  EXPECT_GT(stats.updates_per_second, 0.0);
}

TEST(AllReduce, StalenessAlwaysZero) {
  const RuntimeStats stats = run(workers_only(4), job_of());
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 0.0);
}

TEST(AllReduce, BytesPerUpdateMatchesRingFormula) {
  // Per collective, each worker ships 2(W-1) chunks of M/W; per committed
  // update (W per collective) that is 2(W-1)/W^2 * M ... measured per update
  // across all workers: total bytes = W * 2(W-1) * M/W = 2(W-1)M, and
  // updates per collective = W, so bytes_per_update = 2(W-1)M/W.
  const int w = 4;
  const double model = 60e6;
  const RuntimeStats stats = run(workers_only(w), job_of(model));
  const double expected = 2.0 * (w - 1) * model / w;
  EXPECT_NEAR(stats.bytes_per_update, expected, expected * 0.01);
}

TEST(AllReduce, IterationTimeGrowsWithModelSize) {
  const RuntimeStats small = run(workers_only(4), job_of(20e6));
  const RuntimeStats large = run(workers_only(4), job_of(400e6));
  EXPECT_GT(large.mean_iteration_seconds, small.mean_iteration_seconds);
}

TEST(AllReduce, DeterministicGivenSeed) {
  const RuntimeStats a = run(workers_only(4), job_of(), 9);
  const RuntimeStats b = run(workers_only(4), job_of(), 9);
  EXPECT_DOUBLE_EQ(a.updates_per_second, b.updates_per_second);
}

TEST(AllReduce, StragglersInflateBlockedTime) {
  const RuntimeStats crisp = run(workers_only(8, "std8", 0.0), job_of());
  const RuntimeStats noisy = run(workers_only(8, "std8", 0.5), job_of());
  EXPECT_GT(noisy.blocked_fraction, crisp.blocked_fraction);
  EXPECT_LT(noisy.updates_per_second, crisp.updates_per_second);
}

TEST(AllReduce, NearAnalyticForDeterministicCluster) {
  // With zero jitter the DES should be close to the closed form.
  const Cluster cluster = workers_only(4);
  const JobParams job = job_of();
  const RuntimeStats stats = run(cluster, job, 3, 16);
  const AnalyticEstimate est = analytic_allreduce(cluster, job);
  EXPECT_NEAR(stats.mean_iteration_seconds, est.iteration_seconds,
              est.iteration_seconds * 0.25);
}

TEST(AllReduce, ScalesSamplesPerSecondWithWorkers) {
  // Compute-bound job: near-linear scaling until the ring dominates.
  JobParams job = job_of(10e6);
  job.flops_per_sample = 5e8;
  const RuntimeStats w2 = run(workers_only(2), job);
  const RuntimeStats w8 = run(workers_only(8), job);
  EXPECT_GT(w8.samples_per_second, 2.5 * w2.samples_per_second);
}

TEST(AllReduce, Fp16CompressionSpeedsUpCommBoundJob) {
  JobParams heavy = job_of(800e6);
  heavy.flops_per_sample = 1e6;  // comm-dominated
  JobParams fp16 = heavy;
  fp16.compression = Compression::kFp16;
  const RuntimeStats a = run(workers_only(8), heavy);
  const RuntimeStats b = run(workers_only(8), fp16);
  EXPECT_GT(b.updates_per_second, 1.3 * a.updates_per_second);
}

class AllReduceScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceScaleTest, CompletesAtEveryScale) {
  const RuntimeStats stats = run(workers_only(GetParam()), job_of(), 2, 6);
  EXPECT_TRUE(stats.completed);
  EXPECT_GT(stats.updates_per_second, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, AllReduceScaleTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace autodml::sim

#include <gtest/gtest.h>

#include "sim/analytic_model.h"
#include "sim/memory_model.h"
#include "sim/ps_runtime.h"
#include "sim/system_sim.h"
#include "util/stats.h"

namespace autodml::sim {
namespace {

Cluster make_cluster(int workers, int servers,
                     const std::string& wtype = "std8") {
  ClusterSpec spec;
  spec.worker_type = wtype;
  spec.server_type = "mem8";
  spec.num_workers = workers;
  spec.num_servers = servers;
  spec.heterogeneity_sigma = 0.0;
  spec.straggler_sigma = 0.0;
  util::Rng rng(1);
  return provision(spec, rng);
}

// ---- cluster / catalog ---------------------------------------------------------

TEST(Catalog, HasEightTypesWithSaneFields) {
  const auto& catalog = instance_catalog();
  EXPECT_EQ(catalog.size(), 8u);
  for (const auto& t : catalog) {
    EXPECT_GT(t.gflops, 0.0);
    EXPECT_GT(t.ram_gb, 0.0);
    EXPECT_GT(t.nic_gbps, 0.0);
    EXPECT_GT(t.usd_per_hour, 0.0);
  }
}

TEST(Catalog, LookupByName) {
  EXPECT_EQ(instance_by_name("gpu1").name, "gpu1");
  EXPECT_THROW(instance_by_name("nonexistent"), std::invalid_argument);
}

TEST(Cluster, ProvisionCountsAndPricing) {
  const Cluster c = make_cluster(3, 2);
  EXPECT_EQ(c.workers.size(), 3u);
  EXPECT_EQ(c.servers.size(), 2u);
  const double expected = 3 * instance_by_name("std8").usd_per_hour +
                          2 * instance_by_name("mem8").usd_per_hour;
  EXPECT_NEAR(c.usd_per_hour(), expected, 1e-12);
}

TEST(Cluster, SpeedFactorsNeverExceedOne) {
  ClusterSpec spec;
  spec.worker_type = "std4";
  spec.server_type = "mem8";
  spec.num_workers = 50;
  spec.heterogeneity_sigma = 0.3;
  util::Rng rng(9);
  const Cluster c = provision(spec, rng);
  for (const auto& n : c.workers) {
    EXPECT_LE(n.speed_factor, 1.0);
    EXPECT_GT(n.speed_factor, 0.0);
  }
}

TEST(Cluster, ProvisionValidation) {
  ClusterSpec spec;
  spec.worker_type = "std4";
  spec.num_workers = 0;
  util::Rng rng(1);
  EXPECT_THROW(provision(spec, rng), std::invalid_argument);
}

// ---- memory model ---------------------------------------------------------------

TEST(MemoryModel, FeasibleSmallJob) {
  JobParams job;
  job.model_bytes = 50e6;
  job.flops_per_sample = 1e7;
  job.batch_per_worker = 32;
  MemoryParams params;
  params.activation_bytes_per_sample = 1e5;
  const MemoryCheck check =
      check_memory(make_cluster(2, 1), job, Arch::kPs, params);
  EXPECT_TRUE(check.feasible);
  EXPECT_GT(check.worker_bytes, 0.0);
  EXPECT_GT(check.server_bytes, 0.0);
}

TEST(MemoryModel, WorkerOomOnHugeActivations) {
  JobParams job;
  job.model_bytes = 50e6;
  job.flops_per_sample = 1e7;
  job.batch_per_worker = 512;
  MemoryParams params;
  params.activation_bytes_per_sample = 1e8;  // 51 GB of activations
  const MemoryCheck check =
      check_memory(make_cluster(2, 1, "std4"), job, Arch::kPs, params);
  EXPECT_FALSE(check.feasible);
  EXPECT_NE(check.reason.find("worker OOM"), std::string::npos);
}

TEST(MemoryModel, ServerOomWithTooFewShards) {
  JobParams job;
  job.model_bytes = 60e9;  // 60 GB model
  job.flops_per_sample = 1e7;
  job.batch_per_worker = 1;
  MemoryParams params;
  // One mem8 server (128 GB) must hold model+optimizer = 180 GB -> OOM.
  const MemoryCheck check =
      check_memory(make_cluster(2, 1, "gpu4"), job, Arch::kPs, params);
  EXPECT_FALSE(check.feasible);
  EXPECT_NE(check.reason.find("server OOM"), std::string::npos);
  // Sharding across 4 servers fits (45 GB per server).
  const MemoryCheck sharded =
      check_memory(make_cluster(2, 4, "gpu4"), job, Arch::kPs, params);
  EXPECT_TRUE(sharded.feasible);
}

TEST(MemoryModel, AllReduceCarriesOptimizerStateOnWorkers) {
  JobParams job;
  job.model_bytes = 4e9;
  job.flops_per_sample = 1e7;
  job.batch_per_worker = 8;
  MemoryParams params;
  params.activation_bytes_per_sample = 1e5;
  // std8 = 32 GB. PS worker needs ~2 copies (9.2GB) -> fits;
  // all-reduce worker needs ~4 copies (17.2GB) -> fits; make it tighter:
  job.model_bytes = 9e9;
  const MemoryCheck ps =
      check_memory(make_cluster(2, 2), job, Arch::kPs, params);
  const MemoryCheck ar =
      check_memory(make_cluster(2, 0), job, Arch::kAllReduce, params);
  EXPECT_TRUE(ps.feasible);
  EXPECT_FALSE(ar.feasible);
}

TEST(MemoryModel, PsWithoutServersThrows) {
  JobParams job;
  job.model_bytes = 1e6;
  job.flops_per_sample = 1.0;
  job.batch_per_worker = 1;
  EXPECT_THROW(
      check_memory(make_cluster(2, 0), job, Arch::kPs, MemoryParams{}),
      std::invalid_argument);
}

TEST(MemoryModel, ArchStrings) {
  EXPECT_EQ(arch_from_string("ps"), Arch::kPs);
  EXPECT_EQ(arch_from_string("allreduce"), Arch::kAllReduce);
  EXPECT_THROW(arch_from_string("mesh"), std::invalid_argument);
  EXPECT_EQ(to_string(Arch::kPs), "ps");
}

// ---- analytic model -------------------------------------------------------------

TEST(AnalyticModel, ExpectedMaxFactorMonotone) {
  EXPECT_DOUBLE_EQ(expected_max_lognormal_factor(1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(expected_max_lognormal_factor(8, 0.0), 1.0);
  const double f4 = expected_max_lognormal_factor(4, 0.2);
  const double f16 = expected_max_lognormal_factor(16, 0.2);
  EXPECT_GT(f4, 1.0);
  EXPECT_GT(f16, f4);
}

TEST(AnalyticModel, PsEstimatePositiveAndDecomposed) {
  JobParams job;
  job.model_bytes = 100e6;
  job.flops_per_sample = 1e8;
  job.batch_per_worker = 32;
  const AnalyticEstimate est = analytic_ps(make_cluster(4, 2), job);
  EXPECT_GT(est.compute_seconds, 0.0);
  EXPECT_GT(est.comm_seconds, 0.0);
  EXPECT_NEAR(est.iteration_seconds, est.compute_seconds + est.comm_seconds,
              1e-12);
  EXPECT_GT(est.updates_per_second, 0.0);
}

TEST(AnalyticModel, AspCappedByServerCapacity) {
  JobParams job;
  job.model_bytes = 800e6;  // comm-bound
  job.flops_per_sample = 1e6;
  job.batch_per_worker = 32;
  job.sync = SyncMode::kAsp;
  const AnalyticEstimate few = analytic_ps(make_cluster(32, 1), job);
  const AnalyticEstimate many = analytic_ps(make_cluster(32, 8), job);
  EXPECT_GT(many.updates_per_second, few.updates_per_second);
}

TEST(AnalyticModel, TracksDesAcrossConfigs) {
  // The closed form need not match the DES absolutely, but it must rank
  // configurations consistently (that is what screening requires).
  JobParams base;
  base.model_bytes = 120e6;
  base.flops_per_sample = 5e7;
  base.batch_per_worker = 32;

  std::vector<double> analytic, des;
  for (const auto& [w, s] : std::vector<std::pair<int, int>>{
           {2, 1}, {4, 2}, {8, 2}, {8, 8}, {16, 4}}) {
    const Cluster cluster = make_cluster(w, s);
    analytic.push_back(analytic_ps(cluster, base).updates_per_second);
    util::Rng rng(3);
    PsSimOptions options;
    options.warmup_iterations = 2;
    options.measure_iterations = 10;
    des.push_back(
        simulate_ps(cluster, base, rng, options).updates_per_second);
  }
  EXPECT_GT(util::spearman(analytic, des), 0.85);
}

TEST(AnalyticModel, DispatchMatchesArchSpecific) {
  JobParams job;
  job.model_bytes = 60e6;
  job.flops_per_sample = 1e8;
  job.batch_per_worker = 32;
  const Cluster ps_cluster = make_cluster(4, 2);
  EXPECT_DOUBLE_EQ(analytic_estimate(ps_cluster, job, Arch::kPs).updates_per_second,
                   analytic_ps(ps_cluster, job).updates_per_second);
  const Cluster ar_cluster = make_cluster(4, 0);
  EXPECT_DOUBLE_EQ(
      analytic_estimate(ar_cluster, job, Arch::kAllReduce).updates_per_second,
      analytic_allreduce(ar_cluster, job).updates_per_second);
}

// ---- system facade -------------------------------------------------------------

TEST(SystemSim, EvaluatesFeasiblePsSystem) {
  SystemConfig config;
  config.arch = Arch::kPs;
  config.cluster.worker_type = "std8";
  config.cluster.server_type = "mem8";
  config.cluster.num_workers = 4;
  config.cluster.num_servers = 2;
  config.job.model_bytes = 50e6;
  config.job.flops_per_sample = 1e7;
  config.job.batch_per_worker = 32;
  util::Rng rng(5);
  const SystemPerformance perf = evaluate_system(config, rng);
  EXPECT_TRUE(perf.feasible);
  EXPECT_GT(perf.runtime.updates_per_second, 0.0);
  EXPECT_GT(perf.usd_per_hour, 0.0);
}

TEST(SystemSim, AllReduceIgnoresServerCount) {
  SystemConfig config;
  config.arch = Arch::kAllReduce;
  config.cluster.worker_type = "std8";
  config.cluster.server_type = "mem8";
  config.cluster.num_workers = 4;
  config.cluster.num_servers = 7;  // must be ignored
  config.job.model_bytes = 50e6;
  config.job.flops_per_sample = 1e7;
  config.job.batch_per_worker = 32;
  util::Rng rng(5);
  const SystemPerformance perf = evaluate_system(config, rng);
  EXPECT_TRUE(perf.feasible);
  const double workers_only_rate = 4 * instance_by_name("std8").usd_per_hour;
  EXPECT_NEAR(perf.usd_per_hour, workers_only_rate, 1e-9);
}

TEST(SystemSim, PsWithoutServersThrows) {
  SystemConfig config;
  config.arch = Arch::kPs;
  config.cluster.worker_type = "std8";
  config.cluster.num_workers = 2;
  config.cluster.num_servers = 0;
  config.job.model_bytes = 1e6;
  config.job.flops_per_sample = 1.0;
  config.job.batch_per_worker = 1;
  util::Rng rng(1);
  EXPECT_THROW(evaluate_system(config, rng), std::invalid_argument);
}

TEST(SystemSim, ReportsOomAsInfeasible) {
  SystemConfig config;
  config.arch = Arch::kPs;
  config.cluster.worker_type = "std4";  // 16 GB
  config.cluster.server_type = "mem8";
  config.cluster.num_workers = 2;
  config.cluster.num_servers = 1;
  config.job.model_bytes = 20e9;
  config.job.flops_per_sample = 1e7;
  config.job.batch_per_worker = 32;
  util::Rng rng(5);
  const SystemPerformance perf = evaluate_system(config, rng);
  EXPECT_FALSE(perf.feasible);
  EXPECT_FALSE(perf.failure.empty());
}

// ---- job helpers -----------------------------------------------------------------

TEST(Job, StringRoundTrips) {
  for (const auto mode : {SyncMode::kBsp, SyncMode::kAsp, SyncMode::kSsp}) {
    EXPECT_EQ(sync_mode_from_string(to_string(mode)), mode);
  }
  for (const auto c : {Compression::kNone, Compression::kFp16,
                       Compression::kInt8, Compression::kTopK}) {
    EXPECT_EQ(compression_from_string(to_string(c)), c);
  }
  EXPECT_THROW(sync_mode_from_string("sgd"), std::invalid_argument);
  EXPECT_THROW(compression_from_string("zip"), std::invalid_argument);
}

TEST(Job, CompressionPropsSane) {
  const CompressionProps none = compression_props(Compression::kNone);
  EXPECT_DOUBLE_EQ(none.push_ratio, 1.0);
  EXPECT_DOUBLE_EQ(none.sample_penalty, 1.0);
  for (const auto c :
       {Compression::kFp16, Compression::kInt8, Compression::kTopK}) {
    const CompressionProps p = compression_props(c);
    EXPECT_LT(p.push_ratio, 1.0);
    EXPECT_GE(p.sample_penalty, 1.0);
    EXPECT_GT(p.flops_per_byte, 0.0);
  }
}

TEST(Job, ValidationCatchesBadFields) {
  JobParams job;
  job.model_bytes = 1e6;
  job.flops_per_sample = 1e6;
  job.batch_per_worker = 32;
  EXPECT_NO_THROW(job.validate());
  JobParams bad = job;
  bad.batch_per_worker = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = job;
  bad.model_bytes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = job;
  bad.staleness = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = job;
  bad.comm_threads = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace autodml::sim

// The chaos layer end to end: crash-point arming and termination (death
// tests), fault windows, duplicated-tail journal dedup, degraded-mode
// fallback determinism, and the wall-clock deadline watchdog.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "obs/metrics.h"
#include "synthetic_objective.h"
#include "util/chaos.h"
#include "util/fs.h"
#include "util/json.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;
namespace chaos = util::chaos;

BoOptions fast_options(std::uint64_t seed, int evals) {
  BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  return options;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// ---- crash points ----------------------------------------------------------

TEST(ChaosDeathTest, ArmedCrashPointExitsWithDistinctiveCode) {
  EXPECT_EXIT(
      {
        chaos::disarm_all();
        chaos::arm_crash_point("test.point");
        chaos::hit_crash_point("test.point");
      },
      ::testing::ExitedWithCode(chaos::kCrashExitCode),
      "crash point 'test.point'");
}

TEST(ChaosDeathTest, CrashPointHonorsTheHitIndex) {
  EXPECT_EXIT(
      {
        chaos::disarm_all();
        chaos::arm_crash_point("test.nth", 3);
        chaos::hit_crash_point("test.nth");  // 1: survives
        chaos::hit_crash_point("test.nth");  // 2: survives
        chaos::hit_crash_point("test.nth");  // 3: dies
      },
      ::testing::ExitedWithCode(chaos::kCrashExitCode), "\\(hit 3\\)");
}

TEST(ChaosDeathTest, CrashAfterCountsHitsAcrossSites) {
  EXPECT_EXIT(
      {
        chaos::disarm_all();
        chaos::arm_crash_after(3);
        chaos::hit_crash_point("site.a");
        chaos::hit_crash_point("site.b");
        chaos::hit_crash_point("site.c");
      },
      ::testing::ExitedWithCode(chaos::kCrashExitCode), "site\\.c");
}

TEST(Chaos, UnarmedAndMismatchedHitsAreInert) {
  chaos::disarm_all();
  chaos::hit_crash_point("some.point");  // disarmed: must not terminate
  EXPECT_FALSE(chaos::armed());

  chaos::arm_crash_point("other.point");
  EXPECT_TRUE(chaos::armed());
  chaos::hit_crash_point("some.point");  // armed for a different site
  EXPECT_EQ(chaos::total_crash_point_hits(), 1u);
  chaos::disarm_all();
  EXPECT_EQ(chaos::total_crash_point_hits(), 0u);
}

TEST(Chaos, FaultWindowCoversExactlyTheConfiguredHits) {
  chaos::disarm_all();
  chaos::arm_fault_point("test.fault", /*first_hit=*/2, /*count=*/2);
  EXPECT_FALSE(chaos::fault_requested("test.fault"));  // hit 1
  EXPECT_TRUE(chaos::fault_requested("test.fault"));   // hit 2
  EXPECT_TRUE(chaos::fault_requested("test.fault"));   // hit 3
  EXPECT_FALSE(chaos::fault_requested("test.fault"));  // hit 4
  EXPECT_FALSE(chaos::fault_requested("unrelated.fault"));
  chaos::disarm_all();
}

// ---- duplicated trailing record --------------------------------------------

TEST(Journal, DuplicatedTailIsDedupedAndResumeMatchesReference) {
  SyntheticObjective reference;
  BoTuner full(reference, fast_options(17, 7));
  const TuningResult want = full.tune();

  const std::string journal = temp_path("chaos_dup.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(17, 5);
    options.journal_path = journal;
    BoTuner(objective, options).tune();
  }
  // A crash between a durable append and the tuner acting on it makes a
  // restart re-append the same record; fabricate that duplicate.
  std::string contents = util::read_file(journal);
  const std::size_t prev_nl = contents.rfind('\n', contents.size() - 2);
  contents += contents.substr(prev_nl + 1);
  util::write_file_atomic(journal, contents);

  const SyntheticObjective probe;
  const LoadedJournal loaded = load_journal(journal, probe.space());
  EXPECT_TRUE(loaded.deduped_tail);
  EXPECT_EQ(loaded.trials.size(), 5u);

  SyntheticObjective resumed;
  BoOptions options = fast_options(17, 7);
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  // Construction repaired the file on disk.
  const LoadedJournal repaired = load_journal(journal, probe.space());
  EXPECT_FALSE(repaired.deduped_tail);
  EXPECT_EQ(repaired.trials.size(), 5u);

  const TuningResult got = tuner.tune();
  EXPECT_EQ(tuner.replayed_trials(), 5u);
  EXPECT_EQ(resumed.total_runs(), 2);
  ASSERT_EQ(got.trials.size(), want.trials.size());
  EXPECT_DOUBLE_EQ(got.best_objective, want.best_objective);
  EXPECT_TRUE(got.best_config == want.best_config);
  std::remove(journal.c_str());
}

// ---- graceful degradation --------------------------------------------------

TuningResult run_degraded(std::uint64_t seed, int acq_threads) {
  chaos::disarm_all();
  // Every fit attempt of surrogate updates 1..3 fails; update 4 recovers.
  chaos::arm_fault_point("surrogate.refit", /*first_hit=*/1, /*count=*/3);
  SyntheticObjective objective;
  BoOptions options = fast_options(seed, 10);
  options.acq_threads = acq_threads;
  BoTuner tuner(objective, options);
  TuningResult result = tuner.tune();
  EXPECT_FALSE(tuner.surrogate().degraded());  // recovered before the end
  chaos::disarm_all();
  return result;
}

TEST(Degradation, FallbackProposalsAreBitIdenticalAcrossThreadCounts) {
  const TuningResult serial = run_degraded(23, 1);
  const TuningResult again = run_degraded(23, 1);
  const TuningResult threaded = run_degraded(23, 4);
  ASSERT_EQ(serial.trials.size(), 10u);
  ASSERT_EQ(again.trials.size(), serial.trials.size());
  ASSERT_EQ(threaded.trials.size(), serial.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_TRUE(serial.trials[i].config == again.trials[i].config) << i;
    EXPECT_TRUE(serial.trials[i].config == threaded.trials[i].config) << i;
    EXPECT_DOUBLE_EQ(serial.trials[i].outcome.objective,
                     threaded.trials[i].outcome.objective)
        << i;
  }
  EXPECT_DOUBLE_EQ(serial.best_objective, threaded.best_objective);
}

TEST(Degradation, EntryRecoveryAndFallbacksAreObservable) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.enable();
  run_degraded(23, 1);
  registry.disable();
  EXPECT_EQ(registry.counter("surrogate.degraded_entries").value(), 1);
  EXPECT_EQ(registry.counter("surrogate.recoveries").value(), 1);
  EXPECT_GE(registry.counter("tuner.fallback_proposals").value(), 1);
  EXPECT_EQ(registry.gauge("tuner.degraded_mode").value(), 0.0);
}

TEST(Degradation, HealthyRunsEmitNoDegradedMetrics) {
  chaos::disarm_all();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.enable();
  SyntheticObjective objective;
  BoTuner(objective, fast_options(23, 10)).tune();
  registry.disable();
  // Transition-only emission: a healthy run's metrics snapshot must not
  // contain any degraded-mode keys (the golden-run test depends on this).
  const std::string json = util::dump_json(registry.snapshot_json(), 1);
  EXPECT_EQ(json.find("degraded"), std::string::npos);
  EXPECT_EQ(json.find("fallback"), std::string::npos);
}

// ---- wall-clock watchdog ---------------------------------------------------

TEST(Watchdog, DeadlineCheckpointsAndResumeMatchesReference) {
  SyntheticObjective reference;
  BoTuner full(reference, fast_options(21, 10));
  const TuningResult want = full.tune();

  const std::string journal = temp_path("chaos_watchdog.journal");
  {
    SyntheticObjective objective;
    BoOptions options = fast_options(21, 10);
    options.journal_path = journal;
    options.max_wall_seconds = 4.0;
    double fake_now = 0.0;
    options.wall_clock = [&fake_now] {
      fake_now += 1.0;
      return fake_now;
    };
    BoTuner tuner(objective, options);
    const TuningResult partial = tuner.tune();
    EXPECT_TRUE(partial.wall_deadline_hit);
    EXPECT_GE(partial.trials.size(), 1u);
    EXPECT_LT(partial.trials.size(), 10u);
  }

  SyntheticObjective resumed;
  BoOptions options = fast_options(21, 10);
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult got = tuner.tune();
  EXPECT_FALSE(got.wall_deadline_hit);
  EXPECT_GT(tuner.replayed_trials(), 0u);
  ASSERT_EQ(got.trials.size(), want.trials.size());
  EXPECT_DOUBLE_EQ(got.best_objective, want.best_objective);
  EXPECT_TRUE(got.best_config == want.best_config);
  std::remove(journal.c_str());
}

TEST(Watchdog, InfiniteDeadlineNeverTrips) {
  SyntheticObjective objective;
  BoOptions options = fast_options(5, 8);
  BoTuner tuner(objective, options);
  const TuningResult result = tuner.tune();
  EXPECT_FALSE(result.wall_deadline_hit);
  EXPECT_EQ(result.trials.size(), 8u);
}

}  // namespace
}  // namespace autodml::core

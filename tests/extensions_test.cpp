// Tests for the tuner extensions: deadline-constrained objectives, batch
// (constant-liar) proposals, synchronous parallel BO, variance-based
// sensitivity, and tuning-session persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "baselines/parallel_bo.h"
#include "core/acquisition_optimizer.h"
#include "core/sensitivity.h"
#include "core/session_io.h"
#include "synthetic_objective.h"
#include "workloads/objective_adapter.h"

namespace autodml {
namespace {

using testing::SyntheticObjective;

// ---- deadline-constrained evaluation ------------------------------------------

TEST(Deadline, ViolatingRunBecomesFailure) {
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator unconstrained(workload, 3);
  const conf::Config c =
      wl::default_expert_config(workload, unconstrained.space());
  const wl::EvalResult free_run = unconstrained.evaluate_ground_truth(c);
  ASSERT_TRUE(free_run.feasible);

  wl::EvaluatorOptions options;
  options.deadline_seconds = free_run.tta_seconds / 2.0;  // unreachable
  wl::Evaluator constrained(workload, 3, options);
  const wl::EvalResult capped = constrained.evaluate_ground_truth(c);
  EXPECT_FALSE(capped.feasible);
  EXPECT_EQ(capped.failure, "deadline exceeded");
}

TEST(Deadline, GenerousDeadlineChangesNothing) {
  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  wl::EvaluatorOptions options;
  options.deadline_seconds = 1e12;
  wl::Evaluator evaluator(workload, 4, options);
  const conf::Config c =
      wl::default_expert_config(workload, evaluator.space());
  const wl::EvalResult r = evaluator.evaluate_ground_truth(c);
  EXPECT_TRUE(r.feasible);
}

TEST(Deadline, ViolatingRunChargedUpToDeadline) {
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator probe(workload, 5);
  const conf::Config c = wl::default_expert_config(workload, probe.space());
  const double tta = probe.evaluate_ground_truth(c).tta_seconds;

  wl::EvaluatorOptions options;
  options.deadline_seconds = tta / 3.0;
  wl::Evaluator constrained(workload, 5, options);
  const wl::EvalResult r = constrained.evaluate(c);
  EXPECT_FALSE(r.feasible);
  // Charged provisioning + the deadline, not the (longer) full run.
  EXPECT_LT(r.spent_seconds, tta);
  EXPECT_GE(r.spent_seconds, options.deadline_seconds);
}

TEST(Deadline, CheckpointsStopAtDeadline) {
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  wl::Evaluator probe(workload, 6);
  const conf::Config c = wl::default_expert_config(workload, probe.space());
  const double tta = probe.evaluate_ground_truth(c).tta_seconds;

  wl::EvaluatorOptions options;
  options.deadline_seconds = tta / 2.0;
  wl::Evaluator constrained(workload, 6, options);
  auto run = constrained.start(c);
  ASSERT_FALSE(run->failed());
  double last = 0.0;
  while (auto cp = run->next_checkpoint()) last = cp->wall_seconds;
  EXPECT_LE(last, options.deadline_seconds);
  EXPECT_FALSE(run->result().feasible);
}

TEST(Deadline, TunerMinimizesCostUnderSlo) {
  // Constrained cost tuning must return a config that satisfies the SLO.
  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  wl::EvaluatorOptions options;
  options.objective = wl::Objective::kCostToAccuracy;
  options.deadline_seconds = 3600.0;  // 1 hour: tight but reachable
  wl::Evaluator evaluator(workload, 7, options);
  wl::EvaluatorObjective objective(evaluator);
  core::BoOptions bo;
  bo.seed = 7;
  bo.max_evaluations = 20;
  bo.surrogate.gp.restarts = 1;
  core::BoTuner tuner(objective, bo);
  const core::TuningResult result = tuner.tune();
  ASSERT_TRUE(result.found_feasible());
  const wl::EvalResult truth =
      evaluator.evaluate_ground_truth(result.best_config);
  ASSERT_TRUE(truth.feasible);
  EXPECT_LE(truth.tta_seconds, options.deadline_seconds);
}

// ---- batch proposals ------------------------------------------------------------

std::vector<core::Trial> seed_history(SyntheticObjective& objective, int n,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Trial> history;
  for (int i = 0; i < n; ++i) {
    core::Trial t;
    t.config = objective.space().sample_uniform(rng);
    t.outcome = objective.run(t.config, nullptr);
    history.push_back(std::move(t));
  }
  return history;
}

TEST(BatchProposals, ReturnsDistinctConfigs) {
  SyntheticObjective objective;
  const auto history = seed_history(objective, 10, 3);
  util::Rng rng(4);
  core::SurrogateOptions options;
  options.gp.restarts = 1;
  const auto batch = core::propose_batch(
      objective.space(), options, core::AcquisitionKind::kLogEi, history, 4,
      rng);
  EXPECT_EQ(batch.size(), 4u);
  std::set<math::Vec> unique;
  for (const auto& c : batch) {
    objective.space().validate(c);
    unique.insert(objective.space().encode(c));
  }
  EXPECT_EQ(unique.size(), 4u);  // the liar pushes proposals apart
}

TEST(BatchProposals, WorksWithEmptyHistory) {
  SyntheticObjective objective;
  util::Rng rng(5);
  const auto batch =
      core::propose_batch(objective.space(), {}, core::AcquisitionKind::kEi,
                          {}, 3, rng);
  EXPECT_EQ(batch.size(), 3u);
  for (const auto& c : batch) objective.space().validate(c);
}

TEST(ParallelBo, WallClockBeatsSequentialAtSameEvaluationCount) {
  SyntheticObjective par_obj;
  baselines::ParallelBoOptions options;
  options.batch_size = 4;
  options.rounds = 5;
  options.seed = 6;
  options.surrogate.gp.restarts = 1;
  const baselines::ParallelBoResult par = baselines::parallel_bo(par_obj, options);
  EXPECT_EQ(par.tuning.trials.size(), 20u);
  // Sequential wall clock is the sum of all evaluation times.
  EXPECT_LT(par.wall_clock_seconds,
            par.tuning.total_spent_seconds * 0.75);
  EXPECT_TRUE(par.tuning.found_feasible());
}

TEST(ParallelBo, QualityComparableToSequential) {
  double parallel_total = 0.0, sequential_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SyntheticObjective par_obj;
    baselines::ParallelBoOptions options;
    options.batch_size = 4;
    options.rounds = 6;
    options.seed = seed;
    options.surrogate.gp.restarts = 1;
    parallel_total += baselines::parallel_bo(par_obj, options)
                          .tuning.best_objective;

    SyntheticObjective seq_obj;
    core::BoOptions bo;
    bo.seed = seed;
    bo.max_evaluations = 24;
    bo.surrogate.gp.restarts = 1;
    core::BoTuner tuner(seq_obj, bo);
    sequential_total += tuner.tune().best_objective;
  }
  EXPECT_LT(parallel_total, sequential_total * 1.8);
}

TEST(ParallelBo, RejectsBadOptions) {
  SyntheticObjective objective;
  baselines::ParallelBoOptions options;
  options.batch_size = 0;
  EXPECT_THROW(baselines::parallel_bo(objective, options),
               std::invalid_argument);
}

// ---- variance-based sensitivity ---------------------------------------------------

TEST(VarianceImportance, RanksIrrelevantKnobLast) {
  SyntheticObjective objective;
  const auto history = seed_history(objective, 40, 9);
  core::SurrogateModel model(objective.space(), {}, 2);
  model.update(history);
  ASSERT_TRUE(model.ready());
  util::Rng rng(10);
  const auto importance =
      core::variance_importance(model, objective.space(), rng);
  ASSERT_EQ(importance.size(), 4u);
  EXPECT_EQ(importance.back().param, "dud");
  // x explains the bulk of the variance on this bowl.
  EXPECT_EQ(importance.front().param, "x");
  for (const auto& p : importance) EXPECT_GE(p.importance, 0.0);
}

TEST(VarianceImportance, RequiresReadySurrogate) {
  SyntheticObjective objective;
  core::SurrogateModel model(objective.space(), {}, 2);
  util::Rng rng(11);
  EXPECT_THROW(core::variance_importance(model, objective.space(), rng),
               std::logic_error);
}

TEST(VarianceImportance, ValidatesSampleCounts) {
  SyntheticObjective objective;
  const auto history = seed_history(objective, 10, 12);
  core::SurrogateModel model(objective.space(), {}, 2);
  model.update(history);
  util::Rng rng(13);
  EXPECT_THROW(
      core::variance_importance(model, objective.space(), rng, 1, 4),
      std::invalid_argument);
}

// ---- session persistence ------------------------------------------------------------

TEST(SessionIo, JsonRoundTripPreservesTrials) {
  SyntheticObjective objective;
  const auto history = seed_history(objective, 12, 14);
  const std::string json = core::trials_to_json(history);
  const auto loaded = core::trials_from_json(json, objective.space());
  ASSERT_EQ(loaded.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_TRUE(loaded[i].config == history[i].config) << i;
    EXPECT_EQ(loaded[i].outcome.feasible, history[i].outcome.feasible);
    EXPECT_EQ(loaded[i].outcome.aborted, history[i].outcome.aborted);
    if (history[i].succeeded()) {
      EXPECT_DOUBLE_EQ(loaded[i].outcome.objective,
                       history[i].outcome.objective);
    } else {
      EXPECT_TRUE(std::isinf(loaded[i].outcome.objective));
    }
    EXPECT_DOUBLE_EQ(loaded[i].outcome.spent_seconds,
                     history[i].outcome.spent_seconds);
  }
}

TEST(SessionIo, FileRoundTrip) {
  SyntheticObjective objective;
  const auto history = seed_history(objective, 5, 15);
  const std::string path = ::testing::TempDir() + "/autodml_session.json";
  core::save_trials(path, history);
  const auto loaded = core::load_trials(path, objective.space());
  EXPECT_EQ(loaded.size(), history.size());
  std::remove(path.c_str());
}

TEST(SessionIo, LoadedTrialsWarmStartATuner) {
  SyntheticObjective pilot;
  const auto history = seed_history(pilot, 15, 16);
  const std::string json = core::trials_to_json(history);

  SyntheticObjective fresh;
  core::BoOptions options;
  options.seed = 16;
  options.max_evaluations = 6;
  options.initial_design_size = 2;
  options.surrogate.gp.restarts = 1;
  options.warm_start = core::trials_from_json(json, fresh.space());
  core::BoTuner tuner(fresh, options);
  const core::TuningResult result = tuner.tune();
  EXPECT_EQ(result.trials.size(), 6u);
  EXPECT_TRUE(result.found_feasible());
}

TEST(SessionIo, RejectsMalformedDocuments) {
  SyntheticObjective objective;
  EXPECT_THROW(core::trials_from_json("[]", objective.space()),
               std::invalid_argument);
  // Missing fields surface as invalid_argument with field context, never
  // as raw map/variant access errors.
  EXPECT_THROW(core::trials_from_json("{\"trials\": [{}]}",
                                      objective.space()),
               std::invalid_argument);
  // Unknown parameter name.
  const char* doc = R"({"trials":[{"config":{"zzz":1},
      "outcome":{"feasible":true,"aborted":false,"failure":"",
                 "objective":5,"spent_seconds":5,"usd_per_hour":1}}]})";
  EXPECT_THROW(core::trials_from_json(doc, objective.space()),
               std::invalid_argument);
}

TEST(SessionIo, RejectsOutOfRangeValues) {
  SyntheticObjective objective;
  const char* doc = R"({"trials":[{"config":
      {"x":55.0,"mode":"a","k":3,"dud":0.5},
      "outcome":{"feasible":true,"aborted":false,"failure":"",
                 "objective":5,"spent_seconds":5,"usd_per_hour":1}}]})";
  EXPECT_THROW(core::trials_from_json(doc, objective.space()),
               std::invalid_argument);
}

TEST(SessionIo, LoadFromMissingFileThrows) {
  SyntheticObjective objective;
  EXPECT_THROW(core::load_trials("/nonexistent/path.json", objective.space()),
               std::runtime_error);
}

}  // namespace
}  // namespace autodml

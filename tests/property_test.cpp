// Randomized property tests: invariants that must hold across broad sweeps
// of generated inputs, complementing the example-based unit suites.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gp/gp.h"
#include "ml/convergence.h"
#include "ml/curve_fit.h"
#include "sim/flow_network.h"
#include "workloads/evaluator.h"
#include "workloads/workload.h"

namespace autodml {
namespace {

// ---- flow network: conservation and termination ---------------------------------

TEST(FlowNetworkProperty, RandomScenariosDeliverEveryFlow) {
  for (std::uint64_t scenario = 0; scenario < 20; ++scenario) {
    util::Rng rng(100 + scenario);
    sim::EventQueue queue;
    sim::FlowNetwork net(queue);
    sim::StarFabric fabric(queue, net);
    const std::size_t nodes = 2 + rng.index(6);
    for (std::size_t n = 0; n < nodes; ++n) {
      fabric.add_node(rng.uniform(1e6, 1e9));
    }
    const int flows = 1 + static_cast<int>(rng.index(30));
    int completed = 0;
    for (int f = 0; f < flows; ++f) {
      fabric.send(rng.index(nodes), rng.index(nodes),
                  rng.uniform(0.0, 5e6), rng.uniform(0.0, 0.01),
                  [&] { ++completed; });
    }
    const std::size_t executed = queue.run(200000);
    EXPECT_EQ(completed, flows) << "scenario " << scenario;
    EXPECT_LT(executed, 200000u);
  }
}

TEST(FlowNetworkProperty, CompletionTimeLowerBoundedBySerialization) {
  // No flow can beat bytes/min-link-capacity + latency.
  for (std::uint64_t scenario = 0; scenario < 15; ++scenario) {
    util::Rng rng(300 + scenario);
    sim::EventQueue queue;
    sim::FlowNetwork net(queue);
    sim::StarFabric fabric(queue, net);
    const double cap_a = rng.uniform(1e6, 1e8);
    const double cap_b = rng.uniform(1e6, 1e8);
    const std::size_t a = fabric.add_node(cap_a);
    const std::size_t b = fabric.add_node(cap_b);
    const double bytes = rng.uniform(1e4, 1e7);
    const double latency = rng.uniform(0.0, 0.02);
    double done_at = -1.0;
    fabric.send(a, b, bytes, latency, [&] { done_at = queue.now(); });
    queue.run();
    const double bound = latency + bytes * 8.0 / std::min(cap_a, cap_b);
    EXPECT_GE(done_at, bound * (1.0 - 1e-9)) << scenario;
    EXPECT_NEAR(done_at, bound, bound * 1e-6 + 1e-9) << scenario;
  }
}

// ---- GP: posterior sanity on random data ------------------------------------------

TEST(GpProperty, PosteriorInterpolatesWithinNoiseEnvelope) {
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    util::Rng rng(500 + trial);
    const std::size_t n = 10 + rng.index(15);
    const std::size_t dim = 1 + rng.index(3);
    math::Matrix x(n, dim);
    math::Vec y(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.uniform();
      y[i] = std::sin(3.0 * x(i, 0)) + 0.05 * rng.normal();
    }
    gp::GpOptions options;
    options.restarts = 1;
    options.adam_iterations = 60;
    gp::GaussianProcess model(std::make_unique<gp::Matern52Ard>(dim), options);
    model.fit(x, y, rng);
    const double noise_sd = std::sqrt(model.noise_variance());
    for (std::size_t i = 0; i < n; ++i) {
      const gp::GpPrediction p = model.predict(x.row(i));
      EXPECT_GE(p.variance, -1e-12);
      // Posterior mean should sit within a few noise/posterior sds.
      const double slack = 4.0 * (noise_sd + std::sqrt(p.variance)) + 0.15;
      EXPECT_NEAR(p.mean, y[i], slack) << "trial " << trial << " point " << i;
    }
  }
}

TEST(GpProperty, VarianceNeverNegativeOnRandomQueries) {
  util::Rng rng(700);
  math::Matrix x(12, 2);
  math::Vec y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = rng.normal();
  }
  gp::GaussianProcess model(std::make_unique<gp::SquaredExponentialArd>(2));
  model.fit(x, y, rng);
  for (int q = 0; q < 300; ++q) {
    const math::Vec probe{rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)};
    EXPECT_GE(model.predict(probe).variance, -1e-12);
  }
}

// ---- convergence model: global monotonicity sweeps ----------------------------------

TEST(StatModelProperty, MonotoneInStalenessEverywhere) {
  util::Rng param_rng(900);
  for (int trial = 0; trial < 25; ++trial) {
    ml::StatModelParams p;
    p.eval_noise_sigma = 0.0;
    p.critical_batch = param_rng.uniform(128, 8192);
    p.staleness_coeff = param_rng.uniform(0.01, 0.3);
    p.staleness_power = param_rng.uniform(1.0, 1.5);
    const double batch = param_rng.uniform(1, 1024);
    util::Rng rng(1);
    double prev = 0.0;
    for (double s : {0.0, 2.0, 8.0, 32.0, 128.0}) {
      const double lr = ml::samples_to_target(p, batch, s, 1e-9,
                                              sim::Compression::kNone, rng)
                            .lr_optimal;
      const auto out = ml::samples_to_target(p, batch, s, lr,
                                             sim::Compression::kNone, rng);
      ASSERT_FALSE(out.diverged);
      EXPECT_GT(out.samples_to_target, prev) << "trial " << trial;
      prev = out.samples_to_target;
    }
  }
}

TEST(StatModelProperty, MetricCurveMonotoneForRandomParams) {
  util::Rng rng(950);
  for (int trial = 0; trial < 30; ++trial) {
    ml::StatModelParams p;
    p.initial_metric = rng.uniform(0.0, 0.3);
    p.target_metric = rng.uniform(0.6, 0.9);
    p.metric_ceiling = p.target_metric + rng.uniform(0.01, 0.1);
    p.curve_gamma = rng.uniform(0.8, 2.5);
    const double total = rng.uniform(1e4, 1e8);
    double prev = -1.0;
    for (int i = 0; i <= 40; ++i) {
      const double s = total * 1.5 * i / 40.0;
      const double m = ml::metric_at(p, s, total);
      EXPECT_GT(m, prev);
      EXPECT_LE(m, p.metric_ceiling);
      prev = m;
    }
    EXPECT_NEAR(ml::metric_at(p, total, total), p.target_metric, 1e-6);
  }
}

TEST(CurveFitProperty, RecoversRandomCurvesFromPrefix) {
  util::Rng rng(980);
  int good = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    ml::StatModelParams p;
    p.curve_gamma = rng.uniform(1.0, 2.0);
    const double total = rng.uniform(1e5, 1e7);
    std::vector<double> samples, metric;
    for (int i = 1; i <= 15; ++i) {
      const double s = total * 0.06 * i;  // up to 90% of the way
      samples.push_back(s);
      metric.push_back(ml::metric_at(p, s, total));
    }
    const auto fit = ml::fit_learning_curve(samples, metric);
    if (!fit.ok) continue;
    const double predicted =
        ml::predict_samples_to_reach(fit, p.target_metric);
    if (std::isfinite(predicted) && predicted > total * 0.4 &&
        predicted < total * 2.5) {
      ++good;
    }
  }
  // Extrapolation is inherently noisy; demand a solid majority.
  EXPECT_GE(good, trials * 2 / 3);
}

// ---- evaluator: black-box contract over random configurations ------------------------

class EvaluatorFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EvaluatorFuzzTest, ContractHoldsOnRandomConfigs) {
  const wl::Workload& workload = wl::workload_by_name(GetParam());
  wl::Evaluator evaluator(workload, 77);
  util::Rng rng(88);
  for (int i = 0; i < 60; ++i) {
    const conf::Config c = evaluator.space().sample_uniform(rng);
    const wl::EvalResult r = evaluator.evaluate(c);
    // Contract: spent time always positive and charged; objective finite
    // iff the run is feasible and complete; failures carry a reason.
    EXPECT_GT(r.spent_seconds, 0.0);
    if (r.feasible) {
      EXPECT_TRUE(std::isfinite(r.tta_seconds));
      EXPECT_GT(r.tta_seconds, 0.0);
      EXPECT_GT(r.samples_needed, 0.0);
      EXPECT_NEAR(r.cost_usd, r.tta_seconds / 3600.0 * r.usd_per_hour,
                  1e-6 * std::max(1.0, r.cost_usd));
    } else {
      EXPECT_FALSE(r.failure.empty());
      EXPECT_TRUE(std::isinf(
          r.objective_value(wl::Objective::kTimeToAccuracy)));
    }
  }
  EXPECT_EQ(evaluator.num_runs(), 60u);
  EXPECT_GT(evaluator.total_spent_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EvaluatorFuzzTest,
                         ::testing::Values("logreg-ads", "mf-recsys",
                                           "mlp-tabular", "cnn-cifar",
                                           "resnet-imagenet",
                                           "word2vec-text"));

// ---- staleness conversion -------------------------------------------------------------

TEST(StalenessUpdates, UnitsAndEdgeCases) {
  EXPECT_DOUBLE_EQ(ml::staleness_updates(sim::SyncMode::kBsp, 5.0, 16), 0.0);
  EXPECT_DOUBLE_EQ(ml::staleness_updates(sim::SyncMode::kAsp, 1.5, 8), 12.0);
  EXPECT_DOUBLE_EQ(ml::staleness_updates(sim::SyncMode::kSsp, 2.0, 4), 8.0);
  EXPECT_THROW(ml::staleness_updates(sim::SyncMode::kAsp, -1.0, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace autodml

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "analysis/space_lint.h"
#include "workloads/workload.h"

namespace autodml::analysis {
namespace {

using conf::ParamSpec;

LintReport lint(const std::vector<ParamDraft>& drafts,
                SpaceLinter::Options options = {}) {
  return SpaceLinter(options).lint(std::span<const ParamDraft>(drafts));
}

/// Exactly one diagnostic with `code` exists and it names `param`.
void expect_single(const LintReport& report, std::string_view code,
                   std::string_view param) {
  std::size_t count = 0;
  for (const auto& d : report.diagnostics) {
    if (d.code == code) {
      ++count;
      EXPECT_EQ(d.param, param) << d.to_string();
      EXPECT_FALSE(d.message.empty());
      EXPECT_FALSE(d.fix_hint.empty());
    }
  }
  EXPECT_EQ(count, 1u) << "for code " << code << ":\n" << report.to_string();
}

// ---- clean spaces ----------------------------------------------------------

TEST(SpaceLint, WellFormedSpaceIsClean) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::integer("workers", 1, 64, /*log_scale=*/true));
  drafts.push_back(ParamDraft::categorical("sync", {"bsp", "ssp"}));
  drafts.push_back(
      ParamDraft::integer("staleness", 1, 16).only_when("sync", {"ssp"}));
  drafts.push_back(ParamDraft::continuous("lr", 1e-4, 1.0, /*log_scale=*/true));
  drafts.push_back(ParamDraft::boolean("pin_memory"));
  const LintReport report = lint(drafts);
  EXPECT_TRUE(report.diagnostics.empty()) << report.to_string();
  EXPECT_FALSE(report.has_errors());
  EXPECT_NO_THROW(throw_if_errors(report, "test"));
}

TEST(SpaceLint, EveryShippedWorkloadSpaceIsErrorFree) {
  for (const auto& w : wl::workload_suite()) {
    const LintReport report = SpaceLinter().lint(wl::build_config_space(w));
    EXPECT_FALSE(report.has_errors()) << w.name << ":\n" << report.to_string();
  }
}

// ---- one test per error code ----------------------------------------------

TEST(SpaceLint, L001DuplicateParam) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::boolean("x"));
  drafts.push_back(ParamDraft::integer("x", 1, 4));
  expect_single(lint(drafts), kDuplicateParam, "x");
}

TEST(SpaceLint, L002InvertedIntBounds) {
  const auto report = lint({ParamDraft::integer("w", 64, 4)});
  expect_single(report, kInvertedBounds, "w");
  EXPECT_TRUE(report.has_errors());
}

TEST(SpaceLint, L002DegenerateContinuousBounds) {
  expect_single(lint({ParamDraft::continuous("r", 0.5, 0.5)}),
                kInvertedBounds, "r");
}

TEST(SpaceLint, L003LogScaleCrossingZeroContinuous) {
  expect_single(lint({ParamDraft::continuous("lr", -1e-3, 1.0, true)}),
                kLogScaleNonPositive, "lr");
}

TEST(SpaceLint, L003LogScaleBelowOneInteger) {
  expect_single(lint({ParamDraft::integer("k", 0, 128, true)}),
                kLogScaleNonPositive, "k");
}

TEST(SpaceLint, L004UnknownParent) {
  expect_single(
      lint({ParamDraft::integer("p", 1, 8).only_when("ghost", {"on"})}),
      kUnknownParent, "p");
}

TEST(SpaceLint, L005ParentNotCategoricalOrBool) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::integer("n", 1, 8));
  drafts.push_back(ParamDraft::integer("m", 1, 8).only_when("n", {"4"}));
  expect_single(lint(drafts), kBadParentKind, "m");
}

TEST(SpaceLint, L006EnablingValueNotInParentDomain) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::categorical("sync", {"bsp", "ssp"}));
  drafts.push_back(
      ParamDraft::integer("s", 1, 16).only_when("sync", {"asp"}));
  const auto report = lint(drafts);
  expect_single(report, kUnknownParentValue, "s");
  // The condition can then never fire.
  expect_single(report, kUnreachableParam, "s");
}

TEST(SpaceLint, L007ConditionCycle) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::boolean("a").only_when("b", {"true"}));
  drafts.push_back(ParamDraft::boolean("b").only_when("a", {"true"}));
  const auto report = lint(drafts);
  EXPECT_TRUE(report.has(kConditionCycle)) << report.to_string();
  EXPECT_EQ(report.for_param("a").size() + report.for_param("b").size(),
            report.diagnostics.size());
}

TEST(SpaceLint, L008UnreachableThroughAncestor) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::categorical("mode", {"x", "y"}));
  // 'mid' can never activate; 'leaf' has a locally valid condition but an
  // unreachable ancestor.
  drafts.push_back(ParamDraft::boolean("mid").only_when("mode", {"z"}));
  drafts.push_back(
      ParamDraft::integer("leaf", 1, 4).only_when("mid", {"true"}));
  const auto report = lint(drafts);
  EXPECT_EQ(report.for_param("mid").size(), 2u) << report.to_string();  // L006+L008
  expect_single(report, kUnknownParentValue, "mid");
  const auto leaf = report.for_param("leaf");
  ASSERT_EQ(leaf.size(), 1u) << report.to_string();
  EXPECT_EQ(leaf[0].code, kUnreachableParam);
}

TEST(SpaceLint, L009EmptyMenu) {
  expect_single(lint({ParamDraft::int_choice("b", {})}), kEmptyDomain, "b");
  expect_single(lint({ParamDraft::categorical("c", {})}), kEmptyDomain, "c");
}

TEST(SpaceLint, L010UnsortedMenu) {
  expect_single(lint({ParamDraft::int_choice("b", {256, 64, 128})}),
                kUnsortedMenu, "b");
}

TEST(SpaceLint, L011DuplicateMenuEntries) {
  expect_single(lint({ParamDraft::int_choice("b", {64, 64, 128})}),
                kDuplicateMenuEntry, "b");
  expect_single(lint({ParamDraft::categorical("c", {"a", "b", "a"})}),
                kDuplicateMenuEntry, "c");
}

TEST(SpaceLint, L012DefaultOutsideDomain) {
  ParamDraft d = ParamDraft::integer("shards", 1, 8);
  d.default_value = std::int64_t{0};
  expect_single(lint({d}), kDefaultOutOfRange, "shards");

  ParamDraft c = ParamDraft::categorical("m", {"a", "b"});
  c.default_value = std::string("z");
  expect_single(lint({c}), kDefaultOutOfRange, "m");
}

TEST(SpaceLint, L013EncodedDimensionMismatch) {
  SpaceLinter::Options options;
  options.expected_encoded_dim = 5;  // actual: 1 + 2 = 3
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::integer("n", 1, 8));
  drafts.push_back(ParamDraft::categorical("m", {"a", "b"}));
  const auto report = lint(drafts, options);
  ASSERT_TRUE(report.has(kEncodedDimMismatch)) << report.to_string();
  EXPECT_TRUE(report.has_errors());
  EXPECT_THROW(throw_if_errors(report, "test"), std::invalid_argument);
}

TEST(SpaceLint, L014NonFiniteBounds) {
  expect_single(
      lint({ParamDraft::continuous(
          "m", 0.0, std::numeric_limits<double>::infinity())}),
      kNonFiniteBound, "m");
  expect_single(
      lint({ParamDraft::continuous(
          "n", std::numeric_limits<double>::quiet_NaN(), 1.0)}),
      kNonFiniteBound, "n");
}

TEST(SpaceLint, L015ParentDeclaredAfterChild) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(
      ParamDraft::integer("child", 1, 4).only_when("late", {"true"}));
  drafts.push_back(ParamDraft::boolean("late"));
  expect_single(lint(drafts), kParentAfterChild, "child");
}

TEST(SpaceLint, L016InvalidParamNameCharacters) {
  const auto report = lint({ParamDraft::integer("num workers", 1, 4)});
  expect_single(report, kInvalidParamName, "num workers");
  EXPECT_TRUE(report.has_errors());
}

TEST(SpaceLint, L016EmptyParamName) {
  const auto report = lint({ParamDraft::boolean("")});
  expect_single(report, kInvalidParamName, "");
  EXPECT_TRUE(report.has_errors());
}

TEST(SpaceLint, L016AcceptsIdentifierStyleNames) {
  const auto report = lint({ParamDraft::integer("ps.num-shards_2", 1, 4)});
  EXPECT_FALSE(report.has(kInvalidParamName)) << report.to_string();
}

// ---- one test per warning code ---------------------------------------------

TEST(SpaceLint, L101VacuousCondition) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::boolean("flag"));
  drafts.push_back(
      ParamDraft::integer("k", 1, 4).only_when("flag", {"true", "false"}));
  const auto report = lint(drafts);
  expect_single(report, kVacuousCondition, "k");
  EXPECT_FALSE(report.has_errors());
}

TEST(SpaceLint, L102SingletonDomain) {
  expect_single(lint({ParamDraft::integer("k", 7, 7)}), kSingletonDomain, "k");
  expect_single(lint({ParamDraft::int_choice("b", {32})}), kSingletonDomain,
                "b");
}

TEST(SpaceLint, L103DuplicateEnablingValue) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::categorical("m", {"a", "b", "c"}));
  drafts.push_back(
      ParamDraft::integer("k", 1, 4).only_when("m", {"a", "a"}));
  const auto report = lint(drafts);
  expect_single(report, kDuplicateEnablingValue, "k");
  EXPECT_FALSE(report.has_errors());
}

TEST(SpaceLint, L104WideLinearRange) {
  const auto report = lint({ParamDraft::continuous("c", 1e-3, 1e3)});
  expect_single(report, kLinearWideRange, "c");
  // Log-scaled version of the same range is fine.
  EXPECT_TRUE(
      lint({ParamDraft::continuous("c", 1e-3, 1e3, true)}).diagnostics.empty());
}

TEST(SpaceLint, L105WideOneHotBlock) {
  std::vector<std::string> cats;
  for (int i = 0; i < 20; ++i) cats.push_back("c" + std::to_string(i));
  expect_single(lint({ParamDraft::categorical("big", cats)}), kWideOneHot,
                "big");
}

TEST(SpaceLint, L106NormalizedNameCollision) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::integer("num_workers", 1, 4));
  drafts.push_back(ParamDraft::integer("Num-Workers", 1, 4));
  const auto report = lint(drafts);
  expect_single(report, kNormalizedNameCollision, "Num-Workers");
  EXPECT_FALSE(report.has_errors());
}

TEST(SpaceLint, L106ExactDuplicateIsL001NotL106) {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::boolean("x"));
  drafts.push_back(ParamDraft::boolean("x"));
  const auto report = lint(drafts);
  EXPECT_TRUE(report.has(kDuplicateParam));
  EXPECT_FALSE(report.has(kNormalizedNameCollision)) << report.to_string();
}

// ---- built-space linting ---------------------------------------------------

TEST(SpaceLint, BuiltSpaceWithDuplicateCategoriesIsFlagged) {
  // Legal per the ParamSpec factory, broken for one-hot encoding.
  conf::ConfigSpace space;
  space.add(ParamSpec::categorical("m", {"a", "a"}));
  const LintReport report = SpaceLinter().lint(space);
  EXPECT_TRUE(report.has(kDuplicateMenuEntry)) << report.to_string();
  EXPECT_TRUE(report.has_errors());
}

TEST(SpaceLint, BuiltSpaceDimCheckedAgainstSurrogate) {
  conf::ConfigSpace space;
  space.add(ParamSpec::categorical("m", {"a", "b", "c"}));
  space.add(ParamSpec::boolean("f"));
  SpaceLinter::Options options;
  options.expected_encoded_dim = space.encoded_dimension();
  EXPECT_FALSE(SpaceLinter(options).lint(space).has(kEncodedDimMismatch));
  options.expected_encoded_dim = space.encoded_dimension() + 1;
  EXPECT_TRUE(SpaceLinter(options).lint(space).has(kEncodedDimMismatch));
}

// ---- demo space + report plumbing ------------------------------------------

TEST(SpaceLint, MalformedDemoSpaceCoversAtLeastSixErrorCodes) {
  const auto drafts = malformed_demo_space();
  const LintReport report =
      SpaceLinter().lint(std::span<const ParamDraft>(drafts));
  std::set<std::string> error_codes;
  for (const auto& d : report.diagnostics) {
    if (d.severity == Severity::kError) error_codes.insert(d.code);
  }
  EXPECT_GE(error_codes.size(), 6u) << report.to_string();
  EXPECT_THROW(throw_if_errors(report, "demo"), std::invalid_argument);
}

TEST(SpaceLint, ReportFormattingNamesCodeSeverityAndParam) {
  const auto report = lint({ParamDraft::integer("w", 9, 3)});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string line = report.diagnostics[0].to_string();
  EXPECT_NE(line.find("L002"), std::string::npos) << line;
  EXPECT_NE(line.find("error"), std::string::npos) << line;
  EXPECT_NE(line.find("[w]"), std::string::npos) << line;
  EXPECT_NE(line.find("hint:"), std::string::npos) << line;
}

}  // namespace
}  // namespace autodml::analysis

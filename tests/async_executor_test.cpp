// The async evaluation pipeline: AsyncEvalExecutor ordering/serialization/
// exception contracts, the BoTuner async_q determinism guarantees (byte-
// identical journals and bit-identical incumbents at any worker or
// acquisition-thread count), out-of-order journal ingestion, and mid-batch
// checkpoint/resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/async_executor.h"
#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "obs/metrics.h"
#include "synthetic_objective.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/string_util.h"

namespace autodml::core {
namespace {

using testing::SyntheticObjective;

BoOptions fast_options(std::uint64_t seed, int evals) {
  BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 6;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 60;
  options.acq_optimizer.random_candidates = 256;
  return options;
}

BoOptions async_options(std::uint64_t seed, int evals, int q, int workers,
                        int acq_threads = 1) {
  BoOptions options = fast_options(seed, evals);
  options.async_q = q;
  options.async_workers = workers;
  options.acq_threads = acq_threads;
  return options;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

Trial numbered_trial(int i) {
  Trial t;
  t.outcome.feasible = true;
  t.outcome.objective = static_cast<double>(i);
  return t;
}

// ---- executor contracts ----------------------------------------------------

TEST(AsyncExecutor, ResultsReturnInSubmissionOrderDespiteRacingCompletion) {
  // Later submissions finish first (earlier tasks sleep longer), yet
  // next_result() must hand results back strictly FIFO.
  AsyncEvalExecutor executor(/*workers=*/4, /*serialize_runs=*/false);
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    executor.submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((n - i) * 3));
      return numbered_trial(i);
    });
  }
  EXPECT_EQ(executor.in_flight(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Trial t = executor.next_result();
    EXPECT_DOUBLE_EQ(t.outcome.objective, static_cast<double>(i));
    EXPECT_EQ(executor.in_flight(), static_cast<std::size_t>(n - i - 1));
  }
}

TEST(AsyncExecutor, SerializedModeNeverOverlapsEvaluations) {
  // serialize_runs is the default for objectives with per-run deterministic
  // state: run i+1 must not start until run i finished, even with spare
  // workers. Track overlap with an entry/exit counter.
  AsyncEvalExecutor executor(/*workers=*/4, /*serialize_runs=*/true);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::atomic<int> order_violations{0};
  std::atomic<int> last_seen{-1};
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    executor.submit([&, i] {
      const int now = ++running;
      int peak = max_running.load();
      while (now > peak && !max_running.compare_exchange_weak(peak, now)) {
      }
      if (last_seen.exchange(i) != i - 1) ++order_violations;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --running;
      return numbered_trial(i);
    });
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(executor.next_result().outcome.objective,
                     static_cast<double>(i));
  }
  EXPECT_EQ(max_running.load(), 1);
  EXPECT_EQ(order_violations.load(), 0);
}

TEST(AsyncExecutor, ThrowingTaskSurfacesAtItsTicketAndPipelineContinues) {
  // A throwing objective must not wedge the serialized start gate (the
  // ticket advances through the exception path) and must surface from
  // next_result() at exactly its own position.
  AsyncEvalExecutor executor(/*workers=*/2, /*serialize_runs=*/true);
  executor.submit([] { return numbered_trial(0); });
  executor.submit([]() -> Trial {
    throw std::runtime_error("objective exploded");
  });
  executor.submit([] { return numbered_trial(2); });
  EXPECT_DOUBLE_EQ(executor.next_result().outcome.objective, 0.0);
  EXPECT_THROW(executor.next_result(), std::runtime_error);
  EXPECT_DOUBLE_EQ(executor.next_result().outcome.objective, 2.0);
}

TEST(AsyncExecutor, NextResultWithNothingInFlightThrows) {
  AsyncEvalExecutor executor(/*workers=*/1, /*serialize_runs=*/true);
  EXPECT_THROW(executor.next_result(), std::logic_error);
}

TEST(AsyncExecutor, DestructorDrainsUncollectedSubmissions) {
  // Abandoning the pipeline mid-flight (an exception path in the tuner)
  // must not deadlock or crash: the pool drains every submitted task.
  std::atomic<int> completed{0};
  {
    AsyncEvalExecutor executor(/*workers=*/2, /*serialize_runs=*/true);
    for (int i = 0; i < 6; ++i) {
      executor.submit([&completed, i] {
        ++completed;
        return numbered_trial(i);
      });
    }
  }
  EXPECT_EQ(completed.load(), 6);
}

// ---- tuner-level determinism -----------------------------------------------

struct AsyncRun {
  TuningResult result;
  std::string journal;
};

AsyncRun run_session(const std::string& name, BoOptions options) {
  const std::string journal = temp_path(name);
  options.journal_path = journal;
  SyntheticObjective objective;
  BoTuner tuner(objective, options);
  AsyncRun out{tuner.tune(), util::read_file(journal)};
  std::remove(journal.c_str());
  return out;
}

void expect_same_trials(const TuningResult& a, const TuningResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_TRUE(a.trials[i].config == b.trials[i].config) << "trial " << i;
    EXPECT_DOUBLE_EQ(a.trials[i].outcome.objective,
                     b.trials[i].outcome.objective)
        << "trial " << i;
    EXPECT_DOUBLE_EQ(a.trials[i].outcome.spent_seconds,
                     b.trials[i].outcome.spent_seconds)
        << "trial " << i;
  }
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
  EXPECT_TRUE(a.best_config == b.best_config);
}

TEST(AsyncTuner, ForcedDepthOnePipelineReproducesSynchronousLoop) {
  // async_workers > 0 with async_q == 1 routes through the async pipeline
  // at depth one; a pending-free ask() is one synchronous phase-2 iteration,
  // so the trial sequence must match the classic loop bit for bit.
  SyntheticObjective sync_objective;
  BoTuner sync_tuner(sync_objective, fast_options(31, 12));
  const TuningResult sync = sync_tuner.tune();

  SyntheticObjective async_objective;
  BoTuner async_tuner(async_objective, async_options(31, 12, /*q=*/1,
                                                     /*workers=*/1));
  const TuningResult async = async_tuner.tune();

  expect_same_trials(sync, async);
  // Only the async path stamps proposal indices (sync journals must stay
  // byte-identical to pre-async revisions).
  for (std::size_t i = 0; i < sync.trials.size(); ++i) {
    EXPECT_EQ(sync.trials[i].proposal_index, -1) << i;
    EXPECT_EQ(async.trials[i].proposal_index, static_cast<std::int64_t>(i))
        << i;
  }
}

TEST(AsyncTuner, JournalsByteIdenticalAcrossWorkerAndAcqThreadCounts) {
  // The tentpole contract: for a fixed async_q, changing how much real
  // parallelism serves the pipeline (evaluation workers, acquisition
  // threads) must not change a single byte of the journal or a single bit
  // of the incumbent. Journals serialize doubles with %.17g, so the byte
  // comparison is a bit comparison of the whole trial sequence.
  for (const int q : {2, 4}) {
    const AsyncRun ref =
        run_session("async_det_ref.journal", async_options(41, 12, q, 1));
    ASSERT_EQ(ref.result.trials.size(), 12u);
    ASSERT_FALSE(ref.journal.empty());

    struct Variant {
      int workers;
      int acq_threads;
    };
    for (const Variant v : {Variant{q, 1}, Variant{q + 3, 1}, Variant{1, 4}}) {
      const AsyncRun got = run_session(
          "async_det_var.journal", async_options(41, 12, q, v.workers,
                                                 v.acq_threads));
      EXPECT_EQ(got.journal, ref.journal)
          << "q=" << q << " workers=" << v.workers
          << " acq_threads=" << v.acq_threads;
      expect_same_trials(ref.result, got.result);
    }
  }
}

TEST(AsyncTuner, MidBatchDeadlineCheckpointResumesToReferenceBytes) {
  // Kill the pipeline via the wall-clock watchdog with q proposals in
  // flight (satellite of the adml-chaos process-kill harness, which covers
  // the hard-kill variant): the drained journal must resume to a session
  // byte-identical to an uninterrupted reference run.
  const BoOptions base = async_options(21, 12, /*q=*/4, /*workers=*/4);
  const AsyncRun ref = run_session("async_resume_ref.journal", base);
  ASSERT_EQ(ref.result.trials.size(), 12u);

  const std::string journal = temp_path("async_resume.journal");
  {
    SyntheticObjective objective;
    BoOptions options = base;
    options.journal_path = journal;
    options.max_wall_seconds = 4.0;
    double fake_now = 0.0;
    options.wall_clock = [&fake_now] {
      fake_now += 1.0;
      return fake_now;
    };
    BoTuner tuner(objective, options);
    const TuningResult partial = tuner.tune();
    EXPECT_TRUE(partial.wall_deadline_hit);
    EXPECT_GE(partial.trials.size(), 1u);
    EXPECT_LT(partial.trials.size(), 12u);
  }

  SyntheticObjective resumed;
  BoOptions options = base;
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult got = tuner.tune();
  EXPECT_FALSE(got.wall_deadline_hit);
  EXPECT_GT(tuner.replayed_trials(), 0u);
  EXPECT_EQ(util::read_file(journal), ref.journal);
  expect_same_trials(ref.result, got);
  std::remove(journal.c_str());
}

// ---- out-of-order journal ingestion ----------------------------------------

std::vector<std::string> journal_lines(const std::string& contents) {
  std::vector<std::string> lines;
  for (std::string& line : util::split(contents, '\n')) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

TEST(AsyncJournal, OutOfOrderRecordsSortByProposalIndexAndResume) {
  // The schema contract: replay order is defined by the proposal_index a
  // record carries, not by its position in the file. Shuffle a journal
  // prefix on disk and the session must still resume to the reference.
  const BoOptions base = async_options(51, 10, /*q=*/4, /*workers=*/4);
  const AsyncRun ref = run_session("async_ooo_ref.journal", base);
  ASSERT_EQ(ref.result.trials.size(), 10u);

  std::vector<std::string> lines = journal_lines(ref.journal);
  ASSERT_EQ(lines.size(), 11u);  // header + 10 records
  // Keep the header, take the first 6 records, reverse them.
  std::vector<std::string> shuffled(lines.begin(), lines.begin() + 7);
  std::reverse(shuffled.begin() + 1, shuffled.end());
  const std::string journal = temp_path("async_ooo.journal");
  util::write_file_atomic(journal, join_lines(shuffled));

  const SyntheticObjective probe;
  const LoadedJournal loaded = load_journal(journal, probe.space());
  ASSERT_EQ(loaded.trials.size(), 6u);
  for (std::size_t i = 0; i < loaded.trials.size(); ++i) {
    EXPECT_EQ(loaded.trials[i].proposal_index, static_cast<std::int64_t>(i));
  }

  SyntheticObjective resumed;
  BoOptions options = base;
  options.journal_path = journal;
  BoTuner tuner(resumed, options);
  const TuningResult got = tuner.tune();
  EXPECT_EQ(tuner.replayed_trials(), 6u);
  expect_same_trials(ref.result, got);
  std::remove(journal.c_str());
}

TEST(AsyncJournal, MissingRecordIsRejectedNotSilentlyReplayed) {
  // Losing a *middle* record (truncation eats the tail legitimately; a hole
  // in the middle means the file is damaged) leaves a non-contiguous index
  // sequence; replaying around the hole would silently diverge the session,
  // so the loader must refuse.
  const BoOptions base = async_options(61, 8, /*q=*/2, /*workers=*/2);
  const AsyncRun ref = run_session("async_gap_ref.journal", base);
  std::vector<std::string> lines = journal_lines(ref.journal);
  ASSERT_EQ(lines.size(), 9u);
  lines.erase(lines.begin() + 3);  // drop the record with proposal_index 2
  const std::string journal = temp_path("async_gap.journal");
  util::write_file_atomic(journal, join_lines(lines));

  const SyntheticObjective probe;
  EXPECT_THROW(load_journal(journal, probe.space()), std::invalid_argument);
  std::remove(journal.c_str());
}

// ---- observability ---------------------------------------------------------

TEST(AsyncObs, PipelineMetricsEmittedOnlyOnTheAsyncPath) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();

  // Synchronous run: no async-only keys may appear (the golden-run test
  // depends on the sync snapshot staying stable across revisions).
  registry.reset();
  registry.enable();
  {
    SyntheticObjective objective;
    BoTuner(objective, fast_options(71, 10)).tune();
  }
  registry.disable();
  const std::string sync_json =
      util::dump_json(registry.snapshot_json(), 1);
  EXPECT_EQ(sync_json.find("tuner.in_flight"), std::string::npos);
  EXPECT_EQ(sync_json.find("threadpool.eval"), std::string::npos);

  // Async run: in-flight gauges and fantasy counters must be present.
  registry.reset();
  registry.enable();
  {
    SyntheticObjective objective;
    BoTuner tuner(objective,
                  async_options(71, 10, /*q=*/4, /*workers=*/4));
    tuner.tune();
  }
  registry.disable();
  EXPECT_GE(registry.gauge("tuner.in_flight_peak").value(), 2.0);
  EXPECT_EQ(registry.gauge("tuner.in_flight").value(), 0.0);  // drained
  EXPECT_GE(registry.counter("acq.fantasized").value(), 1);
  EXPECT_GE(registry.gauge("threadpool.eval.submitted").value(), 1.0);
  registry.reset();
}

}  // namespace
}  // namespace autodml::core

// The service determinism contract: a session driven over the wire is
// bit-identical to a standalone BoTuner on the same seed. A serial
// suggest/report drive must reproduce the forced-async depth-one tune()
// (journal bytes and incumbent bits), a k-outstanding drive must match
// async_q == k, out-of-order reports are buffered into strict FIFO
// ingestion, and create-session against an existing journal resumes by
// replay to the same continuation. Also pins tune()/session mutual
// exclusion on one BoTuner.
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <stdexcept>
#include <string>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/space_json.h"
#include "synthetic_objective.h"
#include "util/fs.h"
#include "util/json.h"

namespace autodml::service {
namespace {

using testing::SyntheticObjective;
using util::JsonValue;

core::BoOptions reference_options(std::uint64_t seed, int evals, int q,
                                  int workers) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  options.initial_design_size = 3;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 30;
  options.acq_optimizer.random_candidates = 64;
  // The wire drive evaluates without a RunController, so the reference
  // must not early-terminate either.
  options.early_term.enabled = false;
  options.async_q = q;
  options.async_workers = workers;
  return options;
}

/// The create-session request mirroring reference_options exactly.
std::string create_line(const std::string& id, std::uint64_t seed, int evals,
                        const std::string& journal) {
  const SyntheticObjective probe;
  std::string line = R"({"op":"create-session","session":")" + id +
                     R"(","seed":)" + std::to_string(seed) +
                     R"(,"target_metric":0.9,)";
  if (!journal.empty()) line += R"("journal":")" + journal + R"(",)";
  line += R"("options":{"max_evaluations":)" + std::to_string(evals) +
          R"(,"initial_design_size":3,"gp_restarts":1,)"
          R"("gp_adam_iterations":30,"acq_random_candidates":64,)"
          R"("early_term":false},"space":)" +
          util::dump_json(space_to_json(probe.space())) + "}";
  return line;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

JsonValue call(SessionManager& manager, const std::string& line) {
  JsonValue response = util::parse_json(manager.handle_line(line));
  EXPECT_TRUE(response.is_object());
  return response;
}

JsonValue expect_ok(SessionManager& manager, const std::string& line) {
  JsonValue response = call(manager, line);
  EXPECT_TRUE(response.at("ok").as_bool())
      << line << " -> " << util::dump_json(response);
  return response;
}

/// Evaluates a suggested config client-side with the shared test double
/// (no controller: early termination is off on both sides).
std::string report_line(const std::string& id, SyntheticObjective& objective,
                        const JsonValue& suggest) {
  conf::Config config =
      config_from_json(suggest.at("config"), objective.space());
  const core::RunOutcome outcome = objective.run(config, nullptr);
  return R"({"op":"report","session":")" + id + R"(","ticket":)" +
         std::to_string(
             static_cast<std::int64_t>(suggest.at("ticket").as_number())) +
         R"(,"outcome":)" + util::dump_json(outcome_to_json(outcome)) + "}";
}

/// Drives a session keeping up to `k` suggestions outstanding (k = 1 is
/// the serial drive), reporting the oldest first — the exact interleave
/// run_async uses at async_q == k. Returns the final status response.
JsonValue drive(SessionManager& manager, const std::string& id, int k) {
  SyntheticObjective objective;
  std::deque<JsonValue> outstanding;
  bool exhausted = false;
  while (true) {
    while (!exhausted &&
           outstanding.size() < static_cast<std::size_t>(k)) {
      JsonValue response =
          call(manager, R"({"op":"suggest","session":")" + id + R"("})");
      if (!response.at("ok").as_bool()) {
        EXPECT_EQ(response.at("error").as_string(), "budget-exhausted");
        exhausted = true;
        break;
      }
      outstanding.push_back(std::move(response));
    }
    if (outstanding.empty()) break;
    expect_ok(manager, report_line(id, objective, outstanding.front()));
    outstanding.pop_front();
  }
  return expect_ok(manager, R"({"op":"status","session":")" + id + R"("})");
}

// ---- bit-identity ----------------------------------------------------------

TEST(ServiceSession, SerialDriveIsBitIdenticalToForcedAsyncTune) {
  const std::string ref_journal = temp_path("svc_ref_serial.journal");
  SyntheticObjective reference;
  core::BoOptions options = reference_options(21, 8, /*q=*/1, /*workers=*/1);
  options.journal_path = ref_journal;
  core::BoTuner tuner(reference, options);
  const core::TuningResult want = tuner.tune();

  const std::string journal = temp_path("svc_serial.journal");
  SessionManager manager;
  expect_ok(manager, create_line("s", 21, 8, journal));
  const JsonValue status = drive(manager, "s", /*k=*/1);

  EXPECT_TRUE(status.at("done").as_bool());
  EXPECT_EQ(static_cast<std::size_t>(status.at("trials").as_number()),
            want.trials.size());
  // %.17g round-trips doubles exactly, so == is a bit comparison.
  EXPECT_EQ(status.at("best_objective").as_number(), want.best_objective);
  EXPECT_EQ(util::read_file(journal), util::read_file(ref_journal));
  std::remove(ref_journal.c_str());
  std::remove(journal.c_str());
}

TEST(ServiceSession, TwoOutstandingDriveMatchesAsyncDepthTwo) {
  const std::string ref_journal = temp_path("svc_ref_q2.journal");
  SyntheticObjective reference;
  core::BoOptions options = reference_options(22, 8, /*q=*/2, /*workers=*/2);
  options.journal_path = ref_journal;
  core::BoTuner tuner(reference, options);
  const core::TuningResult want = tuner.tune();

  const std::string journal = temp_path("svc_q2.journal");
  SessionManager manager;
  expect_ok(manager, create_line("s", 22, 8, journal));
  const JsonValue status = drive(manager, "s", /*k=*/2);

  EXPECT_EQ(status.at("best_objective").as_number(), want.best_objective);
  EXPECT_EQ(util::read_file(journal), util::read_file(ref_journal));
  std::remove(ref_journal.c_str());
  std::remove(journal.c_str());
}

TEST(ServiceSession, OutOfOrderReportsBufferIntoFifoIngestion) {
  // Three suggestions outstanding, reported 2, 0, 1: ingestion (journal
  // appends, surrogate folds) must still happen in ticket order, which is
  // exactly run_async at q == 3 — so the journals must match bytewise.
  const std::string ref_journal = temp_path("svc_ref_q3.journal");
  SyntheticObjective reference;
  core::BoOptions options = reference_options(23, 3, /*q=*/3, /*workers=*/3);
  options.journal_path = ref_journal;
  core::BoTuner tuner(reference, options);
  const core::TuningResult want = tuner.tune();

  const std::string journal = temp_path("svc_q3.journal");
  SessionManager manager;
  expect_ok(manager, create_line("s", 23, 3, journal));
  SyntheticObjective objective;
  JsonValue asks[3];
  for (auto& ask : asks) {
    ask = expect_ok(manager, R"({"op":"suggest","session":"s"})");
  }
  for (const int ticket : {2, 0, 1}) {
    // Evaluation order must not matter; each outcome is a pure function
    // of its config (the test double is noise-free).
    expect_ok(manager,
              report_line("s", objective,
                          asks[static_cast<std::size_t>(ticket)]));
  }
  const JsonValue status =
      expect_ok(manager, R"({"op":"status","session":"s"})");
  EXPECT_TRUE(status.at("done").as_bool());
  EXPECT_EQ(status.at("best_objective").as_number(), want.best_objective);
  EXPECT_EQ(util::read_file(journal), util::read_file(ref_journal));

  // The journal itself is proposal-ordered despite the arrival order.
  const core::LoadedJournal loaded =
      core::load_journal(journal, reference.space());
  ASSERT_EQ(loaded.trials.size(), 3u);
  for (std::size_t i = 0; i < loaded.trials.size(); ++i) {
    EXPECT_EQ(loaded.trials[i].proposal_index,
              static_cast<std::int64_t>(i));
  }
  std::remove(ref_journal.c_str());
  std::remove(journal.c_str());
}

TEST(ServiceSession, CreateAgainstExistingJournalResumesByReplay) {
  const std::string ref_journal = temp_path("svc_ref_resume.journal");
  SyntheticObjective reference;
  core::BoOptions options = reference_options(24, 8, /*q=*/1, /*workers=*/1);
  options.journal_path = ref_journal;
  core::BoTuner tuner(reference, options);
  const core::TuningResult want = tuner.tune();

  const std::string journal = temp_path("svc_resume.journal");
  SessionManager manager;
  expect_ok(manager, create_line("first", 24, 8, journal));
  SyntheticObjective objective;
  for (int i = 0; i < 4; ++i) {
    const JsonValue ask =
        expect_ok(manager, R"({"op":"suggest","session":"first"})");
    expect_ok(manager, report_line("first", objective, ask));
  }
  expect_ok(manager, R"({"op":"close-session","session":"first"})");

  // Same seed/options/journal under a fresh id: the four journaled trials
  // replay into the surrogate before any new suggestion is served.
  const JsonValue created =
      expect_ok(manager, create_line("second", 24, 8, journal));
  EXPECT_EQ(created.at("replayed").as_number(), 4.0);
  EXPECT_EQ(created.at("trials").as_number(), 4.0);
  const JsonValue status = drive(manager, "second", /*k=*/1);
  EXPECT_TRUE(status.at("done").as_bool());
  EXPECT_EQ(status.at("best_objective").as_number(), want.best_objective);
  EXPECT_EQ(util::read_file(journal), util::read_file(ref_journal));
  std::remove(ref_journal.c_str());
  std::remove(journal.c_str());
}

// ---- mode exclusion --------------------------------------------------------

TEST(ServiceSession, TuneAndAskTellAreMutuallyExclusive) {
  SyntheticObjective first;
  core::BoTuner session_mode(first,
                             reference_options(25, 4, /*q=*/1, /*workers=*/1));
  ASSERT_TRUE(session_mode.ask_next().has_value());
  EXPECT_THROW(session_mode.tune(), std::logic_error);

  SyntheticObjective second;
  core::BoTuner tune_mode(second,
                          reference_options(25, 4, /*q=*/1, /*workers=*/1));
  tune_mode.tune();
  EXPECT_THROW(tune_mode.ask_next(), std::logic_error);
}

}  // namespace
}  // namespace autodml::service

// Concurrency stress for the session shard: many independent sessions
// driven over the loopback transport by parallel client threads, every
// one of which must land byte-identical to its single-session standalone
// reference. Exercises the actor-per-session serialization, the shared
// worker pool, admission bookkeeping, and journal isolation under real
// thread interleavings — the test the TSan CI leg cares about.
//
// Scale: 1000 sessions by default (the ISSUE 10 acceptance bar), reduced
// under TSan where every op costs ~10x. Sessions cycle through a handful
// of seeds so each journal can be byte-compared against one of a handful
// of standalone reference journals instead of a thousand.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/bo_tuner.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/space_json.h"
#include "util/fs.h"
#include "util/json.h"

#if defined(__SANITIZE_THREAD__)
#define ADML_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ADML_TSAN_BUILD 1
#endif
#endif

namespace autodml::service {
namespace {

using util::JsonValue;

#if defined(ADML_TSAN_BUILD)
constexpr int kSessions = 200;
#else
constexpr int kSessions = 1000;
#endif
constexpr int kClientThreads = 8;
constexpr int kEvals = 4;
constexpr std::uint64_t kSeeds[] = {31, 32, 33, 34, 35, 36, 37, 38};
constexpr std::size_t kNumSeeds = sizeof(kSeeds) / sizeof(kSeeds[0]);

/// Tiny two-knob objective: cheap enough for a thousand sessions, curved
/// enough that the incumbent depends on the GP actually proposing.
double objective_value(double x, std::int64_t k) {
  return 3.0 + 25.0 * (x - 0.37) * (x - 0.37) +
         0.7 * static_cast<double>(k > 5 ? k - 5 : 5 - k);
}

class StressObjective final : public core::ObjectiveFunction {
 public:
  StressObjective() {
    space_.add(conf::ParamSpec::continuous("x", 0.0, 1.0));
    space_.add(conf::ParamSpec::integer("k", 1, 8));
  }
  const conf::ConfigSpace& space() const override { return space_; }
  double target_metric() const override { return 0.9; }
  core::RunOutcome run(const conf::Config& config,
                       core::RunController*) override {
    core::RunOutcome out;
    out.feasible = true;
    out.objective = objective_value(config.get_double("x"),
                                    config.get_int("k"));
    out.spent_seconds = 1.0;
    out.usd_per_hour = 1.0;
    return out;
  }

 private:
  conf::ConfigSpace space_;
};

core::BoOptions stress_options(std::uint64_t seed) {
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = kEvals;
  options.initial_design_size = 2;
  options.surrogate.gp.restarts = 1;
  options.surrogate.gp.adam_iterations = 12;
  options.acq_optimizer.random_candidates = 32;
  options.early_term.enabled = false;
  options.async_q = 1;
  options.async_workers = 1;  // forced-async depth one = the session drive
  return options;
}

std::string session_id(int i) { return "s" + std::to_string(i); }

std::string journal_path(int i) {
  return ::testing::TempDir() + "/svc_stress_" + std::to_string(i) +
         ".journal";
}

std::string create_line(int i) {
  const StressObjective probe;
  return R"({"op":"create-session","session":")" + session_id(i) +
         R"(","seed":)" + std::to_string(kSeeds[i % kNumSeeds]) +
         R"(,"target_metric":0.9,"journal":")" + journal_path(i) +
         R"(","options":{"max_evaluations":)" + std::to_string(kEvals) +
         R"(,"initial_design_size":2,"gp_restarts":1,)"
         R"("gp_adam_iterations":12,"acq_random_candidates":32,)"
         R"("early_term":false},"space":)" +
         util::dump_json(space_to_json(probe.space())) + "}";
}

TEST(ServiceStress, ThousandConcurrentSessionsMatchStandaloneReferences) {
  // Standalone references: one forced-async tune per distinct seed.
  std::string reference_journal[kNumSeeds];
  double reference_best[kNumSeeds];
  for (std::size_t s = 0; s < kNumSeeds; ++s) {
    const std::string path =
        ::testing::TempDir() + "/svc_stress_ref_" + std::to_string(s) +
        ".journal";
    std::remove(path.c_str());
    StressObjective objective;
    core::BoOptions options = stress_options(kSeeds[s]);
    options.journal_path = path;
    core::BoTuner tuner(objective, options);
    reference_best[s] = tuner.tune().best_objective;
    reference_journal[s] = util::read_file(path);
    std::remove(path.c_str());
  }

  ServiceOptions service_options;
  service_options.workers = 4;
  service_options.max_sessions = kSessions + 8;
  SessionManager manager(service_options);

  // Each client thread owns a disjoint slice of sessions and drives every
  // one serially (suggest -> evaluate -> report); concurrency happens
  // *across* sessions, which is the service's parallelism model. Failures
  // are flagged atomically and asserted on the main thread — gtest
  // EXPECT from worker threads is not thread-safe everywhere.
  std::atomic<int> mismatches{0};
  std::atomic<int> protocol_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([t, &manager, &mismatches, &protocol_errors,
                          &reference_best] {
      StressObjective objective;
      for (int i = t; i < kSessions; i += kClientThreads) {
        std::remove(journal_path(i).c_str());
        const JsonValue created =
            util::parse_json(manager.handle_line(create_line(i)));
        if (!created.at("ok").as_bool()) {
          ++protocol_errors;
          continue;
        }
        const std::string id = session_id(i);
        while (true) {
          const JsonValue ask = util::parse_json(manager.handle_line(
              R"({"op":"suggest","session":")" + id + R"("})"));
          if (!ask.at("ok").as_bool()) {
            if (ask.at("error").as_string() != "budget-exhausted")
              ++protocol_errors;
            break;
          }
          conf::Config config =
              config_from_json(ask.at("config"), objective.space());
          const core::RunOutcome outcome = objective.run(config, nullptr);
          const JsonValue told = util::parse_json(manager.handle_line(
              R"({"op":"report","session":")" + id + R"(","ticket":)" +
              std::to_string(static_cast<std::int64_t>(
                  ask.at("ticket").as_number())) +
              R"(,"outcome":)" + util::dump_json(outcome_to_json(outcome)) +
              "}"));
          if (!told.at("ok").as_bool()) ++protocol_errors;
        }
        const JsonValue closed = util::parse_json(manager.handle_line(
            R"({"op":"close-session","session":")" + id + R"("})"));
        if (!closed.at("ok").as_bool()) {
          ++protocol_errors;
          continue;
        }
        if (closed.at("best_objective").as_number() !=
            reference_best[i % kNumSeeds]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(protocol_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "incumbent diverged from reference";
  EXPECT_EQ(manager.active_sessions(), 0u);

  // Every journal must be byte-identical to its seed's standalone
  // reference — the strongest form of the determinism contract.
  int journal_mismatches = 0;
  for (int i = 0; i < kSessions; ++i) {
    if (util::read_file(journal_path(i)) !=
        reference_journal[i % kNumSeeds]) {
      ++journal_mismatches;
    }
    std::remove(journal_path(i).c_str());
  }
  EXPECT_EQ(journal_mismatches, 0);

  const JsonValue stats =
      util::parse_json(manager.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("sessions_created").as_number(),
            static_cast<double>(kSessions));
}

}  // namespace
}  // namespace autodml::service

// Fault-injection runtime: deterministic schedules, query math, and the
// sync-discipline-aware degradation the design promises (BSP stalls every
// survivor on a straggler; ASP degrades by roughly one worker's share).
#include <gtest/gtest.h>

#include "sim/fault_injector.h"
#include "sim/ps_runtime.h"
#include "sim/system_sim.h"

namespace autodml::sim {
namespace {

Cluster make_cluster(int workers, int servers) {
  ClusterSpec spec;
  spec.worker_type = "std8";
  spec.server_type = "mem8";
  spec.num_workers = workers;
  spec.num_servers = servers;
  spec.heterogeneity_sigma = 0.0;
  spec.straggler_sigma = 0.0;
  util::Rng rng(1);
  return provision(spec, rng);
}

JobParams make_job(SyncMode mode) {
  JobParams job;
  // Compute-dominated on std8 (95 GFLOPs): ~0.7s compute vs ~6ms transfer,
  // so compute-slowdown faults visibly move end-to-end throughput.
  job.model_bytes = 4e6;
  job.flops_per_sample = 2e9;
  job.batch_per_worker = 32;
  job.sync = mode;
  job.comm_threads = 4;
  return job;
}

TEST(FaultInjector, SameSeedYieldsIdenticalTrace) {
  const FaultSpec spec = heavy_fault_spec();
  const FaultInjector a(spec, 6, /*seed=*/123);
  const FaultInjector b(spec, 6, /*seed=*/123);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  ASSERT_GT(a.trace().size(), 0u);
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].kind, b.trace()[i].kind) << i;
    EXPECT_EQ(a.trace()[i].worker, b.trace()[i].worker) << i;
    EXPECT_DOUBLE_EQ(a.trace()[i].start, b.trace()[i].start) << i;
    EXPECT_DOUBLE_EQ(a.trace()[i].duration, b.trace()[i].duration) << i;
    EXPECT_DOUBLE_EQ(a.trace()[i].factor, b.trace()[i].factor) << i;
  }
}

TEST(FaultInjector, DifferentSeedsYieldDifferentTraces) {
  const FaultSpec spec = heavy_fault_spec();
  const FaultInjector a(spec, 6, 123);
  const FaultInjector b(spec, 6, 124);
  bool differs = a.trace().size() != b.trace().size();
  for (std::size_t i = 0; !differs && i < a.trace().size(); ++i) {
    differs = a.trace()[i].start != b.trace()[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, DisabledSpecInjectsNothing) {
  const FaultSpec spec;  // all rates zero
  EXPECT_FALSE(spec.injects_runtime_faults());
  EXPECT_FALSE(spec.enabled());
  const FaultInjector injector(spec, 4, 99);
  EXPECT_TRUE(injector.trace().empty());
  EXPECT_DOUBLE_EQ(injector.downtime_during(0, 0.0, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(injector.compute_slowdown(0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.network_penalty(100.0), 1.0);
}

TEST(FaultInjector, CraftedScheduleQueriesAddUp) {
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::kWorkerCrash, 0, 10.0, 30.0, 1.0});
  events.push_back({FaultKind::kPreemption, 0, 100.0, 180.0, 1.0});
  events.push_back({FaultKind::kWorkerCrash, 1, 50.0, 30.0, 1.0});
  events.push_back({FaultKind::kStragglerEpisode, 0, 200.0, 60.0, 4.0});
  events.push_back({FaultKind::kNetworkDegrade, 0, 300.0, 20.0, 5.0});
  const FaultInjector injector(FaultSpec{}, 2, std::move(events));

  // Downtime counts events *starting* inside the window, per worker.
  EXPECT_DOUBLE_EQ(injector.downtime_during(0, 0.0, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(injector.downtime_during(0, 0.0, 500.0), 210.0);
  EXPECT_DOUBLE_EQ(injector.downtime_during(0, 10.0, 11.0), 30.0);
  EXPECT_DOUBLE_EQ(injector.downtime_during(0, 11.0, 99.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.downtime_during(1, 0.0, 500.0), 30.0);

  // Straggler episodes slow only their window and worker.
  EXPECT_DOUBLE_EQ(injector.compute_slowdown(0, 199.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.compute_slowdown(0, 230.0), 4.0);
  EXPECT_DOUBLE_EQ(injector.compute_slowdown(0, 261.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.compute_slowdown(1, 230.0), 1.0);

  // Network degradation is cluster-wide.
  EXPECT_DOUBLE_EQ(injector.network_penalty(299.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.network_penalty(310.0), 5.0);
  EXPECT_DOUBLE_EQ(injector.network_penalty(321.0), 1.0);
}

TEST(FaultInjector, BspStallsOnStragglerHarderThanAsp) {
  // One permanently slowed worker (factor 8). BSP's barrier drags every
  // iteration down to the straggler's pace; ASP loses only roughly that
  // worker's contribution.
  const Cluster cluster = make_cluster(8, 2);
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::kStragglerEpisode, 0, 0.0, 1e9, 8.0});
  const FaultInjector injector(FaultSpec{}, 8, std::move(events));

  PsSimOptions faulted;
  faulted.faults = &injector;
  const PsSimOptions clean;

  double ratio[2];
  const SyncMode modes[2] = {SyncMode::kBsp, SyncMode::kAsp};
  for (int m = 0; m < 2; ++m) {
    util::Rng rng_clean(7), rng_faulted(7);
    const RuntimeStats base =
        simulate_ps(cluster, make_job(modes[m]), rng_clean, clean);
    const RuntimeStats hurt =
        simulate_ps(cluster, make_job(modes[m]), rng_faulted, faulted);
    ASSERT_GT(base.samples_per_second, 0.0);
    ratio[m] = hurt.samples_per_second / base.samples_per_second;
  }
  EXPECT_LT(ratio[0], 0.5);   // BSP: barrier-bound, near the straggler pace
  EXPECT_GT(ratio[1], 0.6);   // ASP: survivors keep committing
  EXPECT_LT(ratio[0], ratio[1]);
}

TEST(FaultInjector, CrashDowntimeLandsInRuntimeStats) {
  const Cluster cluster = make_cluster(4, 2);
  std::vector<FaultEvent> events;
  events.push_back({FaultKind::kWorkerCrash, 2, 0.05, 30.0, 1.0});
  const FaultInjector injector(FaultSpec{}, 4, std::move(events));
  PsSimOptions options;
  options.faults = &injector;
  util::Rng rng(7);
  const RuntimeStats stats =
      simulate_ps(cluster, make_job(SyncMode::kBsp), rng, options);
  EXPECT_TRUE(stats.completed);
  EXPECT_GE(stats.fault_events, 1);
  EXPECT_GE(stats.fault_downtime_seconds, 30.0);
}

TEST(FaultInjector, SystemSimWithFaultsIsDeterministic) {
  SystemConfig config;
  config.arch = Arch::kPs;
  config.cluster.worker_type = "std8";
  config.cluster.server_type = "mem8";
  config.cluster.num_workers = 8;
  config.cluster.num_servers = 4;
  config.job.model_bytes = 120e6;
  config.job.flops_per_sample = 1e8;
  config.job.batch_per_worker = 64;
  SystemSimOptions options;
  options.faults = heavy_fault_spec();
  util::Rng a(21), b(21);
  const SystemPerformance pa = evaluate_system(config, a, options);
  const SystemPerformance pb = evaluate_system(config, b, options);
  ASSERT_TRUE(pa.feasible);
  EXPECT_DOUBLE_EQ(pa.runtime.samples_per_second,
                   pb.runtime.samples_per_second);
  EXPECT_DOUBLE_EQ(pa.runtime.fault_downtime_seconds,
                   pb.runtime.fault_downtime_seconds);
  EXPECT_EQ(pa.runtime.fault_events, pb.runtime.fault_events);
}

TEST(FaultInjector, DisabledSpecLeavesSimulationByteIdentical) {
  // The injector is only constructed when a spec injects runtime faults,
  // so a disabled spec must not perturb any rng stream.
  SystemConfig config;
  config.arch = Arch::kAllReduce;
  config.cluster.worker_type = "std8";
  config.cluster.num_workers = 4;
  config.job.model_bytes = 50e6;
  config.job.flops_per_sample = 1e7;
  config.job.batch_per_worker = 32;
  util::Rng a(5), b(5);
  const SystemPerformance legacy = evaluate_system(config, a);
  SystemSimOptions options;  // default: faults disabled
  const SystemPerformance gated = evaluate_system(config, b, options);
  EXPECT_DOUBLE_EQ(legacy.runtime.samples_per_second,
                   gated.runtime.samples_per_second);
  EXPECT_EQ(gated.runtime.fault_events, 0);
}

}  // namespace
}  // namespace autodml::sim

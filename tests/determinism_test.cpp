// Cross-component determinism: every stochastic pipeline must be bit-exact
// reproducible from its seed — the property all experiment claims rest on —
// plus assorted coverage for small utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "baselines/baseline_tuners.h"
#include "baselines/parallel_bo.h"
#include "config/sampler.h"
#include "sim/system_sim.h"
#include "core/bo_tuner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fs.h"
#include "util/log.h"
#include "util/stopwatch.h"
#include "workloads/eval_supervisor.h"
#include "workloads/objective_adapter.h"

namespace autodml {
namespace {

TEST(Determinism, SamplersReproduce) {
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  const conf::ConfigSpace space = wl::build_config_space(workload);
  util::Rng a(5), b(5);
  const auto batch_a = conf::latin_hypercube(space, 20, a);
  const auto batch_b = conf::latin_hypercube(space, 20, b);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_TRUE(batch_a[i] == batch_b[i]) << i;
  }
}

TEST(Determinism, SystemSimulationReproduces) {
  sim::SystemConfig config;
  config.arch = sim::Arch::kPs;
  config.cluster.worker_type = "std8";
  config.cluster.server_type = "mem8";
  config.cluster.num_workers = 8;
  config.cluster.num_servers = 4;
  config.job.model_bytes = 120e6;
  config.job.flops_per_sample = 1e8;
  config.job.batch_per_worker = 64;
  config.job.sync = sim::SyncMode::kAsp;
  util::Rng a(9), b(9);
  const auto perf_a = sim::evaluate_system(config, a);
  const auto perf_b = sim::evaluate_system(config, b);
  EXPECT_DOUBLE_EQ(perf_a.runtime.updates_per_second,
                   perf_b.runtime.updates_per_second);
  EXPECT_DOUBLE_EQ(perf_a.runtime.mean_staleness,
                   perf_b.runtime.mean_staleness);
  EXPECT_DOUBLE_EQ(perf_a.runtime.bytes_per_update,
                   perf_b.runtime.bytes_per_update);
}

TEST(Determinism, EvaluatorSequencesReproduce) {
  const wl::Workload& workload = wl::workload_by_name("cnn-cifar");
  wl::Evaluator eval_a(workload, 33), eval_b(workload, 33);
  util::Rng cfg_a(7), cfg_b(7);
  for (int i = 0; i < 8; ++i) {
    const conf::Config ca = eval_a.space().sample_uniform(cfg_a);
    const conf::Config cb = eval_b.space().sample_uniform(cfg_b);
    ASSERT_TRUE(ca == cb);
    const wl::EvalResult ra = eval_a.evaluate(ca);
    const wl::EvalResult rb = eval_b.evaluate(cb);
    EXPECT_EQ(ra.feasible, rb.feasible);
    if (ra.feasible) {
      EXPECT_DOUBLE_EQ(ra.tta_seconds, rb.tta_seconds);
    }
  }
  EXPECT_DOUBLE_EQ(eval_a.total_spent_seconds(), eval_b.total_spent_seconds());
}

TEST(Determinism, EveryRegisteredTunerReproduces) {
  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  for (const auto& entry : baselines::tuner_registry()) {
    const auto run = [&] {
      wl::Evaluator evaluator(workload, 44);
      wl::EvaluatorObjective objective(evaluator);
      return entry.fn(objective, 8, 44).best_objective;
    };
    EXPECT_DOUBLE_EQ(run(), run()) << entry.name;
  }
}

TEST(Determinism, ParallelBoReproduces) {
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  const auto run = [&] {
    wl::Evaluator evaluator(workload, 55);
    wl::EvaluatorObjective objective(evaluator);
    baselines::ParallelBoOptions options;
    options.batch_size = 3;
    options.rounds = 3;
    options.seed = 55;
    options.surrogate.gp.restarts = 1;
    const auto result = baselines::parallel_bo(objective, options);
    return std::make_pair(result.tuning.best_objective,
                          result.wall_clock_seconds);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Determinism, FaultScheduleReproduces) {
  const sim::FaultSpec spec = sim::light_fault_spec();
  const sim::FaultInjector a(spec, 8, 77), b(spec, 8, 77);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].kind, b.trace()[i].kind) << i;
    EXPECT_EQ(a.trace()[i].worker, b.trace()[i].worker) << i;
    EXPECT_DOUBLE_EQ(a.trace()[i].start, b.trace()[i].start) << i;
    EXPECT_DOUBLE_EQ(a.trace()[i].duration, b.trace()[i].duration) << i;
  }
}

TEST(Determinism, SupervisedTunerUnderFaultsReproduces) {
  // The whole robustness stack at once: fault injection, whole-job kills,
  // supervised retries with jittered backoff, failure classification.
  // Identical seeds must yield identical trial sequences and ledgers.
  const wl::Workload& workload = wl::workload_by_name("mlp-tabular");
  const auto run = [&] {
    wl::EvaluatorOptions eval_options;
    eval_options.faults = sim::heavy_fault_spec();
    wl::Evaluator evaluator(workload, 88, eval_options);
    wl::EvalSupervisor supervisor(evaluator, wl::RetryPolicy{}, 88);
    wl::SupervisedObjective objective(supervisor);
    core::BoOptions options;
    options.seed = 88;
    options.max_evaluations = 8;
    options.initial_design_size = 4;
    options.surrogate.gp.restarts = 1;
    options.surrogate.gp.adam_iterations = 60;
    options.acq_optimizer.random_candidates = 256;
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    return std::make_pair(result, evaluator.total_spent_seconds());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first.best_objective, b.first.best_objective);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  ASSERT_EQ(a.first.trials.size(), b.first.trials.size());
  for (std::size_t i = 0; i < a.first.trials.size(); ++i) {
    EXPECT_TRUE(a.first.trials[i].config == b.first.trials[i].config) << i;
    EXPECT_EQ(a.first.trials[i].outcome.attempts,
              b.first.trials[i].outcome.attempts)
        << i;
    EXPECT_EQ(a.first.trials[i].outcome.failure_kind,
              b.first.trials[i].outcome.failure_kind)
        << i;
    EXPECT_DOUBLE_EQ(a.first.trials[i].outcome.spent_seconds,
                     b.first.trials[i].outcome.spent_seconds)
        << i;
  }
}

TEST(Determinism, ObservabilityDoesNotPerturbResults) {
  // The obs layer's core promise: tracing and metrics only *observe*. The
  // same seeded session run with obs off, with tracing on, and with
  // metrics on must produce bit-identical incumbents and byte-identical
  // crash-safe journals (journals serialize every double with %.17g, so a
  // byte comparison is a bit comparison of the whole trial sequence).
  enum class Obs { kOff, kTracing, kMetrics };
  const auto run = [&](Obs mode, const std::string& journal_name) {
    obs::Tracer& tracer = obs::Tracer::instance();
    obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
    if (mode == Obs::kTracing) tracer.start();
    if (mode == Obs::kMetrics) {
      registry.reset();
      registry.enable();
    }
    const std::string journal_path =
        ::testing::TempDir() + "obs_determinism_" + journal_name + ".jsonl";
    std::remove(journal_path.c_str());
    const wl::Workload& workload = wl::workload_by_name("logreg-ads");
    wl::Evaluator evaluator(workload, 99);
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 99;
    options.max_evaluations = 10;
    options.initial_design_size = 5;
    options.surrogate.gp.restarts = 1;
    options.surrogate.gp.adam_iterations = 60;
    options.acq_optimizer.random_candidates = 256;
    options.journal_path = journal_path;
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    if (mode == Obs::kTracing) {
      tracer.stop();
      // The trace itself must be non-trivial, or this test proves nothing.
      EXPECT_GT(tracer.event_count(), 50u);
      tracer.clear();
    }
    if (mode == Obs::kMetrics) {
      EXPECT_GT(registry.counter("eval.runs").value(), 0);
      registry.disable();
      registry.reset();
    }
    return std::make_pair(result, util::read_file(journal_path));
  };
  const auto baseline = run(Obs::kOff, "off");
  const auto traced = run(Obs::kTracing, "trace");
  const auto metered = run(Obs::kMetrics, "metrics");

  for (const auto* other : {&traced, &metered}) {
    ASSERT_EQ(baseline.first.trials.size(), other->first.trials.size());
    EXPECT_DOUBLE_EQ(baseline.first.best_objective,
                     other->first.best_objective);
    ASSERT_EQ(baseline.first.incumbent_curve.size(),
              other->first.incumbent_curve.size());
    for (std::size_t i = 0; i < baseline.first.incumbent_curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(baseline.first.incumbent_curve[i],
                       other->first.incumbent_curve[i])
          << "incumbent diverged at trial " << i;
    }
    EXPECT_EQ(baseline.second, other->second) << "journal bytes diverged";
  }
}

// ---- misc utility coverage -------------------------------------------------------

TEST(LogLevels, FilteringRespectsThreshold) {
  const util::LogLevel original = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output path).
  ADML_INFO << "suppressed";
  util::set_log_level(util::LogLevel::kOff);
  ADML_ERROR << "also suppressed";
  util::set_log_level(original);
}

TEST(Stopwatch, MeasuresElapsedMonotonically) {
  util::Stopwatch watch;
  const double t1 = watch.elapsed_seconds();
  double t2 = watch.elapsed_seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(watch.elapsed_ms(), 0.0);
  watch.reset();
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
}

TEST(GridSearchEdge, BudgetOfOneStillReturnsATrial) {
  const wl::Workload& workload = wl::workload_by_name("logreg-ads");
  wl::Evaluator evaluator(workload, 66);
  wl::EvaluatorObjective objective(evaluator);
  const core::TuningResult result = baselines::grid_search(objective, 1, 66, 2);
  EXPECT_EQ(result.trials.size(), 1u);
}

TEST(AnnealingEdge, SurvivesAllInfeasibleStart) {
  // An annealer whose first draw fails must keep moving (inf current value
  // accepts any finite successor).
  const wl::Workload& workload = wl::workload_by_name("resnet-imagenet");
  wl::Evaluator evaluator(workload, 67);
  wl::EvaluatorObjective objective(evaluator);
  const core::TuningResult result =
      baselines::simulated_annealing(objective, 12, 67);
  EXPECT_EQ(result.trials.size(), 12u);
}

TEST(ClusterEdge, SingleWorkerClusterWorksEverywhere) {
  for (const auto& workload : wl::workload_suite()) {
    wl::Evaluator evaluator(workload, 68);
    conf::Config c = wl::default_expert_config(workload, evaluator.space());
    c.set_int("num_workers", 1);
    c.set_int("num_servers", 1);
    evaluator.space().canonicalize(c);
    const wl::EvalResult r = evaluator.evaluate_ground_truth(c);
    // One worker must always be *runnable* (feasible or a clean failure).
    if (!r.feasible) {
      EXPECT_FALSE(r.failure.empty());
    }
  }
}

}  // namespace
}  // namespace autodml

#include <gtest/gtest.h>

#include <cmath>

#include "ml/convergence.h"
#include "ml/curve_fit.h"
#include "ml/micro_trainer.h"

namespace autodml::ml {
namespace {

StatModelParams default_params() {
  StatModelParams p;
  p.eval_noise_sigma = 0.0;  // deterministic for property tests
  return p;
}

StatOutcome eval(const StatModelParams& p, double batch, double staleness,
                 double lr,
                 sim::Compression comp = sim::Compression::kNone) {
  util::Rng rng(1);
  return samples_to_target(p, batch, staleness, lr, comp, rng);
}

// ---- effective batch ---------------------------------------------------------

TEST(EffectiveBatch, BspAggregatesWorkers) {
  EXPECT_DOUBLE_EQ(effective_batch(sim::SyncMode::kBsp, 8, 32), 256.0);
  EXPECT_DOUBLE_EQ(effective_batch(sim::SyncMode::kAsp, 8, 32), 32.0);
  EXPECT_DOUBLE_EQ(effective_batch(sim::SyncMode::kSsp, 8, 32), 32.0);
  EXPECT_THROW(effective_batch(sim::SyncMode::kBsp, 0, 32),
               std::invalid_argument);
}

// ---- samples_to_target ----------------------------------------------------------

TEST(StatModel, SamplesGrowBeyondCriticalBatch) {
  const StatModelParams p = default_params();
  const double lr = p.base_lr;
  // At the optimum LR for each batch, samples needed grow with batch.
  const auto at = [&](double batch) {
    const StatOutcome o = eval(p, batch, 0.0, 1e-9, sim::Compression::kNone);
    // use lr_optimal reported to re-evaluate at the optimum
    return eval(p, batch, 0.0, o.lr_optimal).samples_to_target;
  };
  (void)lr;
  EXPECT_LT(at(32), at(512));
  EXPECT_LT(at(512), at(8192));
}

TEST(StatModel, SmallBatchNearBaseSamples) {
  const StatModelParams p = default_params();
  const StatOutcome o = eval(p, 32, 0.0, p.base_lr);
  EXPECT_NEAR(o.samples_to_target, p.base_samples * (1.0 + 32.0 / 512.0),
              p.base_samples * 0.01);
}

TEST(StatModel, StalenessPenaltyMonotone) {
  const StatModelParams p = default_params();
  double prev = 0.0;
  for (double s : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    const StatOutcome o = eval(p, 64, s, eval(p, 64, s, 1e-9).lr_optimal);
    EXPECT_GT(o.samples_to_target, prev);
    prev = o.samples_to_target;
  }
}

TEST(StatModel, LrPenaltyIsCupShaped) {
  const StatModelParams p = default_params();
  const double lr_opt = eval(p, 64, 0.0, 1e-9).lr_optimal;
  const double at_opt = eval(p, 64, 0.0, lr_opt).samples_to_target;
  const double low = eval(p, 64, 0.0, lr_opt / 10.0).samples_to_target;
  const double high = eval(p, 64, 0.0, lr_opt * 5.0).samples_to_target;
  EXPECT_GT(low, at_opt);
  EXPECT_GT(high, at_opt);
}

TEST(StatModel, DivergesAboveThreshold) {
  const StatModelParams p = default_params();
  const double lr_opt = eval(p, 64, 0.0, 1e-9).lr_optimal;
  const StatOutcome diverged =
      eval(p, 64, 0.0, lr_opt * p.divergence_margin * 1.5);
  EXPECT_TRUE(diverged.diverged);
  const StatOutcome fine = eval(p, 64, 0.0, lr_opt * p.divergence_margin * 0.9);
  EXPECT_FALSE(fine.diverged);
}

TEST(StatModel, StalenessShrinksOptimalLr) {
  const StatModelParams p = default_params();
  const double fresh = eval(p, 64, 0.0, 1e-9).lr_optimal;
  const double stale = eval(p, 64, 8.0, 1e-9).lr_optimal;
  EXPECT_LT(stale, fresh);
}

TEST(StatModel, LrOptimalScalesWithBatchUntilCap) {
  const StatModelParams p = default_params();
  const double b32 = eval(p, 32, 0.0, 1e-9).lr_optimal;
  const double b128 = eval(p, 128, 0.0, 1e-9).lr_optimal;
  const double b100000 = eval(p, 100000, 0.0, 1e-9).lr_optimal;
  EXPECT_NEAR(b128 / b32, 4.0, 0.01);
  EXPECT_NEAR(b100000, p.base_lr * p.lr_scaling_cap, 1e-9);
}

TEST(StatModel, CompressionCostsSamples) {
  const StatModelParams p = default_params();
  const double lr_opt = eval(p, 64, 0.0, 1e-9).lr_optimal;
  const double none =
      eval(p, 64, 0.0, lr_opt, sim::Compression::kNone).samples_to_target;
  const double topk =
      eval(p, 64, 0.0, lr_opt, sim::Compression::kTopK).samples_to_target;
  EXPECT_NEAR(topk / none, 1.22, 0.01);
}

TEST(StatModel, NoiseIsMultiplicativeAndSeeded) {
  StatModelParams p = default_params();
  p.eval_noise_sigma = 0.1;
  util::Rng rng1(5), rng2(5), rng3(6);
  const double a =
      samples_to_target(p, 64, 0, p.base_lr, sim::Compression::kNone, rng1)
          .samples_to_target;
  const double b =
      samples_to_target(p, 64, 0, p.base_lr, sim::Compression::kNone, rng2)
          .samples_to_target;
  const double c =
      samples_to_target(p, 64, 0, p.base_lr, sim::Compression::kNone, rng3)
          .samples_to_target;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(StatModel, InputValidation) {
  const StatModelParams p = default_params();
  util::Rng rng(1);
  EXPECT_THROW(
      samples_to_target(p, 0.5, 0, 0.1, sim::Compression::kNone, rng),
      std::invalid_argument);
  EXPECT_THROW(
      samples_to_target(p, 64, -1, 0.1, sim::Compression::kNone, rng),
      std::invalid_argument);
  EXPECT_THROW(
      samples_to_target(p, 64, 0, 0.0, sim::Compression::kNone, rng),
      std::invalid_argument);
  StatModelParams bad = p;
  bad.metric_ceiling = bad.target_metric;
  EXPECT_THROW(
      samples_to_target(bad, 64, 0, 0.1, sim::Compression::kNone, rng),
      std::invalid_argument);
}

// ---- metric_at -------------------------------------------------------------------

TEST(MetricCurve, EndpointsExact) {
  const StatModelParams p = default_params();
  const double target_samples = 1e6;
  EXPECT_NEAR(metric_at(p, 0.0, target_samples), p.initial_metric, 1e-12);
  EXPECT_NEAR(metric_at(p, target_samples, target_samples), p.target_metric,
              1e-9);
}

TEST(MetricCurve, MonotoneAndBoundedByCeiling) {
  const StatModelParams p = default_params();
  double prev = -1.0;
  for (double s = 0.0; s <= 5e6; s += 2.5e5) {
    const double m = metric_at(p, s, 1e6);
    EXPECT_GT(m, prev);
    EXPECT_LT(m, p.metric_ceiling);
    prev = m;
  }
}

// ---- curve fitting ------------------------------------------------------------------

TEST(CurveFit, RecoversSyntheticPowerLaw) {
  const StatModelParams p = default_params();
  const double target_samples = 2e6;
  std::vector<double> samples, metric;
  for (int i = 1; i <= 20; ++i) {
    const double s = target_samples * 0.05 * i;  // covers up to the target
    samples.push_back(s);
    metric.push_back(metric_at(p, s, target_samples));
  }
  const CurveFitResult fit = fit_learning_curve(samples, metric);
  ASSERT_TRUE(fit.ok);
  EXPECT_LT(fit.rmse, 1e-3);
  const double predicted = predict_samples_to_reach(fit, p.target_metric);
  EXPECT_NEAR(predicted, target_samples, target_samples * 0.15);
}

TEST(CurveFit, ExtrapolatesFromEarlyPrefix) {
  // Only the first 30% of the curve is observed; the prediction should
  // still be the right order of magnitude.
  const StatModelParams p = default_params();
  const double target_samples = 5e6;
  std::vector<double> samples, metric;
  for (int i = 1; i <= 12; ++i) {
    const double s = target_samples * 0.025 * i;
    samples.push_back(s);
    metric.push_back(metric_at(p, s, target_samples));
  }
  const CurveFitResult fit = fit_learning_curve(samples, metric);
  ASSERT_TRUE(fit.ok);
  const double predicted = predict_samples_to_reach(fit, p.target_metric);
  EXPECT_GT(predicted, target_samples * 0.3);
  EXPECT_LT(predicted, target_samples * 4.0);
}

TEST(CurveFit, UnreachableTargetIsInfinity) {
  // Flat curve that saturates visibly below the target.
  std::vector<double> samples, metric;
  for (int i = 1; i <= 15; ++i) {
    const double s = 1e5 * i;
    samples.push_back(s);
    metric.push_back(0.5 - 0.4 / (1.0 + s / 1e5));  // ceiling 0.5
  }
  const CurveFitResult fit = fit_learning_curve(samples, metric);
  ASSERT_TRUE(fit.ok);
  EXPECT_TRUE(std::isinf(predict_samples_to_reach(fit, 0.9)));
}

TEST(CurveFit, RejectsDegenerateInput) {
  EXPECT_FALSE(fit_learning_curve(std::vector<double>{1, 2, 3},
                                  std::vector<double>{1, 2, 3})
                   .ok);  // too few
  EXPECT_FALSE(fit_learning_curve(std::vector<double>{1, 2, 2, 3},
                                  std::vector<double>{1, 2, 3, 4})
                   .ok);  // non-increasing samples
  EXPECT_FALSE(fit_learning_curve(std::vector<double>{1, 2},
                                  std::vector<double>{1})
                   .ok);  // mismatched
}

TEST(CurveFit, CurveValueMatchesFitAtData) {
  std::vector<double> samples, metric;
  for (int i = 1; i <= 10; ++i) {
    samples.push_back(1e4 * i);
    metric.push_back(0.9 - 0.8 * std::pow(1.0 + samples.back() / 3e4, -1.3));
  }
  const CurveFitResult fit = fit_learning_curve(samples, metric);
  ASSERT_TRUE(fit.ok);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(curve_value(fit, samples[i]), metric[i], 0.02);
  }
}

TEST(CurveFit, PredictBelowFloorIsZero) {
  std::vector<double> samples, metric;
  for (int i = 1; i <= 8; ++i) {
    samples.push_back(1e3 * i);
    metric.push_back(0.2 + 0.1 * (1.0 - std::exp(-samples.back() / 3e3)));
  }
  const CurveFitResult fit = fit_learning_curve(samples, metric);
  ASSERT_TRUE(fit.ok);
  EXPECT_DOUBLE_EQ(predict_samples_to_reach(fit, -1.0), 0.0);
}

// ---- micro trainer (real SGD ground truth) ------------------------------------------

TEST(MicroTrainer, ReachesTargetWithoutDelay) {
  MicroTrainerConfig config;
  config.seed = 3;
  const MicroTrainerResult r = run_micro_trainer(config);
  EXPECT_TRUE(r.reached_target);
  EXPECT_FALSE(r.diverged);
  EXPECT_GT(r.steps, 0);
}

TEST(MicroTrainer, GradientDelaySlowsConvergence) {
  // The core claim behind the staleness penalty: steps-to-target increases
  // with gradient delay (averaged over seeds to tame SGD noise).
  const auto mean_steps = [&](int delay) {
    double total = 0.0;
    int reached = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      MicroTrainerConfig config;
      config.seed = seed;
      config.gradient_delay = delay;
      config.class_separation = 2.8;
      config.learning_rate = 0.1;
      config.eval_every = 10;
      config.batch_size = 4;
      const MicroTrainerResult r = run_micro_trainer(config);
      if (r.reached_target) {
        total += r.steps;
        ++reached;
      } else {
        total += config.max_steps;
      }
    }
    EXPECT_GT(reached, 0) << "delay " << delay;
    return total / 5.0;
  };
  const double fresh = mean_steps(0);
  const double stale = mean_steps(128);
  EXPECT_GT(stale, fresh);
}

TEST(MicroTrainer, HugeLrDiverges) {
  MicroTrainerConfig config;
  config.learning_rate = 1e4;
  config.class_separation = 0.5;
  config.max_steps = 5000;
  const MicroTrainerResult r = run_micro_trainer(config);
  EXPECT_FALSE(r.reached_target && !r.diverged && r.steps < 100);
}

TEST(MicroTrainer, LargerBatchFewerSteps) {
  const auto mean_steps = [&](int batch) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      MicroTrainerConfig config;
      config.seed = seed;
      config.batch_size = batch;
      config.class_separation = 2.8;
      config.learning_rate = 0.1;
      config.eval_every = 10;
      const MicroTrainerResult r = run_micro_trainer(config);
      total += r.reached_target ? r.steps : config.max_steps;
    }
    return total / 5.0;
  };
  EXPECT_GT(mean_steps(1), mean_steps(32));
}

TEST(MicroTrainer, DeterministicGivenSeed) {
  MicroTrainerConfig config;
  config.seed = 11;
  const MicroTrainerResult a = run_micro_trainer(config);
  const MicroTrainerResult b = run_micro_trainer(config);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(MicroTrainer, RejectsBadConfig) {
  MicroTrainerConfig config;
  config.batch_size = 0;
  EXPECT_THROW(run_micro_trainer(config), std::invalid_argument);
}

}  // namespace
}  // namespace autodml::ml

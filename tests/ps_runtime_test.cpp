#include <gtest/gtest.h>

#include "sim/ps_runtime.h"

namespace autodml::sim {
namespace {

Cluster make_cluster(int workers, int servers, const std::string& wtype = "std8",
                     double straggler_sigma = 0.0, std::uint64_t seed = 1) {
  ClusterSpec spec;
  spec.worker_type = wtype;
  spec.server_type = "mem8";
  spec.num_workers = workers;
  spec.num_servers = servers;
  spec.heterogeneity_sigma = 0.0;
  spec.straggler_sigma = straggler_sigma;
  util::Rng rng(seed);
  return provision(spec, rng);
}

JobParams make_job(SyncMode mode = SyncMode::kBsp, int staleness = 0) {
  JobParams job;
  job.model_bytes = 40e6;
  job.flops_per_sample = 2e7;
  job.batch_per_worker = 32;
  job.sync = mode;
  job.staleness = staleness;
  job.comm_threads = 4;
  return job;
}

RuntimeStats run(const Cluster& cluster, const JobParams& job,
                 std::uint64_t seed = 7, int measure = 16) {
  util::Rng rng(seed);
  PsSimOptions options;
  options.warmup_iterations = 3;
  options.measure_iterations = measure;
  return simulate_ps(cluster, job, rng, options);
}

TEST(PsRuntime, CompletesAndReportsPositiveThroughput) {
  const RuntimeStats stats = run(make_cluster(4, 2), make_job());
  EXPECT_TRUE(stats.completed);
  EXPECT_GT(stats.updates_per_second, 0.0);
  EXPECT_GT(stats.samples_per_second, stats.updates_per_second);
  EXPECT_GT(stats.mean_iteration_seconds, 0.0);
  EXPECT_GT(stats.bytes_per_update, 0.0);
}

TEST(PsRuntime, DeterministicGivenSeed) {
  const RuntimeStats a = run(make_cluster(4, 2), make_job(), 11);
  const RuntimeStats b = run(make_cluster(4, 2), make_job(), 11);
  EXPECT_DOUBLE_EQ(a.updates_per_second, b.updates_per_second);
  EXPECT_DOUBLE_EQ(a.mean_staleness, b.mean_staleness);
}

TEST(PsRuntime, RequiresServers) {
  util::Rng rng(1);
  EXPECT_THROW(simulate_ps(make_cluster(2, 0), make_job(), rng),
               std::invalid_argument);
}

TEST(PsRuntime, BspStalenessIsZero) {
  // Semantically zero: synchronous aggregation uses one weight version.
  const RuntimeStats stats = run(make_cluster(8, 2), make_job(SyncMode::kBsp));
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 0.0);
}

TEST(PsRuntime, AspHasInherentOneRoundStaleness) {
  // Even with perfectly uniform workers, asynchronous pipelining makes each
  // gradient roughly one round stale.
  const RuntimeStats stats =
      run(make_cluster(8, 2, "std8", 0.0), make_job(SyncMode::kAsp));
  EXPECT_GT(stats.mean_staleness, 0.4);
  EXPECT_LT(stats.mean_staleness, 2.5);
}

TEST(PsRuntime, AspStalenessGrowsWithStragglers) {
  const JobParams job = make_job(SyncMode::kAsp);
  const RuntimeStats uniform =
      run(make_cluster(8, 2, "std8", /*straggler=*/0.0), job);
  const RuntimeStats noisy =
      run(make_cluster(8, 2, "std8", /*straggler=*/0.5), job);
  EXPECT_GE(noisy.mean_staleness, uniform.mean_staleness);
}

TEST(PsRuntime, SspThroughputBetweenBspAndAsp) {
  // With stragglers, ASP >= SSP >= BSP in update throughput.
  const Cluster cluster = make_cluster(8, 4, "std8", 0.4);
  const RuntimeStats bsp = run(cluster, make_job(SyncMode::kBsp), 5, 20);
  const RuntimeStats ssp = run(cluster, make_job(SyncMode::kSsp, 3), 5, 20);
  const RuntimeStats asp = run(cluster, make_job(SyncMode::kAsp), 5, 20);
  EXPECT_GE(asp.updates_per_second, 0.95 * ssp.updates_per_second);
  EXPECT_GE(ssp.updates_per_second, 0.95 * bsp.updates_per_second);
}

TEST(PsRuntime, BspBlockedFractionPositiveWithStragglers) {
  const RuntimeStats stats =
      run(make_cluster(8, 2, "std8", 0.5), make_job(SyncMode::kBsp));
  EXPECT_GT(stats.blocked_fraction, 0.0);
  EXPECT_LT(stats.blocked_fraction, 1.0);
}

TEST(PsRuntime, FasterNicNotSlower) {
  // net8 = same compute as std8 but a 25 Gbps NIC instead of 5.
  const JobParams job = make_job();
  const RuntimeStats slow = run(make_cluster(8, 2, "std8"), job);
  const RuntimeStats fast = run(make_cluster(8, 2, "net8"), job);
  EXPECT_GE(fast.updates_per_second, 0.98 * slow.updates_per_second);
}

TEST(PsRuntime, MoreServersHelpCommBoundJobs) {
  JobParams job = make_job();
  job.model_bytes = 400e6;  // heavy model -> server NIC bound
  const RuntimeStats one = run(make_cluster(8, 1), job);
  const RuntimeStats eight = run(make_cluster(8, 8), job);
  EXPECT_GT(eight.updates_per_second, one.updates_per_second);
}

TEST(PsRuntime, CompressionReducesBytesPerUpdate) {
  JobParams none = make_job();
  JobParams fp16 = make_job();
  fp16.compression = Compression::kFp16;
  const RuntimeStats a = run(make_cluster(4, 2), none);
  const RuntimeStats b = run(make_cluster(4, 2), fp16);
  EXPECT_LT(b.bytes_per_update, a.bytes_per_update);
}

TEST(PsRuntime, TopKSlashesTraffic) {
  JobParams topk = make_job();
  topk.compression = Compression::kTopK;
  topk.model_bytes = 400e6;
  JobParams none = make_job();
  none.model_bytes = 400e6;
  const RuntimeStats a = run(make_cluster(4, 2), none);
  const RuntimeStats b = run(make_cluster(4, 2), topk);
  // Push traffic drops ~50x; total includes uncompressed pulls.
  EXPECT_LT(b.bytes_per_update, 0.7 * a.bytes_per_update);
  EXPECT_GT(b.updates_per_second, a.updates_per_second);
}

TEST(PsRuntime, LargerBatchFewerUpdatesButMoreSamples) {
  JobParams small = make_job();
  small.batch_per_worker = 16;
  JobParams big = make_job();
  big.batch_per_worker = 256;
  const Cluster cluster = make_cluster(4, 2);
  const RuntimeStats a = run(cluster, small);
  const RuntimeStats b = run(cluster, big);
  EXPECT_GT(a.updates_per_second, b.updates_per_second);
  EXPECT_GT(b.samples_per_second, a.samples_per_second);
}

TEST(PsRuntime, SingleCommThreadSerializesShards) {
  JobParams wide = make_job();
  wide.comm_threads = 8;
  JobParams narrow = make_job();
  narrow.comm_threads = 1;
  // Many servers + tiny model: latency-dominated, so serialization hurts.
  JobParams wide_small = wide;
  wide_small.model_bytes = 1e6;
  JobParams narrow_small = narrow;
  narrow_small.model_bytes = 1e6;
  const Cluster cluster = make_cluster(2, 8);
  const RuntimeStats par = run(cluster, wide_small);
  const RuntimeStats ser = run(cluster, narrow_small);
  EXPECT_GT(par.updates_per_second, ser.updates_per_second);
}

TEST(PsRuntime, GpuNodesComputeFaster) {
  JobParams job = make_job();
  job.flops_per_sample = 3e9;  // compute-bound job
  const RuntimeStats cpu = run(make_cluster(2, 2, "std16"), job);
  const RuntimeStats gpu = run(make_cluster(2, 2, "gpu1"), job);
  EXPECT_GT(gpu.updates_per_second, 2.0 * cpu.updates_per_second);
}

TEST(PsRuntime, SspStalenessRespectsBoundLoosely) {
  // Observed effective staleness should stay within the configured bound
  // (plus measurement slack).
  const RuntimeStats stats =
      run(make_cluster(8, 2, "std8", 0.5), make_job(SyncMode::kSsp, 2));
  EXPECT_LE(stats.mean_staleness, 3.5);  // bound + inherent round + slack
}

class PsGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PsGridTest, CompletesAcrossTopologyGrid) {
  const auto [workers, servers, comm_threads] = GetParam();
  JobParams job = make_job();
  job.comm_threads = comm_threads;
  const RuntimeStats stats = run(make_cluster(workers, servers), job, 3, 8);
  EXPECT_TRUE(stats.completed);
  EXPECT_GT(stats.updates_per_second, 0.0);
  EXPECT_GE(stats.mean_staleness, 0.0);
  EXPECT_GE(stats.blocked_fraction, 0.0);
  EXPECT_LE(stats.blocked_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PsGridTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 16),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(1, 4)));

}  // namespace
}  // namespace autodml::sim

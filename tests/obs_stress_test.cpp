// Concurrency stress for the observability layer: many threads hammering
// the Tracer and MetricsRegistry through util::ThreadPool. Runs under the
// TSan CI leg (scripts/check.sh tsan), which is the real point — data
// races in per-thread buffers or atomic instruments surface there. The
// assertions here check that nothing is lost or double-counted.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace autodml {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kTasks = 400;
constexpr int kEventsPerTask = 25;

TEST(ObsStress, TracerAndMetricsSurviveConcurrentRecording) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.enable();
  tracer.start();

  static const double kBounds[] = {4.0, 16.0, 64.0, 256.0};
  {
    util::ThreadPool pool(kThreads);
    util::parallel_for(pool, kTasks, [&](std::size_t task) {
      ADML_SPAN("stress.task");
      for (int i = 0; i < kEventsPerTask; ++i) {
        ADML_SPAN("stress.step");
        ADML_COUNT("stress.events", 1);
        ADML_GAUGE_ADD("stress.accumulated", 1.0);
        ADML_GAUGE_MAX("stress.peak_task", static_cast<double>(task));
        // Integer values: the merged double sum is exact, so the final
        // histogram is assertable despite arbitrary interleaving.
        ADML_HISTOGRAM("stress.values", kBounds,
                       static_cast<double>(i * kThreads));
        if (i % 10 == 0) ADML_TRACE_INSTANT("stress.tick");
      }
    });
  }
  tracer.stop();
  registry.disable();

  const auto expected_events =
      static_cast<std::int64_t>(kTasks) * kEventsPerTask;
  EXPECT_EQ(registry.counter("stress.events").value(), expected_events);
  EXPECT_DOUBLE_EQ(registry.gauge("stress.accumulated").value(),
                   static_cast<double>(expected_events));
  EXPECT_DOUBLE_EQ(registry.gauge("stress.peak_task").value(),
                   static_cast<double>(kTasks - 1));

  const obs::HistogramSnapshot hist =
      registry.histogram("stress.values", kBounds).snapshot();
  EXPECT_EQ(hist.count, expected_events);
  // Every task records the same value sequence 0, 8, 16, ..., so the
  // serial expectation is exact.
  double per_task_sum = 0.0;
  for (int i = 0; i < kEventsPerTask; ++i) per_task_sum += i * kThreads;
  EXPECT_DOUBLE_EQ(hist.sum, per_task_sum * static_cast<double>(kTasks));
  EXPECT_DOUBLE_EQ(hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist.max, (kEventsPerTask - 1) * kThreads);

  // No event was lost: spans pair up and the totals agree with the loop.
  const auto totals = tracer.span_totals();
  EXPECT_EQ(totals.at("stress.task").count, kTasks);
  EXPECT_EQ(totals.at("stress.step").count,
            static_cast<std::uint64_t>(expected_events));

  // The concurrent trace still exports as balanced, per-tid-monotonic JSON.
  const util::JsonValue doc = util::parse_json(tracer.export_chrome_json());
  std::map<int, int> open;
  std::map<int, double> last_ts;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    const int tid = static_cast<int>(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    if (last_ts.count(tid)) EXPECT_GE(ts, last_ts[tid]);
    last_ts[tid] = ts;
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") ++open[tid];
    if (ph == "E") --open[tid];
    EXPECT_GE(open[tid], 0) << "tid " << tid;
  }
  for (const auto& [tid, depth] : open) {
    EXPECT_EQ(depth, 0) << "tid " << tid;
  }
  tracer.clear();
  registry.reset();
}

TEST(ObsStress, ConcurrentRegistrationResolvesToOneInstrument) {
  // First-use registration from many threads at once: everyone must get
  // the same instrument, and the total must account for every add.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.enable();
  {
    util::ThreadPool pool(kThreads);
    util::parallel_for(pool, 64, [&](std::size_t i) {
      registry.counter("stress.registration").add(1);
      registry.gauge("stress.reg_gauge").add(1.0);
      static const double kB[] = {1.0};
      registry.histogram("stress.reg_hist", kB)
          .record(static_cast<double>(i % 2));
    });
  }
  registry.disable();
  EXPECT_EQ(registry.counter("stress.registration").value(), 64);
  EXPECT_DOUBLE_EQ(registry.gauge("stress.reg_gauge").value(), 64.0);
  static const double kB[] = {1.0};
  EXPECT_EQ(registry.histogram("stress.reg_hist", kB).snapshot().count, 64);
  registry.reset();
}

TEST(ObsStress, PerThreadHistogramMergeEqualsSerial) {
  // Property behind trustworthy sharded aggregation: merging per-thread
  // histograms reproduces the serial histogram exactly (integer-valued
  // samples, so double addition is rounding-free in any order).
  static const double kBounds[] = {10.0, 100.0, 1000.0};
  constexpr std::size_t kShards = 7;
  constexpr int kSamples = 3000;

  obs::Histogram serial({10.0, 100.0, 1000.0});
  // Histograms hold atomics (immovable), so shards live behind pointers.
  std::vector<std::unique_ptr<obs::Histogram>> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<obs::Histogram>(
        std::vector<double>{10.0, 100.0, 1000.0}));
  }

  // Deterministic pseudo-random integer stream.
  std::uint64_t state = 12345;
  std::vector<double> values;
  for (int i = 0; i < kSamples; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(static_cast<double>((state >> 33) % 5000));
  }
  for (int i = 0; i < kSamples; ++i) serial.record(values[i]);
  {
    util::ThreadPool pool(kShards);
    util::parallel_for(pool, kShards, [&](std::size_t s) {
      for (int i = static_cast<int>(s); i < kSamples;
           i += static_cast<int>(kShards)) {
        shards[s]->record(values[i]);
      }
    });
  }

  obs::HistogramSnapshot merged = shards[0]->snapshot();
  for (std::size_t s = 1; s < kShards; ++s)
    merged = obs::merge(merged, shards[s]->snapshot());
  const obs::HistogramSnapshot expected = serial.snapshot();
  EXPECT_EQ(merged.counts, expected.counts);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);  // exact: integer-valued samples
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
}

}  // namespace
}  // namespace autodml

#include <gtest/gtest.h>

#include <set>

#include "baselines/baseline_tuners.h"
#include "synthetic_objective.h"

namespace autodml::baselines {
namespace {

using core::TuningResult;
using testing::SyntheticObjective;

TEST(RandomSearch, RespectsBudgetAndFindsFeasible) {
  SyntheticObjective objective;
  const TuningResult result = random_search(objective, 20, 1);
  EXPECT_EQ(result.trials.size(), 20u);
  EXPECT_TRUE(result.found_feasible());
}

TEST(RandomSearch, AvoidsDuplicates) {
  SyntheticObjective objective;
  const TuningResult result = random_search(objective, 30, 2);
  std::set<math::Vec> seen;
  for (const auto& t : result.trials) {
    EXPECT_TRUE(seen.insert(objective.space().encode(t.config)).second);
  }
}

TEST(RandomSearch, DeterministicGivenSeed) {
  SyntheticObjective o1, o2;
  const TuningResult a = random_search(o1, 10, 3);
  const TuningResult b = random_search(o2, 10, 3);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
}

TEST(GridSearch, CoversSpaceWhenBudgetAllows) {
  SyntheticObjective objective;
  const TuningResult result = grid_search(objective, 60, 4, 3);
  EXPECT_LE(result.trials.size(), 60u);
  EXPECT_TRUE(result.found_feasible());
  // With 3 points/axis the grid hits both categories.
  std::set<std::string> modes;
  for (const auto& t : result.trials) modes.insert(t.config.get_cat("mode"));
  EXPECT_EQ(modes.size(), 2u);
}

TEST(GridSearch, TruncatedBudgetStillSpreads) {
  SyntheticObjective objective;
  const TuningResult result = grid_search(objective, 8, 5, 4);
  EXPECT_EQ(result.trials.size(), 8u);
  // Shuffled: the 8 evaluated points should not all share one x value.
  std::set<double> xs;
  for (const auto& t : result.trials) xs.insert(t.config.get_double("x"));
  EXPECT_GT(xs.size(), 1u);
}

TEST(CoordinateDescent, ImprovesOverItsStartingPoint) {
  SyntheticObjective objective;
  const TuningResult result = coordinate_descent(objective, 40, 5);
  ASSERT_TRUE(result.found_feasible());
  // First feasible trial vs final best.
  double first_feasible = -1.0;
  for (const auto& t : result.trials) {
    if (t.succeeded()) {
      first_feasible = t.outcome.objective;
      break;
    }
  }
  ASSERT_GT(first_feasible, 0.0);
  EXPECT_LE(result.best_objective, first_feasible);
}

TEST(CoordinateDescent, RespectsBudget) {
  SyntheticObjective objective;
  const TuningResult result = coordinate_descent(objective, 15, 6);
  EXPECT_LE(result.trials.size(), 15u);
}

TEST(SimulatedAnnealing, RespectsBudgetAndImproves) {
  SyntheticObjective objective;
  const TuningResult result = simulated_annealing(objective, 40, 7);
  EXPECT_EQ(result.trials.size(), 40u);
  ASSERT_TRUE(result.found_feasible());
  EXPECT_LT(result.best_objective, 60.0);  // well under the worst case
}

TEST(SimulatedAnnealing, IncumbentMonotone) {
  SyntheticObjective objective;
  const TuningResult result = simulated_annealing(objective, 25, 8);
  for (std::size_t i = 1; i < result.incumbent_curve.size(); ++i) {
    EXPECT_LE(result.incumbent_curve[i], result.incumbent_curve[i - 1]);
  }
}

TEST(SuccessiveHalving, PromotesAndFinishesFinalists) {
  SyntheticObjective objective;
  SuccessiveHalvingOptions options;
  options.initial_configs = 8;
  options.first_rung_seconds = 5.0;
  options.max_rungs = 2;
  const TuningResult result = successive_halving(objective, 40, 9, options);
  EXPECT_TRUE(result.found_feasible());
  // Some early runs were aborted at the rung budget; finalists completed.
  int aborted = 0, completed = 0;
  for (const auto& t : result.trials) {
    aborted += t.outcome.aborted;
    completed += t.succeeded();
  }
  EXPECT_GT(aborted, 0);
  EXPECT_GT(completed, 0);
}

TEST(SuccessiveHalving, CheaperThanFullEvaluationOfAllConfigs) {
  SyntheticObjective sha_obj;
  SuccessiveHalvingOptions options;
  options.initial_configs = 12;
  options.first_rung_seconds = 3.0;
  successive_halving(sha_obj, 60, 10, options);

  SyntheticObjective full_obj;
  random_search(full_obj, 12, 10);
  EXPECT_LT(sha_obj.total_spent() / 12.0, full_obj.total_spent() / 12.0);
}

TEST(CherryPickBo, RunsWithoutEarlyTermination) {
  SyntheticObjective objective;
  const TuningResult result = cherrypick_bo(objective, 20, 11);
  EXPECT_EQ(result.trials.size(), 20u);
  for (const auto& t : result.trials) EXPECT_FALSE(t.outcome.aborted);
  EXPECT_TRUE(result.found_feasible());
}

TEST(AutodmlBo, WrapperMatchesDirectTuner) {
  SyntheticObjective o1, o2;
  core::BoOptions options;
  options.initial_design_size = 5;
  const TuningResult a = autodml_bo(o1, 12, 13, options);
  options.seed = 13;
  options.max_evaluations = 12;
  core::BoTuner tuner(o2, options);
  const TuningResult b = tuner.tune();
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
}

TEST(Registry, ContainsAllSevenMethods) {
  const auto& registry = tuner_registry();
  EXPECT_EQ(registry.size(), 7u);
  std::set<std::string> names;
  for (const auto& entry : registry) {
    names.insert(entry.name);
    ASSERT_NE(entry.fn, nullptr);
  }
  for (const char* expected : {"autodml", "cherrypick", "random", "grid",
                               "coordinate", "annealing", "sha"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Registry, EveryMethodRunsOnTheSyntheticObjective) {
  for (const auto& entry : tuner_registry()) {
    SyntheticObjective objective;
    const TuningResult result = entry.fn(objective, 10, 17);
    EXPECT_LE(result.trials.size(), 10u) << entry.name;
    EXPECT_FALSE(result.trials.empty()) << entry.name;
    EXPECT_EQ(result.incumbent_curve.size(), result.trials.size())
        << entry.name;
  }
}

}  // namespace
}  // namespace autodml::baselines

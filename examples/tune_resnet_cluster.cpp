// Cloud provisioning scenario: pick the cluster and system configuration
// for an ImageNet-scale training job under two different objectives —
// fastest time-to-accuracy versus cheapest cost-to-accuracy — and show the
// trade-off between the two tuned configurations.
//
//   ./tune_resnet_cluster [--workload=resnet-imagenet] [--evals=25] [--seed=3]
#include <cstdio>

#include "core/bo_tuner.h"
#include "core/sensitivity.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

namespace {

struct TunedOutcome {
  conf::Config config;
  wl::EvalResult truth;
};

// The evaluator is created by the caller and must outlive the returned
// configs (they reference its configuration space).
TunedOutcome tune_for(wl::Evaluator& evaluator, int evals,
                      std::uint64_t seed) {
  wl::EvaluatorObjective objective(evaluator);
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  core::BoTuner tuner(objective, options);
  const core::TuningResult result = tuner.tune();
  if (!result.found_feasible()) {
    throw std::runtime_error("no feasible configuration found");
  }
  return {result.best_config,
          evaluator.evaluate_ground_truth(result.best_config)};
}

void describe(const char* label, const TunedOutcome& outcome) {
  std::printf("%s\n  %s\n", label, outcome.config.to_string().c_str());
  std::printf("  time-to-accuracy: %s h   cost: $%s   cluster rate: $%s/h\n",
              util::fmt(outcome.truth.tta_seconds / 3600.0).c_str(),
              util::fmt(outcome.truth.cost_usd).c_str(),
              util::fmt(outcome.truth.usd_per_hour).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string name = args.get("workload", "resnet-imagenet");
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const wl::Workload& workload = wl::workload_by_name(name);
  std::printf("workload: %s (%s)\n\n", workload.name.c_str(),
              workload.description.c_str());

  wl::EvaluatorOptions time_options;
  time_options.objective = wl::Objective::kTimeToAccuracy;
  wl::Evaluator time_evaluator(workload, seed, time_options);
  const TunedOutcome fastest = tune_for(time_evaluator, evals, seed);
  describe("fastest configuration (time objective):", fastest);

  wl::EvaluatorOptions cost_options;
  cost_options.objective = wl::Objective::kCostToAccuracy;
  wl::Evaluator cost_evaluator(workload, seed + 1, cost_options);
  const TunedOutcome cheapest = tune_for(cost_evaluator, evals, seed + 1);
  describe("\ncheapest configuration (cost objective):", cheapest);

  std::printf(
      "\ntrade-off: the cheap config is %.2fx slower but %.2fx cheaper\n",
      cheapest.truth.tta_seconds / fastest.truth.tta_seconds,
      fastest.truth.cost_usd / cheapest.truth.cost_usd);
  return 0;
}

// Run every tuner in the registry on one workload with the same budget and
// print the league table: final config quality, speedup over the hand
// default, and what the search itself cost in simulated cluster hours.
//
//   ./compare_baselines [--workload=mlp-tabular] [--evals=25] [--seed=11]
#include <cstdio>

#include "baselines/baseline_tuners.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string name = args.get("workload", "mlp-tabular");
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const wl::Workload& workload = wl::workload_by_name(name);
  std::printf("workload: %s, budget: %d evaluations, seed: %llu\n",
              workload.name.c_str(), evals,
              static_cast<unsigned long long>(seed));

  wl::Evaluator probe(workload, seed);
  const double default_tta =
      probe
          .evaluate_ground_truth(
              wl::default_expert_config(workload, probe.space()))
          .tta_seconds;
  std::printf("expert default TTA: %s h\n\n",
              util::fmt(default_tta / 3600.0).c_str());

  std::vector<std::vector<std::string>> rows;
  for (const auto& entry : baselines::tuner_registry()) {
    wl::Evaluator evaluator(workload, seed);
    wl::EvaluatorObjective objective(evaluator);
    const core::TuningResult result = entry.fn(objective, evals, seed);
    if (!result.found_feasible()) {
      rows.push_back({entry.name, "-", "-", "-"});
      continue;
    }
    const wl::EvalResult truth =
        evaluator.evaluate_ground_truth(result.best_config);
    rows.push_back({entry.name, util::fmt(truth.tta_seconds / 3600.0),
                    util::fmt(default_tta / truth.tta_seconds, 3),
                    util::fmt(evaluator.total_spent_seconds() / 3600.0)});
  }
  std::fputs(util::render_table({"method", "tuned-TTA-h", "speedup",
                                 "search-hours"},
                                rows)
                 .c_str(),
             stdout);
  return 0;
}

// Anatomy of early termination: stream checkpoints from two runs — a good
// configuration and a deliberately bad one — through the tuner's
// learning-curve policy, printing each checkpoint and the policy's running
// projection, so you can watch the bad run get killed.
//
//   ./early_stopping_demo [--workload=mlp-tabular]
#include <cmath>
#include <cstdio>

#include "core/early_termination.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

namespace {

void stream_run(wl::Evaluator& evaluator, const conf::Config& config,
                double incumbent_tta, const char* label) {
  std::printf("\n--- %s ---\n%s\n", label, config.to_string().c_str());
  core::EarlyTermOptions options;
  options.target_metric = evaluator.workload().stat.target_metric;
  options.min_checkpoints = 5;
  core::EarlyTerminationPolicy policy(options, incumbent_tta);

  auto run = evaluator.start(config);
  if (run->failed()) {
    const wl::EvalResult r = run->result();
    std::printf("failed immediately: %s (spent %s h)\n", r.failure.c_str(),
                util::fmt(r.spent_seconds / 3600.0).c_str());
    return;
  }
  policy.on_run_start(run->usd_per_hour());
  int checkpoint = 0;
  while (auto cp = run->next_checkpoint()) {
    ++checkpoint;
    core::RunCheckpoint rc{cp->wall_seconds, cp->samples, cp->metric};
    const bool abort = policy.should_abort(rc);
    if (checkpoint <= 12 || abort) {
      std::printf("  cp%-3d t=%8.0fs  metric=%.4f  projected-final=%s h\n",
                  checkpoint, cp->wall_seconds, cp->metric,
                  std::isfinite(policy.last_projection())
                      ? util::fmt(policy.last_projection() / 3600.0).c_str()
                      : "?");
    } else if (checkpoint == 13) {
      std::printf("  ...\n");
    }
    if (abort) {
      const wl::EvalResult r = run->abort();
      std::printf("KILLED at checkpoint %d after %s h (incumbent %s h)\n",
                  checkpoint, util::fmt(r.spent_seconds / 3600.0).c_str(),
                  util::fmt(incumbent_tta / 3600.0).c_str());
      return;
    }
  }
  const wl::EvalResult r = run->result();
  std::printf("COMPLETED: TTA %s h (spent %s h)\n",
              util::fmt(r.tta_seconds / 3600.0).c_str(),
              util::fmt(r.spent_seconds / 3600.0).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const wl::Workload& workload =
      wl::workload_by_name(args.get("workload", "mlp-tabular"));
  wl::Evaluator evaluator(workload, 5);

  // A decent configuration, found by hand: PS/BSP on GPU shapes.
  conf::Config good = wl::default_expert_config(workload, evaluator.space());
  good.set_cat("worker_type", workload.worker_instance_menu.back());
  good.set_int("num_workers", 16);
  good.set_int("num_servers", 8);
  evaluator.space().canonicalize(good);

  // A poor one: one small worker, tiny batch, single shard.
  conf::Config bad = wl::default_expert_config(workload, evaluator.space());
  bad.set_cat("worker_type", workload.worker_instance_menu.front());
  bad.set_int("num_workers", 1);
  bad.set_int("num_servers", 1);
  bad.set_int("batch_per_worker", workload.batch_menu.front());
  evaluator.space().canonicalize(bad);

  const double incumbent =
      evaluator.evaluate_ground_truth(good).tta_seconds;
  std::printf("incumbent (good config) TTA: %s h\n",
              util::fmt(incumbent / 3600.0).c_str());

  stream_run(evaluator, good, incumbent, "good configuration (should finish)");
  stream_run(evaluator, bad, incumbent, "bad configuration (should be killed)");

  std::printf("\ntotal simulated search time charged: %s h\n",
              util::fmt(evaluator.total_spent_seconds() / 3600.0).c_str());
  return 0;
}

// autodml_cli — command-line front-end for the library.
//
// Subcommands (first positional argument):
//   workloads                      list the workload suite
//   lint       [--workload=W|--all|--demo]
//                                  static-analyze configuration spaces;
//                                  --demo lints a deliberately malformed
//                                  space to showcase the diagnostic codes
//   space      --workload=W        print the configuration space
//   evaluate   --workload=W [--config=k=v,k=v,...]
//                                  ground-truth evaluation of one config
//   tune       --workload=W [--evals=N] [--seed=S] [--objective=time|cost]
//              [--deadline-hours=H] [--acquisition=ei|logei|ucb|pi|eipercost]
//              [--no-early-term] [--session=FILE] [--resume=FILE]
//              [--journal=FILE] [--faults=off|light|heavy] [--retries=N]
//              [--demo] [--trace=FILE] [--metrics=FILE]
//              [--refit-every=K] [--surrogate-backend=auto|exact|rff]
//              [--rff-features=M] [--max-wall-time=SECONDS]
//              [--async-q=Q] [--async-workers=W]
//              [--crash-point=NAME[:K]] [--crash-after=N]
//                                  run the tuner; optionally persist/resume.
//                                  --journal appends every trial to a
//                                  crash-safe journal: rerunning the same
//                                  command after a kill resumes the session.
//                                  --faults injects transient faults and
//                                  --retries supervises evaluations with
//                                  retry + backoff.
//                                  --max-wall-time stops the loop cleanly
//                                  once that much real time has elapsed
//                                  (exit 0; rerun with --journal to resume).
//                                  --async-q keeps Q evaluations in flight
//                                  (kriging-believer fantasized proposals);
//                                  results and journal bytes are identical
//                                  at any --async-workers count. Resume a
//                                  journal with the same --async-q it was
//                                  written with.
//                                  --crash-point/--crash-after arm the chaos
//                                  layer (see util/chaos.h): the process
//                                  calls _exit(86) at the named durability
//                                  point (K-th hit) or at the N-th hit
//                                  overall. Equivalent env vars:
//                                  ADML_CRASH_POINT / ADML_CRASH_AFTER.
//                                  --demo runs the canonical demo session
//                                  (logreg-ads, 30 evaluations, seed 1 —
//                                  the golden-run test pins its results).
//                                  --trace records Chrome trace-event JSON
//                                  (load in Perfetto) and prints a
//                                  per-phase time breakdown; --metrics
//                                  dumps the metrics snapshot (JSON, or
//                                  CSV when FILE ends in .csv). Both are
//                                  observation-only: results are
//                                  bit-identical with them on or off.
//   importance --workload=W [--evals=N]
//                                  tune briefly, print both sensitivity views
//   serve      [--stdio | --socket=PATH] [--workers=N] [--conn-threads=N]
//              [--max-sessions=N] [--max-pending=N]
//                                  tuning-as-a-service daemon speaking the
//                                  line-delimited JSON protocol (see the
//                                  README "Tuning as a service" section).
//                                  --stdio (default) answers one request
//                                  line per stdin line; --socket serves a
//                                  Unix-domain stream socket. Exits when a
//                                  client sends {"op":"shutdown"}.
//
// Exit code 0 on success, 1 on user error, 2 on "no feasible config found".
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/space_lint.h"
#include "core/bo_tuner.h"
#include "core/sensitivity.h"
#include "core/session_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "util/arg_parse.h"
#include "util/chaos.h"
#include "util/csv.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "workloads/eval_supervisor.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

namespace {

void cmd_workloads() {
  std::vector<std::vector<std::string>> rows;
  for (const auto& w : wl::workload_suite()) {
    rows.push_back({w.name, w.description,
                    util::fmt(w.model_bytes / 1e6, 4) + " MB",
                    util::fmt(w.flops_per_sample, 3)});
  }
  std::fputs(util::render_table({"name", "description", "model", "flops/sample"},
                                rows)
                 .c_str(),
             stdout);
}

void cmd_space(const wl::Workload& workload) {
  const conf::ConfigSpace space = wl::build_config_space(workload);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const auto& p = space.param(i);
    std::string domain;
    switch (p.kind()) {
      case conf::ParamKind::kInt:
        domain = "int [" + std::to_string(p.int_lo()) + ", " +
                 std::to_string(p.int_hi()) + "]";
        break;
      case conf::ParamKind::kIntChoice: {
        std::vector<std::string> vals;
        for (auto v : p.int_choices()) vals.push_back(std::to_string(v));
        domain = "{" + util::join(vals, ",") + "}";
        break;
      }
      case conf::ParamKind::kContinuous:
        domain = std::string(p.log_scale() ? "log" : "lin") + " [" +
                 util::fmt(p.cont_lo()) + ", " + util::fmt(p.cont_hi()) + "]";
        break;
      case conf::ParamKind::kCategorical:
        domain = "{" + util::join(p.categories(), ",") + "}";
        break;
      case conf::ParamKind::kBool:
        domain = "{false,true}";
        break;
    }
    rows.push_back({p.name(), domain,
                    p.is_conditional() ? "when " + p.parent() + " in {" +
                                             util::join(p.parent_values(), ",") +
                                             "}"
                                       : ""});
  }
  std::fputs(util::render_table({"parameter", "domain", "condition"}, rows)
                 .c_str(),
             stdout);
  std::printf("encoded dimension: %zu\n", space.encoded_dimension());
}

void print_lint_report(const analysis::LintReport& report) {
  if (report.diagnostics.empty()) {
    std::printf("clean: no diagnostics\n");
    return;
  }
  std::vector<std::vector<std::string>> rows;
  for (const auto& d : report.diagnostics) {
    rows.push_back({d.code, std::string(analysis::to_string(d.severity)),
                    d.param.empty() ? "<space>" : d.param, d.message,
                    d.fix_hint});
  }
  std::fputs(util::render_table({"code", "severity", "parameter", "finding",
                                 "fix hint"},
                                rows)
                 .c_str(),
             stdout);
  std::printf("%zu error(s), %zu warning(s)\n", report.error_count(),
              report.warning_count());
}

int cmd_lint(const util::ArgParser& args) {
  const analysis::SpaceLinter linter;
  if (args.get_bool("demo", false)) {
    const auto drafts = analysis::malformed_demo_space();
    std::printf("linting deliberately malformed demo space (%zu params)\n",
                drafts.size());
    const analysis::LintReport report =
        linter.lint(std::span<const analysis::ParamDraft>(drafts));
    print_lint_report(report);
    return report.has_errors() ? 1 : 0;
  }
  std::vector<const wl::Workload*> targets;
  if (args.has("workload") && !args.get_bool("all", false)) {
    targets.push_back(&wl::workload_by_name(args.get("workload", "")));
  } else {
    for (const auto& w : wl::workload_suite()) targets.push_back(&w);
  }
  bool any_errors = false;
  for (const wl::Workload* w : targets) {
    std::printf("-- %s\n", w->name.c_str());
    const analysis::LintReport report =
        linter.lint(wl::build_config_space(*w));
    print_lint_report(report);
    any_errors = any_errors || report.has_errors();
  }
  return any_errors ? 1 : 0;
}

conf::Config parse_config_overrides(const conf::ConfigSpace& space,
                                    const wl::Workload& workload,
                                    const std::string& spec) {
  conf::Config config = wl::default_expert_config(workload, space);
  if (spec.empty()) return config;
  for (const std::string& assignment : util::split(spec, ',')) {
    const auto parts = util::split(assignment, '=');
    if (parts.size() != 2)
      throw std::invalid_argument("bad --config entry: " + assignment);
    const std::string& name = parts[0];
    const std::string& value = parts[1];
    const auto& p = space.param(name);
    switch (p.kind()) {
      case conf::ParamKind::kInt:
      case conf::ParamKind::kIntChoice:
        config.set_int(name, std::stoll(value));
        break;
      case conf::ParamKind::kContinuous:
        config.set_double(name, std::stod(value));
        break;
      case conf::ParamKind::kCategorical:
        config.set_cat(name, value);
        break;
      case conf::ParamKind::kBool:
        config.set_bool(name, util::to_lower(value) == "true");
        break;
    }
  }
  space.canonicalize(config);
  space.validate(config);
  return config;
}

int cmd_evaluate(const wl::Workload& workload, const util::ArgParser& args) {
  wl::Evaluator evaluator(workload,
                          static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const conf::Config config = parse_config_overrides(
      evaluator.space(), workload, args.get("config", ""));
  std::printf("config: %s\n", config.to_string().c_str());
  const wl::EvalResult r = evaluator.evaluate_ground_truth(config);
  if (!r.feasible) {
    std::printf("infeasible: %s\n", r.failure.c_str());
    return 2;
  }
  std::printf("time-to-accuracy: %s h\ncost: $%s (rate $%s/h)\n",
              util::fmt(r.tta_seconds / 3600.0).c_str(),
              util::fmt(r.cost_usd).c_str(),
              util::fmt(r.usd_per_hour).c_str());
  return 0;
}

/// Per-phase wall-clock breakdown from the tracer's closed spans, sorted
/// by total time. Printed after a traced tune so a user sees where the
/// run's time went without opening Perfetto (EXPERIMENTS.md R-O12).
void print_phase_breakdown(obs::Tracer& tracer) {
  const auto totals = tracer.span_totals();
  double tune_total = 0.0;
  if (const auto it = totals.find("tuner.tune"); it != totals.end()) {
    tune_total = it->second.total_seconds;
  }
  std::vector<std::pair<std::string, obs::Tracer::SpanStat>> rows(
      totals.begin(), totals.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  std::vector<std::vector<std::string>> table;
  for (const auto& [name, stat] : rows) {
    std::string share = "-";
    if (tune_total > 0.0) {
      share = util::fmt(100.0 * stat.total_seconds / tune_total, 3) + "%";
    }
    table.push_back({name, std::to_string(stat.count),
                     util::fmt(stat.total_seconds, 4) + " s", share});
  }
  std::fputs(
      util::render_table({"span", "count", "total", "of tuner.tune"}, table)
          .c_str(),
      stdout);
}

int cmd_tune(const wl::Workload& workload, const util::ArgParser& args) {
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  if (!trace_path.empty()) obs::Tracer::instance().start();
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().enable();
  }
  wl::EvaluatorOptions eval_options;
  const std::string objective_name = args.get("objective", "time");
  if (objective_name == "cost") {
    eval_options.objective = wl::Objective::kCostToAccuracy;
  } else if (objective_name != "time") {
    std::fprintf(stderr, "unknown --objective=%s\n", objective_name.c_str());
    return 1;
  }
  if (args.has("deadline-hours")) {
    eval_options.deadline_seconds =
        args.get_double("deadline-hours", 0.0) * 3600.0;
  }
  const std::string faults_name = args.get("faults", "off");
  if (faults_name == "light") {
    eval_options.faults = sim::light_fault_spec();
  } else if (faults_name == "heavy") {
    eval_options.faults = sim::heavy_fault_spec();
  } else if (faults_name != "off") {
    std::fprintf(stderr, "unknown --faults=%s (off|light|heavy)\n",
                 faults_name.c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  wl::Evaluator evaluator(workload, seed, eval_options);

  // Under faults (or explicit --retries) evaluations go through the
  // supervisor, which retries transient failures with backoff.
  const bool supervised = eval_options.faults.enabled() || args.has("retries");
  wl::RetryPolicy retry_policy;
  if (args.has("retries")) {
    retry_policy.max_attempts =
        static_cast<int>(args.get_int("retries", 3));
  }
  wl::EvalSupervisor supervisor(evaluator, retry_policy, seed);
  std::unique_ptr<core::ObjectiveFunction> objective;
  if (supervised) {
    objective = std::make_unique<wl::SupervisedObjective>(supervisor);
  } else {
    objective = std::make_unique<wl::EvaluatorObjective>(evaluator);
  }

  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = static_cast<int>(args.get_int("evals", 30));
  options.acquisition =
      core::acquisition_from_string(args.get("acquisition", "logei"));
  options.early_term.enabled = !args.get_bool("no-early-term", false);
  options.journal_path = args.get("journal", "");
  // Surrogate scaling knobs (see DESIGN.md §6h): hyperopt cadence and the
  // regression backend serving the GPs.
  options.surrogate.hyperopt_every = static_cast<int>(
      args.get_int("refit-every", options.surrogate.hyperopt_every));
  if (options.surrogate.hyperopt_every < 1) {
    std::fprintf(stderr, "--refit-every must be >= 1\n");
    return 1;
  }
  const std::string backend_name = args.get("surrogate-backend", "auto");
  if (backend_name == "exact") {
    options.surrogate.backend = core::SurrogateBackend::kExact;
  } else if (backend_name == "rff") {
    options.surrogate.backend = core::SurrogateBackend::kRff;
  } else if (backend_name != "auto") {
    std::fprintf(stderr, "unknown --surrogate-backend=%s (auto|exact|rff)\n",
                 backend_name.c_str());
    return 1;
  }
  options.surrogate.rff_features = static_cast<int>(
      args.get_int("rff-features", options.surrogate.rff_features));
  if (options.surrogate.rff_features < 1) {
    std::fprintf(stderr, "--rff-features must be >= 1\n");
    return 1;
  }
  if (args.has("max-wall-time")) {
    options.max_wall_seconds = args.get_double("max-wall-time", 0.0);
    if (!(options.max_wall_seconds > 0.0)) {
      std::fprintf(stderr, "--max-wall-time must be > 0 seconds\n");
      return 1;
    }
  }
  // Async pipeline (see BoOptions::async_q): up to Q evaluations in flight,
  // results ingested in proposal order — deterministic at any worker count.
  options.async_q = static_cast<int>(args.get_int("async-q", 1));
  if (options.async_q < 1) {
    std::fprintf(stderr, "--async-q must be >= 1\n");
    return 1;
  }
  options.async_workers =
      static_cast<int>(args.get_int("async-workers", 0));
  if (options.async_workers < 0) {
    std::fprintf(stderr, "--async-workers must be >= 0\n");
    return 1;
  }
  // Chaos arming (testing/fault drills): kill this process at a named
  // durability point, or at the N-th crash-point hit overall.
  if (args.has("crash-point")) {
    const std::string spec = args.get("crash-point", "");
    const std::size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    std::uint64_t hit = 1;
    if (colon != std::string::npos) {
      hit = std::stoull(spec.substr(colon + 1));
    }
    util::chaos::arm_crash_point(name, hit);
  }
  if (args.has("crash-after")) {
    util::chaos::arm_crash_after(
        static_cast<std::uint64_t>(args.get_int("crash-after", 1)));
  }
  if (args.has("resume")) {
    options.warm_start =
        core::load_trials(args.get("resume", ""), evaluator.space());
    options.initial_design_size = 2;
    std::printf("resumed %zu trials from %s\n", options.warm_start.size(),
                args.get("resume", "").c_str());
  }

  core::BoTuner tuner(*objective, options);
  const core::TuningResult result = tuner.tune();
  if (result.wall_deadline_hit) {
    std::printf(
        "wall-clock deadline (%s s) hit after %zu trials; stopped cleanly"
        "%s\n",
        util::fmt(options.max_wall_seconds).c_str(), result.trials.size(),
        options.journal_path.empty()
            ? ""
            : " (rerun with the same --journal to resume)");
  }
  if (!trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.stop();
    util::write_file_atomic(trace_path, tracer.export_chrome_json());
    std::printf("trace written to %s (%zu events; open in Perfetto)\n",
                trace_path.c_str(), tracer.event_count());
    print_phase_breakdown(tracer);
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
    registry.disable();
    const bool csv = metrics_path.size() >= 4 &&
                     metrics_path.substr(metrics_path.size() - 4) == ".csv";
    util::write_file_atomic(
        metrics_path, csv ? registry.snapshot_csv()
                          : util::dump_json(registry.snapshot_json(), 1));
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  if (tuner.replayed_trials() > 0) {
    std::printf("journal %s: replayed %zu trials without re-evaluating\n",
                options.journal_path.c_str(), tuner.replayed_trials());
  }
  if (supervised) {
    int attempts = 0, transients = 0;
    for (const core::Trial& t : result.trials) {
      attempts += t.outcome.attempts;
      if (t.outcome.transient_failure()) ++transients;
    }
    std::printf(
        "fault environment %s: %d attempts across %zu evaluations, "
        "%d unrecovered transient failure(s)\n",
        faults_name.c_str(), attempts, result.trials.size(), transients);
  }
  if (args.has("session")) {
    core::save_trials(args.get("session", ""), result.trials);
    std::printf("session saved to %s\n", args.get("session", "").c_str());
  }
  if (!result.found_feasible()) {
    std::printf("no feasible configuration found in %zu evaluations\n",
                result.trials.size());
    return 2;
  }
  const wl::EvalResult truth =
      evaluator.evaluate_ground_truth(result.best_config);
  std::printf("best config: %s\n", result.best_config.to_string().c_str());
  std::printf("objective (%s): %s\n", objective_name.c_str(),
              util::fmt(result.best_objective).c_str());
  if (truth.feasible) {
    std::printf("ground truth: TTA %s h, cost $%s\n",
                util::fmt(truth.tta_seconds / 3600.0).c_str(),
                util::fmt(truth.cost_usd).c_str());
  }
  std::printf("search cost: %s simulated hours over %zu runs\n",
              util::fmt(evaluator.total_spent_seconds() / 3600.0).c_str(),
              evaluator.num_runs());
  return 0;
}

int cmd_importance(const wl::Workload& workload, const util::ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  wl::Evaluator evaluator(workload, seed);
  wl::EvaluatorObjective objective(evaluator);
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = static_cast<int>(args.get_int("evals", 35));
  core::BoTuner tuner(objective, options);
  tuner.tune();
  const math::Vec relevance = tuner.surrogate().ard_relevance();
  if (relevance.empty()) {
    std::printf("surrogate never became ready (all runs failed?)\n");
    return 2;
  }
  const auto ard = core::ard_param_importance(evaluator.space(), relevance);
  util::Rng rng(seed + 1);
  const auto variance = core::variance_importance(
      tuner.surrogate(), evaluator.space(), rng);
  std::vector<std::vector<std::string>> rows;
  for (const auto& a : ard) {
    std::string var_share = "-";
    for (const auto& v : variance) {
      if (v.param == a.param) var_share = util::fmt(v.importance, 3);
    }
    rows.push_back({a.param, util::fmt(a.importance, 3), var_share});
  }
  std::fputs(
      util::render_table({"parameter", "ARD", "variance-share"}, rows).c_str(),
      stdout);
  return 0;
}

int cmd_serve(const util::ArgParser& args) {
  service::ServiceOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  options.max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", 4096));
  options.default_max_pending =
      static_cast<int>(args.get_int("max-pending", 16));
  service::SessionManager manager(options);
  const std::string socket_path = args.get("socket", "");
  if (!socket_path.empty()) {
    service::ServerOptions server_options;
    server_options.socket_path = socket_path;
    server_options.connection_threads =
        static_cast<std::size_t>(args.get_int("conn-threads", 8));
    service::SocketServer server(manager, server_options);
    server.serve();  // returns once a shutdown request is served
    return 0;
  }
  // --stdio (the default): one request line in, one response line out.
  // Scriptable from anything that can pipe LDJSON; also the transport the
  // protocol conformance tests drive.
  std::string line;
  while (!manager.shutdown_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::fputs((manager.handle_line(line) + "\n").c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string command = argc > 1 && argv[1][0] != '-' ? argv[1] : "";
  try {
    if (command == "workloads") {
      cmd_workloads();
      return 0;
    }
    if (command == "lint") return cmd_lint(args);
    // serve needs no workload: session spaces arrive over the wire.
    if (command == "serve") return cmd_serve(args);
    if (command.empty()) {
      std::fprintf(stderr,
                   "usage: autodml_cli <workloads|lint|space|evaluate|tune|"
                   "importance|serve> [--flags]\n");
      return 1;
    }
    // --demo pins the canonical demo session (the one the golden-run test
    // locks down): logreg-ads with the default 30 evaluations and seed 1.
    const wl::Workload& workload =
        args.get_bool("demo", false)
            ? wl::workload_by_name("logreg-ads")
            : wl::workload_by_name(args.get("workload", "logreg-ads"));
    if (command == "space") {
      cmd_space(workload);
      return 0;
    }
    if (command == "evaluate") return cmd_evaluate(workload, args);
    if (command == "tune") return cmd_tune(workload, args);
    if (command == "importance") return cmd_importance(workload, args);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Persisting and resuming a tuning session.
//
// Phase 1 tunes with a small budget and saves every trial to JSON. Phase 2
// (conceptually a new process, possibly days later) reloads the history,
// warm-starts the tuner, and continues with a few more evaluations —
// without re-paying for anything already learned.
//
//   ./session_resume [--workload=mf-recsys] [--phase1=12] [--phase2=8]
#include <cstdio>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const wl::Workload& workload =
      wl::workload_by_name(args.get("workload", "mf-recsys"));
  const int phase1 = static_cast<int>(args.get_int("phase1", 12));
  const int phase2 = static_cast<int>(args.get_int("phase2", 8));
  const std::string path = args.get("session", "/tmp/autodml_session.json");

  // ---- Phase 1: tune and save ------------------------------------------
  double phase1_best;
  {
    wl::Evaluator evaluator(workload, 42);
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 42;
    options.max_evaluations = phase1;
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    phase1_best = result.best_objective;
    core::save_trials(path, result.trials);
    std::printf("phase 1: %d evaluations, best TTA %s h, session -> %s\n",
                phase1, util::fmt(phase1_best / 3600.0).c_str(),
                path.c_str());
  }

  // ---- Phase 2: reload and continue -------------------------------------
  {
    wl::Evaluator evaluator(workload, 43);  // fresh evaluator, fresh ledger
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 43;
    options.max_evaluations = phase2;
    options.initial_design_size = 2;  // history replaces the cold design
    options.warm_start = core::load_trials(path, evaluator.space());
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    std::printf(
        "phase 2: loaded %zu trials, %d more evaluations, best TTA %s h\n",
        options.warm_start.size(), phase2,
        util::fmt(result.best_objective / 3600.0).c_str());
    std::printf("phase 2 search cost: %s simulated hours\n",
                util::fmt(evaluator.total_spent_seconds() / 3600.0).c_str());
    const double combined = std::min(phase1_best, result.best_objective);
    std::printf("combined best across phases: %s h\n",
                util::fmt(combined / 3600.0).c_str());
  }
  return 0;
}

// Persisting and resuming tuning sessions — two complementary mechanisms.
//
// Warm start (part 1): tune with a small budget, save every trial to a JSON
// session file, then later load it into a *different* tuning session (new
// seed, new evaluator) as prior history — without re-paying for anything
// already learned.
//
// Crash-safe journal (part 2): run with --journal so every evaluated trial
// is fsynced to an append-only journal. Kill the process at any point;
// rerunning with the same seed and options replays the journaled trials
// instead of re-evaluating them and continues to the same final incumbent
// an uninterrupted run would have reached — with the budget accounting
// intact. Here the "crash" is simulated by a first run with a smaller
// evaluation budget.
//
//   ./session_resume [--workload=mf-recsys] [--phase1=12] [--phase2=8]
//                    [--session=FILE] [--journal=FILE]
#include <cstdio>
#include <exception>

#include "core/bo_tuner.h"
#include "core/session_io.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

namespace {

int run(const util::ArgParser& args) {
  const wl::Workload& workload =
      wl::workload_by_name(args.get("workload", "mf-recsys"));
  const int phase1 = static_cast<int>(args.get_int("phase1", 12));
  const int phase2 = static_cast<int>(args.get_int("phase2", 8));
  const std::string path = args.get("session", "/tmp/autodml_session.json");
  const std::string journal =
      args.get("journal", "/tmp/autodml_session.journal");

  // ---- Part 1: warm start across sessions ------------------------------
  double phase1_best;
  {
    wl::Evaluator evaluator(workload, 42);
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 42;
    options.max_evaluations = phase1;
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    phase1_best = result.best_objective;
    core::save_trials(path, result.trials);
    std::printf("phase 1: %d evaluations, best TTA %s h, session -> %s\n",
                phase1, util::fmt(phase1_best / 3600.0).c_str(),
                path.c_str());
  }
  {
    wl::Evaluator evaluator(workload, 43);  // fresh evaluator, fresh ledger
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 43;
    options.max_evaluations = phase2;
    options.initial_design_size = 2;  // history replaces the cold design
    options.warm_start = core::load_trials(path, evaluator.space());
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    std::printf(
        "phase 2: loaded %zu trials, %d more evaluations, best TTA %s h\n",
        options.warm_start.size(), phase2,
        util::fmt(result.best_objective / 3600.0).c_str());
    std::printf("phase 2 search cost: %s simulated hours\n",
                util::fmt(evaluator.total_spent_seconds() / 3600.0).c_str());
    const double combined = std::min(phase1_best, result.best_objective);
    std::printf("combined best across phases: %s h\n",
                util::fmt(combined / 3600.0).c_str());
  }

  // ---- Part 2: crash-safe resume from the trial journal ----------------
  std::remove(journal.c_str());
  const int full_budget = phase1 + phase2;
  const auto journaled_run = [&](int evals) {
    wl::Evaluator evaluator(workload, 44);
    wl::EvaluatorObjective objective(evaluator);
    core::BoOptions options;
    options.seed = 44;  // resume requires identical seed and options
    options.max_evaluations = evals;
    options.journal_path = journal;
    core::BoTuner tuner(objective, options);
    const core::TuningResult result = tuner.tune();
    return std::make_tuple(result.best_objective, tuner.replayed_trials(),
                           evaluator.total_spent_seconds());
  };

  const auto [interrupted_best, r0, spent0] = journaled_run(phase1);
  std::printf(
      "journal: \"crashed\" after %d evaluations (best TTA %s h, "
      "%s simulated hours spent) -> %s\n",
      phase1, util::fmt(interrupted_best / 3600.0).c_str(),
      util::fmt(spent0 / 3600.0).c_str(), journal.c_str());

  const auto [resumed_best, replayed, spent1] = journaled_run(full_budget);
  std::printf(
      "journal resume: replayed %zu trials for free, evaluated %d more, "
      "best TTA %s h\n",
      replayed, full_budget - static_cast<int>(replayed),
      util::fmt(resumed_best / 3600.0).c_str());
  std::printf(
      "ledger this process: %s simulated hours (vs %s for a from-scratch "
      "run of the full budget)\n",
      util::fmt(spent1 / 3600.0).c_str(),
      util::fmt((spent0 + spent1) / 3600.0).c_str());
  std::remove(journal.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::ArgParser(argc, argv));
  } catch (const std::exception& e) {
    // Unreadable/corrupt session or journal files land here with the path
    // and record context in the message.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

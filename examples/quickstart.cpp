// Quickstart: tune the system configuration of one distributed training job.
//
//   ./quickstart [--workload=logreg-ads] [--evals=25] [--seed=7]
//
// Walks the canonical AutoDML flow: pick a workload, build its evaluator,
// wrap it in the tuner's objective interface, run Bayesian optimization,
// and compare the tuned configuration against the hand default.
#include <cstdio>

#include "baselines/baseline_tuners.h"
#include "core/bo_tuner.h"
#include "util/arg_parse.h"
#include "util/csv.h"
#include "workloads/objective_adapter.h"

using namespace autodml;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const std::string workload_name = args.get("workload", "logreg-ads");
  const int evals = static_cast<int>(args.get_int("evals", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const wl::Workload& workload = wl::workload_by_name(workload_name);
  std::printf("workload: %s (%s)\n", workload.name.c_str(),
              workload.description.c_str());

  wl::Evaluator evaluator(workload, seed);
  wl::EvaluatorObjective objective(evaluator);

  // The hand default a practitioner might start from.
  const conf::Config expert =
      wl::default_expert_config(workload, evaluator.space());
  const wl::EvalResult expert_result = evaluator.evaluate_ground_truth(expert);
  std::printf("default config: %s\n", expert.to_string().c_str());
  std::printf("  time-to-accuracy: %s h\n",
              util::fmt(expert_result.tta_seconds / 3600.0).c_str());

  // Tune.
  core::BoOptions options;
  options.seed = seed;
  options.max_evaluations = evals;
  core::BoTuner tuner(objective, options);
  const core::TuningResult result = tuner.tune();

  if (!result.found_feasible()) {
    std::printf("no feasible configuration found in %d evaluations\n", evals);
    return 1;
  }
  const wl::EvalResult best_truth =
      evaluator.evaluate_ground_truth(result.best_config);
  std::printf("tuned config (after %zu evaluations):\n  %s\n",
              result.trials.size(), result.best_config.to_string().c_str());
  std::printf("  time-to-accuracy: %s h (%.2fx speedup over default)\n",
              util::fmt(best_truth.tta_seconds / 3600.0).c_str(),
              expert_result.tta_seconds / best_truth.tta_seconds);
  std::printf("  search cost: %s simulated hours across %zu runs\n",
              util::fmt(evaluator.total_spent_seconds() / 3600.0).c_str(),
              evaluator.num_runs());
  return 0;
}

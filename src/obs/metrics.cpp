#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace autodml::obs {

namespace {

void add_to_atomic_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

HistogramSnapshot merge(const HistogramSnapshot& a,
                        const HistogramSnapshot& b) {
  if (a.bounds != b.bounds)
    throw std::invalid_argument(
        "Histogram merge: bucket bounds differ (" +
        std::to_string(a.bounds.size()) + " vs " +
        std::to_string(b.bounds.size()) + " finite buckets)");
  HistogramSnapshot out = a;
  for (std::size_t i = 0; i < out.counts.size(); ++i)
    out.counts[i] += b.counts[i];
  out.count += b.count;
  out.sum += b.sum;
  out.min = std::min(out.min, b.min);
  out.max = std::max(out.max, b.max);
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
  }
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_to_atomic_double(sum_, v);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.counts.push_back(b.load(std::memory_order_relaxed));
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(
                          std::vector<double>(bounds.begin(), bounds.end())))
             .first;
  } else if (!std::equal(bounds.begin(), bounds.end(),
                         it->second->bounds().begin(),
                         it->second->bounds().end())) {
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-requested with different bounds");
  }
  return *it->second;
}

util::JsonValue MetricsRegistry::snapshot_json() const {
  util::MutexLock lock(mu_);
  util::JsonObject counters;
  for (const auto& [name, c] : counters_) {
    counters.emplace(name, util::JsonValue(c->value()));
  }
  util::JsonObject gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.emplace(name, util::JsonValue(g->value()));
  }
  util::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot snap = h->snapshot();
    util::JsonObject obj;
    util::JsonArray bounds, counts;
    for (double b : snap.bounds) bounds.push_back(util::JsonValue(b));
    for (std::int64_t c : snap.counts) counts.push_back(util::JsonValue(c));
    obj.emplace("bounds", util::JsonValue(std::move(bounds)));
    obj.emplace("counts", util::JsonValue(std::move(counts)));
    obj.emplace("count", util::JsonValue(snap.count));
    obj.emplace("sum", util::JsonValue(snap.sum));
    // +/-inf (empty histogram) is not representable in JSON.
    obj.emplace("min", snap.count > 0 ? util::JsonValue(snap.min)
                                      : util::JsonValue(nullptr));
    obj.emplace("max", snap.count > 0 ? util::JsonValue(snap.max)
                                      : util::JsonValue(nullptr));
    histograms.emplace(name, util::JsonValue(std::move(obj)));
  }
  util::JsonObject doc;
  doc.emplace("counters", util::JsonValue(std::move(counters)));
  doc.emplace("gauges", util::JsonValue(std::move(gauges)));
  doc.emplace("histograms", util::JsonValue(std::move(histograms)));
  return util::JsonValue(std::move(doc));
}

std::string MetricsRegistry::snapshot_csv() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    out << "counter," << name << "," << c->value() << "\n";
  }
  out.precision(17);
  for (const auto& [name, g] : gauges_) {
    out << "gauge," << name << "," << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot snap = h->snapshot();
    out << "histogram," << name << ".count," << snap.count << "\n";
    out << "histogram," << name << ".sum," << snap.sum << "\n";
    if (snap.count > 0) {
      out << "histogram," << name << ".min," << snap.min << "\n";
      out << "histogram," << name << ".max," << snap.max << "\n";
    }
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      out << "histogram," << name << ".le_";
      if (i < snap.bounds.size()) {
        out << snap.bounds[i];
      } else {
        out << "inf";
      }
      out << "," << snap.counts[i] << "\n";
    }
  }
  return out.str();
}

}  // namespace autodml::obs

// Low-overhead tracing: nested spans exported as Chrome trace-event JSON.
//
// Instrumentation sites open RAII spans via ADML_SPAN("name"); the tracer
// records begin/end ("B"/"E") event pairs into per-thread buffers, each
// guarded by its own mutex so the steady-state append never contends with
// other threads. Buffers are flushed on demand by export_chrome_json(),
// whose output loads directly in Perfetto / chrome://tracing.
//
// Cost contract:
//   - Sink detached (the default): every site is one relaxed atomic load —
//     no lock, no allocation, no clock read. The tuner's results are
//     bit-identical with tracing on or off because instrumentation only
//     *reads* the wall clock; nothing ever feeds back into computation or
//     consumes tuner randomness.
//   - Sink attached: one clock read plus an uncontended lock per event.
//   - Building with -DAUTODML_NO_OBS=ON compiles every ADML_SPAN /
//     ADML_TRACE_INSTANT / ADML_METRIC_* site to nothing, for measuring
//     the instrumentation floor.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointer, not a copy. Keep the taxonomy small and stable
// — see DESIGN.md §6f for the canonical span names.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace autodml::obs {

struct TraceEvent {
  const char* name;       // static-lifetime string (see header comment)
  char ph;                // 'B' begin, 'E' end, 'i' instant
  std::int64_t ts_ns;     // steady-clock nanoseconds since process epoch
  /// Up to two named integer arguments, exported as the Chrome "args"
  /// object on 'B'/'i' events (e.g. the problem size a span covers, so a
  /// Perfetto trace attributes cubic work to n). Names are static-lifetime
  /// literals like the span name; nullptr slots are absent.
  const char* arg_name[2] = {nullptr, nullptr};
  std::int64_t arg_value[2] = {0, 0};
};

class Tracer {
 public:
  /// Process-wide tracer (leaky singleton: safe to touch from any thread
  /// at any point of program teardown).
  static Tracer& instance();

  /// Discard any buffered events and begin collecting.
  void start();
  /// Stop collecting. Buffered events remain available for export.
  void stop();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Drop all buffered events (thread buffers stay registered).
  void clear() ADML_EXCLUDES(registry_mu_);

  /// Append one event to the calling thread's buffer. Unconditional: the
  /// enabled() gate lives at the instrumentation site so that a span
  /// opened while tracing was on can always close its 'E' event.
  /// `a0`/`a1` name optional integer arguments recorded on the event
  /// (nullptr = absent); names must be static-lifetime literals.
  void record(const char* name, char ph, const char* a0 = nullptr,
              std::int64_t v0 = 0, const char* a1 = nullptr,
              std::int64_t v1 = 0) ADML_EXCLUDES(registry_mu_);

  /// Serialize everything buffered so far as a Chrome trace-event JSON
  /// document ({"traceEvents": [...]}). Every event carries the
  /// Perfetto-required fields: name, ph, ts (microseconds), pid, tid.
  std::string export_chrome_json() ADML_EXCLUDES(registry_mu_);

  /// Aggregate of closed spans: exclusive of nothing (nested spans count
  /// their children's time too), keyed by span name.
  struct SpanStat {
    std::uint64_t count = 0;
    double total_seconds = 0.0;
  };
  std::map<std::string, SpanStat> span_totals() ADML_EXCLUDES(registry_mu_);

  /// Buffered event count across all threads (testing/diagnostics).
  std::size_t event_count() ADML_EXCLUDES(registry_mu_);

 private:
  struct ThreadBuffer {
    std::uint32_t tid;
    util::Mutex mu;
    std::vector<TraceEvent> events ADML_GUARDED_BY(mu);
  };

  Tracer() = default;
  /// Registers (under registry_mu_) and returns the calling thread's
  /// buffer; the returned reference is stable for the tracer's lifetime.
  ThreadBuffer& local_buffer() ADML_EXCLUDES(registry_mu_);

  std::atomic<bool> enabled_{false};
  util::Mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      ADML_GUARDED_BY(registry_mu_);
};

/// RAII span. Emits 'B' on construction when the tracer is collecting and
/// the matching 'E' on destruction (even if tracing stopped in between, so
/// per-thread begin/end pairs always balance). Up to two named integer
/// arguments ride on the 'B' event — ADML_SPAN("gp.refit", "n", n) — so
/// traces attribute super-linear work to the problem size that caused it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled()) {
      name_ = name;
      tracer.record(name, 'B');
    }
  }
  ScopedSpan(const char* name, const char* a0, std::int64_t v0) {
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled()) {
      name_ = name;
      tracer.record(name, 'B', a0, v0);
    }
  }
  ScopedSpan(const char* name, const char* a0, std::int64_t v0,
             const char* a1, std::int64_t v1) {
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled()) {
      name_ = name;
      tracer.record(name, 'B', a0, v0, a1, v1);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::instance().record(name_, 'E');
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // non-null only while a 'B' is open
};

/// Point-in-time marker (e.g. a fault episode charged to a worker).
inline void trace_instant(const char* name) {
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) tracer.record(name, 'i');
}

}  // namespace autodml::obs

#define ADML_OBS_CONCAT_INNER(a, b) a##b
#define ADML_OBS_CONCAT(a, b) ADML_OBS_CONCAT_INNER(a, b)

#ifdef AUTODML_NO_OBS
#define ADML_SPAN(...) ((void)0)
#define ADML_TRACE_INSTANT(name) ((void)0)
#else
/// ADML_SPAN("name") or ADML_SPAN("name", "arg", value[, "arg2", value2]).
/// The first argument must be a string literal (lint rule D007).
#define ADML_SPAN(...) \
  ::autodml::obs::ScopedSpan ADML_OBS_CONCAT(adml_span_, __LINE__)(__VA_ARGS__)
#define ADML_TRACE_INSTANT(name) ::autodml::obs::trace_instant(name)
#endif

#include "obs/trace.h"

#include <chrono>
#include <stdexcept>

#include "util/json.h"

namespace autodml::obs {

namespace {

/// Fixed process epoch so timestamps from different threads share a base.
std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

}  // namespace

Tracer& Tracer::instance() {
  // Leaky: worker threads may still emit 'E' events during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    util::MutexLock lock(registry_mu_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    cached = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return *cached;
}

void Tracer::start() {
  clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  util::MutexLock lock(registry_mu_);
  for (auto& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

void Tracer::record(const char* name, char ph, const char* a0,
                    std::int64_t v0, const char* a1, std::int64_t v1) {
  ThreadBuffer& buffer = local_buffer();
  util::MutexLock lock(buffer.mu);
  // Timestamp under the buffer lock, after any queued export finished:
  // per-thread order equals program order, so timestamps are monotonic
  // within each tid.
  buffer.events.push_back(
      TraceEvent{name, ph, now_ns(), {a0, a1}, {v0, v1}});
}

std::string Tracer::export_chrome_json() {
  util::JsonArray events;
  util::MutexLock lock(registry_mu_);
  for (auto& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    for (const TraceEvent& e : buffer->events) {
      util::JsonObject obj;
      obj.emplace("name", util::JsonValue(e.name));
      obj.emplace("cat", util::JsonValue("autodml"));
      obj.emplace("ph", util::JsonValue(std::string(1, e.ph)));
      obj.emplace("ts", util::JsonValue(static_cast<double>(e.ts_ns) / 1e3));
      obj.emplace("pid", util::JsonValue(1));
      obj.emplace("tid", util::JsonValue(static_cast<double>(buffer->tid)));
      if (e.ph == 'i') obj.emplace("s", util::JsonValue("t"));
      if (e.arg_name[0] != nullptr) {
        util::JsonObject args;
        for (int a = 0; a < 2; ++a) {
          if (e.arg_name[a] != nullptr) {
            args.emplace(e.arg_name[a],
                         util::JsonValue(static_cast<double>(e.arg_value[a])));
          }
        }
        obj.emplace("args", util::JsonValue(std::move(args)));
      }
      events.push_back(util::JsonValue(std::move(obj)));
    }
  }
  util::JsonObject doc;
  doc.emplace("traceEvents", util::JsonValue(std::move(events)));
  doc.emplace("displayTimeUnit", util::JsonValue("ms"));
  return util::dump_json(util::JsonValue(std::move(doc)), 1);
}

std::map<std::string, Tracer::SpanStat> Tracer::span_totals() {
  std::map<std::string, SpanStat> totals;
  util::MutexLock lock(registry_mu_);
  for (auto& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    // Per-thread begin stack; RAII guarantees LIFO pairing within a thread.
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent& e : buffer->events) {
      if (e.ph == 'B') {
        stack.push_back(&e);
      } else if (e.ph == 'E') {
        if (stack.empty())
          throw std::logic_error("Tracer: unbalanced 'E' event for " +
                                 std::string(e.name));
        const TraceEvent* begin = stack.back();
        stack.pop_back();
        SpanStat& stat = totals[begin->name];
        ++stat.count;
        stat.total_seconds +=
            static_cast<double>(e.ts_ns - begin->ts_ns) / 1e9;
      }
    }
  }
  return totals;
}

std::size_t Tracer::event_count() {
  util::MutexLock lock(registry_mu_);
  std::size_t n = 0;
  for (auto& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

}  // namespace autodml::obs

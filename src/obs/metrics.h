// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms, snapshotted to JSON or CSV.
//
// The registry complements the tracer (obs/trace.h): spans answer "where
// did the wall clock go", metrics answer "how often / how much". All
// instruments are lock-free after creation (relaxed atomics; name lookup
// takes the registry mutex only when the registry is enabled), and the
// whole layer is a single relaxed atomic load per site when disabled.
//
// Determinism contract: every metric recorded by library instrumentation
// sites counts *simulated* or *algorithmic* quantities (trials, GP
// appends, simulated seconds, fault events) — never the wall clock — so a
// fixed-seed run produces a bit-identical snapshot in serial mode. The
// golden-run regression test (tests/golden_run_test.cpp) pins this.
// Thread-pool gauges are the one scheduling-dependent exception; they are
// only published from multi-threaded runs, which the golden run is not.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/json.h"

namespace autodml::obs {

/// Monotonically increasing integer count.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written / accumulated / peak double value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void max_of(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Plain-data histogram state; what snapshot() returns and merge() folds.
struct HistogramSnapshot {
  /// Inclusive upper bounds of the finite buckets; bucket i counts values
  /// v <= bounds[i] (and > bounds[i-1]). One overflow bucket follows.
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  // bounds.size() + 1 entries
  std::int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Merge two snapshots with identical bounds (throws otherwise). Addition
/// is associative and commutative on counts; `sum` is a double, so merging
/// per-thread histograms reproduces the serial sum exactly only when the
/// recorded values sum without rounding (e.g. integers) — the property the
/// stress test checks.
HistogramSnapshot merge(const HistogramSnapshot& a,
                        const HistogramSnapshot& b);

/// Fixed-bucket histogram, safe for concurrent record().
class Histogram {
 public:
  /// `bounds` must be strictly increasing; values above the last bound
  /// land in the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void record(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

class MetricsRegistry {
 public:
  /// Process-wide registry (leaky singleton, same rationale as Tracer).
  static MetricsRegistry& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Zero every instrument (registrations survive).
  void reset() ADML_EXCLUDES(mu_);

  /// Get-or-create by name. References stay valid for the registry's
  /// lifetime (instruments are never deallocated).
  Counter& counter(std::string_view name) ADML_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) ADML_EXCLUDES(mu_);
  /// Re-requesting an existing histogram with different bounds throws.
  Histogram& histogram(std::string_view name, std::span<const double> bounds)
      ADML_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  util::JsonValue snapshot_json() const ADML_EXCLUDES(mu_);
  /// Flat "kind,name,value" lines; histograms expand to .count/.sum/.min/
  /// .max plus one le_<bound> row per bucket.
  std::string snapshot_csv() const ADML_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  // The registry mutex guards only name -> instrument lookup; returned
  // instrument references are lock-free (the instruments are atomic
  // internally and never deallocated).
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ADML_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ADML_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ADML_GUARDED_BY(mu_);
};

}  // namespace autodml::obs

#ifdef AUTODML_NO_OBS
#define ADML_COUNT(name, delta) ((void)0)
#define ADML_GAUGE_SET(name, v) ((void)0)
#define ADML_GAUGE_ADD(name, v) ((void)0)
#define ADML_GAUGE_MAX(name, v) ((void)0)
#define ADML_HISTOGRAM(name, bounds, v) ((void)0)
#else
#define ADML_METRICS_IF_ENABLED(expr)                                \
  do {                                                               \
    ::autodml::obs::MetricsRegistry& adml_reg =                      \
        ::autodml::obs::MetricsRegistry::instance();                 \
    if (adml_reg.enabled()) {                                        \
      expr;                                                          \
    }                                                                \
  } while (0)
#define ADML_COUNT(name, delta) \
  ADML_METRICS_IF_ENABLED(adml_reg.counter(name).add(delta))
#define ADML_GAUGE_SET(name, v) \
  ADML_METRICS_IF_ENABLED(adml_reg.gauge(name).set(v))
#define ADML_GAUGE_ADD(name, v) \
  ADML_METRICS_IF_ENABLED(adml_reg.gauge(name).add(v))
#define ADML_GAUGE_MAX(name, v) \
  ADML_METRICS_IF_ENABLED(adml_reg.gauge(name).max_of(v))
#define ADML_HISTOGRAM(name, bounds, v) \
  ADML_METRICS_IF_ENABLED(adml_reg.histogram(name, bounds).record(v))
#endif

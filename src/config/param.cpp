#include "config/param.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.h"

namespace autodml::conf {

std::string to_string(const ParamValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(x);
        } else if constexpr (std::is_same_v<T, double>) {
          return util::fmt(x, 6);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else {
          return x ? "true" : "false";
        }
      },
      v);
}

bool values_equal(const ParamValue& a, const ParamValue& b) { return a == b; }

ParamSpec ParamSpec::integer(std::string name, std::int64_t lo,
                             std::int64_t hi, bool log_scale) {
  if (lo > hi) throw std::invalid_argument("integer param: lo > hi");
  if (log_scale && lo < 1)
    throw std::invalid_argument("integer param: log scale requires lo >= 1");
  ParamSpec p(std::move(name), ParamKind::kInt);
  p.int_lo_ = lo;
  p.int_hi_ = hi;
  p.log_scale_ = log_scale;
  return p;
}

ParamSpec ParamSpec::int_choice(std::string name,
                                std::vector<std::int64_t> choices) {
  if (choices.empty()) throw std::invalid_argument("int_choice: empty menu");
  if (!std::is_sorted(choices.begin(), choices.end()))
    throw std::invalid_argument("int_choice: menu must be ascending");
  ParamSpec p(std::move(name), ParamKind::kIntChoice);
  p.int_choices_ = std::move(choices);
  return p;
}

ParamSpec ParamSpec::continuous(std::string name, double lo, double hi,
                                bool log_scale) {
  if (!(lo < hi)) throw std::invalid_argument("continuous param: lo >= hi");
  if (log_scale && lo <= 0.0)
    throw std::invalid_argument("continuous param: log scale requires lo > 0");
  ParamSpec p(std::move(name), ParamKind::kContinuous);
  p.cont_lo_ = lo;
  p.cont_hi_ = hi;
  p.log_scale_ = log_scale;
  return p;
}

ParamSpec ParamSpec::categorical(std::string name,
                                 std::vector<std::string> categories) {
  if (categories.size() < 2)
    throw std::invalid_argument("categorical: need at least 2 categories");
  ParamSpec p(std::move(name), ParamKind::kCategorical);
  p.categories_ = std::move(categories);
  return p;
}

ParamSpec ParamSpec::boolean(std::string name) {
  return ParamSpec(std::move(name), ParamKind::kBool);
}

ParamSpec& ParamSpec::only_when(std::string parent,
                                std::vector<std::string> parent_values) {
  if (parent_values.empty())
    throw std::invalid_argument("only_when: empty enabling set");
  parent_ = std::move(parent);
  parent_values_ = std::move(parent_values);
  return *this;
}

std::size_t ParamSpec::encoded_width() const {
  return kind_ == ParamKind::kCategorical ? categories_.size() : 1;
}

std::size_t ParamSpec::cardinality() const {
  switch (kind_) {
    case ParamKind::kInt:
      return static_cast<std::size_t>(int_hi_ - int_lo_ + 1);
    case ParamKind::kIntChoice:
      return int_choices_.size();
    case ParamKind::kContinuous:
      return 0;
    case ParamKind::kCategorical:
      return categories_.size();
    case ParamKind::kBool:
      return 2;
  }
  return 0;
}

ParamValue ParamSpec::default_value() const {
  switch (kind_) {
    case ParamKind::kInt:
      return int_lo_;
    case ParamKind::kIntChoice:
      return int_choices_.front();
    case ParamKind::kContinuous:
      return cont_lo_;
    case ParamKind::kCategorical:
      return categories_.front();
    case ParamKind::kBool:
      return false;
  }
  return std::int64_t{0};
}

bool ParamSpec::is_valid(const ParamValue& v) const {
  switch (kind_) {
    case ParamKind::kInt: {
      const auto* x = std::get_if<std::int64_t>(&v);
      return x != nullptr && *x >= int_lo_ && *x <= int_hi_;
    }
    case ParamKind::kIntChoice: {
      const auto* x = std::get_if<std::int64_t>(&v);
      return x != nullptr &&
             std::binary_search(int_choices_.begin(), int_choices_.end(), *x);
    }
    case ParamKind::kContinuous: {
      const auto* x = std::get_if<double>(&v);
      return x != nullptr && std::isfinite(*x) && *x >= cont_lo_ &&
             *x <= cont_hi_;
    }
    case ParamKind::kCategorical: {
      const auto* x = std::get_if<std::string>(&v);
      return x != nullptr &&
             std::find(categories_.begin(), categories_.end(), *x) !=
                 categories_.end();
    }
    case ParamKind::kBool:
      return std::holds_alternative<bool>(v);
  }
  return false;
}

}  // namespace autodml::conf

// Configuration space: an ordered set of parameters with conditional
// activation, plus the encoding used by surrogate models.
//
// Encoding. Surrogates (GPs) need points in a fixed-dimension continuous
// space. Each parameter maps to coordinates in [0,1]:
//   - kInt / kContinuous: one coordinate, linear or log over the range;
//   - kIntChoice: one coordinate, index / (n-1) over the menu;
//   - kBool: one coordinate, 0 or 1;
//   - kCategorical: one-hot block of #categories coordinates.
// Inactive conditional parameters are *canonicalized* to their default value
// before encoding so that two configs that differ only in dead knobs encode
// identically — without this, the surrogate would see phantom distance
// between behaviorally identical configurations.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/param.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace autodml::conf {

class ConfigSpace;

/// One concrete configuration: values aligned with the space's parameter
/// order. Holds a non-owning pointer to its space, which must outlive it
/// (spaces are created once per workload and live for the whole run).
///
/// Lifetime contract. The space pointer is deliberately non-owning —
/// configs are copied in bulk on hot paths and must not pin a space alive.
/// To make violations loud instead of undefined, each Config carries a
/// weak reference to its space's liveness token: name-based accessors
/// (get_*/set_* via ref()) throw std::logic_error once the space is gone.
/// Index-based access (value_at) stays unchecked on purpose: warm-start
/// trials legitimately carry values from a destroyed space instance and
/// are re-bound via ConfigSpace::neighbor/validate before use.
class Config {
 public:
  Config() = default;
  Config(const ConfigSpace* space, std::vector<ParamValue> values);

  const ConfigSpace* space() const { return space_; }
  std::size_t size() const { return values_.size(); }
  const ParamValue& value_at(std::size_t i) const { return values_.at(i); }
  void set_value_at(std::size_t i, ParamValue v) {
    values_.at(i) = std::move(v);
  }

  std::int64_t get_int(std::string_view name) const;
  double get_double(std::string_view name) const;
  const std::string& get_cat(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  void set_int(std::string_view name, std::int64_t v);
  void set_double(std::string_view name, double v);
  void set_cat(std::string_view name, std::string v);
  void set_bool(std::string_view name, bool v);

  bool operator==(const Config& other) const {
    return values_ == other.values_;
  }

  /// "name=value name=value ..." for active params; inactive params are
  /// rendered in brackets.
  std::string to_string() const;

 private:
  const ParamValue& ref(std::string_view name) const;
  ParamValue& mut_ref(std::string_view name);
  void require_space_alive() const;

  const ConfigSpace* space_ = nullptr;
  std::weak_ptr<const char> space_alive_;
  std::vector<ParamValue> values_;
};

class ConfigSpace {
 public:
  /// Adds a parameter. Conditional parents must already be present and be
  /// categorical or boolean. Names must be unique.
  void add(ParamSpec spec);

  std::size_t num_params() const { return params_.size(); }
  const ParamSpec& param(std::size_t i) const { return params_.at(i); }
  const ParamSpec& param(std::string_view name) const;
  std::size_t index_of(std::string_view name) const;
  bool contains(std::string_view name) const;

  /// Total unit-hypercube dimension (sum of encoded widths).
  std::size_t encoded_dimension() const;

  /// Config with every parameter at its default value, canonicalized.
  Config default_config() const;

  /// True when the parameter participates given the parent values in `c`.
  bool is_active(const Config& c, std::size_t param_index) const;

  /// Force every inactive conditional parameter to its default value.
  void canonicalize(Config& c) const;

  /// Throws std::invalid_argument naming the first offending parameter.
  void validate(const Config& c) const;

  /// Encode to [0,1]^encoded_dimension() (canonicalizes a copy first).
  math::Vec encode(const Config& c) const;

  /// Decode an arbitrary real vector (values clamped into [0,1]) to the
  /// nearest valid configuration, canonicalized.
  Config decode(std::span<const double> x) const;

  /// Uniform sample over the *raw* space (each param independently),
  /// canonicalized.
  Config sample_uniform(util::Rng& rng) const;

  /// Mutate one uniformly chosen *active* parameter of `c` to a nearby
  /// value: +-1 menu/step moves for discrete kinds, Gaussian step (sigma in
  /// encoded units) for continuous, resample for categorical, flip for bool.
  Config neighbor(const Config& c, util::Rng& rng, double sigma = 0.1) const;

  /// Full-factorial grid with up to `points_per_axis` distinct values per
  /// parameter (all values when the parameter has fewer). Intended for the
  /// grid-search baseline on small spaces; throws if the grid would exceed
  /// `max_points`.
  std::vector<Config> grid(std::size_t points_per_axis,
                           std::size_t max_points = 2'000'000) const;

  /// Number of distinct canonicalized configurations, if the space is fully
  /// discrete; nullopt when any continuous parameter exists.
  std::optional<std::size_t> discrete_size() const;

  /// Enumerate every canonicalized configuration of a fully discrete space
  /// (throws if continuous params exist or the count exceeds max_points).
  std::vector<Config> enumerate(std::size_t max_points = 2'000'000) const;

  /// Liveness token handed to configs bound to this space; expires when the
  /// space is destroyed (see the Config lifetime contract above).
  std::weak_ptr<const char> liveness_token() const { return liveness_; }

 private:
  double encode_scalar(const ParamSpec& p, const ParamValue& v) const;
  ParamValue decode_scalar(const ParamSpec& p, double u) const;

  std::vector<ParamSpec> params_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>('\0');
};

}  // namespace autodml::conf

// Parameter specifications for distributed-ML configuration spaces.
//
// A parameter is one tunable knob of the training job (worker count, batch
// size, sync mode, ...). Kinds cover the mixed space such jobs expose:
// bounded integers (optionally log-scaled), explicit integer menus,
// continuous ranges (optionally log-scaled), categoricals, and booleans.
// A parameter may be *conditional*: active only when a categorical/boolean
// parent takes one of a set of values (e.g. `staleness` only matters under
// SSP synchronization).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace autodml::conf {

enum class ParamKind { kInt, kIntChoice, kContinuous, kCategorical, kBool };

/// Runtime value of one parameter. Which alternative is valid is dictated
/// by the parameter's kind: kInt/kIntChoice -> int64, kContinuous -> double,
/// kCategorical -> string, kBool -> bool.
using ParamValue = std::variant<std::int64_t, double, std::string, bool>;

std::string to_string(const ParamValue& v);
bool values_equal(const ParamValue& a, const ParamValue& b);

class ParamSpec {
 public:
  /// Bounded integer in [lo, hi]; when log_scale, encoding is logarithmic
  /// (requires lo >= 1).
  static ParamSpec integer(std::string name, std::int64_t lo, std::int64_t hi,
                           bool log_scale = false);

  /// Integer restricted to an explicit ascending menu (e.g. powers of two).
  static ParamSpec int_choice(std::string name,
                              std::vector<std::int64_t> choices);

  /// Continuous in [lo, hi]; when log_scale, encoding is logarithmic
  /// (requires lo > 0).
  static ParamSpec continuous(std::string name, double lo, double hi,
                              bool log_scale = false);

  static ParamSpec categorical(std::string name,
                               std::vector<std::string> categories);

  static ParamSpec boolean(std::string name);

  /// Restrict activation: this parameter participates only when the parent
  /// parameter (categorical or boolean) currently holds one of
  /// `parent_values`. Boolean parents use "true"/"false" strings.
  ParamSpec& only_when(std::string parent,
                       std::vector<std::string> parent_values);

  const std::string& name() const { return name_; }
  ParamKind kind() const { return kind_; }
  bool is_conditional() const { return !parent_.empty(); }
  const std::string& parent() const { return parent_; }
  const std::vector<std::string>& parent_values() const {
    return parent_values_;
  }

  std::int64_t int_lo() const { return int_lo_; }
  std::int64_t int_hi() const { return int_hi_; }
  bool log_scale() const { return log_scale_; }
  const std::vector<std::int64_t>& int_choices() const { return int_choices_; }
  double cont_lo() const { return cont_lo_; }
  double cont_hi() const { return cont_hi_; }
  const std::vector<std::string>& categories() const { return categories_; }

  /// Number of unit-hypercube coordinates this parameter occupies
  /// (1, except one-hot categoricals which occupy #categories).
  std::size_t encoded_width() const;

  /// Number of distinct values (0 means uncountably many: continuous).
  std::size_t cardinality() const;

  /// Canonical default used for inactive conditional parameters: lo /
  /// first choice / first category / false / cont_lo.
  ParamValue default_value() const;

  /// True if v is a legal value for this parameter.
  bool is_valid(const ParamValue& v) const;

 private:
  explicit ParamSpec(std::string name, ParamKind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string name_;
  ParamKind kind_;
  std::int64_t int_lo_ = 0;
  std::int64_t int_hi_ = 0;
  bool log_scale_ = false;
  std::vector<std::int64_t> int_choices_;
  double cont_lo_ = 0.0;
  double cont_hi_ = 0.0;
  std::vector<std::string> categories_;
  std::string parent_;
  std::vector<std::string> parent_values_;
};

}  // namespace autodml::conf

#include "config/sampler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace autodml::conf {

std::vector<Config> sample_uniform_batch(const ConfigSpace& space,
                                         std::size_t n, util::Rng& rng) {
  std::vector<Config> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(space.sample_uniform(rng));
  return out;
}

std::vector<Config> latin_hypercube(const ConfigSpace& space, std::size_t n,
                                    util::Rng& rng) {
  if (n == 0) return {};
  const std::size_t dim = space.encoded_dimension();
  // One stratified permutation per coordinate.
  std::vector<std::vector<std::size_t>> perms(dim);
  for (auto& perm : perms) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }
  std::vector<Config> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    math::Vec x(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      const double jitter = rng.uniform();
      x[d] = (static_cast<double>(perms[d][i]) + jitter) /
             static_cast<double>(n);
    }
    out.push_back(space.decode(x));
  }
  return out;
}

namespace {

constexpr std::size_t kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                   31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                                   73, 79, 83, 89, 97, 101, 103, 107, 109,
                                   113, 127, 131, 137, 139, 149, 151};

/// Radical inverse of `index` in base `base` with a digit permutation.
double scrambled_radical_inverse(std::size_t index, std::size_t base,
                                 std::span<const std::size_t> digit_perm) {
  double result = 0.0;
  double inv_base = 1.0 / static_cast<double>(base);
  double factor = inv_base;
  while (index > 0) {
    const std::size_t digit = digit_perm[index % base];
    result += static_cast<double>(digit) * factor;
    index /= base;
    factor *= inv_base;
  }
  return result;
}

}  // namespace

std::vector<math::Vec> halton_points(std::size_t dim, std::size_t n,
                                     util::Rng& rng, std::size_t skip) {
  constexpr std::size_t kMaxDim = std::size(kPrimes);
  if (dim > kMaxDim)
    throw std::invalid_argument("halton: dimension too large (max 36)");
  // Random digit permutation per dimension, fixing perm[0] = 0 so that the
  // sequence stays equidistributed.
  std::vector<std::vector<std::size_t>> perms(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const std::size_t base = kPrimes[d];
    std::vector<std::size_t> perm(base - 1);
    std::iota(perm.begin(), perm.end(), std::size_t{1});
    rng.shuffle(perm);
    perms[d].push_back(0);
    perms[d].insert(perms[d].end(), perm.begin(), perm.end());
  }
  std::vector<math::Vec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    math::Vec x(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      x[d] = scrambled_radical_inverse(i + skip + 1, kPrimes[d], perms[d]);
    }
    out.push_back(std::move(x));
  }
  return out;
}

std::vector<Config> halton_sequence(const ConfigSpace& space, std::size_t n,
                                    util::Rng& rng, std::size_t skip) {
  const auto points = halton_points(space.encoded_dimension(), n, rng, skip);
  std::vector<Config> out;
  out.reserve(n);
  for (const auto& x : points) out.push_back(space.decode(x));
  return out;
}

}  // namespace autodml::conf

// Space-filling samplers for initial tuner designs.
//
// BO quality depends heavily on the initial design; plain uniform sampling
// clusters in high dimension, so the tuner defaults to Latin hypercube and
// also offers a scrambled Halton sequence. All samplers operate in the
// encoded unit hypercube and decode to valid configurations.
#pragma once

#include <vector>

#include "config/config_space.h"

namespace autodml::conf {

/// n independent uniform configurations.
std::vector<Config> sample_uniform_batch(const ConfigSpace& space,
                                         std::size_t n, util::Rng& rng);

/// Latin hypercube: each encoded coordinate is stratified into n bins and
/// the bins are randomly permuted per coordinate.
std::vector<Config> latin_hypercube(const ConfigSpace& space, std::size_t n,
                                    util::Rng& rng);

/// Scrambled Halton sequence (prime bases, random digit permutation per
/// dimension). Deterministic given the rng state at call time.
std::vector<Config> halton_sequence(const ConfigSpace& space, std::size_t n,
                                    util::Rng& rng, std::size_t skip = 20);

/// Raw scrambled Halton points in [0,1)^dim (exposed for tests).
std::vector<math::Vec> halton_points(std::size_t dim, std::size_t n,
                                     util::Rng& rng, std::size_t skip = 20);

}  // namespace autodml::conf

#include "config/config_space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autodml::conf {

// ---- Config ----------------------------------------------------------------

Config::Config(const ConfigSpace* space, std::vector<ParamValue> values)
    : space_(space), values_(std::move(values)) {
  if (space_ != nullptr) space_alive_ = space_->liveness_token();
}

void Config::require_space_alive() const {
  if (space_ == nullptr) throw std::logic_error("Config: no space bound");
  if (space_alive_.expired()) {
    throw std::logic_error(
        "Config: bound ConfigSpace has been destroyed (the space must "
        "outlive every config created from it)");
  }
}

const ParamValue& Config::ref(std::string_view name) const {
  require_space_alive();
  return values_.at(space_->index_of(name));
}

ParamValue& Config::mut_ref(std::string_view name) {
  require_space_alive();
  return values_.at(space_->index_of(name));
}

std::int64_t Config::get_int(std::string_view name) const {
  return std::get<std::int64_t>(ref(name));
}

double Config::get_double(std::string_view name) const {
  return std::get<double>(ref(name));
}

const std::string& Config::get_cat(std::string_view name) const {
  return std::get<std::string>(ref(name));
}

bool Config::get_bool(std::string_view name) const {
  return std::get<bool>(ref(name));
}

void Config::set_int(std::string_view name, std::int64_t v) {
  mut_ref(name) = v;
}

void Config::set_double(std::string_view name, double v) { mut_ref(name) = v; }

void Config::set_cat(std::string_view name, std::string v) {
  mut_ref(name) = std::move(v);
}

void Config::set_bool(std::string_view name, bool v) { mut_ref(name) = v; }

std::string Config::to_string() const {
  if (space_ == nullptr) return "<unbound>";
  if (space_alive_.expired()) {
    // Render raw values rather than touching the dead space.
    std::string out = "<stale space>";
    for (const auto& v : values_) {
      out += ' ';
      out += conf::to_string(v);
    }
    return out;
  }
  std::string out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ' ';
    const bool active = space_->is_active(*this, i);
    if (!active) out += '[';
    out += space_->param(i).name();
    out += '=';
    out += conf::to_string(values_[i]);
    if (!active) out += ']';
  }
  return out;
}

// ---- ConfigSpace ------------------------------------------------------------

void ConfigSpace::add(ParamSpec spec) {
  if (index_.count(spec.name()))
    throw std::invalid_argument("ConfigSpace: duplicate parameter " +
                                spec.name());
  if (spec.is_conditional()) {
    const auto it = index_.find(spec.parent());
    if (it == index_.end())
      throw std::invalid_argument("ConfigSpace: unknown parent " +
                                  spec.parent());
    const ParamSpec& parent = params_[it->second];
    if (parent.kind() != ParamKind::kCategorical &&
        parent.kind() != ParamKind::kBool) {
      throw std::invalid_argument(
          "ConfigSpace: conditional parent must be categorical or boolean");
    }
    for (const auto& pv : spec.parent_values()) {
      if (parent.kind() == ParamKind::kBool) {
        if (pv != "true" && pv != "false")
          throw std::invalid_argument(
              "ConfigSpace: boolean parent value must be true/false");
      } else if (std::find(parent.categories().begin(),
                           parent.categories().end(),
                           pv) == parent.categories().end()) {
        throw std::invalid_argument("ConfigSpace: parent " + spec.parent() +
                                    " has no category " + pv);
      }
    }
  }
  index_.emplace(spec.name(), params_.size());
  params_.push_back(std::move(spec));
}

const ParamSpec& ConfigSpace::param(std::string_view name) const {
  return params_[index_of(name)];
}

std::size_t ConfigSpace::index_of(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw std::invalid_argument("ConfigSpace: unknown parameter " +
                                std::string(name));
  return it->second;
}

bool ConfigSpace::contains(std::string_view name) const {
  return index_.find(name) != index_.end();
}

std::size_t ConfigSpace::encoded_dimension() const {
  std::size_t d = 0;
  for (const auto& p : params_) d += p.encoded_width();
  return d;
}

Config ConfigSpace::default_config() const {
  std::vector<ParamValue> values;
  values.reserve(params_.size());
  for (const auto& p : params_) values.push_back(p.default_value());
  Config c(this, std::move(values));
  canonicalize(c);
  return c;
}

bool ConfigSpace::is_active(const Config& c, std::size_t param_index) const {
  const ParamSpec& p = params_.at(param_index);
  if (!p.is_conditional()) return true;
  const std::size_t parent_index = index_of(p.parent());
  // A conditional parameter whose parent is itself inactive is inactive.
  if (!is_active(c, parent_index)) return false;
  const ParamValue& pv = c.value_at(parent_index);
  const std::string actual = conf::to_string(pv);
  return std::find(p.parent_values().begin(), p.parent_values().end(),
                   actual) != p.parent_values().end();
}

void ConfigSpace::canonicalize(Config& c) const {
  // Parents precede children (enforced in add()), so one forward pass is
  // enough: by the time we test is_active(i), all ancestors are final.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!is_active(c, i)) c.set_value_at(i, params_[i].default_value());
  }
}

void ConfigSpace::validate(const Config& c) const {
  // Configs from a *different instance* of an identically-shaped space are
  // accepted (warm starts and ground-truth checks routinely carry configs
  // across evaluator instances); value-level checks below catch real
  // mismatches.
  if (c.size() != params_.size())
    throw std::invalid_argument("validate: value count mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].is_valid(c.value_at(i)))
      throw std::invalid_argument("validate: invalid value for parameter " +
                                  params_[i].name());
  }
}

double ConfigSpace::encode_scalar(const ParamSpec& p,
                                  const ParamValue& v) const {
  switch (p.kind()) {
    case ParamKind::kInt: {
      const auto x = std::get<std::int64_t>(v);
      if (p.int_hi() == p.int_lo()) return 0.5;
      if (p.log_scale()) {
        return (std::log(static_cast<double>(x)) -
                std::log(static_cast<double>(p.int_lo()))) /
               (std::log(static_cast<double>(p.int_hi())) -
                std::log(static_cast<double>(p.int_lo())));
      }
      return static_cast<double>(x - p.int_lo()) /
             static_cast<double>(p.int_hi() - p.int_lo());
    }
    case ParamKind::kIntChoice: {
      const auto x = std::get<std::int64_t>(v);
      const auto& menu = p.int_choices();
      const auto it = std::lower_bound(menu.begin(), menu.end(), x);
      const auto idx = static_cast<std::size_t>(it - menu.begin());
      if (menu.size() == 1) return 0.5;
      return static_cast<double>(idx) / static_cast<double>(menu.size() - 1);
    }
    case ParamKind::kContinuous: {
      const double x = std::get<double>(v);
      if (p.log_scale()) {
        return (std::log(x) - std::log(p.cont_lo())) /
               (std::log(p.cont_hi()) - std::log(p.cont_lo()));
      }
      return (x - p.cont_lo()) / (p.cont_hi() - p.cont_lo());
    }
    case ParamKind::kBool:
      return std::get<bool>(v) ? 1.0 : 0.0;
    case ParamKind::kCategorical:
      throw std::logic_error("encode_scalar: categorical handled by caller");
  }
  return 0.0;
}

ParamValue ConfigSpace::decode_scalar(const ParamSpec& p, double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (p.kind()) {
    case ParamKind::kInt: {
      if (p.int_hi() == p.int_lo()) return p.int_lo();
      double raw;
      if (p.log_scale()) {
        const double lo = std::log(static_cast<double>(p.int_lo()));
        const double hi = std::log(static_cast<double>(p.int_hi()));
        raw = std::exp(lo + u * (hi - lo));
      } else {
        raw = static_cast<double>(p.int_lo()) +
              u * static_cast<double>(p.int_hi() - p.int_lo());
      }
      const auto x = static_cast<std::int64_t>(std::llround(raw));
      return std::clamp(x, p.int_lo(), p.int_hi());
    }
    case ParamKind::kIntChoice: {
      const auto& menu = p.int_choices();
      if (menu.size() == 1) return menu.front();
      const auto idx = static_cast<std::size_t>(
          std::llround(u * static_cast<double>(menu.size() - 1)));
      return menu[std::min(idx, menu.size() - 1)];
    }
    case ParamKind::kContinuous: {
      if (p.log_scale()) {
        const double lo = std::log(p.cont_lo());
        const double hi = std::log(p.cont_hi());
        return std::clamp(std::exp(lo + u * (hi - lo)), p.cont_lo(),
                          p.cont_hi());
      }
      return std::clamp(p.cont_lo() + u * (p.cont_hi() - p.cont_lo()),
                        p.cont_lo(), p.cont_hi());
    }
    case ParamKind::kBool:
      return u >= 0.5;
    case ParamKind::kCategorical:
      throw std::logic_error("decode_scalar: categorical handled by caller");
  }
  return std::int64_t{0};
}

math::Vec ConfigSpace::encode(const Config& c) const {
  validate(c);
  Config canon = c;
  canonicalize(canon);
  math::Vec x;
  x.reserve(encoded_dimension());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const ParamSpec& p = params_[i];
    if (p.kind() == ParamKind::kCategorical) {
      const auto& cat = std::get<std::string>(canon.value_at(i));
      for (const auto& candidate : p.categories()) {
        x.push_back(candidate == cat ? 1.0 : 0.0);
      }
    } else {
      x.push_back(encode_scalar(p, canon.value_at(i)));
    }
  }
  return x;
}

Config ConfigSpace::decode(std::span<const double> x) const {
  if (x.size() != encoded_dimension())
    throw std::invalid_argument("decode: dimension mismatch");
  std::vector<ParamValue> values;
  values.reserve(params_.size());
  std::size_t pos = 0;
  for (const auto& p : params_) {
    if (p.kind() == ParamKind::kCategorical) {
      const std::size_t n = p.categories().size();
      std::size_t best = 0;
      for (std::size_t j = 1; j < n; ++j) {
        if (x[pos + j] > x[pos + best]) best = j;
      }
      values.emplace_back(p.categories()[best]);
      pos += n;
    } else {
      values.push_back(decode_scalar(p, x[pos]));
      ++pos;
    }
  }
  Config c(this, std::move(values));
  canonicalize(c);
  return c;
}

Config ConfigSpace::sample_uniform(util::Rng& rng) const {
  std::vector<ParamValue> values;
  values.reserve(params_.size());
  for (const auto& p : params_) {
    switch (p.kind()) {
      case ParamKind::kInt:
        if (p.log_scale()) {
          values.push_back(std::get<std::int64_t>(
              decode_scalar(p, rng.uniform())));
        } else {
          values.push_back(rng.uniform_int(p.int_lo(), p.int_hi()));
        }
        break;
      case ParamKind::kIntChoice:
        values.push_back(p.int_choices()[rng.index(p.int_choices().size())]);
        break;
      case ParamKind::kContinuous:
        values.push_back(std::get<double>(decode_scalar(p, rng.uniform())));
        break;
      case ParamKind::kCategorical:
        values.emplace_back(p.categories()[rng.index(p.categories().size())]);
        break;
      case ParamKind::kBool:
        values.push_back(rng.bernoulli(0.5));
        break;
    }
  }
  Config c(this, std::move(values));
  canonicalize(c);
  return c;
}

Config ConfigSpace::neighbor(const Config& c, util::Rng& rng,
                             double sigma) const {
  validate(c);
  // Rebind to *this*: `c` may be bound to a different (possibly already
  // destroyed) space instance — e.g. a warm-start trial from an earlier
  // session — and the neighbor must belong to the live space.
  std::vector<ParamValue> values;
  values.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) values.push_back(c.value_at(i));
  Config out(this, std::move(values));
  canonicalize(out);

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (is_active(out, i) && params_[i].cardinality() != 1) active.push_back(i);
  }
  if (active.empty()) return out;
  const std::size_t i = active[rng.index(active.size())];
  const ParamSpec& p = params_[i];

  switch (p.kind()) {
    case ParamKind::kInt: {
      const auto cur = std::get<std::int64_t>(out.value_at(i));
      // Step size ~ sigma of the range, at least 1, in either direction.
      const auto range = p.int_hi() - p.int_lo();
      const auto max_step = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::llround(sigma * static_cast<double>(range))));
      std::int64_t next = cur;
      while (next == cur) {
        next = std::clamp(cur + rng.uniform_int(-max_step, max_step),
                          p.int_lo(), p.int_hi());
        if (p.int_lo() == p.int_hi()) break;
      }
      out.set_value_at(i, next);
      break;
    }
    case ParamKind::kIntChoice: {
      const auto& menu = p.int_choices();
      const auto cur = std::get<std::int64_t>(out.value_at(i));
      const auto cur_idx = static_cast<std::int64_t>(
          std::lower_bound(menu.begin(), menu.end(), cur) - menu.begin());
      const std::int64_t step = rng.bernoulli(0.5) ? 1 : -1;
      const auto next_idx = std::clamp<std::int64_t>(
          cur_idx + step, 0, static_cast<std::int64_t>(menu.size()) - 1);
      out.set_value_at(i, menu[static_cast<std::size_t>(
                               next_idx == cur_idx ? cur_idx - step : next_idx)]);
      break;
    }
    case ParamKind::kContinuous: {
      const double u = encode_scalar(p, out.value_at(i));
      const double next = std::clamp(u + rng.normal(0.0, sigma), 0.0, 1.0);
      out.set_value_at(i, decode_scalar(p, next));
      break;
    }
    case ParamKind::kCategorical: {
      const auto& cats = p.categories();
      const auto& cur = std::get<std::string>(out.value_at(i));
      std::string next = cur;
      while (next == cur) next = cats[rng.index(cats.size())];
      out.set_value_at(i, next);
      break;
    }
    case ParamKind::kBool:
      out.set_value_at(i, !std::get<bool>(out.value_at(i)));
      break;
  }
  canonicalize(out);
  return out;
}

namespace {

std::vector<ParamValue> axis_values(const ParamSpec& p,
                                    std::size_t points_per_axis) {
  std::vector<ParamValue> out;
  switch (p.kind()) {
    case ParamKind::kInt: {
      const auto count = static_cast<std::size_t>(p.int_hi() - p.int_lo() + 1);
      if (count <= points_per_axis) {
        for (std::int64_t v = p.int_lo(); v <= p.int_hi(); ++v)
          out.emplace_back(v);
      } else {
        for (std::size_t k = 0; k < points_per_axis; ++k) {
          const double frac =
              points_per_axis == 1
                  ? 0.5
                  : static_cast<double>(k) /
                        static_cast<double>(points_per_axis - 1);
          const auto v = static_cast<std::int64_t>(std::llround(
              static_cast<double>(p.int_lo()) +
              frac * static_cast<double>(p.int_hi() - p.int_lo())));
          if (out.empty() || std::get<std::int64_t>(out.back()) != v)
            out.emplace_back(v);
        }
      }
      break;
    }
    case ParamKind::kIntChoice: {
      const auto& menu = p.int_choices();
      if (menu.size() <= points_per_axis) {
        for (auto v : menu) out.emplace_back(v);
      } else {
        for (std::size_t k = 0; k < points_per_axis; ++k) {
          const std::size_t idx =
              points_per_axis == 1
                  ? menu.size() / 2
                  : (k * (menu.size() - 1)) / (points_per_axis - 1);
          if (out.empty() || std::get<std::int64_t>(out.back()) != menu[idx])
            out.emplace_back(menu[idx]);
        }
      }
      break;
    }
    case ParamKind::kContinuous: {
      const std::size_t n = std::max<std::size_t>(2, points_per_axis);
      for (std::size_t k = 0; k < n; ++k) {
        const double frac =
            static_cast<double>(k) / static_cast<double>(n - 1);
        double v;
        if (p.log_scale()) {
          v = std::exp(std::log(p.cont_lo()) +
                       frac * (std::log(p.cont_hi()) - std::log(p.cont_lo())));
        } else {
          v = p.cont_lo() + frac * (p.cont_hi() - p.cont_lo());
        }
        out.emplace_back(v);
      }
      break;
    }
    case ParamKind::kCategorical:
      for (const auto& c : p.categories()) out.emplace_back(c);
      break;
    case ParamKind::kBool:
      out.emplace_back(false);
      out.emplace_back(true);
      break;
  }
  return out;
}

}  // namespace

std::vector<Config> ConfigSpace::grid(std::size_t points_per_axis,
                                      std::size_t max_points) const {
  if (points_per_axis == 0)
    throw std::invalid_argument("grid: points_per_axis == 0");
  std::vector<std::vector<ParamValue>> axes;
  axes.reserve(params_.size());
  std::size_t total = 1;
  for (const auto& p : params_) {
    axes.push_back(axis_values(p, points_per_axis));
    if (total > max_points / axes.back().size())
      throw std::invalid_argument("grid: too many points");
    total *= axes.back().size();
  }

  std::vector<Config> out;
  out.reserve(total);
  std::vector<std::size_t> idx(params_.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::vector<ParamValue> values;
    values.reserve(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i)
      values.push_back(axes[i][idx[i]]);
    Config c(this, std::move(values));
    canonicalize(c);
    // Canonicalization may collapse grid points; dedup against the previous
    // few entries cheaply (full dedup happens in the baseline if needed).
    if (out.empty() || !(out.back() == c)) out.push_back(std::move(c));
    for (std::size_t i = params_.size(); i > 0; --i) {
      if (++idx[i - 1] < axes[i - 1].size()) break;
      idx[i - 1] = 0;
    }
  }
  return out;
}

std::optional<std::size_t> ConfigSpace::discrete_size() const {
  std::size_t total = 1;
  for (const auto& p : params_) {
    const std::size_t c = p.cardinality();
    if (c == 0) return std::nullopt;
    total *= c;
  }
  return total;
}

std::vector<Config> ConfigSpace::enumerate(std::size_t max_points) const {
  const auto size = discrete_size();
  if (!size)
    throw std::invalid_argument("enumerate: space has continuous parameters");
  if (*size > max_points) throw std::invalid_argument("enumerate: too large");
  // A full-cardinality grid visits every discrete value of every axis.
  std::size_t max_card = 1;
  for (const auto& p : params_) max_card = std::max(max_card, p.cardinality());
  return grid(max_card, max_points);
}

}  // namespace autodml::conf

#include "gp/kernel.h"

#include <cmath>
#include <stdexcept>

namespace autodml::gp {

namespace {
constexpr double kSqrt5 = 2.23606797749978969;
// Bounds chosen for inputs normalized to [0,1] and standardized targets.
constexpr double kLenLo = 0.01, kLenHi = 20.0;
constexpr double kSigLo = 0.01, kSigHi = 50.0;
}  // namespace

ArdKernelBase::ArdKernelBase(std::size_t dim) : lengthscales_(dim, 0.5) {
  if (dim == 0) throw std::invalid_argument("kernel: zero input dimension");
}

math::Vec ArdKernelBase::hyperparams() const {
  math::Vec theta;
  theta.reserve(num_hyperparams());
  for (double l : lengthscales_) theta.push_back(std::log(l));
  theta.push_back(std::log(signal_variance_));
  return theta;
}

void ArdKernelBase::set_hyperparams(std::span<const double> log_theta) {
  if (log_theta.size() != num_hyperparams())
    throw std::invalid_argument("kernel: hyperparameter count mismatch");
  for (std::size_t d = 0; d < lengthscales_.size(); ++d) {
    lengthscales_[d] = std::exp(log_theta[d]);
  }
  signal_variance_ = std::exp(log_theta[lengthscales_.size()]);
}

std::pair<math::Vec, math::Vec> ArdKernelBase::hyper_bounds() const {
  math::Vec lo(num_hyperparams()), hi(num_hyperparams());
  for (std::size_t d = 0; d < lengthscales_.size(); ++d) {
    lo[d] = std::log(kLenLo);
    hi[d] = std::log(kLenHi);
  }
  lo.back() = std::log(kSigLo);
  hi.back() = std::log(kSigHi);
  return {lo, hi};
}

math::Vec ArdKernelBase::inverse_lengthscales() const {
  math::Vec out;
  out.reserve(lengthscales_.size());
  for (double l : lengthscales_) out.push_back(1.0 / l);
  return out;
}

math::Vec ArdKernelBase::scaled_sq_diffs(std::span<const double> a,
                                         std::span<const double> b) const {
  if (a.size() != lengthscales_.size() || b.size() != lengthscales_.size())
    throw std::invalid_argument("kernel: input dimension mismatch");
  math::Vec u(lengthscales_.size());
  for (std::size_t d = 0; d < u.size(); ++d) {
    const double diff = (a[d] - b[d]) / lengthscales_[d];
    u[d] = diff * diff;
  }
  return u;
}

// ---- Squared exponential ---------------------------------------------------

double SquaredExponentialArd::eval(std::span<const double> a,
                                   std::span<const double> b) const {
  const auto u = scaled_sq_diffs(a, b);
  double s = 0.0;
  for (double ud : u) s += ud;
  return signal_variance_ * std::exp(-0.5 * s);
}

math::Vec SquaredExponentialArd::grad_hyper(std::span<const double> a,
                                            std::span<const double> b) const {
  const auto u = scaled_sq_diffs(a, b);
  double s = 0.0;
  for (double ud : u) s += ud;
  const double k = signal_variance_ * std::exp(-0.5 * s);
  math::Vec grad(num_hyperparams());
  // d/d log l_d: u_d depends on l_d as l_d^{-2}; d u_d / d log l_d = -2 u_d,
  // so d k / d log l_d = k * u_d.
  for (std::size_t d = 0; d < u.size(); ++d) grad[d] = k * u[d];
  grad.back() = k;  // d/d log s^2
  return grad;
}

std::unique_ptr<Kernel> SquaredExponentialArd::clone() const {
  return std::make_unique<SquaredExponentialArd>(*this);
}

// ---- Matern 5/2 -------------------------------------------------------------

double Matern52Ard::eval(std::span<const double> a,
                         std::span<const double> b) const {
  const auto u = scaled_sq_diffs(a, b);
  double r2 = 0.0;
  for (double ud : u) r2 += ud;
  const double r = std::sqrt(r2);
  return signal_variance_ * (1.0 + kSqrt5 * r + (5.0 / 3.0) * r2) *
         std::exp(-kSqrt5 * r);
}

math::Vec Matern52Ard::grad_hyper(std::span<const double> a,
                                  std::span<const double> b) const {
  const auto u = scaled_sq_diffs(a, b);
  double r2 = 0.0;
  for (double ud : u) r2 += ud;
  const double r = std::sqrt(r2);
  const double e = std::exp(-kSqrt5 * r);
  math::Vec grad(num_hyperparams());
  // dk/dr = -(5/3) r (1 + sqrt5 r) e^{-sqrt5 r}; dr/d log l_d = -u_d / r.
  // Product has no 1/r singularity: dk/d log l_d = s^2 (5/3)(1+sqrt5 r) e u_d.
  const double coeff = signal_variance_ * (5.0 / 3.0) * (1.0 + kSqrt5 * r) * e;
  for (std::size_t d = 0; d < u.size(); ++d) grad[d] = coeff * u[d];
  grad.back() =
      signal_variance_ * (1.0 + kSqrt5 * r + (5.0 / 3.0) * r2) * e;
  return grad;
}

std::unique_ptr<Kernel> Matern52Ard::clone() const {
  return std::make_unique<Matern52Ard>(*this);
}

}  // namespace autodml::gp

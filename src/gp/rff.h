// Random-Fourier-feature approximate GP regression (Rahimi & Recht).
//
// A stationary kernel is the Fourier transform of its spectral measure, so
// k(a,b) ≈ φ(a)^T φ(b) with paired features
//   φ(x)_{2j}   = sqrt(2 s^2 / m) cos(ω_j^T x)
//   φ(x)_{2j+1} = sqrt(2 s^2 / m) sin(ω_j^T x),   j < m/2,
// ω_j drawn from the spectral measure (the sin/cos pairing has strictly
// lower variance than the classic random-phase cos(ω^T x + b) features —
// Sutherland & Schneider 2015). Regression then collapses to Bayesian
// linear regression on the m features: one
// m x m solve of A = Φ^T Φ + σ² I instead of the exact GP's n x n one.
// Per refit that is O(n m² + m³); the per-trial append is O(n m + m³)
// (rank-1 update of A, refactorize). With m fixed the cost of a trial no
// longer grows cubically with history size — this is the large-n backend
// SurrogateModel switches to past its trial-count threshold.
//
// Spectral draws: the SE kernel's measure is Gaussian, ω_{j,d} = z_{j,d}/l_d
// with z ~ N(0,1). Matern-5/2's is a multivariate t with 5 degrees of
// freedom: ω_{j,d} = z_{j,d} sqrt(5/q_j) / l_d with q_j ~ χ²_5. The base
// draws (z, q) are fixed at construction from an explicit feature seed —
// hyperparameter changes only rescale ω, so a fitted model is a
// deterministic function of (seed, data, hyperparameters) and proposals
// stay bit-reproducible across runs and journal replays.
//
// Hyperparameters are fitted by exact-GP marginal likelihood on an
// evenly-strided subset of the data (the RFF marginal likelihood has the
// same optima up to approximation error, but the exact subset fit reuses
// the existing, well-tested hyperopt machinery at O(subset³) cost).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "gp/gp.h"
#include "gp/kernel.h"
#include "gp/regressor.h"
#include "math/cholesky.h"
#include "math/matrix.h"

namespace autodml::gp {

struct RffOptions {
  /// Number of random features m (must be even: features come in sin/cos
  /// pairs over m/2 frequencies). Approximation error of the kernel decays
  /// as O(1/sqrt(m)).
  int num_features = 256;
  /// Hyperparameters are optimized by an exact GP on an evenly-strided
  /// subset of at most this many points (0 disables hyperopt entirely).
  int hyperopt_subset = 160;
  /// Underlying hyperopt machinery configuration (restarts, Adam budget,
  /// noise bounds). `optimize_hyperparams=false` also disables the subset
  /// fit.
  GpOptions gp;
};

class RffRegressor final : public Regressor {
 public:
  /// The kernel must derive from ArdKernelBase (the spectral scaling reads
  /// its lengthscales); Matern52Ard and SquaredExponentialArd are
  /// supported. `feature_seed` fixes the base spectral draws for the
  /// lifetime of the model.
  RffRegressor(std::unique_ptr<Kernel> kernel, RffOptions options,
               std::uint64_t feature_seed);

  void fit(const math::Matrix& x, std::span<const double> y,
           util::Rng& rng) override;
  void refit(const math::Matrix& x, std::span<const double> y) override;

  /// O(n m + m³) append: extend Φ by one row, rank-1-update A = Φ^T Φ + σ²I
  /// in the same summation order refit() uses (so the result is bit-equal
  /// to a refit on the extended data), refactorize the m x m system.
  /// Always takes the fast path; returns true.
  bool append_observation(std::span<const double> x, double y) override;

  bool is_fitted() const override { return factor_.has_value(); }
  std::size_t num_points() const override { return targets_raw_.size(); }

  GpPrediction predict(std::span<const double> x) const override;

  /// Marginal likelihood of the feature-space model, computed in O(m) from
  /// the cached solve via the Woodbury determinant/quadratic identities
  /// (standardized target units, directly comparable to the exact GP's).
  double log_marginal_likelihood() const override;

  double noise_variance() const override;

  const Kernel& kernel() const override { return *kernel_; }
  const char* backend_name() const override { return "rff"; }

  /// Feature map φ(x) at the current hyperparameters (m values). Exposed
  /// for tests.
  math::Vec features(std::span<const double> x) const;

 private:
  void rebuild_omega();
  math::Vec phi_row(std::span<const double> x) const;
  void solve_feature_system();

  std::unique_ptr<Kernel> kernel_;
  const ArdKernelBase* ard_;  // kernel_ viewed through its ARD base
  RffOptions options_;
  double log_noise_;

  // Base spectral draws, fixed at construction (see header comment).
  std::size_t m_;                // feature count; m_/2 frequencies
  std::vector<double> base_z_;   // (m/2) x dim standard normals, row-major
  std::vector<double> base_q_;   // m/2 chi-squared(5) draws (Matern-5/2 only)
  std::vector<double> omega_;    // (m/2) x dim frequencies at current hypers

  math::Matrix x_;
  math::Vec targets_raw_;
  math::Vec targets_std_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  std::vector<double> phi_;      // n x m feature matrix, row-major
  math::Matrix ata_;             // Φ^T Φ (without the σ² ridge)
  math::Vec phi_ty_;             // Φ^T y_std
  double yty_ = 0.0;             // y_std^T y_std
  std::optional<math::CholeskyFactor> factor_;  // of A = Φ^TΦ + σ²I
  math::Vec weights_;            // A^{-1} Φ^T y_std
};

}  // namespace autodml::gp

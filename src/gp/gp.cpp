#include "gp/gp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace autodml::gp {

namespace {
constexpr double kLog2Pi = 1.8378770664093454836;

void clamp_to_bounds(std::span<double> x, std::span<const double> lo,
                     std::span<const double> hi) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
}
}  // namespace

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GpOptions options)
    : kernel_(std::move(kernel)),
      options_(options),
      log_noise_(std::log(options.initial_noise)) {
  if (!kernel_) throw std::invalid_argument("GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      log_noise_(other.log_noise_),
      x_(other.x_),
      targets_raw_(other.targets_raw_),
      targets_std_(other.targets_std_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      factor_(other.factor_),
      alpha_(other.alpha_),
      data_version_(other.data_version_),
      lml_cache_(other.lml_cache_) {}

math::Vec GaussianProcess::packed_hypers() const {
  math::Vec packed = kernel_->hyperparams();
  packed.push_back(log_noise_);
  return packed;
}

void GaussianProcess::apply_packed(std::span<const double> packed) {
  kernel_->set_hyperparams(packed.subspan(0, packed.size() - 1));
  log_noise_ = packed.back();
}

GaussianProcess::LmlResult GaussianProcess::negative_lml(
    std::span<const double> packed) const {
  if (lml_cache_ && lml_cache_->data_version == data_version_ &&
      lml_cache_->theta.size() == packed.size() &&
      std::equal(packed.begin(), packed.end(), lml_cache_->theta.begin())) {
    ADML_COUNT("gp.lml_cache_hits", 1);
    return lml_cache_->result;
  }
  ADML_COUNT("gp.lml_evals", 1);

  // Evaluate on a scratch clone so the public state stays untouched.
  auto k = kernel_->clone();
  k->set_hyperparams(packed.subspan(0, packed.size() - 1));
  const double noise_var = std::exp(packed.back());

  const std::size_t n = targets_std_.size();
  math::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = k->eval(x_.row(i), x_.row(j));
      AUTODML_CHECK(std::isfinite(v),
                    "GP kernel produced non-finite value " +
                        std::to_string(v) + " for training pair (" +
                        std::to_string(i) + "," + std::to_string(j) + ")");
      gram(i, j) = v;
      gram(j, i) = v;
    }
    gram(i, i) += noise_var;
  }

  LmlResult out;
  out.grad.assign(packed.size(), 0.0);
  math::CholeskyFactor factor;
  try {
    factor = math::cholesky_with_jitter(gram);
  } catch (const std::runtime_error&) {
    out.value = 1e100;  // reject this hyperparameter point
    return out;
  }
  const math::Vec alpha = factor.solve(targets_std_);
  const double fit_term = 0.5 * math::dot(targets_std_, alpha);
  const double lml = -fit_term - 0.5 * factor.log_det() -
                     0.5 * static_cast<double>(n) * kLog2Pi;
  out.value = -lml;

  // Gradient: dLML/dtheta = 0.5 tr((alpha alpha^T - K^{-1}) dK/dtheta).
  // K^{-1} = L^{-T} L^{-1} from the triangular inverse of the existing
  // factor (~n^3/3 flops for inverse + symmetric product) instead of n
  // unit-vector solves (~2n^3). Only the lower half is needed: both W and
  // dK/dtheta are symmetric, so each off-diagonal pair contributes twice.
  const math::Matrix linv = factor.lower_inverse();
  math::Matrix kinv_lower(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t kk = i; kk < n; ++kk) acc += linv(kk, i) * linv(kk, j);
      kinv_lower(i, j) = acc;
    }
  }
  const std::size_t n_kernel = packed.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double w = alpha[i] * alpha[j] - kinv_lower(i, j);
      const double pair_weight = (i == j) ? 1.0 : 2.0;
      const math::Vec dk = k->grad_hyper(x_.row(i), x_.row(j));
      for (std::size_t t = 0; t < n_kernel; ++t) {
        out.grad[t] += -0.5 * pair_weight * w * dk[t];  // negative LML
      }
      if (i == j) out.grad[n_kernel] += -0.5 * w * noise_var;
    }
  }
  lml_cache_ = LmlCache{math::Vec(packed.begin(), packed.end()),
                        data_version_, out};
  return out;
}

void GaussianProcess::factorize() {
  const std::size_t n = targets_std_.size();
  const double noise_var = std::exp(log_noise_);
  math::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel_->eval(x_.row(i), x_.row(j));
      AUTODML_CHECK(std::isfinite(v),
                    "GP kernel produced non-finite value " +
                        std::to_string(v) + " for training pair (" +
                        std::to_string(i) + "," + std::to_string(j) + ")");
      gram(i, j) = v;
      gram(j, i) = v;
    }
    gram(i, i) += noise_var;
  }
  factor_ = math::cholesky_with_jitter(gram);
  alpha_ = factor_->solve(targets_std_);
}

void GaussianProcess::refit(const math::Matrix& x, std::span<const double> y) {
  ADML_SPAN("gp.refit", "n", static_cast<std::int64_t>(x.rows()));
  if (x.rows() != y.size())
    throw std::invalid_argument("GaussianProcess: X/y size mismatch");
  if (x.rows() == 0)
    throw std::invalid_argument("GaussianProcess: empty training set");
  if (x.cols() != kernel_->input_dim())
    throw std::invalid_argument("GaussianProcess: input dimension mismatch");
  math::check_finite(x.data(), "GP training inputs");
  math::check_finite(y, "GP training targets");
  x_ = x;
  targets_raw_.assign(y.begin(), y.end());
  if (options_.standardize_targets) {
    y_mean_ = util::mean(y);
    const double sd = util::stddev(y);
    y_scale_ = sd > 1e-12 ? sd : 1.0;
  } else {
    y_mean_ = 0.0;
    y_scale_ = 1.0;
  }
  targets_std_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    targets_std_[i] = (y[i] - y_mean_) / y_scale_;
  }
  ++data_version_;
  lml_cache_.reset();
  factorize();
}

bool GaussianProcess::append_observation(std::span<const double> x, double y) {
  ADML_SPAN("gp.append", "n", static_cast<std::int64_t>(targets_raw_.size()));
  if (!factor_)
    throw std::logic_error("GaussianProcess: append_observation before fit");
  if (x.size() != kernel_->input_dim())
    throw std::invalid_argument("GaussianProcess: input dimension mismatch");
  math::check_finite(x, "GP appended input");
  if (!std::isfinite(y))
    throw std::invalid_argument("GaussianProcess: non-finite target");

  const std::size_t n = targets_raw_.size();
  const double noise_var = std::exp(log_noise_);
  math::Vec col(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = kernel_->eval(x_.row(i), x);
    AUTODML_CHECK(std::isfinite(v),
                  "GP kernel produced non-finite value " + std::to_string(v) +
                      " for appended pair (" + std::to_string(i) + ")");
    col[i] = v;
  }
  const double diag = kernel_->eval(x, x) + noise_var;

  math::Matrix xe(n + 1, x_.cols());
  std::copy(x_.data().begin(), x_.data().end(), xe.data().begin());
  std::copy(x.begin(), x.end(), xe.row(n).begin());
  x_ = std::move(xe);
  targets_raw_.push_back(y);
  ++data_version_;
  lml_cache_.reset();

  // Standardization statistics shift with the new target; the Gram matrix
  // does not depend on them, so only alpha needs recomputing.
  if (options_.standardize_targets) {
    y_mean_ = util::mean(targets_raw_);
    const double sd = util::stddev(targets_raw_);
    y_scale_ = sd > 1e-12 ? sd : 1.0;
  }
  targets_std_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    targets_std_[i] = (targets_raw_[i] - y_mean_) / y_scale_;
  }

  if (!factor_->append_row(col, diag)) {
    // Extended matrix not PD at the stored jitter (new point nearly
    // duplicates an old one): pay the full jitter-adaptive refactorization.
    ADML_COUNT("gp.append_refactorized", 1);
    factorize();
    return false;
  }
  ADML_COUNT("gp.append_fast", 1);
#if AUTODML_CHECKED_ENABLED
  // Cross-verify the incremental factor against a from-scratch
  // factorization of the same jittered Gram matrix (O(n^3), checked builds
  // only).
  {
    math::Matrix gram(n + 1, n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = kernel_->eval(x_.row(i), x_.row(j));
        gram(i, j) = v;
        gram(j, i) = v;
      }
      gram(i, i) += noise_var + factor_->jitter;
    }
    // Compare against the scalar path specifically: append_row replays its
    // recurrence bit-for-bit, while the blocked path (which cholesky()
    // would dispatch to at this size) differs in summation order.
    const auto full = math::cholesky_scalar(gram);
    AUTODML_CHECK(full.has_value(),
                  "GP incremental update: full factorization failed where "
                  "the rank-1 append succeeded");
    const double diff = math::Matrix::max_abs_diff(full->lower, factor_->lower);
    AUTODML_CHECK(diff <= 1e-8,
                  "GP incremental Cholesky factor diverges from full "
                  "refactorization by " + std::to_string(diff));
  }
#endif
  alpha_ = factor_->solve(targets_std_);
  return true;
}

void GaussianProcess::fit(const math::Matrix& x, std::span<const double> y,
                          util::Rng& rng) {
  ADML_SPAN("gp.fit", "n", static_cast<std::int64_t>(x.rows()));
  refit(x, y);
  if (!options_.optimize_hyperparams || y.size() < 3) return;
  ADML_SPAN("gp.hyperopt", "n", static_cast<std::int64_t>(x.rows()));
  ADML_COUNT("gp.hyperopt_rounds", 1);

  auto [kernel_lo, kernel_hi] = kernel_->hyper_bounds();
  math::Vec lo = kernel_lo, hi = kernel_hi;
  lo.push_back(std::log(options_.noise_lo));
  hi.push_back(std::log(options_.noise_hi));

  // Adam projects its iterates onto [lo, hi] (AdamOptions bounds below), so
  // the gradient is always evaluated at the point the step actually reached.
  const auto objective_grad = [&](std::span<const double> theta,
                                  std::span<double> grad) {
    const LmlResult r = negative_lml(theta);
    std::copy(r.grad.begin(), r.grad.end(), grad.begin());
    return r.value;
  };
  // Nelder-Mead has no projection support; clamp inside the objective.
  const auto objective = [&](std::span<const double> theta) {
    math::Vec projected(theta.begin(), theta.end());
    clamp_to_bounds(projected, lo, hi);
    return negative_lml(projected).value;
  };

  math::AdamOptions adam_opts;
  adam_opts.max_iterations = options_.adam_iterations;
  adam_opts.lower_bounds = lo;
  adam_opts.upper_bounds = hi;

  math::Vec best_theta = packed_hypers();
  clamp_to_bounds(best_theta, lo, hi);
  double best_value = objective(best_theta);

  for (int restart = 0; restart <= options_.restarts; ++restart) {
    math::Vec start;
    if (restart == 0) {
      start = best_theta;  // warm start from current hyperparameters
    } else {
      start.resize(lo.size());
      for (std::size_t i = 0; i < lo.size(); ++i) {
        start[i] = rng.uniform(lo[i], hi[i]);
      }
    }
    const auto result = math::adam(objective_grad, start, adam_opts);
    math::Vec candidate = result.x;
    clamp_to_bounds(candidate, lo, hi);
    const double value = objective(candidate);
    if (value < best_value) {
      best_value = value;
      best_theta = candidate;
    }
  }

  if (options_.polish_iterations > 0) {
    math::NelderMeadOptions nm;
    nm.max_iterations = options_.polish_iterations;
    nm.initial_step = 0.2;
    const auto polished = math::nelder_mead(objective, best_theta, nm);
    math::Vec candidate = polished.x;
    clamp_to_bounds(candidate, lo, hi);
    if (polished.value < best_value) best_theta = candidate;
  }

  apply_packed(best_theta);
  factorize();
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  if (!factor_) throw std::logic_error("GaussianProcess: predict before fit");
  math::check_finite(x, "GP prediction input");
  const std::size_t n = targets_std_.size();
  math::Vec k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel_->eval(x_.row(i), x);
  math::check_finite(k_star, "GP cross-covariance");

  const double mean_std = math::dot(k_star, alpha_);
  const math::Vec v = factor_->solve_lower(k_star);
  const double k_xx = kernel_->eval(x, x);
  const double var_std = std::max(0.0, k_xx - math::dot(v, v));

  GpPrediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = var_std * y_scale_ * y_scale_;
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  if (!factor_) throw std::logic_error("GaussianProcess: LML before fit");
  const double fit_term = 0.5 * math::dot(targets_std_, alpha_);
  return -fit_term - 0.5 * factor_->log_det() -
         0.5 * static_cast<double>(targets_std_.size()) * kLog2Pi;
}

double GaussianProcess::noise_variance() const {
  return std::exp(log_noise_) * y_scale_ * y_scale_;
}

}  // namespace autodml::gp

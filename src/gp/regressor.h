// Common interface for surrogate regression backends.
//
// The tuner's surrogate stack has two interchangeable backends: the exact
// GaussianProcess (O(n^3) fit, O(n^2) incremental append) and the
// random-Fourier-feature RffRegressor (O(n m^2 + m^3), m fixed), selected
// by SurrogateModel past a trial-count threshold. Both expose the same
// posterior surface — predict() returns the latent mean/variance in raw
// target units — so acquisition code never knows which backend is live.
#pragma once

#include <span>

#include "math/matrix.h"
#include "util/rng.h"

namespace autodml::gp {

class Kernel;

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  // latent (noise-free) predictive variance
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on rows of X (n x dim) with targets y (n), optimizing
  /// hyperparameters when the backend's options allow it.
  virtual void fit(const math::Matrix& x, std::span<const double> y,
                   util::Rng& rng) = 0;

  /// Replace the data but keep current hyperparameters (cheap refit used
  /// between full re-optimizations).
  virtual void refit(const math::Matrix& x, std::span<const double> y) = 0;

  /// Incremental update: append one observation without refitting from
  /// scratch. Hyperparameters are kept; the resulting posterior is
  /// identical to refit() on the extended data. Requires is_fitted().
  /// Returns true when the backend's fast path was taken.
  virtual bool append_observation(std::span<const double> x, double y) = 0;

  virtual bool is_fitted() const = 0;
  virtual std::size_t num_points() const = 0;

  virtual GpPrediction predict(std::span<const double> x) const = 0;

  /// Log marginal likelihood of the current fit (standardized target
  /// units; for approximate backends, of the approximate model).
  virtual double log_marginal_likelihood() const = 0;

  /// Fitted noise variance, in *raw* target units.
  virtual double noise_variance() const = 0;

  /// The kernel whose hyperparameters the backend carries (exact covariance
  /// for GaussianProcess, the approximated one for RFF). ARD relevance is
  /// read through this.
  virtual const Kernel& kernel() const = 0;

  /// Static-lifetime backend tag for metrics and span args.
  virtual const char* backend_name() const = 0;
};

}  // namespace autodml::gp

#include "gp/rff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gp/gp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stats.h"

namespace autodml::gp {

namespace {
constexpr double kLog2Pi = 1.8378770664093454836;
}  // namespace

RffRegressor::RffRegressor(std::unique_ptr<Kernel> kernel, RffOptions options,
                           std::uint64_t feature_seed)
    : kernel_(std::move(kernel)),
      options_(options),
      log_noise_(std::log(options.gp.initial_noise)) {
  if (!kernel_) throw std::invalid_argument("RffRegressor: null kernel");
  ard_ = dynamic_cast<const ArdKernelBase*>(kernel_.get());
  if (ard_ == nullptr) {
    throw std::invalid_argument(
        "RffRegressor: kernel must derive from ArdKernelBase");
  }
  if (options_.num_features <= 0 || options_.num_features % 2 != 0) {
    throw std::invalid_argument(
        "RffRegressor: num_features must be positive and even");
  }
  m_ = static_cast<std::size_t>(options_.num_features);
  const std::size_t freqs = m_ / 2;
  const std::size_t d = kernel_->input_dim();

  // Base spectral draws, in a fixed order so the model is a deterministic
  // function of the seed: z row by row, then the chi-squared draws.
  util::Rng rng(feature_seed);
  base_z_.resize(freqs * d);
  for (double& z : base_z_) z = rng.normal();
  base_q_.resize(freqs);
  for (double& q : base_q_) {
    double acc = 0.0;
    for (int k = 0; k < 5; ++k) {
      const double u = rng.normal();
      acc += u * u;
    }
    q = std::max(acc, 1e-12);
  }
  rebuild_omega();
}

void RffRegressor::rebuild_omega() {
  const std::size_t d = kernel_->input_dim();
  const std::size_t freqs = m_ / 2;
  const std::span<const double> ls = ard_->lengthscales();
  // Matern-5/2's spectral measure is multivariate-t with 5 dof (scale by
  // sqrt(5/q), q ~ chi^2_5); the SE measure is plain Gaussian.
  const bool matern = dynamic_cast<const Matern52Ard*>(kernel_.get()) != nullptr;
  omega_.resize(freqs * d);
  for (std::size_t j = 0; j < freqs; ++j) {
    const double scale = matern ? std::sqrt(5.0 / base_q_[j]) : 1.0;
    for (std::size_t dd = 0; dd < d; ++dd) {
      omega_[j * d + dd] = base_z_[j * d + dd] * scale / ls[dd];
    }
  }
}

math::Vec RffRegressor::phi_row(std::span<const double> x) const {
  const std::size_t d = kernel_->input_dim();
  const std::size_t freqs = m_ / 2;
  // sqrt(s²/(m/2)) per sin/cos pair: φ(a)^Tφ(b) averages cos(ω^T(a-b))
  // over the m/2 frequencies, scaled to the signal variance.
  const double amp =
      std::sqrt(2.0 * ard_->signal_variance() / static_cast<double>(m_));
  math::Vec phi(m_);
  for (std::size_t j = 0; j < freqs; ++j) {
    const double* w = omega_.data() + j * d;
    double arg = 0.0;
    for (std::size_t dd = 0; dd < d; ++dd) arg += w[dd] * x[dd];
    phi[2 * j] = amp * std::cos(arg);
    phi[2 * j + 1] = amp * std::sin(arg);
  }
  return phi;
}

math::Vec RffRegressor::features(std::span<const double> x) const {
  if (x.size() != kernel_->input_dim())
    throw std::invalid_argument("RffRegressor: input dimension mismatch");
  return phi_row(x);
}

void RffRegressor::solve_feature_system() {
  math::Matrix a = ata_;
  a.add_to_diagonal(std::exp(log_noise_));
  factor_ = math::cholesky_with_jitter(a);
  weights_ = factor_->solve(phi_ty_);
}

void RffRegressor::refit(const math::Matrix& x, std::span<const double> y) {
  ADML_SPAN("gp.rff_solve", "n", static_cast<std::int64_t>(x.rows()), "m",
            static_cast<std::int64_t>(m_));
  if (x.rows() != y.size())
    throw std::invalid_argument("RffRegressor: X/y size mismatch");
  if (x.rows() == 0)
    throw std::invalid_argument("RffRegressor: empty training set");
  if (x.cols() != kernel_->input_dim())
    throw std::invalid_argument("RffRegressor: input dimension mismatch");
  math::check_finite(x.data(), "RFF training inputs");
  math::check_finite(y, "RFF training targets");
  x_ = x;
  targets_raw_.assign(y.begin(), y.end());
  if (options_.gp.standardize_targets) {
    y_mean_ = util::mean(y);
    const double sd = util::stddev(y);
    y_scale_ = sd > 1e-12 ? sd : 1.0;
  } else {
    y_mean_ = 0.0;
    y_scale_ = 1.0;
  }
  const std::size_t n = y.size();
  targets_std_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    targets_std_[i] = (y[i] - y_mean_) / y_scale_;
  }

  rebuild_omega();
  phi_.resize(n * m_);
  for (std::size_t t = 0; t < n; ++t) {
    const math::Vec row = phi_row(x_.row(t));
    std::copy(row.begin(), row.end(), phi_.begin() + t * m_);
  }

  // A = Φ^T Φ accumulated over rows in ascending order — the exact order
  // append_observation() extends, so append == refit bit-for-bit.
  ata_ = math::Matrix(m_, m_);
  phi_ty_.assign(m_, 0.0);
  yty_ = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double* row = phi_.data() + t * m_;
    for (std::size_t i = 0; i < m_; ++i) {
      const double ri = row[i];
      double* out = ata_.row(i).data();
      for (std::size_t j = 0; j <= i; ++j) out[j] += ri * row[j];
      phi_ty_[i] += ri * targets_std_[t];
    }
    yty_ += targets_std_[t] * targets_std_[t];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = i + 1; j < m_; ++j) ata_(i, j) = ata_(j, i);
  }
  solve_feature_system();
}

bool RffRegressor::append_observation(std::span<const double> x, double y) {
  ADML_SPAN("gp.rff_append", "n",
            static_cast<std::int64_t>(targets_raw_.size()), "m",
            static_cast<std::int64_t>(m_));
  if (!factor_)
    throw std::logic_error("RffRegressor: append_observation before fit");
  if (x.size() != kernel_->input_dim())
    throw std::invalid_argument("RffRegressor: input dimension mismatch");
  math::check_finite(x, "RFF appended input");
  if (!std::isfinite(y))
    throw std::invalid_argument("RffRegressor: non-finite target");

  const std::size_t n = targets_raw_.size();
  math::Matrix xe(n + 1, x_.cols());
  std::copy(x_.data().begin(), x_.data().end(), xe.data().begin());
  std::copy(x.begin(), x.end(), xe.row(n).begin());
  x_ = std::move(xe);
  targets_raw_.push_back(y);

  // Standardization statistics shift with the new target, so the whole
  // standardized vector and every y-dependent reduction is recomputed —
  // O(n m), still far below the O(n m²) feature rebuild this path avoids.
  if (options_.gp.standardize_targets) {
    y_mean_ = util::mean(targets_raw_);
    const double sd = util::stddev(targets_raw_);
    y_scale_ = sd > 1e-12 ? sd : 1.0;
  }
  targets_std_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    targets_std_[i] = (targets_raw_[i] - y_mean_) / y_scale_;
  }

  const math::Vec row = phi_row(x);
  phi_.insert(phi_.end(), row.begin(), row.end());
  // Rank-1 update of A: appends the t = n term to each entry's running sum,
  // matching refit()'s ascending accumulation order exactly.
  for (std::size_t i = 0; i < m_; ++i) {
    const double ri = row[i];
    double* out = ata_.row(i).data();
    for (std::size_t j = 0; j <= i; ++j) out[j] += ri * row[j];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = i + 1; j < m_; ++j) ata_(i, j) = ata_(j, i);
  }
  phi_ty_.assign(m_, 0.0);
  yty_ = 0.0;
  for (std::size_t t = 0; t <= n; ++t) {
    const double* prow = phi_.data() + t * m_;
    for (std::size_t i = 0; i < m_; ++i) phi_ty_[i] += prow[i] * targets_std_[t];
    yty_ += targets_std_[t] * targets_std_[t];
  }

#if AUTODML_CHECKED_ENABLED
  // The bit-equality contract of the rank-1 path: A must equal the
  // from-scratch ascending accumulation over the stored feature rows.
  {
    math::Matrix full(m_, m_);
    for (std::size_t t = 0; t <= n; ++t) {
      const double* prow = phi_.data() + t * m_;
      for (std::size_t i = 0; i < m_; ++i) {
        const double ri = prow[i];
        double* out = full.row(i).data();
        for (std::size_t j = 0; j <= i; ++j) out[j] += ri * prow[j];
      }
    }
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        AUTODML_CHECK(full(i, j) == ata_(i, j),
                      "RFF rank-1 feature-Gram update diverged from the "
                      "from-scratch accumulation at (" + std::to_string(i) +
                          "," + std::to_string(j) + ")");
      }
    }
  }
#endif

  solve_feature_system();
  ADML_COUNT("gp.rff_append_fast", 1);
  return true;
}

void RffRegressor::fit(const math::Matrix& x, std::span<const double> y,
                       util::Rng& rng) {
  ADML_SPAN("gp.rff_fit", "n", static_cast<std::int64_t>(x.rows()), "m",
            static_cast<std::int64_t>(m_));
  const std::size_t n = x.rows();
  if (options_.gp.optimize_hyperparams && options_.hyperopt_subset > 0 &&
      n >= 3) {
    ADML_COUNT("gp.rff_hyperopt_rounds", 1);
    // Exact-GP marginal likelihood on an evenly-strided subset: reuses the
    // well-tested hyperopt machinery at O(s³) instead of deriving an RFF
    // objective. The stride keeps early and late trials represented.
    const std::size_t s =
        std::min<std::size_t>(n, static_cast<std::size_t>(options_.hyperopt_subset));
    math::Matrix xs(s, x.cols());
    math::Vec ys(s);
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t src = i * n / s;
      std::copy(x.row(src).begin(), x.row(src).end(), xs.row(i).begin());
      ys[i] = y[src];
    }
    GaussianProcess subset_gp(kernel_->clone(), options_.gp);
    subset_gp.fit(xs, ys, rng);
    kernel_->set_hyperparams(subset_gp.kernel().hyperparams());
    // The subset GP's noise is in raw target units; ours lives in
    // full-data-standardized units.
    double y_scale = 1.0;
    if (options_.gp.standardize_targets) {
      const double sd = util::stddev(y);
      y_scale = sd > 1e-12 ? sd : 1.0;
    }
    const double noise_std_units = std::clamp(
        subset_gp.noise_variance() / (y_scale * y_scale),
        options_.gp.noise_lo, options_.gp.noise_hi);
    log_noise_ = std::log(noise_std_units);
  }
  refit(x, y);

#if AUTODML_CHECKED_ENABLED
  // Accuracy cross-check against the exact GP at the same hyperparameters:
  // posterior mean within the exact model's own uncertainty plus an RFF
  // approximation allowance, variance within a constant factor. Gated to
  // sizes where the O(n³) reference stays cheap.
  if (n >= 8 && n <= 512) {
    GpOptions exact_opts = options_.gp;
    exact_opts.optimize_hyperparams = false;
    exact_opts.initial_noise = std::exp(log_noise_);
    GaussianProcess exact(kernel_->clone(), exact_opts);
    exact.refit(x, y);
    // Held-out probes in the data's bounding box, seeded independently of
    // everything the tuner consumes.
    util::Rng probe_rng(0x52464643484bULL);  // "RFFCHK"
    const std::size_t d = x.cols();
    math::Vec lo(d, 0.0), hi(d, 0.0), probe(d, 0.0);
    for (std::size_t dd = 0; dd < d; ++dd) {
      lo[dd] = hi[dd] = x(0, dd);
      for (std::size_t i = 1; i < n; ++i) {
        lo[dd] = std::min(lo[dd], x(i, dd));
        hi[dd] = std::max(hi[dd], x(i, dd));
      }
    }
    // Tolerance: the O(1/sqrt(m)) feature-approximation term plus the
    // exact model's own predictive uncertainty, in standardized units.
    // The m-feature model is a fixed-capacity regression, so against a
    // near-noiseless smooth target its posterior mean carries an
    // irreducible basis-approximation floor (~0.4 std units at m=256 on
    // the bench response); the bound is set above that floor and catches
    // gross errors (wrong spectral measure, sign flips, broken solves),
    // which show up as multi-std-unit divergence. The mean over probes is
    // gated tightly, individual probes at 3x.
    double err_sum = 0.0;
    double sd_sum = 0.0;
    constexpr int kProbes = 8;
    math::Vec errs(kProbes, 0.0);
    for (int probe_i = 0; probe_i < kProbes; ++probe_i) {
      for (std::size_t dd = 0; dd < d; ++dd) {
        probe[dd] = probe_rng.uniform(lo[dd], hi[dd]);
      }
      const GpPrediction pe = exact.predict(probe);
      const GpPrediction pr = predict(probe);
      errs[probe_i] = std::abs(pr.mean - pe.mean) / y_scale_;
      err_sum += errs[probe_i];
      sd_sum +=
          std::sqrt(std::max(pe.variance + exact.noise_variance(), 0.0)) /
          y_scale_;
    }
    const double allowance = 12.0 / std::sqrt(static_cast<double>(m_)) +
                             sd_sum / kProbes + 0.1;
    AUTODML_CHECK(err_sum / kProbes <= allowance,
                  "RFF posterior mean diverges from exact GP by " +
                      std::to_string(err_sum / kProbes) +
                      " standardized units on average (allowance " +
                      std::to_string(allowance) + ")");
    for (int probe_i = 0; probe_i < kProbes; ++probe_i) {
      AUTODML_CHECK(errs[probe_i] <= 3.0 * allowance,
                    "RFF posterior mean diverges from exact GP by " +
                        std::to_string(errs[probe_i]) +
                        " standardized units at a single probe (cap " +
                        std::to_string(3.0 * allowance) + ")");
    }
  }
#endif
}

GpPrediction RffRegressor::predict(std::span<const double> x) const {
  if (!factor_) throw std::logic_error("RffRegressor: predict before fit");
  math::check_finite(x, "RFF prediction input");
  if (x.size() != kernel_->input_dim())
    throw std::invalid_argument("RffRegressor: input dimension mismatch");
  const math::Vec phi = phi_row(x);
  const double mean_std = math::dot(phi, weights_);
  // Posterior covariance of the weights is σ² A^{-1}; latent variance at x
  // is σ² φ^T A^{-1} φ = σ² ||L^{-1} φ||².
  const math::Vec v = factor_->solve_lower(phi);
  const double var_std = std::exp(log_noise_) * math::dot(v, v);
  GpPrediction out;
  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = std::max(0.0, var_std) * y_scale_ * y_scale_;
  return out;
}

double RffRegressor::log_marginal_likelihood() const {
  if (!factor_) throw std::logic_error("RffRegressor: LML before fit");
  const std::size_t n = targets_std_.size();
  const double noise_var = std::exp(log_noise_);
  // Woodbury identities against A = Φ^TΦ + σ²I:
  //   y^T K̃^{-1} y = (y^T y − (Φ^T y)^T w̄) / σ²
  //   log|K̃|      = log|A| − m log σ² + n log σ²
  const double fit_term =
      0.5 * (yty_ - math::dot(phi_ty_, weights_)) / noise_var;
  const double log_det = factor_->log_det() -
                         static_cast<double>(m_) * std::log(noise_var) +
                         static_cast<double>(n) * std::log(noise_var);
  return -fit_term - 0.5 * log_det -
         0.5 * static_cast<double>(n) * kLog2Pi;
}

double RffRegressor::noise_variance() const {
  return std::exp(log_noise_) * y_scale_ * y_scale_;
}

}  // namespace autodml::gp

// Exact Gaussian-process regression.
//
// The tuner's surrogate. Targets are standardized internally; the noise
// variance is a hyperparameter fitted jointly with the kernel's by maximizing
// the log marginal likelihood (analytic gradients + multi-start Adam, with a
// Nelder-Mead polish). History sizes in configuration tuning are usually
// small (tens to a few hundred points), where exact O(n^3) inference is the
// right trade-off; past the SurrogateModel threshold the stack switches to
// the random-Fourier-feature approximation in rff.h.
#pragma once

#include <memory>
#include <optional>

#include "gp/kernel.h"
#include "gp/regressor.h"
#include "math/cholesky.h"
#include "math/matrix.h"
#include "math/optimize.h"
#include "util/rng.h"

namespace autodml::gp {

struct GpOptions {
  bool standardize_targets = true;
  bool optimize_hyperparams = true;
  int restarts = 2;             // additional random restarts beyond current
  int adam_iterations = 120;
  int polish_iterations = 80;   // Nelder-Mead after the best Adam run
  double noise_lo = 1e-8;       // bounds for the noise-variance hyperparameter
  double noise_hi = 1.0;        //   (in standardized target units)
  double initial_noise = 1e-2;
};

class GaussianProcess final : public Regressor {
 public:
  GaussianProcess(std::unique_ptr<Kernel> kernel, GpOptions options = {});

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess&) = delete;

  /// Fit on rows of X (n x dim) with targets y (n). Optimizes
  /// hyperparameters unless disabled, then factorizes.
  void fit(const math::Matrix& x, std::span<const double> y,
           util::Rng& rng) override;

  /// Replace the data but keep current hyperparameters (cheap refit used
  /// between full re-optimizations).
  void refit(const math::Matrix& x, std::span<const double> y) override;

  /// Incremental update: append one observation, extending the existing
  /// Cholesky factor in O(n^2) instead of refactorizing (O(n^3)).
  /// Hyperparameters are kept; the resulting posterior is identical to
  /// refit() on the extended data. Requires is_fitted(). Returns true when
  /// the O(n^2) fast path was taken; false when the extended Gram matrix was
  /// not PD at the stored jitter and a full refactorization ran instead
  /// (the model is consistent either way). In AUTODML_CHECKED builds the
  /// incremental factor is cross-verified against a from-scratch
  /// factorization of the same jittered Gram matrix.
  bool append_observation(std::span<const double> x, double y) override;

  bool is_fitted() const override { return factor_.has_value(); }
  std::size_t num_points() const override { return targets_raw_.size(); }

  GpPrediction predict(std::span<const double> x) const override;

  /// Log marginal likelihood of the current fit (standardized target units).
  double log_marginal_likelihood() const override;

  /// Fitted noise variance, in *raw* target units.
  double noise_variance() const override;

  const Kernel& kernel() const override { return *kernel_; }
  const char* backend_name() const override { return "exact"; }

  struct LmlResult {
    double value;
    math::Vec grad;  // w.r.t. [kernel log-hypers..., log noise]
  };

  /// Negative LML and analytic gradient at the given packed
  /// log-hyperparameters [kernel..., log noise], on the current training
  /// data. Public as a diagnostic/testing surface (gradient checks); the
  /// result is memoized per (theta, data) so the hyperopt loop's repeated
  /// evaluations at boundary-projected iterates are free.
  LmlResult negative_lml(std::span<const double> packed) const;

 private:
  void factorize();
  math::Vec packed_hypers() const;
  void apply_packed(std::span<const double> packed);

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  double log_noise_;

  math::Matrix x_;
  math::Vec targets_raw_;
  math::Vec targets_std_;  // standardized
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  std::optional<math::CholeskyFactor> factor_;
  math::Vec alpha_;  // (K + sigma^2 I)^{-1} y_std

  /// Bumped whenever the training set changes; keys the negative_lml memo.
  std::uint64_t data_version_ = 0;
  struct LmlCache {
    math::Vec theta;
    std::uint64_t data_version = 0;
    LmlResult result;
  };
  /// Last negative_lml evaluation. The hyperopt loop evaluates the same
  /// theta repeatedly (value+grad pairs, boundary-projected iterates, the
  /// post-Adam re-evaluation), all sharing the same X — one memo slot
  /// eliminates the duplicated Gram build + factorization.
  mutable std::optional<LmlCache> lml_cache_;
};

}  // namespace autodml::gp

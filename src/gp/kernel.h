// Covariance kernels with ARD lengthscales.
//
// Hyperparameters are exposed in log space: every kernel hyperparameter is
// positive, the marginal-likelihood surface is better conditioned in log
// coordinates, and box bounds become simple intervals. Gradients returned by
// grad_hyper are therefore with respect to the *log* hyperparameters.
#pragma once

#include <memory>
#include <span>
#include <utility>

#include "math/matrix.h"

namespace autodml::gp {

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t num_hyperparams() const = 0;

  /// Current hyperparameters, log space.
  virtual math::Vec hyperparams() const = 0;
  virtual void set_hyperparams(std::span<const double> log_theta) = 0;

  /// Box bounds (log space) used by the marginal-likelihood optimizer.
  virtual std::pair<math::Vec, math::Vec> hyper_bounds() const = 0;

  virtual double eval(std::span<const double> a,
                      std::span<const double> b) const = 0;

  /// d k(a,b) / d log_theta_i for every hyperparameter.
  virtual math::Vec grad_hyper(std::span<const double> a,
                               std::span<const double> b) const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Common state for ARD kernels over [0,1]^dim encodings: one lengthscale
/// per input dimension plus a signal variance.
class ArdKernelBase : public Kernel {
 public:
  explicit ArdKernelBase(std::size_t dim);

  std::size_t input_dim() const override { return lengthscales_.size(); }
  std::size_t num_hyperparams() const override {
    return lengthscales_.size() + 1;  // + signal variance
  }
  math::Vec hyperparams() const override;
  void set_hyperparams(std::span<const double> log_theta) override;
  std::pair<math::Vec, math::Vec> hyper_bounds() const override;

  std::span<const double> lengthscales() const { return lengthscales_; }
  double signal_variance() const { return signal_variance_; }

  /// 1/lengthscale per dimension — the ARD relevance used by the
  /// sensitivity experiment (large value = the knob matters).
  math::Vec inverse_lengthscales() const;

 protected:
  /// Scaled squared distance terms u_d = (a_d-b_d)^2 / l_d^2.
  math::Vec scaled_sq_diffs(std::span<const double> a,
                            std::span<const double> b) const;

  std::vector<double> lengthscales_;
  double signal_variance_ = 1.0;
};

/// k(a,b) = s^2 exp(-1/2 sum_d (a_d-b_d)^2/l_d^2)
class SquaredExponentialArd final : public ArdKernelBase {
 public:
  using ArdKernelBase::ArdKernelBase;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  math::Vec grad_hyper(std::span<const double> a,
                       std::span<const double> b) const override;
  std::unique_ptr<Kernel> clone() const override;
};

/// Matern-5/2 with ARD: k = s^2 (1 + sqrt5 r + 5/3 r^2) exp(-sqrt5 r),
/// r^2 = sum_d (a_d-b_d)^2/l_d^2. The standard BO default: rougher than SE,
/// which matches the noisy, kinked response surfaces of system tuning.
class Matern52Ard final : public ArdKernelBase {
 public:
  using ArdKernelBase::ArdKernelBase;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  math::Vec grad_hyper(std::span<const double> a,
                       std::span<const double> b) const override;
  std::unique_ptr<Kernel> clone() const override;
};

}  // namespace autodml::gp

#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/annotations.h"

namespace autodml::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes interleaved stderr writes; guards no members, so there is
// nothing for ADML_GUARDED_BY to name.
Mutex g_mutex;  // adml-lint: allow(D102 serializes a shared stream, not data)

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count();
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %.*s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace autodml::util

#include "util/arg_parse.h"

#include <stdexcept>

#include "util/string_util.h"

namespace autodml::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      args_.emplace(std::string(arg), "true");
    } else {
      args_.emplace(std::string(arg.substr(0, eq)),
                    std::string(arg.substr(eq + 1)));
    }
  }
}

bool ArgParser::has(std::string_view name) const {
  return args_.find(name) != args_.end();
}

std::string ArgParser::get(std::string_view name, std::string_view def) const {
  const auto it = args_.find(name);
  return it == args_.end() ? std::string(def) : it->second;
}

std::int64_t ArgParser::get_int(std::string_view name, std::int64_t def) const {
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  return std::stoll(it->second);
}

double ArgParser::get_double(std::string_view name, double def) const {
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  return std::stod(it->second);
}

bool ArgParser::get_bool(std::string_view name, bool def) const {
  const auto it = args_.find(name);
  if (it == args_.end()) return def;
  const std::string v = to_lower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace autodml::util

#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace autodml::util {

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end())
    throw std::out_of_range("JsonValue: missing key " + std::string(key));
  return it->second;
}

bool JsonValue::contains(std::string_view key) const {
  if (!is_object()) return false;
  return as_object().count(std::string(key)) > 0;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            // Pass through as UTF-8 for the BMP (sufficient here).
            if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            }
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_into(std::string& out, const JsonValue& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
      // Integral values print without a fraction for readability.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
    }
  } else if (v.is_string()) {
    escape_into(out, v.as_string());
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      dump_into(out, arr[i], indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      escape_into(out, key);
      out += indent > 0 ? ": " : ":";
      dump_into(out, value, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

std::string dump_json(const JsonValue& value, int indent) {
  std::string out;
  dump_into(out, value, indent, 0);
  return out;
}

}  // namespace autodml::util

// Minimal JSON value, parser, and serializer.
//
// Exists so tuning sessions can be persisted and reloaded (core/session_io)
// without dragging in an external dependency. Supports the full JSON data
// model except: numbers are always doubles (integers round-trip exactly up
// to 2^53, far beyond any knob in this library), and \uXXXX escapes outside
// the ASCII range are passed through verbatim.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace autodml::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Accessors throw std::bad_variant_access on type mismatch.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access; throws std::out_of_range when missing.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const;

  bool operator==(const JsonValue& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Parse a complete JSON document; throws std::invalid_argument with a
/// character offset on malformed input (including trailing garbage).
JsonValue parse_json(std::string_view text);

/// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
std::string dump_json(const JsonValue& value, int indent = 0);

}  // namespace autodml::util

// Fixed-size thread pool.
//
// Used by benches to replicate stochastic experiments across seeds in
// parallel, by the BO inner loop to score acquisition candidates
// concurrently (core::propose_candidate writes into per-index slots and
// reduces with a deterministic lowest-index argmax, so results are
// bit-identical at any thread count), and by core::AsyncEvalExecutor to
// keep async_q evaluations in flight with ticket-ordered starts and FIFO
// ingestion. baselines::parallel_bo still *simulates* q-way evaluation
// parallelism with kriging-believer batches and wall-clock accounting —
// its evaluations never run on threads.
//
// Shutdown contract: the destructor marks the pool stopped, wakes every
// worker, and joins. Workers keep pulling until the queue is drained, so
// every submitted task runs to completion before ~ThreadPool returns;
// submit() after the destructor has started throws std::logic_error.
// A task that throws stores its exception in the matching future.
//
// Lock discipline (statically checked under clang -Wthread-safety): the
// queue, the stop flag, and the intrusive Stats are guarded by one mutex;
// tasks themselves always run with it released.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace autodml::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopped_) throw std::logic_error("ThreadPool: submit after stop");
      tasks_.emplace([task] { (*task)(); });
      ++stats_.submitted;
      stats_.queue_depth = tasks_.size();
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, tasks_.size());
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Lifetime scheduling statistics, maintained under the queue mutex (the
  /// obs layer publishes these as gauges; the pool itself stays free of
  /// any obs dependency).
  struct Stats {
    std::uint64_t submitted = 0;   // tasks ever enqueued
    std::uint64_t completed = 0;   // tasks that finished running
    std::size_t queue_depth = 0;   // queued (not yet running) at last event
    std::size_t peak_queue_depth = 0;
  };
  Stats stats() const ADML_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ ADML_GUARDED_BY(mutex_);
  Stats stats_ ADML_GUARDED_BY(mutex_);
  bool stopped_ ADML_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, n) across the pool and wait for completion.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace autodml::util

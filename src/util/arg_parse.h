// Tiny --flag=value command-line parser for examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace autodml::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(std::string_view name) const;
  std::string get(std::string_view name, std::string_view def) const;
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def) const;

 private:
  std::map<std::string, std::string, std::less<>> args_;
};

}  // namespace autodml::util

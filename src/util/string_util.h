// Small string helpers shared by the CLI parser and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autodml::util {

std::vector<std::string> split(std::string_view s, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
std::string to_lower(std::string_view s);

/// Left-/right-pad to `width` with spaces (no truncation).
std::string pad_right(std::string_view s, std::size_t width);
std::string pad_left(std::string_view s, std::size_t width);

/// Render rows as an aligned text table with a header rule.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace autodml::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace autodml::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  s.p25 = quantile(xs, 0.25);
  s.p75 = quantile(xs, 0.75);
  return s;
}

BootstrapCI bootstrap_mean_ci(std::span<const double> xs, double level,
                              std::size_t resamples, Rng& rng) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty input");
  if (level <= 0.0 || level >= 1.0)
    throw std::invalid_argument("bootstrap: level must be in (0,1)");
  BootstrapCI ci;
  ci.point = mean(xs);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[rng.index(xs.size())];
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  const double alpha = 1.0 - level;
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("spearman: size mismatch");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive element");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace autodml::util

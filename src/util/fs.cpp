#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace autodml::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path + " (" + std::strerror(errno) +
                           ")");
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("write_file_atomic: cannot create", tmp);
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write_file_atomic: write failed", tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("write_file_atomic: fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("write_file_atomic: close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("write_file_atomic: rename failed", path);
  }
  fsync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) throw std::runtime_error("read_file: read failed " + path);
  return buffer.str();
}

DurableAppender::DurableAppender(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) fail("DurableAppender: cannot open", path);
}

DurableAppender::~DurableAppender() {
  if (file_ != nullptr) std::fclose(file_);
}

void DurableAppender::append(std::string_view record) {
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size())
    fail("DurableAppender: write failed", path_);
  if (std::fflush(file_) != 0) fail("DurableAppender: flush failed", path_);
  if (::fsync(::fileno(file_)) != 0)
    fail("DurableAppender: fsync failed", path_);
}

}  // namespace autodml::util

#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/chaos.h"
#include "util/log.h"

namespace autodml::util {

IoError::IoError(std::string op, std::string path, int errno_value)
    : std::runtime_error(op + ": " + path + " (" +
                         std::strerror(errno_value) + ")"),
      op_(std::move(op)),
      path_(std::move(path)),
      errno_(errno_value) {}

// ---- FileOps seam ----------------------------------------------------------

int FileOps::open(const char* path, int flags, int mode) {
  return ::open(path, flags, mode);
}

long FileOps::write(int fd, const void* buf, std::size_t n) {
  return static_cast<long>(::write(fd, buf, n));
}

int FileOps::fsync(int fd) { return ::fsync(fd); }

int FileOps::close(int fd) { return ::close(fd); }

int FileOps::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int FileOps::unlink(const char* path) { return ::unlink(path); }

namespace {

FileOps& real_file_ops() {
  static FileOps* real = new FileOps;  // leaky singleton
  return *real;
}

std::atomic<FileOps*> g_file_ops{nullptr};

[[noreturn]] void fail(const char* op, const std::string& path) {
  throw IoError(op, path, errno);
}

}  // namespace

FileOps& file_ops() {
  FileOps* ops = g_file_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : real_file_ops();
}

ScopedFileOps::ScopedFileOps(FileOps* ops)
    : previous_(g_file_ops.exchange(ops, std::memory_order_acq_rel)) {}

ScopedFileOps::~ScopedFileOps() {
  g_file_ops.store(previous_, std::memory_order_release);
}

// ---- FaultyFileOps ---------------------------------------------------------

int FaultyFileOps::open(const char* path, int flags, int mode) {
  const std::uint64_t idx = ++opens_;
  if (const auto it = plan_.open_errors.find(idx);
      it != plan_.open_errors.end()) {
    ++injected_;
    errno = it->second;
    return -1;
  }
  return FileOps::open(path, flags, mode);
}

long FaultyFileOps::write(int fd, const void* buf, std::size_t n) {
  const std::uint64_t idx = ++writes_;
  if (plan_.write_eintr.count(idx) != 0) {
    ++injected_;
    errno = EINTR;
    return -1;
  }
  if (const auto it = plan_.write_errors.find(idx);
      it != plan_.write_errors.end()) {
    ++injected_;
    errno = it->second;
    return -1;
  }
  if (const auto it = plan_.short_writes.find(idx);
      it != plan_.short_writes.end() && it->second < n) {
    ++injected_;
    return FileOps::write(fd, buf, it->second);
  }
  return FileOps::write(fd, buf, n);
}

int FaultyFileOps::fsync(int fd) {
  const std::uint64_t idx = ++fsyncs_;
  if (const auto it = plan_.fsync_errors.find(idx);
      it != plan_.fsync_errors.end()) {
    ++injected_;
    errno = it->second;
    return -1;
  }
  return FileOps::fsync(fd);
}

int FaultyFileOps::close(int fd) { return FileOps::close(fd); }

int FaultyFileOps::rename(const char* from, const char* to) {
  const std::uint64_t idx = ++renames_;
  if (const auto it = plan_.rename_errors.find(idx);
      it != plan_.rename_errors.end()) {
    ++injected_;
    errno = it->second;
    return -1;
  }
  return FileOps::rename(from, to);
}

int FaultyFileOps::unlink(const char* path) { return FileOps::unlink(path); }

// ---- Primitives ------------------------------------------------------------

namespace {

/// Write the whole buffer through the seam, retrying short writes and
/// EINTR. Returns false (with errno set) on a hard failure; bytes already
/// accepted by then may be durable — the caller's record is torn.
bool write_all(FileOps& ops, int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const long n = ops.write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_parent_dir(FileOps& ops, const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ops.open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  (void)ops.fsync(fd);  // best effort, same reason
  (void)ops.close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  FileOps& ops = file_ops();
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ops.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("write_file_atomic: cannot create", tmp);
  ADML_CRASH_POINT("fs.atomic.pre_write");
  if (!write_all(ops, fd, content)) {
    const int saved = errno;
    (void)ops.close(fd);
    (void)ops.unlink(tmp.c_str());
    errno = saved;
    fail("write_file_atomic: write failed", tmp);
  }
  if (ops.fsync(fd) != 0) {
    const int saved = errno;
    (void)ops.close(fd);
    (void)ops.unlink(tmp.c_str());
    errno = saved;
    fail("write_file_atomic: fsync failed", tmp);
  }
  if (ops.close(fd) != 0) {
    const int saved = errno;
    (void)ops.unlink(tmp.c_str());
    errno = saved;
    fail("write_file_atomic: close failed", tmp);
  }
  ADML_CRASH_POINT("fs.atomic.pre_rename");
  if (ops.rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    (void)ops.unlink(tmp.c_str());
    errno = saved;
    fail("write_file_atomic: rename failed", path);
  }
  ADML_CRASH_POINT("fs.atomic.post_rename");
  fsync_parent_dir(ops, path);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) throw std::runtime_error("read_file: read failed " + path);
  return buffer.str();
}

DurableAppender::DurableAppender(const std::string& path) : path_(path) {
  fd_ = file_ops().open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) fail("DurableAppender: cannot open", path);
}

DurableAppender::~DurableAppender() {
  if (fd_ < 0) return;
  // Destructors cannot throw; a failed close after per-record fsyncs loses
  // nothing durable, but it is still worth a trace in the log.
  if (file_ops().close(fd_) != 0) {
    ADML_WARN << "DurableAppender: close failed: " << path_ << " ("
              << std::strerror(errno) << ")";
  }
}

void DurableAppender::append(std::string_view record) {
  FileOps& ops = file_ops();
  ADML_CRASH_POINT("journal.append.pre_write");
  if (!write_all(ops, fd_, record)) {
    fail("DurableAppender: write failed", path_);
  }
  ADML_CRASH_POINT("journal.append.post_write");
  ADML_CRASH_POINT("journal.append.pre_fsync");
  if (ops.fsync(fd_) != 0) fail("DurableAppender: fsync failed", path_);
  ADML_CRASH_POINT("journal.append.post_fsync");
}

}  // namespace autodml::util

// Chaos layer: deterministic crash-point and fault-point injection.
//
// The tuner's durability story (fsynced journal, atomic saves, resume by
// replay) is only credible if the process is actually killed at the worst
// possible instants and still recovers. This header provides the hooks the
// chaos harness (tools/chaos) arms:
//
//   - Crash points. `ADML_CRASH_POINT("name")` marks a durability-relevant
//     site (journal append pre/post-write, pre/post-fsync, atomic-save
//     rename, incumbent update, surrogate refit commit — see DESIGN.md §6i
//     for the full map). When armed, hitting the chosen point terminates
//     the process immediately via _exit(kCrashExitCode): no destructors, no
//     atexit handlers, no stream flushing — the closest portable stand-in
//     for `kill -9` at exactly that instruction.
//
//   - Fault points. `chaos::fault_requested("name")` is a non-fatal
//     variant: the call site simulates an internal failure (e.g. a
//     numerically collapsing surrogate refit) for a configured window of
//     hits instead of dying. Used to exercise graceful-degradation paths
//     deterministically.
//
// Arming (first hit lazily reads the environment, so forked children are
// armed by their parent without code changes):
//
//   ADML_CRASH_POINT=<name>[:k]      crash at the k-th hit of site <name>
//                                    (default k = 1)
//   ADML_CRASH_AFTER=<n>             crash at the n-th crash-point hit
//                                    overall, regardless of site — the
//                                    harness's randomized kill knob
//   ADML_FAULT_POINT=<name>[:k[:m]]  site <name> reports failure on hits
//                                    k .. k+m-1 (defaults k = 1, m = 1)
//
// or programmatically via arm_* (the CLI's --crash-point / --crash-after
// flags). Disarmed hits cost one relaxed atomic load; the layer is
// observation-free and never perturbs results unless armed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace autodml::util::chaos {

/// Exit code of a process killed at a crash point. Distinctive so the
/// harness can tell an injected crash from a real failure.
inline constexpr int kCrashExitCode = 86;

/// Site marker; expands to a function call so it can sit between two
/// arbitrary statements. Name must be a stable, documented identifier.
#define ADML_CRASH_POINT(name) ::autodml::util::chaos::hit_crash_point(name)

/// Record a hit of the named crash point; terminates the process when the
/// hit matches the armed trigger. No-op (one atomic load) when disarmed.
void hit_crash_point(std::string_view name);

/// Arm a specific site: the process dies at its `hit`-th hit (1-based).
void arm_crash_point(std::string_view name, std::uint64_t hit = 1);

/// Arm the global counter: the process dies at the n-th crash-point hit
/// across all sites (1-based). This is what the harness randomizes.
void arm_crash_after(std::uint64_t n);

/// Record a hit of the named fault point; true when the site should
/// simulate an internal failure this time. No-op when disarmed.
bool fault_requested(std::string_view name);

/// Arm a fault point: hits first_hit .. first_hit+count-1 report failure.
void arm_fault_point(std::string_view name, std::uint64_t first_hit = 1,
                     std::uint64_t count = 1);

/// Disarm everything and reset all hit counters (tests).
void disarm_all();

/// True when any crash or fault trigger is armed.
bool armed();

/// Total crash-point hits recorded since arming (diagnostics/tests).
std::uint64_t total_crash_point_hits();

}  // namespace autodml::util::chaos

#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace autodml::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  if (header_written_) throw std::logic_error("CsvWriter: header written twice");
  ncols_ = cols.size();
  header_written_ = true;
  bool first = true;
  for (const auto& c : cols) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(c);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (header_written_ && cells.size() != ncols_)
    throw std::logic_error("CsvWriter: row width does not match header");
  bool first = true;
  for (const auto& c : cells) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(c);
    first = false;
  }
  *out_ << '\n';
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::string_view s) {
  cells_.emplace_back(s);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double v) {
  cells_.push_back(fmt(v, 6));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::size_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::RowBuilder::done() { writer_->row(cells_); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",  // adml-lint: allow(D005 caller-chosen precision; serializers pass 17)
                precision, v);
  return buf;
}

}  // namespace autodml::util

// Minimal leveled logger.
//
// Not a general-purpose logging framework: AutoDML is a library first, so the
// logger is a thin, thread-safe veneer over stderr that benches and examples
// use for progress lines. Library code logs sparingly (warnings only).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace autodml::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (timestamp, level tag, message) to stderr. Thread-safe.
void log_line(LogLevel level, std::string_view msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace autodml::util

#define ADML_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(                    \
          ::autodml::util::log_level())) {                           \
  } else                                                             \
    ::autodml::util::detail::LogStream(level)

#define ADML_DEBUG ADML_LOG(::autodml::util::LogLevel::kDebug)
#define ADML_INFO ADML_LOG(::autodml::util::LogLevel::kInfo)
#define ADML_WARN ADML_LOG(::autodml::util::LogLevel::kWarn)
#define ADML_ERROR ADML_LOG(::autodml::util::LogLevel::kError)

// Summary statistics and bootstrap confidence intervals.
//
// Benches replicate every stochastic experiment across seeds; these helpers
// turn replicate vectors into the mean / CI rows the experiment tables print.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace autodml::util {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance, 0 if n < 2
double stddev(std::span<const double> xs);

/// Quantile with linear interpolation; q in [0,1]. Requires non-empty input.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

Summary summarize(std::span<const double> xs);

struct BootstrapCI {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // mean of the data
};

/// Percentile-bootstrap CI on the mean. `level` e.g. 0.95.
BootstrapCI bootstrap_mean_ci(std::span<const double> xs, double level,
                              std::size_t resamples, Rng& rng);

/// Pearson correlation; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean; requires all elements > 0.
double geomean(std::span<const double> xs);

}  // namespace autodml::util

// Clang Thread Safety Analysis annotations and the annotated lock types
// every component must use instead of raw <mutex> primitives.
//
// The repo's concurrency guarantees — proposals bit-identical at any
// thread count, byte-identical journals, associative metric merges — are
// enforced at runtime by TSan and the determinism tests. This header adds
// the *static* half: under clang, `-Wthread-safety` (enabled automatically
// by the top-level CMakeLists) proves at compile time that every access to
// an `ADML_GUARDED_BY` member happens with its mutex held. Under other
// compilers every macro expands to nothing and `Mutex`/`MutexLock`/
// `CondVar` behave exactly like the std primitives they wrap.
//
// Usage pattern:
//
//   class Queue {
//    public:
//     void push(Item item) ADML_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(item));
//     }
//    private:
//     Mutex mu_;
//     std::vector<Item> items_ ADML_GUARDED_BY(mu_);
//   };
//
// Raw `std::mutex` / `std::condition_variable` / `std::scoped_lock` are
// banned outside this header (adml-lint diagnostic D006): the std types
// carry no capability annotations, so locking through them is invisible
// to the analysis and silently re-opens the hole this header closes.
//
// See DESIGN.md §6g for the annotation conventions and the negative
// compile check that keeps the analysis honest.
#pragma once

#include <condition_variable>  // adml-lint: allow(D006 this header is the one sanctioned wrapper around the std primitives)
#include <mutex>               // adml-lint: allow(D006 this header is the one sanctioned wrapper around the std primitives)

// ---- Raw attribute macros --------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define ADML_TSA(x) __attribute__((x))
#else
#define ADML_TSA(x)  // no-op off clang
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define ADML_CAPABILITY(x) ADML_TSA(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define ADML_SCOPED_CAPABILITY ADML_TSA(scoped_lockable)

/// Data member readable/writable only while the given capability is held.
#define ADML_GUARDED_BY(x) ADML_TSA(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define ADML_PT_GUARDED_BY(x) ADML_TSA(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and still held on
/// exit).
#define ADML_REQUIRES(...) ADML_TSA(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define ADML_ACQUIRE(...) ADML_TSA(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define ADML_RELEASE(...) ADML_TSA(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define ADML_TRY_ACQUIRE(...) ADML_TSA(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (catches self-deadlock on
/// non-recursive mutexes).
#define ADML_EXCLUDES(...) ADML_TSA(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ADML_RETURN_CAPABILITY(x) ADML_TSA(lock_returned(x))

/// Escape hatch — disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define ADML_NO_THREAD_SAFETY_ANALYSIS ADML_TSA(no_thread_safety_analysis)

// ---- Annotated lock types --------------------------------------------------

namespace autodml::util {

/// std::mutex with capability annotations. Prefer MutexLock for scoped
/// acquisition; the raw lock()/unlock() interface exists for the CondVar
/// wait protocol and for adapters that need manual control.
class ADML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADML_ACQUIRE() { mu_.lock(); }
  void unlock() ADML_RELEASE() { mu_.unlock(); }
  bool try_lock() ADML_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the annotated counterpart of
/// std::scoped_lock).
class ADML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADML_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() ADML_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with Mutex. wait() requires the mutex held —
/// use the manual-loop form so the analysis can follow the predicate:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning. The
  /// capability is held across the call from the analysis's point of view
  /// (the release/re-acquire window is internal to the wait protocol).
  void wait(Mutex& mu) ADML_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace autodml::util

// CSV and JSON-lines emitters for experiment output.
//
// Every bench binary both prints a human-readable table and (optionally)
// writes machine-readable rows so results can be re-plotted without re-running.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace autodml::util {

/// Escape a CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(std::string_view field);

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& cols);
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with %.6g, keeps strings as-is.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& w) : writer_(&w) {}
    RowBuilder& add(std::string_view s);
    RowBuilder& add(double v);
    RowBuilder& add(std::int64_t v);
    RowBuilder& add(std::size_t v);
    void done();

   private:
    CsvWriter* writer_;
    std::vector<std::string> cells_;
  };

  RowBuilder build() { return RowBuilder(*this); }

 private:
  std::ostream* out_;
  std::size_t ncols_ = 0;
  bool header_written_ = false;
};

/// Format a double for display tables.
std::string fmt(double v, int precision = 4);

}  // namespace autodml::util

// AUTODML_CHECKED build mode: numerical invariant checks.
//
// Configure with -DAUTODML_CHECKED=ON to compile NaN/Inf guards and
// bounds-checked element access into the math/GP hot paths. A violated
// invariant throws std::logic_error naming the source location and the
// offending index, instead of letting a silent NaN corrupt every posterior
// computed afterwards. Release builds compile the checks out entirely;
// the condition expression is not even evaluated.
#pragma once

#include <stdexcept>
#include <string>

#ifdef AUTODML_CHECKED
#define AUTODML_CHECKED_ENABLED 1
#else
#define AUTODML_CHECKED_ENABLED 0
#endif

namespace autodml::util {

[[noreturn]] inline void checked_failure(const char* file, int line,
                                         const std::string& msg) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": invariant violated: " + msg);
}

}  // namespace autodml::util

#if AUTODML_CHECKED_ENABLED
#define AUTODML_CHECK(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::autodml::util::checked_failure(__FILE__, __LINE__, (msg));   \
    }                                                                \
  } while (0)
#else
#define AUTODML_CHECK(cond, msg) \
  do {                           \
  } while (0)
#endif

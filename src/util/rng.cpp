#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace autodml::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  if (median <= 0.0) throw std::invalid_argument("lognormal: median <= 0");
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("index: n == 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() {
  // Mix current state with a split counter through SplitMix64 so that
  // successive splits are distinct and independent of later draws.
  std::uint64_t seed = s_[0] ^ rotl(s_[2], 13) ^ (++split_counter_ * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(seed));
}

}  // namespace autodml::util

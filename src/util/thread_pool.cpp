#include "util/thread_pool.h"

#include <algorithm>

namespace autodml::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopped_ && tasks_.empty()) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopped and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      stats_.queue_depth = tasks_.size();
    }
    task();
    {
      MutexLock lock(mutex_);
      ++stats_.completed;
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace autodml::util

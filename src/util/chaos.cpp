#include "util/chaos.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/annotations.h"

namespace autodml::util::chaos {

namespace {

struct CrashTrigger {
  std::string point;         // empty: any site (ADML_CRASH_AFTER mode)
  std::uint64_t at_hit = 0;  // 0: disarmed
};

struct FaultWindow {
  std::uint64_t first_hit = 0;  // 0: disarmed
  std::uint64_t count = 0;
};

struct State {
  Mutex mu;
  bool env_loaded ADML_GUARDED_BY(mu) = false;
  CrashTrigger crash ADML_GUARDED_BY(mu);
  std::uint64_t total_hits ADML_GUARDED_BY(mu) = 0;
  std::map<std::string, std::uint64_t, std::less<>> hits_by_point
      ADML_GUARDED_BY(mu);
  std::map<std::string, FaultWindow, std::less<>> faults ADML_GUARDED_BY(mu);
  std::map<std::string, std::uint64_t, std::less<>> fault_hits
      ADML_GUARDED_BY(mu);
};

State& state() {
  static State* s = new State;  // leaky: hit sites may outlive main()
  return *s;
}

/// Fast-path gate: false once we know nothing is armed. Starts true so the
/// first hit pays for the environment check.
std::atomic<bool> g_maybe_armed{true};

/// "name[:a[:b]]" -> (name, a, b); missing fields keep their defaults.
void parse_spec(std::string_view spec, std::string* name, std::uint64_t* a,
                std::uint64_t* b) {
  const std::size_t colon = spec.find(':');
  *name = std::string(spec.substr(0, colon));
  if (colon == std::string_view::npos) return;
  std::string_view rest = spec.substr(colon + 1);
  const std::size_t colon2 = rest.find(':');
  const std::string first(rest.substr(0, colon2));
  if (!first.empty()) *a = std::strtoull(first.c_str(), nullptr, 10);
  if (colon2 != std::string_view::npos && b != nullptr) {
    const std::string second(rest.substr(colon2 + 1));
    if (!second.empty()) *b = std::strtoull(second.c_str(), nullptr, 10);
  }
}

void load_env_locked(State& s) ADML_REQUIRES(s.mu) {
  if (s.env_loaded) return;
  s.env_loaded = true;
  if (const char* spec = std::getenv("ADML_CRASH_POINT")) {
    std::string name;
    std::uint64_t hit = 1;
    parse_spec(spec, &name, &hit, nullptr);
    if (!name.empty() && hit > 0) s.crash = {name, hit};
  }
  if (const char* spec = std::getenv("ADML_CRASH_AFTER")) {
    const std::uint64_t n = std::strtoull(spec, nullptr, 10);
    if (n > 0) s.crash = {std::string(), n};
  }
  if (const char* spec = std::getenv("ADML_FAULT_POINT")) {
    std::string name;
    std::uint64_t first = 1, count = 1;
    parse_spec(spec, &name, &first, &count);
    if (!name.empty() && first > 0 && count > 0) {
      s.faults[name] = {first, count};
    }
  }
}

bool anything_armed_locked(State& s) ADML_REQUIRES(s.mu) {
  return s.crash.at_hit > 0 || !s.faults.empty();
}

[[noreturn]] void crash_now(std::string_view name, std::uint64_t hit) {
  // stderr is unbuffered; write the marker, then die without any cleanup.
  std::fprintf(stderr, "adml-chaos: crash point '%.*s' (hit %llu) -- _exit(%d)\n",
               static_cast<int>(name.size()), name.data(),
               static_cast<unsigned long long>(hit), kCrashExitCode);
  ::_exit(kCrashExitCode);
}

}  // namespace

void hit_crash_point(std::string_view name) {
  if (!g_maybe_armed.load(std::memory_order_relaxed)) return;
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  if (!anything_armed_locked(s)) {
    g_maybe_armed.store(false, std::memory_order_relaxed);
    return;
  }
  if (s.crash.at_hit == 0) return;  // only fault points armed
  ++s.total_hits;
  const std::uint64_t site_hits = ++s.hits_by_point[std::string(name)];
  if (s.crash.point.empty()) {
    if (s.total_hits >= s.crash.at_hit) crash_now(name, s.total_hits);
  } else if (s.crash.point == name && site_hits >= s.crash.at_hit) {
    crash_now(name, site_hits);
  }
}

bool fault_requested(std::string_view name) {
  if (!g_maybe_armed.load(std::memory_order_relaxed)) return false;
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  if (!anything_armed_locked(s)) {
    g_maybe_armed.store(false, std::memory_order_relaxed);
    return false;
  }
  const auto it = s.faults.find(name);
  if (it == s.faults.end() || it->second.first_hit == 0) return false;
  const std::uint64_t hit = ++s.fault_hits[std::string(name)];
  return hit >= it->second.first_hit &&
         hit < it->second.first_hit + it->second.count;
}

void arm_crash_point(std::string_view name, std::uint64_t hit) {
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  s.crash = {std::string(name), hit};
  g_maybe_armed.store(true, std::memory_order_relaxed);
}

void arm_crash_after(std::uint64_t n) {
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  s.crash = {std::string(), n};
  g_maybe_armed.store(true, std::memory_order_relaxed);
}

void arm_fault_point(std::string_view name, std::uint64_t first_hit,
                     std::uint64_t count) {
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  s.faults[std::string(name)] = {first_hit, count};
  s.fault_hits.erase(std::string(name));
  g_maybe_armed.store(true, std::memory_order_relaxed);
}

void disarm_all() {
  State& s = state();
  MutexLock lock(s.mu);
  s.env_loaded = true;  // tests own the configuration from here on
  s.crash = {};
  s.total_hits = 0;
  s.hits_by_point.clear();
  s.faults.clear();
  s.fault_hits.clear();
  g_maybe_armed.store(false, std::memory_order_relaxed);
}

bool armed() {
  State& s = state();
  MutexLock lock(s.mu);
  load_env_locked(s);
  return anything_armed_locked(s);
}

std::uint64_t total_crash_point_hits() {
  State& s = state();
  MutexLock lock(s.mu);
  return s.total_hits;
}

}  // namespace autodml::util::chaos

// Deterministic, splittable random number generation.
//
// Everything in AutoDML that needs randomness (samplers, simulator noise,
// statistical-efficiency noise, baseline tuners) takes an explicit Rng so
// that experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded via SplitMix64; split() derives an independent stream,
// which lets a parent component hand child components their own generators
// without coupling their consumption order.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace autodml::util {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median` and
  /// sigma is the shape parameter (stddev of the underlying normal).
  double lognormal_median(double median, double sigma);

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent generator. Deterministic: the k-th split of a
  /// given generator state is always the same stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t split_counter_ = 0;
};

}  // namespace autodml::util

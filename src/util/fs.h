// Crash-safe file primitives (POSIX).
//
// Session and journal files must survive the writing process dying at any
// instant: a half-written session would silently lose a tuning run's worth
// of paid evaluations. Two primitives cover the two write patterns:
//   - write_file_atomic: whole-file replace via temp file + fsync + rename,
//     so readers only ever see the old or the new contents, never a torn
//     middle state;
//   - DurableAppender: append-only writer that fsyncs after every record,
//     so at most the final record (the one being written at the instant of
//     death) can be torn.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace autodml::util {

/// Atomically replace `path` with `content`: write to a sibling temp file,
/// fsync it, rename over the target, fsync the directory. Throws
/// std::runtime_error on any I/O failure (the temp file is cleaned up).
void write_file_atomic(const std::string& path, std::string_view content);

/// Whole-file read; throws std::runtime_error when unreadable.
std::string read_file(const std::string& path);

/// Append-only writer with per-record durability. Each append() returns
/// only after the bytes are flushed and fsynced, so a crash between
/// records loses nothing and a crash mid-record tears only the last line.
class DurableAppender {
 public:
  /// Opens (creating if needed) `path` for appending.
  explicit DurableAppender(const std::string& path);
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Append one record verbatim (caller supplies the trailing newline),
  /// then flush + fsync. Throws std::runtime_error on failure.
  void append(std::string_view record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace autodml::util

// Crash-safe file primitives (POSIX) behind an IO-fault seam.
//
// Session and journal files must survive the writing process dying at any
// instant: a half-written session would silently lose a tuning run's worth
// of paid evaluations. Two primitives cover the two write patterns:
//   - write_file_atomic: whole-file replace via temp file + fsync + rename,
//     so readers only ever see the old or the new contents, never a torn
//     middle state;
//   - DurableAppender: append-only writer that fsyncs after every record,
//     so at most the final record (the one being written at the instant of
//     death) can be torn.
//
// Every syscall both primitives issue flows through the process-wide
// FileOps seam. The default implementation is the real thing; tests and
// the chaos harness install a FaultyFileOps that deterministically injects
// short writes, EINTR, ENOSPC, fsync failures, and rename failures — so
// every error path in the durability layer is exercised, not assumed.
// All failures surface as IoError, which carries the operation, the path,
// and the errno, so callers can report exactly what broke where.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>

namespace autodml::util {

/// Typed I/O failure: operation + path + errno. what() renders
/// "op: path (strerror)" so existing string-matching callers keep working.
class IoError : public std::runtime_error {
 public:
  IoError(std::string op, std::string path, int errno_value);

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int error_code() const { return errno_; }

 private:
  std::string op_;
  std::string path_;
  int errno_;
};

/// The syscall seam. The base class *is* the real implementation; fault
/// injectors subclass and override selectively. Methods mirror POSIX
/// semantics (return values, errno) exactly, including short writes.
class FileOps {
 public:
  virtual ~FileOps() = default;

  virtual int open(const char* path, int flags, int mode);
  /// May write fewer than `n` bytes (short write), exactly like write(2).
  virtual long write(int fd, const void* buf, std::size_t n);
  virtual int fsync(int fd);
  virtual int close(int fd);
  virtual int rename(const char* from, const char* to);
  virtual int unlink(const char* path);
};

/// Process-wide current FileOps (defaults to the real implementation).
FileOps& file_ops();

/// Install `ops` for the lifetime of the scope; restores the previous seam
/// on destruction. Not reentrancy-safe across threads by design: tests
/// install the shim before spawning work.
class ScopedFileOps {
 public:
  explicit ScopedFileOps(FileOps* ops);
  ~ScopedFileOps();

  ScopedFileOps(const ScopedFileOps&) = delete;
  ScopedFileOps& operator=(const ScopedFileOps&) = delete;

 private:
  FileOps* previous_;
};

/// Deterministic fault plan: 1-based per-operation indices (counted since
/// the shim was installed) mapped to the failure to inject. Operations not
/// listed behave normally.
struct FaultPlan {
  /// write call index -> errno to fail with (e.g. ENOSPC, EIO).
  std::map<std::uint64_t, int> write_errors;
  /// write call index -> accept at most this many bytes (short write).
  std::map<std::uint64_t, std::size_t> short_writes;
  /// write call indices that fail once with EINTR (caller should retry).
  std::set<std::uint64_t> write_eintr;
  /// fsync call index -> errno to fail with.
  std::map<std::uint64_t, int> fsync_errors;
  /// rename call index -> errno to fail with.
  std::map<std::uint64_t, int> rename_errors;
  /// open call index -> errno to fail with.
  std::map<std::uint64_t, int> open_errors;
};

/// FileOps that executes the plan: listed operation indices fail (or short-
/// write) deterministically; everything else passes through to the real
/// syscalls. Counters are internal, so two identically-planned shims
/// behave identically — the basis of the fault-injection determinism
/// tests.
class FaultyFileOps : public FileOps {
 public:
  explicit FaultyFileOps(FaultPlan plan) : plan_(std::move(plan)) {}

  int open(const char* path, int flags, int mode) override;
  long write(int fd, const void* buf, std::size_t n) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;

  std::uint64_t injected_faults() const { return injected_; }

 private:
  FaultPlan plan_;
  std::uint64_t opens_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t renames_ = 0;
  std::uint64_t injected_ = 0;
};

/// Atomically replace `path` with `content`: write to a sibling temp file,
/// fsync it, rename over the target, fsync the directory. Throws IoError
/// on any I/O failure (the temp file is cleaned up).
void write_file_atomic(const std::string& path, std::string_view content);

/// Whole-file read; throws std::runtime_error when unreadable.
std::string read_file(const std::string& path);

/// Append-only writer with per-record durability. Each append() returns
/// only after the bytes are flushed and fsynced, so a crash between
/// records loses nothing and a crash mid-record tears only the last line.
class DurableAppender {
 public:
  /// Opens (creating if needed) `path` for appending. Throws IoError.
  explicit DurableAppender(const std::string& path);
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Append one record verbatim (caller supplies the trailing newline),
  /// then fsync. Throws IoError on failure; a failed append may leave a
  /// torn partial record at the tail, which journal loading tolerates.
  void append(std::string_view record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace autodml::util

#include "util/string_util.h"

#include <algorithm>
#include <sstream>

namespace autodml::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto not_space = [](char c) {
    return c != ' ' && c != '\t' && c != '\n' && c != '\r';
  };
  while (!s.empty() && !not_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && !not_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.starts_with(prefix);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out += s;
  return out;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string_view cell = c < row.size() ? row[c] : std::string_view{};
      os << (c ? "  " : "") << pad_right(cell, widths[c]);
    }
    os << '\n';
  };
  emit_row(header);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.empty() ? 0 : widths.size() - 1), '-')
     << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

}  // namespace autodml::util

#include "analysis/space_lint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "util/csv.h"
#include "util/string_util.h"

namespace autodml::analysis {

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::string out = code;
  out += ' ';
  out += analysis::to_string(severity);
  out += " [";
  out += param.empty() ? std::string("<space>") : param;
  out += "] ";
  out += message;
  if (!fix_hint.empty()) {
    out += "; hint: ";
    out += fix_hint;
  }
  return out;
}

bool LintReport::has_errors() const { return error_count() > 0; }

std::size_t LintReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == Severity::kError;
      }));
}

std::size_t LintReport::warning_count() const {
  return diagnostics.size() - error_count();
}

bool LintReport::has(std::string_view code) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const auto& d) { return d.code == code; });
}

std::vector<Diagnostic> LintReport::for_param(std::string_view name) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics) {
    if (d.param == name) out.push_back(d);
  }
  return out;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

// ---- ParamDraft ------------------------------------------------------------

ParamDraft ParamDraft::from_spec(const conf::ParamSpec& spec) {
  ParamDraft d;
  d.name = spec.name();
  d.kind = spec.kind();
  d.int_lo = spec.int_lo();
  d.int_hi = spec.int_hi();
  d.cont_lo = spec.cont_lo();
  d.cont_hi = spec.cont_hi();
  d.log_scale = spec.log_scale();
  d.int_choices = spec.int_choices();
  d.categories = spec.categories();
  d.parent = spec.parent();
  d.parent_values = spec.parent_values();
  return d;
}

ParamDraft ParamDraft::integer(std::string name, std::int64_t lo,
                               std::int64_t hi, bool log_scale) {
  ParamDraft d;
  d.name = std::move(name);
  d.kind = conf::ParamKind::kInt;
  d.int_lo = lo;
  d.int_hi = hi;
  d.log_scale = log_scale;
  return d;
}

ParamDraft ParamDraft::int_choice(std::string name,
                                  std::vector<std::int64_t> choices) {
  ParamDraft d;
  d.name = std::move(name);
  d.kind = conf::ParamKind::kIntChoice;
  d.int_choices = std::move(choices);
  return d;
}

ParamDraft ParamDraft::continuous(std::string name, double lo, double hi,
                                  bool log_scale) {
  ParamDraft d;
  d.name = std::move(name);
  d.kind = conf::ParamKind::kContinuous;
  d.cont_lo = lo;
  d.cont_hi = hi;
  d.log_scale = log_scale;
  return d;
}

ParamDraft ParamDraft::categorical(std::string name,
                                   std::vector<std::string> categories) {
  ParamDraft d;
  d.name = std::move(name);
  d.kind = conf::ParamKind::kCategorical;
  d.categories = std::move(categories);
  return d;
}

ParamDraft ParamDraft::boolean(std::string name) {
  ParamDraft d;
  d.name = std::move(name);
  d.kind = conf::ParamKind::kBool;
  return d;
}

ParamDraft& ParamDraft::only_when(std::string parent_name,
                                  std::vector<std::string> values) {
  parent = std::move(parent_name);
  parent_values = std::move(values);
  return *this;
}

// ---- Linter ----------------------------------------------------------------

namespace {

class LintPass {
 public:
  LintPass(std::span<const ParamDraft> drafts, const SpaceLinter::Options& opts)
      : drafts_(drafts), opts_(opts) {
    for (std::size_t i = 0; i < drafts_.size(); ++i) {
      index_.emplace(drafts_[i].name, i);  // keeps the first occurrence
    }
  }

  LintReport run() {
    check_names();
    check_duplicate_names();
    for (std::size_t i = 0; i < drafts_.size(); ++i) check_domain(i);
    for (std::size_t i = 0; i < drafts_.size(); ++i) check_condition(i);
    check_cycles();
    check_reachability();
    for (std::size_t i = 0; i < drafts_.size(); ++i) check_default(i);
    check_encoded_dim();
    return std::move(report_);
  }

 private:
  void add(std::string_view code, Severity severity, std::string param,
           std::string message, std::string fix_hint = "") {
    report_.diagnostics.push_back(Diagnostic{std::string(code), severity,
                                             std::move(param),
                                             std::move(message),
                                             std::move(fix_hint)});
  }

  /// The domain of values a parent parameter can take, as strings (the
  /// representation only_when() matches against). Empty for non-enumerable
  /// parents (which are already flagged by L005).
  static std::vector<std::string> parent_domain(const ParamDraft& p) {
    if (p.kind == conf::ParamKind::kBool) return {"false", "true"};
    if (p.kind == conf::ParamKind::kCategorical) {
      std::vector<std::string> dom = p.categories;
      std::sort(dom.begin(), dom.end());
      dom.erase(std::unique(dom.begin(), dom.end()), dom.end());
      return dom;
    }
    return {};
  }

  static bool valid_name_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
  }

  /// The form under which two names are "the same knob to a human":
  /// case-folded, with '-' and '_' identified.
  static std::string normalize_name(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
      if (c == '-') c = '_';
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      out += c;
    }
    return out;
  }

  void check_names() {
    // L016: names reach journals, CSV headers, and CLI flags verbatim, so
    // anything outside a conservative identifier alphabet breaks a
    // downstream parser eventually.
    for (const auto& d : drafts_) {
      const bool bad =
          d.name.empty() ||
          !std::all_of(d.name.begin(), d.name.end(), valid_name_char);
      if (bad) {
        add(kInvalidParamName, Severity::kError, d.name,
            d.name.empty()
                ? "parameter name is empty"
                : "parameter name contains characters outside [A-Za-z0-9_.-]",
            "use a short identifier-style name");
      }
    }
    // L106: distinct raw names that collapse to the same normalized form
    // ("Shards" vs "shards", "num-workers" vs "num_workers") are almost
    // always a typo for one knob; exact duplicates are L001's job.
    std::map<std::string, std::string> first_raw;  // normalized -> first raw
    std::set<std::string> raw_seen;
    for (const auto& d : drafts_) {
      if (!raw_seen.insert(d.name).second) continue;  // exact dup: L001
      const std::string norm = normalize_name(d.name);
      const auto [it, inserted] = first_raw.emplace(norm, d.name);
      if (!inserted) {
        add(kNormalizedNameCollision, Severity::kWarning, d.name,
            "name collides with '" + it->second +
                "' up to case and -/_ (journals and CLI flags will look "
                "like one knob)",
            "pick visibly distinct names or unify the spelling");
      }
    }
  }

  void check_duplicate_names() {
    std::set<std::string> seen;
    for (const auto& d : drafts_) {
      if (!seen.insert(d.name).second) {
        add(kDuplicateParam, Severity::kError, d.name,
            "parameter name declared more than once",
            "rename one of the declarations");
      }
    }
  }

  void check_domain(std::size_t i) {
    const ParamDraft& d = drafts_[i];
    switch (d.kind) {
      case conf::ParamKind::kInt: {
        if (d.int_lo > d.int_hi) {
          add(kInvertedBounds, Severity::kError, d.name,
              "lo (" + std::to_string(d.int_lo) + ") > hi (" +
                  std::to_string(d.int_hi) + ")",
              "swap the bounds");
          return;  // derived checks below would just echo the inversion
        }
        if (d.log_scale && d.int_lo < 1) {
          add(kLogScaleNonPositive, Severity::kError, d.name,
              "log scale over [" + std::to_string(d.int_lo) + ", " +
                  std::to_string(d.int_hi) + "] includes values < 1",
              "raise lo to >= 1 or drop log_scale");
        }
        if (d.int_lo == d.int_hi) {
          add(kSingletonDomain, Severity::kWarning, d.name,
              "range contains a single value (" + std::to_string(d.int_lo) +
                  ")",
              "fix the knob as a constant instead of tuning it");
        }
        if (!d.log_scale && d.int_lo >= 1 &&
            wide_decades(static_cast<double>(d.int_lo),
                         static_cast<double>(d.int_hi))) {
          add(kLinearWideRange, Severity::kWarning, d.name,
              "linear scale spans " + decades_str(d.int_lo, d.int_hi) +
                  " decades",
              "log_scale=true usually models such ranges better");
        }
        break;
      }
      case conf::ParamKind::kIntChoice: {
        if (d.int_choices.empty()) {
          add(kEmptyDomain, Severity::kError, d.name, "menu has no entries",
              "add at least one choice");
          return;
        }
        if (!std::is_sorted(d.int_choices.begin(), d.int_choices.end())) {
          add(kUnsortedMenu, Severity::kError, d.name,
              "menu is not ascending (encoding assumes sorted order)",
              "sort the menu ascending");
        }
        if (std::set<std::int64_t>(d.int_choices.begin(), d.int_choices.end())
                .size() != d.int_choices.size()) {
          add(kDuplicateMenuEntry, Severity::kError, d.name,
              "menu contains duplicate entries",
              "remove the duplicates");
        }
        if (d.int_choices.size() == 1) {
          add(kSingletonDomain, Severity::kWarning, d.name,
              "menu contains a single entry",
              "fix the knob as a constant instead of tuning it");
        }
        break;
      }
      case conf::ParamKind::kContinuous: {
        if (!std::isfinite(d.cont_lo) || !std::isfinite(d.cont_hi)) {
          add(kNonFiniteBound, Severity::kError, d.name,
              "bounds [" + util::fmt(d.cont_lo) + ", " + util::fmt(d.cont_hi) +
                  "] are not finite (encoding would produce NaN)",
              "use finite bounds");
          return;
        }
        if (d.cont_lo >= d.cont_hi) {
          add(kInvertedBounds, Severity::kError, d.name,
              "lo (" + util::fmt(d.cont_lo) + ") >= hi (" +
                  util::fmt(d.cont_hi) + ")",
              "swap or widen the bounds");
          return;
        }
        if (d.log_scale && d.cont_lo <= 0.0) {
          add(kLogScaleNonPositive, Severity::kError, d.name,
              "log scale over [" + util::fmt(d.cont_lo) + ", " +
                  util::fmt(d.cont_hi) + "] crosses or touches zero",
              "raise lo above 0 or drop log_scale");
        }
        if (!d.log_scale && d.cont_lo > 0.0 &&
            wide_decades(d.cont_lo, d.cont_hi)) {
          add(kLinearWideRange, Severity::kWarning, d.name,
              "linear scale spans " + decades_str(d.cont_lo, d.cont_hi) +
                  " decades",
              "log_scale=true usually models such ranges better");
        }
        break;
      }
      case conf::ParamKind::kCategorical: {
        if (d.categories.empty()) {
          add(kEmptyDomain, Severity::kError, d.name, "menu has no entries",
              "add at least two categories");
          return;
        }
        if (d.categories.size() == 1) {
          add(kEmptyDomain, Severity::kError, d.name,
              "menu has a single category (ConfigSpace requires two)",
              "add a second category or fix the knob as a constant");
        }
        std::set<std::string> uniq(d.categories.begin(), d.categories.end());
        if (uniq.size() != d.categories.size()) {
          add(kDuplicateMenuEntry, Severity::kError, d.name,
              "menu contains duplicate categories (one-hot encoding becomes "
              "ambiguous)",
              "remove the duplicates");
        }
        if (d.categories.size() > opts_.onehot_warn_width) {
          add(kWideOneHot, Severity::kWarning, d.name,
              "one-hot block of " + std::to_string(d.categories.size()) +
                  " coordinates inflates the surrogate dimension",
              "group rare categories or split the knob");
        }
        break;
      }
      case conf::ParamKind::kBool:
        break;
    }
  }

  void check_condition(std::size_t i) {
    const ParamDraft& d = drafts_[i];
    if (d.parent.empty()) return;
    const auto it = index_.find(d.parent);
    if (it == index_.end()) {
      add(kUnknownParent, Severity::kError, d.name,
          "activation condition references unknown parameter '" + d.parent +
              "'",
          "declare the parent or fix the name");
      return;
    }
    if (it->second > i) {
      add(kParentAfterChild, Severity::kError, d.name,
          "parent '" + d.parent +
              "' is declared after its child (ConfigSpace::add requires "
              "parents first)",
          "move the parent declaration before this parameter");
    }
    const ParamDraft& parent = drafts_[it->second];
    if (parent.kind != conf::ParamKind::kCategorical &&
        parent.kind != conf::ParamKind::kBool) {
      add(kBadParentKind, Severity::kError, d.name,
          "parent '" + d.parent + "' is not categorical or boolean",
          "condition on a categorical/boolean knob");
      return;
    }
    const std::vector<std::string> domain = parent_domain(parent);
    std::set<std::string> effective;
    std::set<std::string> seen;
    for (const auto& v : d.parent_values) {
      if (!seen.insert(v).second) {
        add(kDuplicateEnablingValue, Severity::kWarning, d.name,
            "enabling value '" + v + "' listed more than once",
            "remove the duplicate");
        continue;
      }
      if (std::find(domain.begin(), domain.end(), v) == domain.end()) {
        add(kUnknownParentValue, Severity::kError, d.name,
            "enabling value '" + v + "' is not in the domain of '" + d.parent +
                "'",
            "use one of {" + util::join(domain, ",") + "}");
      } else {
        effective.insert(v);
      }
    }
    if (effective.empty()) {
      add(kUnreachableParam, Severity::kError, d.name,
          "activation condition can never fire (no valid enabling values)",
          "list at least one value the parent can actually take");
    } else if (effective.size() == domain.size()) {
      add(kVacuousCondition, Severity::kWarning, d.name,
          "enabling set covers every value of '" + d.parent +
              "' (condition is always true)",
          "drop the condition or shrink the enabling set");
    }
  }

  void check_cycles() {
    // Follow each node's parent chain; a chain longer than the space has
    // nodes must have revisited something.
    for (std::size_t i = 0; i < drafts_.size(); ++i) {
      std::size_t cur = i;
      bool cycle = false;
      for (std::size_t hops = 0; hops <= drafts_.size(); ++hops) {
        const std::string& parent = drafts_[cur].parent;
        if (parent.empty()) break;
        const auto it = index_.find(parent);
        if (it == index_.end()) break;
        cur = it->second;
        if (cur == i) {
          cycle = true;
          break;
        }
      }
      if (cycle) {
        in_cycle_.insert(i);
        add(kConditionCycle, Severity::kError, drafts_[i].name,
            "activation condition participates in a cycle",
            "break the cycle; conditions must form a forest");
      }
    }
  }

  /// True when the parameter's activation condition can fire at least once.
  /// Unknown parents and cycle members are treated as reachable here: their
  /// dedicated diagnostics already fired and cascading L008s would bury them.
  bool reachable(std::size_t i, std::size_t depth = 0) {
    const ParamDraft& d = drafts_[i];
    if (d.parent.empty() || in_cycle_.count(i) || depth > drafts_.size()) {
      return true;
    }
    const auto it = index_.find(d.parent);
    if (it == index_.end()) return true;
    const ParamDraft& parent = drafts_[it->second];
    const std::vector<std::string> domain = parent_domain(parent);
    const bool any_valid = std::any_of(
        d.parent_values.begin(), d.parent_values.end(), [&](const auto& v) {
          return std::find(domain.begin(), domain.end(), v) != domain.end();
        });
    if (!any_valid) return false;  // L008 fired in check_condition already
    return reachable(it->second, depth + 1);
  }

  void check_reachability() {
    for (std::size_t i = 0; i < drafts_.size(); ++i) {
      const ParamDraft& d = drafts_[i];
      if (d.parent.empty() || in_cycle_.count(i)) continue;
      // Only report ancestor-induced unreachability here; the direct
      // empty-enabling-set case is reported by check_condition.
      const auto it = index_.find(d.parent);
      if (it == index_.end()) continue;
      if (reachable(i)) continue;
      const bool direct = !std::any_of(
          d.parent_values.begin(), d.parent_values.end(), [&](const auto& v) {
            const auto dom = parent_domain(drafts_[it->second]);
            return std::find(dom.begin(), dom.end(), v) != dom.end();
          });
      if (!direct) {
        add(kUnreachableParam, Severity::kError, d.name,
            "unreachable: ancestor '" + d.parent + "' can never be active",
            "fix the ancestor's activation condition");
      }
    }
  }

  void check_default(std::size_t i) {
    const ParamDraft& d = drafts_[i];
    if (!d.default_value) return;
    const conf::ParamValue& v = *d.default_value;
    bool ok = false;
    switch (d.kind) {
      case conf::ParamKind::kInt: {
        const auto* x = std::get_if<std::int64_t>(&v);
        ok = x != nullptr && *x >= d.int_lo && *x <= d.int_hi;
        break;
      }
      case conf::ParamKind::kIntChoice: {
        const auto* x = std::get_if<std::int64_t>(&v);
        ok = x != nullptr &&
             std::find(d.int_choices.begin(), d.int_choices.end(), *x) !=
                 d.int_choices.end();
        break;
      }
      case conf::ParamKind::kContinuous: {
        const auto* x = std::get_if<double>(&v);
        ok = x != nullptr && std::isfinite(*x) && *x >= d.cont_lo &&
             *x <= d.cont_hi;
        break;
      }
      case conf::ParamKind::kCategorical: {
        const auto* x = std::get_if<std::string>(&v);
        ok = x != nullptr &&
             std::find(d.categories.begin(), d.categories.end(), *x) !=
                 d.categories.end();
        break;
      }
      case conf::ParamKind::kBool:
        ok = std::holds_alternative<bool>(v);
        break;
    }
    if (!ok) {
      add(kDefaultOutOfRange, Severity::kError, d.name,
          "default value " + conf::to_string(v) +
              " is outside the parameter's own domain (canonicalization "
              "of inactive conditionals would produce an invalid config)",
          "pick a default inside the declared domain");
    }
  }

  void check_encoded_dim() {
    if (!opts_.expected_encoded_dim) return;
    std::size_t dim = 0;
    for (const auto& d : drafts_) {
      dim += d.kind == conf::ParamKind::kCategorical ? d.categories.size() : 1;
    }
    if (dim != *opts_.expected_encoded_dim) {
      add(kEncodedDimMismatch, Severity::kError, "",
          "encoded dimension " + std::to_string(dim) +
              " does not match the expected surrogate dimension " +
              std::to_string(*opts_.expected_encoded_dim),
          "re-fit the surrogate or restore the original space shape");
    }
  }

  static bool wide_decades_impl(double lo, double hi, double decades) {
    return lo > 0.0 && hi > lo && std::log10(hi / lo) >= decades;
  }
  bool wide_decades(double lo, double hi) const {
    return wide_decades_impl(lo, hi, opts_.wide_range_decades);
  }
  static std::string decades_str(double lo, double hi) {
    return util::fmt(std::log10(hi / lo), 1);
  }

  std::span<const ParamDraft> drafts_;
  const SpaceLinter::Options& opts_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::set<std::size_t> in_cycle_;
  LintReport report_;
};

}  // namespace

LintReport SpaceLinter::lint(std::span<const ParamDraft> drafts) const {
  return LintPass(drafts, options_).run();
}

LintReport SpaceLinter::lint(const conf::ConfigSpace& space) const {
  std::vector<ParamDraft> drafts;
  drafts.reserve(space.num_params());
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    drafts.push_back(ParamDraft::from_spec(space.param(i)));
  }
  return LintPass(drafts, options_).run();
}

void throw_if_errors(const LintReport& report, std::string_view context) {
  if (!report.has_errors()) return;
  throw std::invalid_argument(std::string(context) +
                              ": configuration space failed lint:\n" +
                              report.to_string());
}

std::vector<ParamDraft> malformed_demo_space() {
  std::vector<ParamDraft> drafts;
  drafts.push_back(ParamDraft::integer("workers", 64, 4));  // L002
  drafts.push_back(
      ParamDraft::continuous("learning_rate", -1e-3, 1.0, true));  // L003
  drafts.push_back(ParamDraft::continuous("momentum", 0.0,
                                          std::numeric_limits<double>::infinity()));  // L014
  drafts.push_back(ParamDraft::int_choice("batch_size", {256, 64, 64}));  // L010 + L011
  drafts.push_back(ParamDraft::categorical("sync_mode", {"bsp", "ssp", "bsp"}));  // L011
  drafts.push_back(ParamDraft::integer("staleness", 1, 16)
                       .only_when("sync_mode", {"asp"}));  // L006 + L008
  drafts.push_back(ParamDraft::integer("prefetch", 1, 8)
                       .only_when("compression", {"zlib"}));  // L004
  drafts.push_back(ParamDraft::boolean("sync_mode"));  // L001
  ParamDraft shards = ParamDraft::integer("shards", 1, 1048576);  // L104
  shards.default_value = std::int64_t{0};  // L012
  drafts.push_back(std::move(shards));
  drafts.push_back(ParamDraft::continuous("learn rate", 0.1, 1.0));  // L016
  drafts.push_back(ParamDraft::integer("Shards", 1, 8));  // L106
  return drafts;
}

}  // namespace autodml::analysis

// Config-space linter: static checks that run before any tuning budget is
// spent.
//
// A single mis-specified space silently wastes an entire BO run — a
// conditional knob whose condition can never fire explores a dead axis, a
// log-scale range that crosses zero NaN-poisons the encoder, an inverted
// bound inverts the whole response surface. The linter walks a space
// definition and reports every such defect as a structured Diagnostic
// (see diagnostics.h) instead of throwing on the first one.
//
// Two entry points:
//   - lint(drafts): checks a *declarative* description (ParamDraft) before
//     ConfigSpace construction. This is the wide net: it catches everything
//     the ParamSpec factories would reject one-by-one (inverted bounds,
//     empty menus, bad log ranges, ...) plus whole-graph defects the
//     factories cannot see (duplicate names, cycles, unreachable
//     parameters, parents declared after children).
//   - lint(space): checks an already-built ConfigSpace. Construction
//     enforces some invariants, but legal-yet-broken spaces still exist
//     (duplicate categorical entries, infinite continuous bounds, vacuous
//     conditions, singleton domains) and the encoded dimension can be
//     checked against what a surrogate expects.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "config/config_space.h"
#include "config/param.h"

namespace autodml::analysis {

/// Unvalidated parameter description: the same fields a ParamSpec holds,
/// but with no factory invariants enforced, so a linter can inspect a
/// malformed definition instead of dying on the first bad factory call.
struct ParamDraft {
  std::string name;
  conf::ParamKind kind = conf::ParamKind::kContinuous;
  std::int64_t int_lo = 0;
  std::int64_t int_hi = 0;
  double cont_lo = 0.0;
  double cont_hi = 0.0;
  bool log_scale = false;
  std::vector<std::int64_t> int_choices;
  std::vector<std::string> categories;
  std::string parent;  // empty: unconditional
  std::vector<std::string> parent_values;
  /// Explicit default; nullopt derives the canonical one (lo / first entry /
  /// false) exactly as ParamSpec::default_value() does.
  std::optional<conf::ParamValue> default_value;

  static ParamDraft from_spec(const conf::ParamSpec& spec);

  // Convenience builders for tests and demos (no validation, by design).
  static ParamDraft integer(std::string name, std::int64_t lo, std::int64_t hi,
                            bool log_scale = false);
  static ParamDraft int_choice(std::string name,
                               std::vector<std::int64_t> choices);
  static ParamDraft continuous(std::string name, double lo, double hi,
                               bool log_scale = false);
  static ParamDraft categorical(std::string name,
                                std::vector<std::string> categories);
  static ParamDraft boolean(std::string name);
  ParamDraft& only_when(std::string parent_name,
                        std::vector<std::string> values);
};

class SpaceLinter {
 public:
  struct Options {
    /// When set, the summed encoded width of the space must equal this
    /// (e.g. the input dimension a fitted surrogate expects).
    std::optional<std::size_t> expected_encoded_dim;
    /// Linear-scale ranges spanning at least this many decades get a
    /// "consider log_scale" warning (L104).
    double wide_range_decades = 4.0;
    /// One-hot categorical blocks wider than this get L105.
    std::size_t onehot_warn_width = 12;
  };

  SpaceLinter() = default;
  explicit SpaceLinter(Options options) : options_(options) {}

  LintReport lint(std::span<const ParamDraft> drafts) const;
  LintReport lint(const conf::ConfigSpace& space) const;

 private:
  Options options_;
};

/// Throws std::invalid_argument carrying the full report when it has any
/// error-severity diagnostic; `context` prefixes the message.
void throw_if_errors(const LintReport& report, std::string_view context);

/// A deliberately malformed draft space exercising most error codes; used
/// by `autodml_cli lint --demo` and the linter's own tests.
std::vector<ParamDraft> malformed_demo_space();

}  // namespace autodml::analysis

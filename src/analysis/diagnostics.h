// Structured diagnostics for static analysis of configuration spaces.
//
// Every finding carries a stable code (grep-able, test-able), a severity,
// the offending parameter, a human message, and a fix hint. Codes are
// partitioned by severity: L0xx are errors (the space is broken and a
// tuning run would waste its budget or corrupt the surrogate), L1xx are
// warnings (legal but suspicious — usually a smell that the space author
// meant something else).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace autodml::analysis {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity s);

// ---- Error codes (tuning would be wasted or wrong) -------------------------
inline constexpr std::string_view kDuplicateParam = "L001";
inline constexpr std::string_view kInvertedBounds = "L002";
inline constexpr std::string_view kLogScaleNonPositive = "L003";
inline constexpr std::string_view kUnknownParent = "L004";
inline constexpr std::string_view kBadParentKind = "L005";
inline constexpr std::string_view kUnknownParentValue = "L006";
inline constexpr std::string_view kConditionCycle = "L007";
inline constexpr std::string_view kUnreachableParam = "L008";
inline constexpr std::string_view kEmptyDomain = "L009";
inline constexpr std::string_view kUnsortedMenu = "L010";
inline constexpr std::string_view kDuplicateMenuEntry = "L011";
inline constexpr std::string_view kDefaultOutOfRange = "L012";
inline constexpr std::string_view kEncodedDimMismatch = "L013";
inline constexpr std::string_view kNonFiniteBound = "L014";
inline constexpr std::string_view kParentAfterChild = "L015";
inline constexpr std::string_view kInvalidParamName = "L016";

// ---- Warning codes (legal but suspicious) ----------------------------------
inline constexpr std::string_view kVacuousCondition = "L101";
inline constexpr std::string_view kSingletonDomain = "L102";
inline constexpr std::string_view kDuplicateEnablingValue = "L103";
inline constexpr std::string_view kLinearWideRange = "L104";
inline constexpr std::string_view kWideOneHot = "L105";
inline constexpr std::string_view kNormalizedNameCollision = "L106";

struct Diagnostic {
  std::string code;      // one of the L0xx/L1xx constants above
  Severity severity = Severity::kError;
  std::string param;     // offending parameter name ("" = whole space)
  std::string message;
  std::string fix_hint;  // actionable suggestion; may be empty

  /// "L002 error [batch_size] lo (128) > hi (16); hint: swap the bounds".
  std::string to_string() const;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const;
  std::size_t error_count() const;
  std::size_t warning_count() const;

  /// True when `code` appears at least once.
  bool has(std::string_view code) const;

  /// Diagnostics for one parameter (for targeted assertions in tests).
  std::vector<Diagnostic> for_param(std::string_view name) const;

  /// One diagnostic per line; empty string for a clean report.
  std::string to_string() const;
};

}  // namespace autodml::analysis

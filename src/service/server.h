// Unix-domain socket front end for the SessionManager.
//
// Framing is the protocol's LDJSON: clients write one request per line and
// read one response line per request, in order, per connection. The accept
// loop runs on the caller's thread (serve() blocks); each accepted
// connection is handled by a task on a dedicated connection pool —
// separate from the manager's session-op pool, so a connection handler
// blocking on a session reply can never starve the workers that produce
// it. serve() returns after a client issues the protocol's "shutdown" op
// (or stop() is called): the listener closes and every open connection is
// shut down so its handler unblocks and drains.
#pragma once

#include <string>
#include <vector>

#include "service/session_manager.h"
#include "util/annotations.h"
#include "util/thread_pool.h"

namespace autodml::service {

struct ServerOptions {
  std::string socket_path;
  /// Connection-handler threads = max concurrently served clients.
  std::size_t connection_threads = 8;
};

class SocketServer {
 public:
  /// Binds and listens immediately; throws std::runtime_error on any
  /// socket-layer failure (path too long, bind refused, ...).
  SocketServer(SessionManager& manager, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop; blocks until shutdown is requested. Call from one thread.
  void serve();

  /// Asynchronously requests serve() to return (idempotent, thread-safe).
  void stop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void handle_connection(int fd);
  bool stopping() const ADML_EXCLUDES(mu_);

  SessionManager* manager_;
  ServerOptions options_;
  int listen_fd_ = -1;
  mutable util::Mutex mu_;
  bool stop_ ADML_GUARDED_BY(mu_) = false;
  std::vector<int> connections_ ADML_GUARDED_BY(mu_);
  /// Declared last: destroyed first, joining every connection handler
  /// before the fd bookkeeping above disappears.
  std::unique_ptr<util::ThreadPool> conn_pool_;
};

}  // namespace autodml::service

// One tuning session: a BoTuner driven in ask/tell mode on behalf of a
// remote client that evaluates configurations on its own infrastructure.
//
// The session owns its ConfigSpace (parsed from the create-session
// request), a RemoteObjective stub (evaluation happens client-side, so
// run() must never be called), the tuner, and — when the client asked for
// durability — the tuner's crash-safe journal. Construction replays any
// existing journal, so a daemon restart resumes every session to the
// bit-identical incumbent before serving new traffic.
//
// Thread contract: ops are NOT internally synchronized. The SessionManager
// serializes all access per session (its actor queue executes ops under
// the session entry's mutex); a standalone session (tests, CLI loopback)
// is single-threaded by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/bo_tuner.h"
#include "util/json.h"

namespace autodml::service {

/// ObjectiveFunction stub for remote evaluation: the service never runs
/// configurations itself, so run() throws. target_metric/objective_is_cost
/// still parameterize the early-termination advice sent with suggestions.
class RemoteObjective final : public core::ObjectiveFunction {
 public:
  RemoteObjective(const conf::ConfigSpace& space, double target_metric,
                  bool objective_is_cost)
      : space_(&space),
        target_metric_(target_metric),
        objective_is_cost_(objective_is_cost) {}

  const conf::ConfigSpace& space() const override { return *space_; }
  core::RunOutcome run(const conf::Config&, core::RunController*) override;
  double target_metric() const override { return target_metric_; }
  bool objective_is_cost() const override { return objective_is_cost_; }

 private:
  const conf::ConfigSpace* space_;
  double target_metric_;
  bool objective_is_cost_;
};

/// Everything create-session configures. `options` is the full tuner
/// configuration (seed, budgets, journal path, surrogate knobs).
struct SessionConfig {
  std::string id;
  core::BoOptions options;
  double target_metric = 0.0;
  bool objective_is_cost = false;
  /// Admission control: max outstanding (suggested, unreported) tickets.
  int max_pending = 16;
};

class TuningSession {
 public:
  /// Builds the space/objective/tuner and replays any existing journal.
  /// Throws ServiceError on an invalid space or unusable journal.
  TuningSession(SessionConfig config, const util::JsonValue& space_json);

  const std::string& id() const { return id_; }
  const std::string& journal_path() const {
    return config_.options.journal_path;
  }

  // ---- ops (serialized by the owner; each returns the response body) ----

  /// Next proposal: {"ticket", "config", "allow_early_term", "incumbent"}.
  /// Throws too-many-pending past the admission limit, budget-exhausted
  /// when the tuner is done proposing.
  util::JsonObject suggest();

  /// Fold a reported outcome in: {"trials", "pending", "best_objective"}.
  /// Throws invalid-outcome / unknown-ticket; a failed report leaves the
  /// session state untouched.
  util::JsonObject report(std::int64_t ticket,
                          const util::JsonValue& outcome_json);

  /// Read-only snapshot: trials, pending, budget, incumbent, done.
  util::JsonObject status() const;

  /// Trials recovered from the journal during construction.
  std::size_t replayed() const { return replayed_; }

 private:
  util::JsonObject status_fields() const;

  std::string id_;
  SessionConfig config_;
  // Order matters: configs point into the space, the tuner points at the
  // objective; destruction must run tuner -> objective -> space.
  std::unique_ptr<conf::ConfigSpace> space_;
  std::unique_ptr<RemoteObjective> objective_;
  std::unique_ptr<core::BoTuner> tuner_;
  std::size_t replayed_ = 0;
};

}  // namespace autodml::service

// The tuning service wire protocol: line-delimited JSON request/response.
//
// One request per line, one response line per request, in order. Every
// request is an object with an "op" string; ops addressing a session carry
// a "session" id. An optional "id" member (any JSON value) is echoed
// verbatim in the response so pipelined clients can correlate.
//
//   request  := {"op": <op>, "session"?: s, "id"?: v, ...op fields}
//   response := {"ok": true,  "id"?: v, ...op fields}
//             | {"ok": false, "id"?: v, "error": <code>, "detail": s}
//
// Ops: create-session, suggest, report, status, close-session, ping,
// stats, shutdown — grammar and a full transcript in README.md §Service.
// This header holds the pieces shared by the session manager, the tests
// and the CLI: request parsing, response framing, and the RunOutcome wire
// form (the journal's outcome schema, minus the server-owned config).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/tuner_types.h"
#include "util/json.h"

namespace autodml::service {

/// Parsed request envelope. `body` is the whole request object.
struct Request {
  std::string op;
  std::string session;           // empty when absent
  util::JsonValue id;            // null when absent
  bool has_id = false;
  util::JsonValue body;
};

/// Parse one frame. Throws ServiceError(bad-frame) on malformed JSON or a
/// non-object root, ServiceError(bad-request) on a missing/ill-typed "op".
Request parse_request(std::string_view line);

/// Success/failure response lines (no trailing newline). `fields` is
/// merged into the response object; `ok` and (on failure) `error`/`detail`
/// are reserved keys.
std::string ok_line(const Request& request, util::JsonObject fields);
std::string error_line(const Request& request, const std::string& code,
                       const std::string& detail);

/// RunOutcome <-> wire JSON. The schema is the journal record's "outcome"
/// object (session_io): feasible/aborted/failure/objective/spent_seconds/
/// usd_per_hour required, failure_kind/attempts/projected_objective
/// optional. Parsing throws ServiceError(invalid-outcome).
util::JsonValue outcome_to_json(const core::RunOutcome& outcome);
core::RunOutcome outcome_from_json(const util::JsonValue& value);

// Shared defensive accessors for request fields; throw
// ServiceError(bad-request) naming the field.
const util::JsonValue& require_field(const util::JsonValue& object,
                                     std::string_view key,
                                     const std::string& where);
std::string require_string_field(const util::JsonValue& object,
                                 std::string_view key,
                                 const std::string& where);
double require_number_field(const util::JsonValue& object,
                            std::string_view key, const std::string& where);
std::int64_t require_int_field(const util::JsonValue& object,
                               std::string_view key, const std::string& where);

}  // namespace autodml::service

#include "service/protocol.h"

#include <cmath>
#include <limits>

#include "core/failure.h"
#include "service/error.h"

namespace autodml::service {

namespace {

using util::JsonObject;
using util::JsonValue;

}  // namespace

const JsonValue& require_field(const JsonValue& object, std::string_view key,
                               const std::string& where) {
  if (!object.is_object() || !object.contains(key))
    throw ServiceError(errc::kBadRequest,
                       where + ": missing '" + std::string(key) + "'");
  return object.at(key);
}

std::string require_string_field(const JsonValue& object, std::string_view key,
                                 const std::string& where) {
  const JsonValue& v = require_field(object, key, where);
  if (!v.is_string())
    throw ServiceError(errc::kBadRequest,
                       where + ": '" + std::string(key) + "' must be a string");
  return v.as_string();
}

double require_number_field(const JsonValue& object, std::string_view key,
                            const std::string& where) {
  const JsonValue& v = require_field(object, key, where);
  if (!v.is_number())
    throw ServiceError(errc::kBadRequest,
                       where + ": '" + std::string(key) + "' must be a number");
  return v.as_number();
}

std::int64_t require_int_field(const JsonValue& object, std::string_view key,
                               const std::string& where) {
  const double d = require_number_field(object, key, where);
  if (d != std::floor(d))
    throw ServiceError(errc::kBadRequest, where + ": '" + std::string(key) +
                                              "' must be an integer");
  return static_cast<std::int64_t>(d);
}

Request parse_request(std::string_view line) {
  JsonValue body(nullptr);
  try {
    body = util::parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw ServiceError(errc::kBadFrame, e.what());
  }
  if (!body.is_object())
    throw ServiceError(errc::kBadFrame, "request must be a JSON object");

  Request request;
  if (body.contains("id")) {
    request.id = body.at("id");
    request.has_id = true;
  }
  request.body = std::move(body);
  request.op = require_string_field(request.body, "op", "request");
  if (request.body.contains("session")) {
    const JsonValue& s = request.body.at("session");
    if (!s.is_string())
      throw ServiceError(errc::kBadRequest,
                         "request: 'session' must be a string");
    request.session = s.as_string();
  }
  return request;
}

std::string ok_line(const Request& request, JsonObject fields) {
  fields.emplace("ok", JsonValue(true));
  if (request.has_id) fields.emplace("id", request.id);
  return util::dump_json(JsonValue(std::move(fields)));
}

std::string error_line(const Request& request, const std::string& code,
                       const std::string& detail) {
  JsonObject fields;
  fields.emplace("ok", JsonValue(false));
  fields.emplace("error", JsonValue(code));
  fields.emplace("detail", JsonValue(detail));
  if (request.has_id) fields.emplace("id", request.id);
  return util::dump_json(JsonValue(std::move(fields)));
}

JsonValue outcome_to_json(const core::RunOutcome& outcome) {
  JsonObject out;
  out.emplace("feasible", JsonValue(outcome.feasible));
  out.emplace("aborted", JsonValue(outcome.aborted));
  out.emplace("failure", JsonValue(outcome.failure));
  out.emplace("failure_kind",
              JsonValue(core::to_string(outcome.failure_kind)));
  out.emplace("attempts", JsonValue(outcome.attempts));
  const bool has_objective = outcome.feasible && !outcome.aborted &&
                             std::isfinite(outcome.objective);
  out.emplace("objective", has_objective ? JsonValue(outcome.objective)
                                         : JsonValue(nullptr));
  out.emplace("projected_objective",
              std::isfinite(outcome.projected_objective)
                  ? JsonValue(outcome.projected_objective)
                  : JsonValue(nullptr));
  out.emplace("spent_seconds", JsonValue(outcome.spent_seconds));
  out.emplace("usd_per_hour", JsonValue(outcome.usd_per_hour));
  return JsonValue(std::move(out));
}

core::RunOutcome outcome_from_json(const JsonValue& value) {
  // Mirrors trial_from_json's outcome block (session_io.cpp) so the wire
  // form and the journal record stay one schema; failures carry the
  // protocol's typed code instead of invalid_argument.
  const auto fail = [](const std::string& detail) -> ServiceError {
    return ServiceError(errc::kInvalidOutcome, "outcome: " + detail);
  };
  if (!value.is_object()) throw fail("must be an object");
  const auto get = [&](std::string_view key) -> const JsonValue& {
    if (!value.contains(key))
      throw fail("missing '" + std::string(key) + "'");
    return value.at(key);
  };
  const auto get_bool = [&](std::string_view key) {
    const JsonValue& v = get(key);
    if (!v.is_bool()) throw fail("'" + std::string(key) + "' must be a bool");
    return v.as_bool();
  };
  const auto get_number = [&](std::string_view key) {
    const JsonValue& v = get(key);
    if (!v.is_number())
      throw fail("'" + std::string(key) + "' must be a number");
    return v.as_number();
  };

  core::RunOutcome outcome;
  outcome.feasible = get_bool("feasible");
  outcome.aborted = get_bool("aborted");
  const JsonValue& failure = get("failure");
  if (!failure.is_string()) throw fail("'failure' must be a string");
  outcome.failure = failure.as_string();
  const JsonValue& objective = get("objective");
  if (objective.is_null()) {
    outcome.objective = std::numeric_limits<double>::infinity();
  } else if (objective.is_number()) {
    outcome.objective = objective.as_number();
  } else {
    throw fail("'objective' must be a number or null");
  }
  outcome.spent_seconds = get_number("spent_seconds");
  if (!(outcome.spent_seconds >= 0.0))
    throw fail("'spent_seconds' must be >= 0");
  outcome.usd_per_hour = get_number("usd_per_hour");
  if (value.contains("failure_kind")) {
    const JsonValue& kind = value.at("failure_kind");
    if (!kind.is_string()) throw fail("'failure_kind' must be a string");
    try {
      outcome.failure_kind = core::failure_kind_from_string(kind.as_string());
    } catch (const std::exception& e) {
      throw fail(e.what());
    }
  } else {
    outcome.failure_kind =
        outcome.feasible ? core::FailureKind::kNone
                         : core::classify_failure_text(outcome.failure);
  }
  if (value.contains("attempts")) {
    const double attempts = get_number("attempts");
    if (attempts < 1.0 || attempts != std::floor(attempts))
      throw fail("'attempts' must be an integer >= 1");
    outcome.attempts = static_cast<int>(attempts);
  }
  if (value.contains("projected_objective") &&
      !value.at("projected_objective").is_null()) {
    outcome.projected_objective = get_number("projected_objective");
  }
  return outcome;
}

}  // namespace autodml::service

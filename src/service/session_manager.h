// SessionManager: shards thousands of independent ask/tell tuning sessions
// across one util::ThreadPool and speaks the line-delimited JSON protocol.
//
// Threading model — actor per session. Every session lives in an Entry
// holding (a) an op queue and (b) the TuningSession state, each behind its
// own mutex. handle_line() parses the frame, enqueues the op on its
// session's queue and blocks on the reply future; the first op landing on
// an idle queue submits a *drain* task to the shared worker pool, which
// executes queued ops back-to-back under the entry's state mutex until the
// queue is empty. This gives:
//
//   - per-session serialization (one drain at a time per entry, so the
//     BoTuner never sees concurrent ops),
//   - cross-session parallelism (drains for different sessions run on
//     different pool workers),
//   - burst batching (a burst of suggest calls against one session queues
//     up and is served by one drain, each ask conditioned on the fantasies
//     of the previous ones — the amortization the acquisition pipeline
//     already provides),
//   - bounded threads (thousands of sessions share `workers` threads; the
//     pool never blocks on a future, so there is no starvation deadlock).
//
// handle_line is safe to call from any number of threads (socket
// connection handlers, or tests driving the loopback transport directly).
//
// Durability: a session created with a "journal" path owns that file via
// the tuner's crash-safe TrialJournal. The manager keeps a journal-path
// registry so two live sessions can never share one journal (two
// TrialJournal writers would interleave records and corrupt replay) —
// creating the second returns the typed error "journal-in-use".
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "service/protocol.h"
#include "service/session.h"
#include "util/annotations.h"
#include "util/thread_pool.h"

namespace autodml::service {

struct ServiceOptions {
  /// Worker threads shared by every session's op drains.
  std::size_t workers = 4;
  /// Admission control: create-session past this count is rejected.
  std::size_t max_sessions = 4096;
  /// Default per-session cap on outstanding suggestions (create-session
  /// may override per session via options.max_pending).
  int default_max_pending = 16;
};

class SessionManager {
 public:
  explicit SessionManager(ServiceOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// The loopback transport: one request frame in, one response line out
  /// (no trailing newline). Never throws on client errors — every failure
  /// is a typed {"ok": false, "error": ...} response. Thread-safe.
  std::string handle_line(const std::string& line);

  /// True once a shutdown request was served (the socket server polls it).
  bool shutdown_requested() const;

  std::size_t active_sessions() const;

 private:
  /// One queued request plus the promise its caller blocks on. The
  /// create-session op carries its pre-validated config so admission
  /// happens on the caller thread but construction on the pool.
  struct Op {
    Request request;
    std::shared_ptr<SessionConfig> create_config;
    std::shared_ptr<std::promise<std::string>> reply;
  };

  /// One session's actor: the op queue and the session state, each behind
  /// its own mutex so enqueuing never blocks on an op in progress. Only
  /// the (single, `draining`-guarded) drain task takes state_mu, but the
  /// annotation keeps every access provably locked.
  struct Entry {
    util::Mutex queue_mu;
    std::deque<Op> queue ADML_GUARDED_BY(queue_mu);
    bool draining ADML_GUARDED_BY(queue_mu) = false;
    util::Mutex state_mu;
    std::unique_ptr<TuningSession> session ADML_GUARDED_BY(state_mu);
    bool closed ADML_GUARDED_BY(state_mu) = false;
  };

  std::string dispatch(const Request& request);
  std::string handle_create(const Request& request);
  std::string route_to_session(const Request& request);
  std::shared_ptr<Entry> find_entry(const std::string& id) const;
  void enqueue(const std::shared_ptr<Entry>& entry, Op op);
  void drain(const std::shared_ptr<Entry>& entry);
  std::string execute_op(Entry& entry, Op& op) ADML_REQUIRES(entry.state_mu);
  /// Drops the session from the registry (and frees its journal path).
  void forget_session(const std::string& id, const std::string& journal);
  std::string format_error(const Request& request, const std::string& code,
                           const std::string& detail);

  ServiceOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  mutable util::Mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> sessions_
      ADML_GUARDED_BY(mu_);
  /// journal path -> owning session id (see the durability note above).
  std::map<std::string, std::string> journal_owners_ ADML_GUARDED_BY(mu_);
  std::uint64_t sessions_created_ ADML_GUARDED_BY(mu_) = 0;
  mutable util::Mutex shutdown_mu_;
  bool shutdown_ ADML_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace autodml::service

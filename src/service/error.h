// Typed errors for the tuning service protocol.
//
// Every failure a client can cause — malformed frame, unknown session,
// exhausted budget — is reported as a ServiceError carrying a stable
// machine-readable code; the protocol layer turns it into an
// {"ok": false, "error": <code>, "detail": <what>} response. Nothing a
// client sends may crash the daemon or corrupt a session: handlers throw,
// the dispatcher catches, the session's state is untouched (ops mutate
// tuner state only after validation succeeds).
#pragma once

#include <stdexcept>
#include <string>

namespace autodml::service {

/// Stable protocol error codes (the "error" field of a failure response).
namespace errc {
inline constexpr const char* kBadFrame = "bad-frame";
inline constexpr const char* kBadRequest = "bad-request";
inline constexpr const char* kUnknownOp = "unknown-op";
inline constexpr const char* kUnknownSession = "unknown-session";
inline constexpr const char* kSessionExists = "session-exists";
inline constexpr const char* kSessionClosed = "session-closed";
inline constexpr const char* kUnknownTicket = "unknown-ticket";
inline constexpr const char* kBudgetExhausted = "budget-exhausted";
inline constexpr const char* kTooManyPending = "too-many-pending";
inline constexpr const char* kTooManySessions = "too-many-sessions";
inline constexpr const char* kJournalInUse = "journal-in-use";
inline constexpr const char* kInvalidSpace = "invalid-space";
inline constexpr const char* kInvalidOutcome = "invalid-outcome";
inline constexpr const char* kInternal = "internal";
}  // namespace errc

class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, const std::string& detail)
      : std::runtime_error(detail), code_(std::move(code)) {}

  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

}  // namespace autodml::service

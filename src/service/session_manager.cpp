#include "service/session_manager.h"

#include <utility>

#include "core/acquisition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/error.h"

namespace autodml::service {

namespace {

using util::JsonObject;
using util::JsonValue;

int positive_int_option(const JsonValue& options, const std::string& key) {
  const std::int64_t v = require_int_field(options, key, "options");
  if (v <= 0)
    throw ServiceError(errc::kBadRequest,
                       "options: '" + key + "' must be > 0");
  return static_cast<int>(v);
}

/// create-session request -> tuner configuration. Every option key is
/// validated; an unknown key is rejected loudly (a typo silently falling
/// back to a default would tune the wrong thing for the whole session).
SessionConfig parse_session_config(const Request& request,
                                   const ServiceOptions& defaults) {
  if (request.session.empty())
    throw ServiceError(errc::kBadRequest,
                       "create-session: non-empty 'session' id required");
  SessionConfig config;
  config.id = request.session;
  config.max_pending = defaults.default_max_pending;
  core::BoOptions& bo = config.options;
  // Service sessions always run the ask/tell state machine, which matches
  // the depth-one forced-async pipeline (proposal indices stamped); the
  // client controls actual evaluation parallelism by how many suggestions
  // it holds outstanding, not by server-side executor knobs.
  bo.async_q = 1;
  bo.async_workers = 0;
  bo.acq_threads = 1;

  const JsonValue& body = request.body;
  if (body.contains("seed")) {
    const std::int64_t seed = require_int_field(body, "seed", "request");
    if (seed < 0)
      throw ServiceError(errc::kBadRequest, "request: 'seed' must be >= 0");
    bo.seed = static_cast<std::uint64_t>(seed);
  }
  if (body.contains("journal")) {
    bo.journal_path = require_string_field(body, "journal", "request");
    if (bo.journal_path.empty())
      throw ServiceError(errc::kBadRequest,
                         "request: 'journal' must be a non-empty path");
  }
  if (body.contains("target_metric"))
    config.target_metric =
        require_number_field(body, "target_metric", "request");
  if (body.contains("objective_is_cost")) {
    const JsonValue& v = body.at("objective_is_cost");
    if (!v.is_bool())
      throw ServiceError(errc::kBadRequest,
                         "request: 'objective_is_cost' must be a bool");
    config.objective_is_cost = v.as_bool();
  }
  if (!body.contains("options")) return config;

  const JsonValue& options = body.at("options");
  if (!options.is_object())
    throw ServiceError(errc::kBadRequest,
                       "request: 'options' must be an object");
  for (const auto& [key, value] : options.as_object()) {
    if (key == "max_evaluations") {
      bo.max_evaluations = positive_int_option(options, key);
    } else if (key == "initial_design_size") {
      bo.initial_design_size = positive_int_option(options, key);
    } else if (key == "max_pending") {
      config.max_pending = positive_int_option(options, key);
    } else if (key == "acquisition") {
      const std::string name =
          require_string_field(options, key, "options");
      try {
        bo.acquisition = core::acquisition_from_string(name);
      } catch (const std::invalid_argument& e) {
        throw ServiceError(errc::kBadRequest,
                           std::string("options: ") + e.what());
      }
    } else if (key == "random_interleave_prob") {
      const double p = require_number_field(options, key, "options");
      if (!(p >= 0.0 && p <= 1.0))
        throw ServiceError(
            errc::kBadRequest,
            "options: 'random_interleave_prob' must be in [0, 1]");
      bo.random_interleave_prob = p;
    } else if (key == "max_spent_seconds") {
      const double s = require_number_field(options, key, "options");
      if (!(s > 0.0))
        throw ServiceError(errc::kBadRequest,
                           "options: 'max_spent_seconds' must be > 0");
      bo.max_spent_seconds = s;
    } else if (key == "early_term") {
      const JsonValue& v = options.at(key);
      if (!v.is_bool())
        throw ServiceError(errc::kBadRequest,
                           "options: 'early_term' must be a bool");
      bo.early_term.enabled = v.as_bool();
    } else if (key == "gp_restarts") {
      bo.surrogate.gp.restarts = positive_int_option(options, key);
    } else if (key == "gp_adam_iterations") {
      bo.surrogate.gp.adam_iterations = positive_int_option(options, key);
    } else if (key == "acq_random_candidates") {
      bo.acq_optimizer.random_candidates = positive_int_option(options, key);
    } else if (key == "refit_every") {
      bo.surrogate.hyperopt_every = positive_int_option(options, key);
    } else {
      throw ServiceError(errc::kBadRequest,
                         "options: unknown key '" + key + "'");
    }
  }
  return config;
}

}  // namespace

SessionManager::SessionManager(ServiceOptions options)
    : options_(options),
      pool_(std::make_unique<util::ThreadPool>(
          options.workers > 0 ? options.workers : 1)) {}

SessionManager::~SessionManager() {
  // ~ThreadPool drains the queue, so every in-flight drain finishes (and
  // every waiting handle_line caller gets its reply) before teardown.
  pool_.reset();
}

bool SessionManager::shutdown_requested() const {
  util::MutexLock lock(shutdown_mu_);
  return shutdown_;
}

std::size_t SessionManager::active_sessions() const {
  util::MutexLock lock(mu_);
  return sessions_.size();
}

std::string SessionManager::format_error(const Request& request,
                                         const std::string& code,
                                         const std::string& detail) {
  ADML_COUNT("service.errors", 1);
  return error_line(request, code, detail);
}

std::string SessionManager::handle_line(const std::string& line) {
  ADML_SPAN("service.handle_line");
  ADML_COUNT("service.requests", 1);
  Request request;
  try {
    request = parse_request(line);
  } catch (const ServiceError& e) {
    return format_error(Request{}, e.code(), e.what());
  }
  try {
    return dispatch(request);
  } catch (const ServiceError& e) {
    return format_error(request, e.code(), e.what());
  } catch (const std::exception& e) {
    return format_error(request, errc::kInternal, e.what());
  }
}

std::string SessionManager::dispatch(const Request& request) {
  if (request.op == "ping") {
    JsonObject fields;
    fields.emplace("pong", JsonValue(true));
    return ok_line(request, std::move(fields));
  }
  if (request.op == "stats") {
    JsonObject fields;
    {
      util::MutexLock lock(mu_);
      fields.emplace("sessions_active",
                     JsonValue(static_cast<double>(sessions_.size())));
      fields.emplace("sessions_created",
                     JsonValue(static_cast<double>(sessions_created_)));
    }
    fields.emplace("workers", JsonValue(static_cast<double>(pool_->size())));
    return ok_line(request, std::move(fields));
  }
  if (request.op == "shutdown") {
    {
      util::MutexLock lock(shutdown_mu_);
      shutdown_ = true;
    }
    JsonObject fields;
    fields.emplace("stopping", JsonValue(true));
    return ok_line(request, std::move(fields));
  }
  if (request.op == "create-session") return handle_create(request);
  if (request.op == "suggest" || request.op == "report" ||
      request.op == "status" || request.op == "close-session") {
    return route_to_session(request);
  }
  throw ServiceError(errc::kUnknownOp,
                     "unknown op '" + request.op + "'");
}

std::string SessionManager::handle_create(const Request& request) {
  auto config = std::make_shared<SessionConfig>(
      parse_session_config(request, options_));
  require_field(request.body, "space", "create-session");  // fail fast

  auto entry = std::make_shared<Entry>();
  {
    // Admission + registration are atomic under the manager mutex: a
    // duplicate id or a journal path another live session owns is rejected
    // before any state exists.
    util::MutexLock lock(mu_);
    if (sessions_.count(config->id) != 0) {
      throw ServiceError(errc::kSessionExists,
                         "session '" + config->id + "' already exists");
    }
    if (sessions_.size() >= options_.max_sessions) {
      throw ServiceError(
          errc::kTooManySessions,
          "session limit reached (" + std::to_string(options_.max_sessions) +
              " active); close sessions or raise --max-sessions");
    }
    if (!config->options.journal_path.empty()) {
      auto [it, inserted] = journal_owners_.emplace(
          config->options.journal_path, config->id);
      if (!inserted) {
        throw ServiceError(errc::kJournalInUse,
                           "journal '" + config->options.journal_path +
                               "' is owned by live session '" + it->second +
                               "'");
      }
    }
    sessions_.emplace(config->id, entry);
    ++sessions_created_;
    ADML_COUNT("service.sessions_created", 1);
    ADML_GAUGE_SET("service.sessions_active",
                   static_cast<double>(sessions_.size()));
  }

  // Construction (space parse, GP setup, journal replay) runs on the pool
  // as the actor's first op; anything racing in behind it queues in order.
  Op op;
  op.request = request;
  op.create_config = std::move(config);
  op.reply = std::make_shared<std::promise<std::string>>();
  std::future<std::string> reply = op.reply->get_future();
  enqueue(entry, std::move(op));
  return reply.get();
}

std::string SessionManager::route_to_session(const Request& request) {
  std::shared_ptr<Entry> entry = find_entry(request.session);
  Op op;
  op.request = request;
  op.reply = std::make_shared<std::promise<std::string>>();
  std::future<std::string> reply = op.reply->get_future();
  enqueue(entry, std::move(op));
  return reply.get();
}

std::shared_ptr<SessionManager::Entry> SessionManager::find_entry(
    const std::string& id) const {
  if (id.empty())
    throw ServiceError(errc::kBadRequest,
                       "request: non-empty 'session' id required");
  util::MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw ServiceError(errc::kUnknownSession, "no session '" + id + "'");
  return it->second;
}

void SessionManager::enqueue(const std::shared_ptr<Entry>& entry, Op op) {
  bool schedule = false;
  {
    util::MutexLock lock(entry->queue_mu);
    entry->queue.push_back(std::move(op));
    if (!entry->draining) {
      entry->draining = true;
      schedule = true;
    }
  }
  if (schedule) {
    auto self = entry;
    (void)pool_->submit([this, self] { drain(self); });
  }
}

void SessionManager::drain(const std::shared_ptr<Entry>& entry) {
  ADML_SPAN("service.actor_drain");
  std::size_t batch = 0;
  while (true) {
    Op op;
    {
      util::MutexLock lock(entry->queue_mu);
      if (entry->queue.empty()) {
        entry->draining = false;
        break;
      }
      op = std::move(entry->queue.front());
      entry->queue.pop_front();
    }
    ++batch;
    std::string response;
    {
      util::MutexLock lock(entry->state_mu);
      response = execute_op(*entry, op);
    }
    op.reply->set_value(std::move(response));
  }
  // Batch depth > 1 means a burst against one session was served by a
  // single drain — the suggest-amortization path.
  ADML_GAUGE_MAX("service.actor_batch_peak", static_cast<double>(batch));
}

std::string SessionManager::execute_op(Entry& entry, Op& op) {
  const Request& request = op.request;
  try {
    if (request.op == "create-session") {
      ADML_SPAN("service.create_session");
      TuningSession* session = nullptr;
      try {
        entry.session = std::make_unique<TuningSession>(
            *op.create_config, request.body.at("space"));
        session = entry.session.get();
      } catch (...) {
        // Construction failed: retract the registration made at admission
        // so the id (and journal path) are immediately reusable.
        entry.closed = true;
        forget_session(op.create_config->id,
                       op.create_config->options.journal_path);
        throw;
      }
      JsonObject fields = session->status();
      return ok_line(request, std::move(fields));
    }
    if (entry.closed) {
      throw ServiceError(errc::kSessionClosed,
                         "session '" + request.session + "' was closed");
    }
    if (!entry.session) {
      throw ServiceError(errc::kUnknownSession,
                         "session '" + request.session + "' failed to "
                         "initialize");
    }
    if (request.op == "suggest") {
      ADML_SPAN("service.suggest");
      return ok_line(request, entry.session->suggest());
    }
    if (request.op == "report") {
      ADML_SPAN("service.report");
      const std::int64_t ticket =
          require_int_field(request.body, "ticket", "report");
      const JsonValue& outcome =
          require_field(request.body, "outcome", "report");
      return ok_line(request, entry.session->report(ticket, outcome));
    }
    if (request.op == "status") {
      ADML_SPAN("service.status");
      return ok_line(request, entry.session->status());
    }
    // close-session: final status, then drop the session. The journal is
    // complete (every append was fsynced), so closing is purely a registry
    // operation; a later create-session pointing at the same journal
    // resumes by replay.
    ADML_SPAN("service.close_session");
    JsonObject fields = entry.session->status();
    const std::string journal = entry.session->journal_path();
    entry.session.reset();
    entry.closed = true;
    forget_session(request.session, journal);
    fields.emplace("closed", JsonValue(true));
    return ok_line(request, std::move(fields));
  } catch (const ServiceError& e) {
    return format_error(request, e.code(), e.what());
  } catch (const std::exception& e) {
    return format_error(request, errc::kInternal, e.what());
  }
}

void SessionManager::forget_session(const std::string& id,
                                    const std::string& journal) {
  util::MutexLock lock(mu_);
  sessions_.erase(id);
  if (!journal.empty()) {
    auto it = journal_owners_.find(journal);
    if (it != journal_owners_.end() && it->second == id)
      journal_owners_.erase(it);
  }
  ADML_GAUGE_SET("service.sessions_active",
                 static_cast<double>(sessions_.size()));
}

}  // namespace autodml::service

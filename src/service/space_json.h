// JSON wire form of configuration spaces and configurations.
//
// A client creating a session ships its ConfigSpace inline as JSON; every
// suggest response carries the proposed configuration the same way. The
// grammar mirrors ParamSpec's factory API:
//
//   space  := {"params": [param, ...]}
//   param  := {"name": s, "kind": "int",          "lo": n, "hi": n,
//              "log"?: b, cond?}
//           | {"name": s, "kind": "int-choice",   "choices": [n, ...], cond?}
//           | {"name": s, "kind": "continuous",   "lo": n, "hi": n,
//              "log"?: b, cond?}
//           | {"name": s, "kind": "categorical",  "categories": [s, ...],
//              cond?}
//           | {"name": s, "kind": "bool", cond?}
//   cond   := "only_when": {"parent": s, "values": [s, ...]}
//   config := {"<param name>": value, ...}   (same value forms as journals)
//
// Malformed space documents raise ServiceError("invalid-space") with the
// offending parameter named; the round trip space -> JSON -> space is
// exact (kinds, bounds, menus, conditions).
#pragma once

#include "config/config_space.h"
#include "util/json.h"

namespace autodml::service {

util::JsonValue space_to_json(const conf::ConfigSpace& space);

/// Builds a space from its wire form. Throws ServiceError(invalid-space)
/// on malformed documents (ConfigSpace::add rejections included).
conf::ConfigSpace space_from_json(const util::JsonValue& value);

/// Name -> value object, every parameter included (inactive conditionals
/// carry their canonicalized defaults, exactly like journal records).
util::JsonValue config_to_json(const conf::Config& config);

/// Parse a config against `space`; unknown names and ill-typed or
/// out-of-range values throw ServiceError(bad-request).
conf::Config config_from_json(const util::JsonValue& value,
                              const conf::ConfigSpace& space);

}  // namespace autodml::service

#include "service/space_json.h"

#include <cmath>
#include <string>
#include <vector>

#include "service/error.h"

namespace autodml::service {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

[[noreturn]] void bad_space(const std::string& detail) {
  throw ServiceError(errc::kInvalidSpace, "space: " + detail);
}

const JsonValue& require(const JsonValue& object, std::string_view key,
                         const std::string& where) {
  if (!object.is_object() || !object.contains(key))
    bad_space(where + ": missing '" + std::string(key) + "'");
  return object.at(key);
}

std::string require_string(const JsonValue& object, std::string_view key,
                           const std::string& where) {
  const JsonValue& v = require(object, key, where);
  if (!v.is_string())
    bad_space(where + ": '" + std::string(key) + "' must be a string");
  return v.as_string();
}

double require_number(const JsonValue& object, std::string_view key,
                      const std::string& where) {
  const JsonValue& v = require(object, key, where);
  if (!v.is_number())
    bad_space(where + ": '" + std::string(key) + "' must be a number");
  return v.as_number();
}

std::int64_t require_int(const JsonValue& object, std::string_view key,
                         const std::string& where) {
  const double d = require_number(object, key, where);
  if (d != std::floor(d))
    bad_space(where + ": '" + std::string(key) + "' must be an integer");
  return static_cast<std::int64_t>(d);
}

bool optional_bool(const JsonValue& object, std::string_view key,
                   const std::string& where) {
  if (!object.contains(key)) return false;
  const JsonValue& v = object.at(key);
  if (!v.is_bool())
    bad_space(where + ": '" + std::string(key) + "' must be a bool");
  return v.as_bool();
}

JsonValue value_to_json(const conf::ParamValue& v) {
  return std::visit(
      [](const auto& x) -> JsonValue {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return JsonValue(static_cast<double>(x));
        } else {
          return JsonValue(x);
        }
      },
      v);
}

conf::ParamSpec spec_from_json(const JsonValue& value) {
  if (!value.is_object()) bad_space("every param must be an object");
  const std::string name = require_string(value, "name", "param");
  const std::string where = "param '" + name + "'";
  const std::string kind = require_string(value, "kind", where);

  std::optional<conf::ParamSpec> spec;
  if (kind == "int") {
    spec = conf::ParamSpec::integer(name, require_int(value, "lo", where),
                                    require_int(value, "hi", where),
                                    optional_bool(value, "log", where));
  } else if (kind == "int-choice") {
    const JsonValue& choices = require(value, "choices", where);
    if (!choices.is_array()) bad_space(where + ": 'choices' must be an array");
    std::vector<std::int64_t> menu;
    for (const JsonValue& c : choices.as_array()) {
      if (!c.is_number() || c.as_number() != std::floor(c.as_number()))
        bad_space(where + ": every choice must be an integer");
      menu.push_back(static_cast<std::int64_t>(c.as_number()));
    }
    spec = conf::ParamSpec::int_choice(name, std::move(menu));
  } else if (kind == "continuous") {
    spec = conf::ParamSpec::continuous(name, require_number(value, "lo", where),
                                       require_number(value, "hi", where),
                                       optional_bool(value, "log", where));
  } else if (kind == "categorical") {
    const JsonValue& cats = require(value, "categories", where);
    if (!cats.is_array())
      bad_space(where + ": 'categories' must be an array");
    std::vector<std::string> categories;
    for (const JsonValue& c : cats.as_array()) {
      if (!c.is_string())
        bad_space(where + ": every category must be a string");
      categories.push_back(c.as_string());
    }
    spec = conf::ParamSpec::categorical(name, std::move(categories));
  } else if (kind == "bool") {
    spec = conf::ParamSpec::boolean(name);
  } else {
    bad_space(where + ": unknown kind '" + kind + "'");
  }

  if (value.contains("only_when")) {
    const JsonValue& cond = value.at("only_when");
    const std::string cwhere = where + ": only_when";
    const std::string parent = require_string(cond, "parent", cwhere);
    const JsonValue& values = require(cond, "values", cwhere);
    if (!values.is_array()) bad_space(cwhere + ": 'values' must be an array");
    std::vector<std::string> parent_values;
    for (const JsonValue& v : values.as_array()) {
      if (!v.is_string()) bad_space(cwhere + ": every value must be a string");
      parent_values.push_back(v.as_string());
    }
    spec->only_when(parent, std::move(parent_values));
  }
  return *std::move(spec);
}

}  // namespace

JsonValue space_to_json(const conf::ConfigSpace& space) {
  JsonArray params;
  params.reserve(space.num_params());
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const conf::ParamSpec& p = space.param(i);
    JsonObject out;
    out.emplace("name", JsonValue(p.name()));
    switch (p.kind()) {
      case conf::ParamKind::kInt:
        out.emplace("kind", JsonValue("int"));
        out.emplace("lo", JsonValue(static_cast<double>(p.int_lo())));
        out.emplace("hi", JsonValue(static_cast<double>(p.int_hi())));
        if (p.log_scale()) out.emplace("log", JsonValue(true));
        break;
      case conf::ParamKind::kIntChoice: {
        out.emplace("kind", JsonValue("int-choice"));
        JsonArray choices;
        for (std::int64_t c : p.int_choices())
          choices.push_back(JsonValue(static_cast<double>(c)));
        out.emplace("choices", JsonValue(std::move(choices)));
        break;
      }
      case conf::ParamKind::kContinuous:
        out.emplace("kind", JsonValue("continuous"));
        out.emplace("lo", JsonValue(p.cont_lo()));
        out.emplace("hi", JsonValue(p.cont_hi()));
        if (p.log_scale()) out.emplace("log", JsonValue(true));
        break;
      case conf::ParamKind::kCategorical: {
        out.emplace("kind", JsonValue("categorical"));
        JsonArray categories;
        for (const std::string& c : p.categories())
          categories.push_back(JsonValue(c));
        out.emplace("categories", JsonValue(std::move(categories)));
        break;
      }
      case conf::ParamKind::kBool:
        out.emplace("kind", JsonValue("bool"));
        break;
    }
    if (p.is_conditional()) {
      JsonObject cond;
      cond.emplace("parent", JsonValue(p.parent()));
      JsonArray values;
      for (const std::string& v : p.parent_values())
        values.push_back(JsonValue(v));
      cond.emplace("values", JsonValue(std::move(values)));
      out.emplace("only_when", JsonValue(std::move(cond)));
    }
    params.push_back(JsonValue(std::move(out)));
  }
  JsonObject root;
  root.emplace("params", JsonValue(std::move(params)));
  return JsonValue(std::move(root));
}

conf::ConfigSpace space_from_json(const JsonValue& value) {
  if (!value.is_object() || !value.contains("params"))
    bad_space("must be an object with a 'params' array");
  const JsonValue& params = value.at("params");
  if (!params.is_array() || params.as_array().empty())
    bad_space("'params' must be a non-empty array");
  conf::ConfigSpace space;
  for (const JsonValue& p : params.as_array()) {
    try {
      space.add(spec_from_json(p));
    } catch (const ServiceError&) {
      throw;
    } catch (const std::exception& e) {
      // ConfigSpace::add / ParamSpec factories reject inverted bounds,
      // duplicate names, bad parents, ... — all client errors.
      bad_space(e.what());
    }
  }
  return space;
}

JsonValue config_to_json(const conf::Config& config) {
  const conf::ConfigSpace* space = config.space();
  if (space == nullptr)
    throw ServiceError(errc::kInternal, "config_to_json: unbound config");
  JsonObject out;
  for (std::size_t i = 0; i < space->num_params(); ++i) {
    out.emplace(space->param(i).name(), value_to_json(config.value_at(i)));
  }
  return JsonValue(std::move(out));
}

conf::Config config_from_json(const JsonValue& value,
                              const conf::ConfigSpace& space) {
  if (!value.is_object())
    throw ServiceError(errc::kBadRequest, "config must be an object");
  conf::Config config = space.default_config();
  for (const auto& [name, v] : value.as_object()) {
    if (!space.contains(name))
      throw ServiceError(errc::kBadRequest,
                         "config: unknown parameter '" + name + "'");
    const std::size_t idx = space.index_of(name);
    const conf::ParamSpec& spec = space.param(idx);
    conf::ParamValue pv;
    switch (spec.kind()) {
      case conf::ParamKind::kInt:
      case conf::ParamKind::kIntChoice:
        if (!v.is_number())
          throw ServiceError(errc::kBadRequest,
                             "config: '" + name + "' must be a number");
        pv = static_cast<std::int64_t>(v.as_number());
        break;
      case conf::ParamKind::kContinuous:
        if (!v.is_number())
          throw ServiceError(errc::kBadRequest,
                             "config: '" + name + "' must be a number");
        pv = v.as_number();
        break;
      case conf::ParamKind::kCategorical:
        if (!v.is_string())
          throw ServiceError(errc::kBadRequest,
                             "config: '" + name + "' must be a string");
        pv = v.as_string();
        break;
      case conf::ParamKind::kBool:
        if (!v.is_bool())
          throw ServiceError(errc::kBadRequest,
                             "config: '" + name + "' must be a bool");
        pv = v.as_bool();
        break;
    }
    config.set_value_at(idx, std::move(pv));
  }
  space.canonicalize(config);
  try {
    space.validate(config);
  } catch (const std::invalid_argument& e) {
    throw ServiceError(errc::kBadRequest, std::string("config: ") + e.what());
  }
  return config;
}

}  // namespace autodml::service

#include "service/session.h"

#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/error.h"
#include "service/protocol.h"
#include "service/space_json.h"

namespace autodml::service {

namespace {

using util::JsonObject;
using util::JsonValue;

JsonValue finite_or_null(double v) {
  return std::isfinite(v) ? JsonValue(v) : JsonValue(nullptr);
}

}  // namespace

core::RunOutcome RemoteObjective::run(const conf::Config&,
                                      core::RunController*) {
  // Ask/tell mode never evaluates; reaching this means a tune() path was
  // driven against a service session, which is a programming error.
  throw std::logic_error(
      "RemoteObjective: run() called — service sessions evaluate "
      "client-side");
}

TuningSession::TuningSession(SessionConfig config,
                             const util::JsonValue& space_json)
    : id_(config.id), config_(std::move(config)) {
  space_ = std::make_unique<conf::ConfigSpace>(space_from_json(space_json));
  objective_ = std::make_unique<RemoteObjective>(
      *space_, config_.target_metric, config_.objective_is_cost);
  try {
    tuner_ =
        std::make_unique<core::BoTuner>(*objective_, config_.options);
  } catch (const std::invalid_argument& e) {
    // Space lint errors, journal seed/shape mismatches, bad option combos:
    // all caused by the create request (or a stale journal it pointed at).
    throw ServiceError(errc::kInvalidSpace, e.what());
  }
  replayed_ = tuner_->drain_replay();
  if (replayed_ > 0) {
    ADML_COUNT("service.sessions_resumed", 1);
    ADML_COUNT("service.trials_replayed",
               static_cast<std::int64_t>(replayed_));
  }
}

JsonObject TuningSession::suggest() {
  if (static_cast<int>(tuner_->session_pending()) >= config_.max_pending) {
    throw ServiceError(
        errc::kTooManyPending,
        "session '" + id_ + "' already has " +
            std::to_string(tuner_->session_pending()) +
            " outstanding suggestions (max_pending = " +
            std::to_string(config_.max_pending) + "); report some first");
  }
  std::optional<core::BoTuner::SessionAsk> ask = tuner_->ask_next();
  if (!ask) {
    throw ServiceError(errc::kBudgetExhausted,
                       "session '" + id_ +
                           "' has exhausted its evaluation budget");
  }
  ADML_COUNT("service.suggests", 1);
  JsonObject out;
  out.emplace("ticket", JsonValue(ask->ticket));
  out.emplace("config", config_to_json(ask->config));
  out.emplace("allow_early_term", JsonValue(ask->allow_early_term));
  out.emplace("incumbent", finite_or_null(ask->incumbent));
  return out;
}

JsonObject TuningSession::report(std::int64_t ticket,
                                 const util::JsonValue& outcome_json) {
  core::Trial trial;
  trial.outcome = outcome_from_json(outcome_json);  // validate before mutate
  try {
    tuner_->tell_next(ticket, std::move(trial));
  } catch (const std::invalid_argument& e) {
    throw ServiceError(errc::kUnknownTicket, e.what());
  }
  ADML_COUNT("service.reports", 1);
  const core::TuningResult& result = tuner_->session_result();
  if (result.found_feasible()) {
    // Per-session incumbent gauge: dynamic names are fine for metrics
    // (only span names must be literal), and the registry never deletes
    // instruments, so closed sessions keep their final best visible.
    ADML_GAUGE_SET(("service.session_best." + id_), result.best_objective);
  }
  return status_fields();
}

JsonObject TuningSession::status() const { return status_fields(); }

JsonObject TuningSession::status_fields() const {
  const core::TuningResult& result = tuner_->session_result();
  JsonObject out;
  out.emplace("session", JsonValue(id_));
  out.emplace("trials",
              JsonValue(static_cast<double>(result.trials.size())));
  out.emplace("pending",
              JsonValue(static_cast<double>(tuner_->session_pending())));
  out.emplace("best_objective", finite_or_null(result.best_objective));
  out.emplace("best_config", result.found_feasible()
                                 ? config_to_json(result.best_config)
                                 : JsonValue(nullptr));
  out.emplace("total_spent_seconds",
              JsonValue(result.total_spent_seconds));
  out.emplace("done", JsonValue(tuner_->session_done()));
  out.emplace("replayed", JsonValue(static_cast<double>(replayed_)));
  return out;
}

}  // namespace autodml::service

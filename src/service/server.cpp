#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/log.h"

namespace autodml::service {

namespace {

/// write() until the whole buffer is out (short writes, EINTR).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(SessionManager& manager, ServerOptions options)
    : manager_(&manager), options_(std::move(options)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("SocketServer: socket path empty or too long: '" +
                             options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("SocketServer: socket(): ") +
                             std::strerror(errno));
  // A previous daemon's stale socket file would make bind fail; the path
  // is ours by contract, so reclaim it.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("SocketServer: bind(" + options_.socket_path +
                             "): " + detail);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("SocketServer: listen(): " + detail);
  }
  conn_pool_ = std::make_unique<util::ThreadPool>(
      options_.connection_threads > 0 ? options_.connection_threads : 1);
}

SocketServer::~SocketServer() {
  stop();
  // Unblock every connection handler, then join them (pool destructor).
  {
    util::MutexLock lock(mu_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  conn_pool_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
}

void SocketServer::stop() {
  util::MutexLock lock(mu_);
  stop_ = true;
}

bool SocketServer::stopping() const {
  util::MutexLock lock(mu_);
  return stop_;
}

void SocketServer::serve() {
  ADML_INFO << "service: listening on " << options_.socket_path;
  while (!stopping() && !manager_->shutdown_requested()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // The timeout bounds shutdown latency, not request latency: accepted
    // connections are served by the pool regardless of this loop.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ADML_WARN << "service: poll(): " << std::strerror(errno);
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      ADML_WARN << "service: accept(): " << std::strerror(errno);
      continue;
    }
    {
      util::MutexLock lock(mu_);
      connections_.push_back(fd);
    }
    ADML_COUNT("service.connections", 1);
    (void)conn_pool_->submit([this, fd] { handle_connection(fd); });
  }
  ADML_INFO << "service: accept loop stopped";
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown())
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const std::string response = manager_->handle_line(line);
      if (!write_all(fd, response + "\n")) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  // Unregister before close: once close() returns the kernel may hand the
  // same fd number to a new accept(), and a late erase would unregister
  // the *new* connection (leaving it invisible to shutdown).
  {
    util::MutexLock lock(mu_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), fd),
        connections_.end());
  }
  ::close(fd);
}

}  // namespace autodml::service

#include "sim/ps_runtime.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/flow_network.h"

namespace autodml::sim {

namespace {

constexpr double kAckBytes = 64.0;
constexpr double kRequestBytes = 128.0;

class PsSimulation {
 public:
  PsSimulation(const Cluster& cluster, const JobParams& job, util::Rng& rng,
               const PsSimOptions& options)
      : cluster_(cluster),
        job_(job),
        options_(options),
        rng_(rng),
        network_(queue_),
        fabric_(queue_, network_) {
    job_.validate();
    if (cluster_.servers.empty())
      throw std::invalid_argument("simulate_ps: cluster has no servers");
    const std::size_t w = cluster_.workers.size();
    const std::size_t s = cluster_.servers.size();
    for (const auto& node : cluster_.workers)
      worker_node_.push_back(fabric_.add_node(node.type.nic_bps()));
    for (const auto& node : cluster_.servers)
      server_node_.push_back(fabric_.add_node(node.type.nic_bps()));
    workers_.resize(w);
    server_busy_until_.assign(s, 0.0);
    for (std::size_t i = 0; i < w; ++i) worker_rng_.push_back(rng_.split());
    compression_ = compression_props(job_.compression);
  }

  RuntimeStats run() {
    const std::size_t w = cluster_.workers.size();
    target_commits_ = static_cast<std::int64_t>(w) *
                      (options_.warmup_iterations + options_.measure_iterations);
    warmup_commits_ =
        static_cast<std::int64_t>(w) * options_.warmup_iterations;
    for (std::size_t i = 0; i < w; ++i) try_start_iteration(i);
    while (!done_ && queue_.step()) {
      if (queue_.now() > options_.max_sim_seconds) break;
    }

    RuntimeStats stats;
    stats.completed = done_;
    const double t0 = measure_start_time_;
    const double t1 = queue_.now();
    const auto measured =
        static_cast<double>(total_commits_ - warmup_commits_);
    if (measured <= 0.0 || t1 <= t0) {
      // Pathological config (e.g. hopelessly slow): report zero throughput.
      return stats;
    }
    stats.sim_seconds = t1 - t0;
    stats.updates_per_second = measured / stats.sim_seconds;
    stats.samples_per_second =
        stats.updates_per_second * static_cast<double>(job_.batch_per_worker);
    stats.mean_iteration_seconds =
        measured_iteration_time_sum_ / measured;
    stats.mean_staleness = staleness_sum_ / measured;
    stats.bytes_per_update = measured_bytes_ / measured;
    stats.blocked_fraction =
        blocked_time_sum_ /
        std::max(1e-12, stats.sim_seconds * static_cast<double>(w));
    stats.fault_downtime_seconds = fault_downtime_sum_;
    stats.fault_events = fault_event_count_;
    return stats;
  }

 private:
  struct WorkerState {
    std::int64_t finished = 0;       // committed iterations
    std::int64_t version_at_compute = 0;  // total commits when compute began
    double iteration_start = 0.0;
    double blocked_since = -1.0;     // >= 0 while gated
    int pending_shards = 0;          // remaining push acks or pull arrivals
    std::vector<std::size_t> send_queue;  // shard indices awaiting a thread
    int in_flight = 0;
    bool pulling = false;            // phase flag: push (false) / pull (true)
  };

  std::int64_t min_finished() const {
    std::int64_t m = workers_[0].finished;
    for (const auto& ws : workers_) m = std::min(m, ws.finished);
    return m;
  }

  bool gate_open(std::size_t w) const {
    const auto& ws = workers_[w];
    switch (job_.sync) {
      case SyncMode::kBsp:
        return min_finished() >= ws.finished;
      case SyncMode::kAsp:
        return true;
      case SyncMode::kSsp:
        return ws.finished - min_finished() <= job_.staleness;
    }
    return true;
  }

  void try_start_iteration(std::size_t w) {
    if (done_) return;
    auto& ws = workers_[w];
    if (!gate_open(w)) {
      if (ws.blocked_since < 0.0) ws.blocked_since = queue_.now();
      blocked_workers_.push_back(w);
      return;
    }
    if (ws.blocked_since >= 0.0) {
      if (total_commits_ >= warmup_commits_)
        blocked_time_sum_ += queue_.now() - ws.blocked_since;
      ws.blocked_since = -1.0;
    }
    ws.iteration_start = queue_.now();
    ws.version_at_compute = total_commits_;
    start_compute(w);
  }

  void start_compute(std::size_t w) {
    const auto& node = cluster_.workers[w];
    auto& wrng = worker_rng_[w];
    const double raw_bytes = job_.model_bytes;
    const double flops =
        static_cast<double>(job_.batch_per_worker) * job_.flops_per_sample +
        raw_bytes * compression_.flops_per_byte;
    const double base = flops / (node.type.flops() * node.speed_factor);
    double duration = base * wrng.lognormal_median(1.0, node.jitter_sigma);
    if (options_.faults != nullptr) {
      const double now = queue_.now();
      duration *= options_.faults->compute_slowdown(w, now);
      // Crash/preemption since the last check (a crash during communication
      // is discovered here): the worker replays from its last checkpoint
      // after the restart cost, so the iteration in flight simply takes
      // that much longer. Sync gates do the rest — under BSP every
      // survivor stalls on the barrier; under ASP/SSP peers keep going.
      if (fault_checked_until_.empty())
        fault_checked_until_.resize(cluster_.workers.size(), 0.0);
      const double until = now + duration;
      const double down = options_.faults->downtime_during(
          w, fault_checked_until_[w], until);
      fault_checked_until_[w] = until;
      if (down > 0.0) {
        duration += down;
        fault_downtime_sum_ += down;
        ++fault_event_count_;
        ADML_TRACE_INSTANT("sim.fault_episode");
        ADML_COUNT("sim.fault_events", 1);
        ADML_GAUGE_ADD("sim.fault_downtime_simulated_seconds", down);
      }
    }
    queue_.schedule_after(duration, [this, w] { start_push(w); });
  }

  double network_bytes(double bytes) const {
    if (options_.faults == nullptr) return bytes;
    return bytes * options_.faults->network_penalty(queue_.now());
  }

  void start_push(std::size_t w) {
    auto& ws = workers_[w];
    const std::size_t s = cluster_.servers.size();
    ws.pulling = false;
    ws.pending_shards = static_cast<int>(s);
    ws.in_flight = 0;
    ws.send_queue.clear();
    for (std::size_t shard = 0; shard < s; ++shard)
      ws.send_queue.push_back(shard);
    pump_sends(w);
  }

  void pump_sends(std::size_t w) {
    auto& ws = workers_[w];
    while (ws.in_flight < job_.comm_threads && !ws.send_queue.empty()) {
      const std::size_t shard = ws.send_queue.back();
      ws.send_queue.pop_back();
      ++ws.in_flight;
      if (ws.pulling) {
        send_pull_request(w, shard);
      } else {
        send_push(w, shard);
      }
    }
  }

  void send_push(std::size_t w, std::size_t shard) {
    const std::size_t s = cluster_.servers.size();
    const double bytes = network_bytes(
        job_.model_bytes * compression_.push_ratio / static_cast<double>(s));
    account_bytes(bytes);
    fabric_.send(worker_node_[w], server_node_[shard], bytes,
                 job_.per_message_latency,
                 [this, w, shard] { on_push_arrived(w, shard); });
  }

  void on_push_arrived(std::size_t w, std::size_t shard) {
    // Server applies the update; servers serialize their work queue.
    const auto& server = cluster_.servers[shard];
    const double shard_bytes =
        job_.model_bytes / static_cast<double>(cluster_.servers.size());
    const double service =
        shard_bytes * job_.server_flops_per_byte /
        (server.type.flops() * server.speed_factor);
    const double start = std::max(queue_.now(), server_busy_until_[shard]);
    server_busy_until_[shard] = start + service;
    queue_.schedule_at(server_busy_until_[shard], [this, w, shard] {
      // Ack back to the worker (latency-dominated small message).
      account_bytes(kAckBytes);
      fabric_.send(server_node_[shard], worker_node_[w], kAckBytes,
                   job_.per_message_latency,
                   [this, w] { on_shard_done(w); });
    });
  }

  void send_pull_request(std::size_t w, std::size_t shard) {
    // Request (small) then the server streams the weight shard back.
    account_bytes(kRequestBytes);
    fabric_.send(worker_node_[w], server_node_[shard], kRequestBytes,
                 job_.per_message_latency, [this, w, shard] {
                   const std::size_t s = cluster_.servers.size();
                   const double bytes =
                       network_bytes(job_.model_bytes *
                                     compression_.pull_ratio /
                                     static_cast<double>(s));
                   account_bytes(bytes);
                   fabric_.send(server_node_[shard], worker_node_[w], bytes,
                                job_.per_message_latency,
                                [this, w] { on_shard_done(w); });
                 });
  }

  void on_shard_done(std::size_t w) {
    auto& ws = workers_[w];
    --ws.in_flight;
    --ws.pending_shards;
    if (ws.pending_shards > 0) {
      pump_sends(w);
      return;
    }
    if (!ws.pulling) {
      // Push complete -> start pulling fresh weights.
      const std::size_t s = cluster_.servers.size();
      ws.pulling = true;
      ws.pending_shards = static_cast<int>(s);
      ws.in_flight = 0;
      ws.send_queue.clear();
      for (std::size_t shard = 0; shard < s; ++shard)
        ws.send_queue.push_back(shard);
      pump_sends(w);
      return;
    }
    commit(w);
  }

  void commit(std::size_t w) {
    auto& ws = workers_[w];
    ++ws.finished;
    ++total_commits_;
    if (total_commits_ == warmup_commits_) {
      measure_start_time_ = queue_.now();
      measured_bytes_ = 0.0;
    }
    if (total_commits_ > warmup_commits_) {
      measured_iteration_time_sum_ += queue_.now() - ws.iteration_start;
      // Observed staleness in iteration units: commits that landed between
      // this worker reading weights and committing its own update. BSP is
      // semantically zero — the server aggregates the round's gradients
      // against one weight version, so interleaved commits are not stale
      // (the per-commit application here is a simulation artifact).
      if (job_.sync != SyncMode::kBsp) {
        const double tau =
            static_cast<double>(total_commits_ - 1 - ws.version_at_compute) /
            static_cast<double>(cluster_.workers.size());
        staleness_sum_ += std::max(0.0, tau);
      }
    }
    if (total_commits_ >= target_commits_) {
      done_ = true;
      return;
    }
    // Wake gated workers (their bound may have loosened), then continue.
    auto blocked = std::move(blocked_workers_);
    blocked_workers_.clear();
    for (std::size_t b : blocked) try_start_iteration(b);
    try_start_iteration(w);
  }

  void account_bytes(double bytes) {
    if (total_commits_ >= warmup_commits_) measured_bytes_ += bytes;
  }

  Cluster cluster_;
  JobParams job_;
  PsSimOptions options_;
  util::Rng& rng_;

  EventQueue queue_;
  FlowNetwork network_;
  StarFabric fabric_;
  CompressionProps compression_;

  std::vector<std::size_t> worker_node_;
  std::vector<std::size_t> server_node_;
  std::vector<WorkerState> workers_;
  std::vector<util::Rng> worker_rng_;
  std::vector<double> server_busy_until_;
  std::vector<std::size_t> blocked_workers_;

  std::int64_t total_commits_ = 0;
  std::int64_t warmup_commits_ = 0;
  std::int64_t target_commits_ = 0;
  double measure_start_time_ = 0.0;
  double measured_iteration_time_sum_ = 0.0;
  double staleness_sum_ = 0.0;
  double measured_bytes_ = 0.0;
  double blocked_time_sum_ = 0.0;
  double fault_downtime_sum_ = 0.0;
  std::int64_t fault_event_count_ = 0;
  std::vector<double> fault_checked_until_;  // per worker, lazily sized
  bool done_ = false;
};

}  // namespace

RuntimeStats simulate_ps(const Cluster& cluster, const JobParams& job,
                         util::Rng& rng, const PsSimOptions& options) {
  ADML_SPAN("sim.ps_run");
  ADML_COUNT("sim.ps_runs", 1);
  PsSimulation sim(cluster, job, rng, options);
  return sim.run();
}

}  // namespace autodml::sim

#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace autodml::sim {

const std::vector<InstanceType>& instance_catalog() {
  // gflops are *effective* dense-training throughputs, not peak: they bake
  // in framework efficiency so simulated iteration times land in realistic
  // ranges (hundreds of ms for mid-size CNNs on CPU shapes).
  static const std::vector<InstanceType> kCatalog = {
      {"std4", 4, 50.0, 16.0, 5.0, 0.19},
      {"std8", 8, 95.0, 32.0, 5.0, 0.38},
      {"std16", 16, 180.0, 64.0, 10.0, 0.77},
      {"cpu16", 16, 260.0, 32.0, 10.0, 0.85},
      {"mem8", 8, 90.0, 128.0, 10.0, 0.60},
      {"net8", 8, 95.0, 32.0, 25.0, 0.55},
      {"gpu1", 8, 1400.0, 60.0, 10.0, 1.55},
      {"gpu4", 32, 5200.0, 240.0, 25.0, 5.80},
  };
  return kCatalog;
}

const InstanceType& instance_by_name(std::string_view name) {
  const auto& catalog = instance_catalog();
  const auto it =
      std::find_if(catalog.begin(), catalog.end(),
                   [&](const InstanceType& t) { return t.name == name; });
  if (it == catalog.end())
    throw std::invalid_argument("instance_by_name: unknown type " +
                                std::string(name));
  return *it;
}

double Cluster::usd_per_hour() const {
  double total = 0.0;
  for (const auto& n : workers) total += n.type.usd_per_hour;
  for (const auto& n : servers) total += n.type.usd_per_hour;
  return total;
}

Cluster provision(const ClusterSpec& spec, util::Rng& rng) {
  if (spec.num_workers < 1)
    throw std::invalid_argument("provision: need at least one worker");
  if (spec.num_servers < 0)
    throw std::invalid_argument("provision: negative server count");

  const InstanceType& worker_type = instance_by_name(spec.worker_type);
  Cluster cluster;
  cluster.workers.reserve(static_cast<std::size_t>(spec.num_workers));
  for (int i = 0; i < spec.num_workers; ++i) {
    NodeProfile node;
    node.type = worker_type;
    // Persistent slowdowns only (median 1, clamped at 1 from above): real
    // clusters have laggards, not magically fast nodes.
    node.speed_factor =
        std::min(1.0, 1.0 / rng.lognormal_median(1.0, spec.heterogeneity_sigma));
    node.jitter_sigma = spec.straggler_sigma;
    cluster.workers.push_back(node);
  }
  if (spec.num_servers > 0) {
    const InstanceType& server_type = instance_by_name(spec.server_type);
    cluster.servers.reserve(static_cast<std::size_t>(spec.num_servers));
    for (int i = 0; i < spec.num_servers; ++i) {
      NodeProfile node;
      node.type = server_type;
      node.speed_factor =
          std::min(1.0, 1.0 / rng.lognormal_median(1.0, spec.heterogeneity_sigma));
      node.jitter_sigma = spec.straggler_sigma;
      cluster.servers.push_back(node);
    }
  }
  return cluster;
}

}  // namespace autodml::sim

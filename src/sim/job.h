// Job-level knobs shared by the PS and all-reduce runtimes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace autodml::sim {

enum class SyncMode { kBsp, kAsp, kSsp };
enum class Compression { kNone, kFp16, kInt8, kTopK };

SyncMode sync_mode_from_string(std::string_view s);
std::string to_string(SyncMode m);
Compression compression_from_string(std::string_view s);
std::string to_string(Compression c);

/// How a compression scheme changes traffic and compute.
/// `sample_penalty` (the statistical-efficiency cost of lossy gradients) is
/// consumed by the src/ml model, not the runtime, but lives here so one
/// table defines each scheme end to end.
struct CompressionProps {
  double push_ratio = 1.0;       // gradient bytes multiplier
  double pull_ratio = 1.0;       // weight bytes multiplier
  double flops_per_byte = 0.0;   // extra worker compute per *raw* byte
  double sample_penalty = 1.0;   // multiplier on samples-to-target
};

CompressionProps compression_props(Compression c);

/// Everything the runtimes need to know about one training job configuration
/// (the cluster arrives separately as a provisioned Cluster).
struct JobParams {
  double model_bytes = 0.0;
  double flops_per_sample = 0.0;
  int batch_per_worker = 32;
  SyncMode sync = SyncMode::kBsp;
  int staleness = 0;  // SSP bound, iterations
  int comm_threads = 4;
  Compression compression = Compression::kNone;
  double per_message_latency = 500e-6;
  /// Server-side cost of applying one byte of gradient (optimizer math).
  double server_flops_per_byte = 0.75;

  void validate() const {
    if (model_bytes <= 0.0) throw std::invalid_argument("job: model_bytes");
    if (flops_per_sample <= 0.0)
      throw std::invalid_argument("job: flops_per_sample");
    if (batch_per_worker < 1)
      throw std::invalid_argument("job: batch_per_worker");
    if (staleness < 0) throw std::invalid_argument("job: staleness");
    if (comm_threads < 1) throw std::invalid_argument("job: comm_threads");
    if (per_message_latency < 0.0)
      throw std::invalid_argument("job: per_message_latency");
  }
};

/// Steady-state throughput measured by a runtime simulation.
struct RuntimeStats {
  bool completed = false;        // simulation reached its measurement target
  double sim_seconds = 0.0;      // virtual time covered by measurement
  double updates_per_second = 0.0;  // mini-batch commits per second
  double samples_per_second = 0.0;
  double mean_iteration_seconds = 0.0;  // per-worker commit-to-commit
  double mean_staleness = 0.0;   // observed effective staleness (iterations)
  double bytes_per_update = 0.0; // network bytes moved per committed update
  double blocked_fraction = 0.0; // share of worker time spent gated (barrier/SSP)
  // Fault-injection accounting (zero when no injector is attached): restart
  // downtime added to iterations and the number of downtime events applied.
  double fault_downtime_seconds = 0.0;
  std::int64_t fault_events = 0;
};

}  // namespace autodml::sim

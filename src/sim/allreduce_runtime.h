// Ring all-reduce training runtime (discrete-event simulation).
//
// The bandwidth-optimal collective used by decentralized data-parallel
// training: after every worker finishes its gradient, the ring performs
// 2(W-1) synchronous steps; in each step every worker sends one chunk of
// model_bytes/W to its ring successor. Stragglers hurt twice — the compute
// barrier before the collective and every step barrier inside it — which is
// exactly the trade-off against parameter servers the tuner must learn.
// Semantics are BSP with an effective batch of W * batch_per_worker.
#pragma once

#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "sim/job.h"
#include "util/rng.h"

namespace autodml::sim {

struct AllReduceSimOptions {
  int warmup_iterations = 4;
  int measure_iterations = 24;
  double max_sim_seconds = 3e5;
  /// Optional transient-fault schedule (non-owning; must outlive the call).
  /// The collective is fully synchronous, so any crash, preemption, or
  /// straggler episode stalls the entire ring — the worst case the tuner
  /// must learn to trade against PS architectures under faults.
  const FaultInjector* faults = nullptr;
};

/// Runs the all-reduce simulation. Ignores `job.sync`/`job.staleness`
/// (the collective is inherently synchronous) and server-related fields.
RuntimeStats simulate_allreduce(const Cluster& cluster, const JobParams& job,
                                util::Rng& rng,
                                const AllReduceSimOptions& options = {});

}  // namespace autodml::sim

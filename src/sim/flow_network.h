// Flow-level network model with max-min fair bandwidth sharing.
//
// Packet-level simulation is orders of magnitude too slow for a tuner that
// evaluates hundreds of configurations, and unnecessary: distributed-ML
// transfers are large, so steady-state bandwidth shares dominate. We model
// each transfer as a fluid *flow* over a path of links; whenever the set of
// active flows changes, rates are recomputed by water-filling (progressive
// filling), the unique max-min fair allocation. The earliest flow completion
// is kept as a single rescheduled event in the driving EventQueue.
//
// StarFabric builds the standard cloud abstraction on top: every node has a
// dedicated full-duplex NIC (an uplink and a downlink) attached to an
// infinitely fast core, so the only contention points are node NICs — the
// regime real VM clusters are in.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "sim/event_queue.h"

namespace autodml::sim {

using LinkId = std::size_t;
using FlowId = std::uint64_t;

class FlowNetwork {
 public:
  explicit FlowNetwork(EventQueue& queue) : queue_(&queue) {}

  /// Adds a link with the given capacity (bits/second). Capacity must be
  /// positive and finite.
  LinkId add_link(double capacity_bps);

  std::size_t num_links() const { return link_capacity_.size(); }
  double link_capacity(LinkId link) const { return link_capacity_.at(link); }

  /// Starts a flow of `bits` over `path` (possibly empty = infinitely fast).
  /// `on_complete` fires from the event loop when the last bit arrives.
  FlowId start_flow(std::vector<LinkId> path, double bits,
                    std::function<void()> on_complete);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current max-min fair rate of a flow (bits/sec); 0 if unknown/finished.
  double flow_rate(FlowId id) const;

  /// Sum of rates currently crossing a link (for invariant checks).
  double link_utilization(LinkId link) const;

 private:
  struct Flow {
    FlowId id;
    std::vector<LinkId> path;
    double remaining_bits;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Credit progress for elapsed virtual time since the last update.
  void advance_progress();

  /// Recompute max-min rates and reschedule the completion event.
  void reallocate();

  /// Completion event body: retire finished flows, then fire callbacks.
  void on_completion_event();

  EventQueue* queue_;
  std::vector<double> link_capacity_;
  // Iterated in the max-min rate computation: must be ordered so the
  // floating-point accumulation order (and therefore every simulated
  // timing) is identical on every platform (adml-lint D003).
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  double last_progress_time_ = 0.0;
  EventId completion_event_ = 0;
  bool has_completion_event_ = false;
};

/// Star topology helper: per-node uplink/downlink pairs over an ideal core.
class StarFabric {
 public:
  StarFabric(EventQueue& queue, FlowNetwork& network)
      : queue_(&queue), network_(&network) {}

  /// Registers a node with the given NIC speed; returns its node id.
  std::size_t add_node(double nic_bps);

  std::size_t num_nodes() const { return uplink_.size(); }
  LinkId uplink(std::size_t node) const { return uplink_.at(node); }
  LinkId downlink(std::size_t node) const { return downlink_.at(node); }

  /// Transfers `bytes` from src to dst: a fixed propagation/handshake
  /// latency, then a flow over src's uplink and dst's downlink.
  /// Same-node transfers take only the latency. Zero-byte transfers are
  /// treated as pure-latency messages.
  void send(std::size_t src, std::size_t dst, double bytes, double latency,
            std::function<void()> on_complete);

 private:
  EventQueue* queue_;
  FlowNetwork* network_;
  std::vector<LinkId> uplink_;
  std::vector<LinkId> downlink_;
};

}  // namespace autodml::sim

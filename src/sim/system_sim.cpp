#include "sim/system_sim.h"

#include <memory>
#include <stdexcept>

namespace autodml::sim {

SystemPerformance evaluate_system(const SystemConfig& config, util::Rng& rng,
                                  const SystemSimOptions& options) {
  SystemPerformance perf;
  ClusterSpec spec = config.cluster;
  if (config.arch == Arch::kAllReduce) {
    spec.num_servers = 0;  // collective architectures have no servers
  } else if (spec.num_servers < 1) {
    throw std::invalid_argument("evaluate_system: PS arch needs servers");
  }

  const Cluster cluster = provision(spec, rng);
  perf.usd_per_hour = cluster.usd_per_hour();

  const MemoryCheck mem =
      check_memory(cluster, config.job, config.arch, config.memory);
  if (!mem.feasible) {
    perf.feasible = false;
    perf.failure = mem.reason;
    return perf;
  }

  // The injector is built only when faults are requested so a disabled
  // spec consumes nothing from `rng` and leaves legacy streams intact.
  std::unique_ptr<FaultInjector> injector;
  if (options.faults.injects_runtime_faults()) {
    injector = std::make_unique<FaultInjector>(
        options.faults, cluster.workers.size(), rng.split().next_u64(),
        options.fault_horizon_seconds);
  }

  if (config.arch == Arch::kPs) {
    PsSimOptions ps;
    ps.warmup_iterations = options.warmup_iterations;
    ps.measure_iterations = options.measure_iterations;
    ps.faults = injector.get();
    perf.runtime = simulate_ps(cluster, config.job, rng, ps);
  } else {
    AllReduceSimOptions ar;
    ar.warmup_iterations = options.warmup_iterations;
    ar.measure_iterations = options.measure_iterations;
    ar.faults = injector.get();
    perf.runtime = simulate_allreduce(cluster, config.job, rng, ar);
  }
  perf.feasible = perf.runtime.updates_per_second > 0.0;
  if (!perf.feasible) perf.failure = "simulation produced no throughput";
  return perf;
}

}  // namespace autodml::sim

// Deterministic transient-fault injection for the discrete-event runtimes.
//
// Real clusters kill training runs for reasons that have nothing to do with
// the configuration being evaluated: spot nodes get preempted, co-tenants
// steal cycles, top-of-rack switches brown out. The tuner must survive that
// environment, so the simulator can replay it: a FaultInjector pre-draws a
// seeded Poisson schedule of fault episodes over simulated time and the
// runtimes consult it while executing. Semantics are sync-discipline-aware
// by construction rather than by special-casing — a crashed or slowed
// worker simply takes longer to finish its iteration, so a BSP barrier
// stalls every survivor on it while ASP/SSP peers keep committing.
//
// Fault kinds:
//   kWorkerCrash      worker process dies; restart pays a checkpoint-restore
//                     cost before the iteration finishes
//   kPreemption       spot instance reclaimed; longer downtime (re-provision
//                     plus restore) charged the same way
//   kStragglerEpisode worker compute slowed by `factor` for a window
//   kNetworkDegrade   cluster-wide bandwidth divided by `factor` for a window
//
// Everything is deterministic given (spec, worker count, seed): the schedule
// is drawn once up front, so identical seeds yield bit-identical fault
// traces and therefore bit-identical simulations (determinism_test relies
// on this). A whole-job kill probability (the evaluation attempt dies, to
// be retried by the EvalSupervisor) is also parameterized here but applied
// at the Evaluator level, where the full run duration is known.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace autodml::sim {

enum class FaultKind {
  kWorkerCrash,
  kPreemption,
  kStragglerEpisode,
  kNetworkDegrade,
};

std::string to_string(FaultKind k);

/// Fault-environment description. All rates are Poisson arrival rates; a
/// default-constructed spec injects nothing (and costs nothing: the
/// runtimes skip every fault hook when no injector is supplied).
struct FaultSpec {
  // Transient worker crash with checkpoint-restore.
  double crash_rate_per_worker_hour = 0.0;
  double crash_restart_seconds = 30.0;
  // Spot-instance preemption: longer downtime (re-provision + restore).
  double preemption_rate_per_worker_hour = 0.0;
  double preemption_restart_seconds = 180.0;
  // Straggler episodes: compute slowed by `slowdown` for `duration`.
  double straggler_rate_per_worker_hour = 0.0;
  double straggler_slowdown = 4.0;
  double straggler_duration_seconds = 30.0;
  // Cluster-wide network degradation windows: bandwidth divided by `factor`.
  double degrade_rate_per_hour = 0.0;
  double degrade_factor = 4.0;
  double degrade_duration_seconds = 20.0;
  // Whole-evaluation transient kill (driver eviction, quota revocation);
  // consumed by wl::Evaluator, not the runtimes, because only the evaluator
  // knows the full run duration. The killed attempt is charged for the
  // simulated time it burned and reported as a transient failure.
  double job_kill_rate_per_hour = 0.0;

  bool injects_runtime_faults() const {
    return crash_rate_per_worker_hour > 0.0 ||
           preemption_rate_per_worker_hour > 0.0 ||
           straggler_rate_per_worker_hour > 0.0 || degrade_rate_per_hour > 0.0;
  }
  bool enabled() const {
    return injects_runtime_faults() || job_kill_rate_per_hour > 0.0;
  }
};

/// Canonical fault environments shared by the CLI, bench_faults, and tests.
FaultSpec light_fault_spec();
FaultSpec heavy_fault_spec();

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  std::size_t worker = 0;  // ignored for kNetworkDegrade (cluster-wide)
  double start = 0.0;      // simulated seconds
  double duration = 0.0;   // downtime (crash/preempt) or episode length
  double factor = 1.0;     // slowdown / degradation factor
};

class FaultInjector {
 public:
  /// Draws the full schedule up to `horizon_seconds` of simulated time.
  /// Deterministic given (spec, num_workers, seed).
  FaultInjector(const FaultSpec& spec, std::size_t num_workers,
                std::uint64_t seed, double horizon_seconds = 3600.0);

  /// Test hook: adopt an explicit schedule (events need not be sorted).
  FaultInjector(const FaultSpec& spec, std::size_t num_workers,
                std::vector<FaultEvent> events);

  /// Chronological schedule across all workers and kinds.
  const std::vector<FaultEvent>& trace() const { return trace_; }

  /// Total downtime (restart cost) of crash/preemption events hitting
  /// `worker` in [t0, t1). The runtime adds this to the iteration in
  /// flight, which is what makes BSP stall on the slowest survivor.
  double downtime_during(std::size_t worker, double t0, double t1) const;

  /// Compute-slowdown factor (>= 1) for work started at time t.
  double compute_slowdown(std::size_t worker, double t) const;

  /// Transfer-size multiplier (>= 1) for a send starting at time t: a
  /// degraded network is modeled as proportionally more bytes in flight.
  double network_penalty(double t) const;

  std::size_t num_workers() const { return per_worker_downtime_.size(); }

 private:
  void index_events(std::vector<FaultEvent> events);

  std::vector<FaultEvent> trace_;
  // Per-worker, sorted by start: crash/preempt (downtime) and straggler
  // episodes, plus the cluster-wide degrade windows.
  std::vector<std::vector<FaultEvent>> per_worker_downtime_;
  std::vector<std::vector<FaultEvent>> per_worker_slowdown_;
  std::vector<FaultEvent> degrade_windows_;
};

}  // namespace autodml::sim

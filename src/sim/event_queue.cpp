#include "sim/event_queue.h"

#include <stdexcept>

namespace autodml::sim {

EventId EventQueue::schedule_at(double t, std::function<void()> fn) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

EventId EventQueue::schedule_after(double delay, std::function<void()> fn) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return;  // already ran or cancelled
  handlers_.erase(it);
  cancelled_.insert(id);
  --live_count_;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (cancelled_.erase(top.id) > 0) continue;  // dead entry
    const auto it = handlers_.find(top.id);
    if (it == handlers_.end()) continue;  // defensive; should not happen
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    --live_count_;
    now_ = top.time;
    fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

void EventQueue::run_until(double t_end) {
  while (!heap_.empty()) {
    // Peek at the next live event time without running it.
    Entry top = heap_.top();
    if (cancelled_.count(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t_end) break;
    step();
  }
  now_ = std::max(now_, t_end);
}

}  // namespace autodml::sim

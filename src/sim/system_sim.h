// System-level facade: one call from configuration to measured throughput.
//
// This is the boundary the rest of AutoDML talks to: give it a full system
// configuration (architecture, cluster shape, job knobs) and it provisions a
// cluster, checks memory feasibility, runs the matching discrete-event
// runtime, and reports throughput plus dollar rate. Deterministic given the
// Rng passed in.
#pragma once

#include <string>

#include "sim/allreduce_runtime.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "sim/job.h"
#include "sim/memory_model.h"
#include "sim/ps_runtime.h"

namespace autodml::sim {

struct SystemConfig {
  Arch arch = Arch::kPs;
  ClusterSpec cluster;
  JobParams job;
  MemoryParams memory;
};

struct SystemPerformance {
  bool feasible = false;
  std::string failure;  // non-empty when infeasible (e.g. "worker OOM ...")
  RuntimeStats runtime;
  double usd_per_hour = 0.0;
};

struct SystemSimOptions {
  int warmup_iterations = 4;
  int measure_iterations = 24;
  /// Transient-fault environment. When enabled, a deterministic schedule is
  /// drawn from `rng` (so repeat attempts see fresh fault draws) covering
  /// `fault_horizon_seconds` of simulated time; the measurement window is
  /// orders of magnitude shorter, so the horizon is never the binding
  /// constraint at sane rates. Disabled specs leave the rng stream and the
  /// simulation byte-identical to a build without fault injection.
  FaultSpec faults;
  double fault_horizon_seconds = 3600.0;
};

/// Provision, check memory, simulate. PS architectures require
/// cluster.num_servers >= 1 (enforced here with a clear error).
SystemPerformance evaluate_system(const SystemConfig& config, util::Rng& rng,
                                  const SystemSimOptions& options = {});

}  // namespace autodml::sim

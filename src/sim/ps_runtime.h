// Parameter-server training runtime (discrete-event simulation).
//
// Simulates W workers training against S parameter-server shards over a
// star-topology network. Per iteration each worker: (1) waits for its sync
// gate (BSP barrier / SSP staleness bound / nothing for ASP), (2) computes a
// gradient — duration driven by its node's effective FLOP/s, a persistent
// per-node speed factor, and per-iteration lognormal jitter, (3) pushes one
// gradient shard to every server (bounded by comm_threads concurrent
// transfers; servers serialize update application), (4) pulls fresh weight
// shards back, then commits. Server NIC contention, stragglers amplified by
// barriers, and the staleness/throughput trade-off all emerge from the model
// rather than being asserted — that is the point of simulating instead of
// using a closed-form formula (the closed form lives in analytic_model.h and
// is validated against this in experiment R-T6).
#pragma once

#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "sim/job.h"
#include "util/rng.h"

namespace autodml::sim {

struct PsSimOptions {
  int warmup_iterations = 4;    // per worker, excluded from measurement
  int measure_iterations = 24;  // per worker
  double max_sim_seconds = 3e5; // abort guard for pathological configs
  /// Optional transient-fault schedule (non-owning; must outlive the call).
  /// Crash/preemption downtime extends the afflicted worker's iteration —
  /// under BSP everyone stalls on it at the barrier, under ASP/SSP the
  /// survivors keep committing — straggler episodes slow compute, and
  /// network-degradation windows inflate transfers.
  const FaultInjector* faults = nullptr;
};

/// Runs the PS simulation and returns steady-state throughput statistics.
/// Requires at least one server in the cluster. Deterministic given `rng`.
RuntimeStats simulate_ps(const Cluster& cluster, const JobParams& job,
                         util::Rng& rng, const PsSimOptions& options = {});

}  // namespace autodml::sim

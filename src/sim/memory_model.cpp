#include "sim/memory_model.h"

#include <stdexcept>

namespace autodml::sim {

Arch arch_from_string(std::string_view s) {
  if (s == "ps") return Arch::kPs;
  if (s == "allreduce") return Arch::kAllReduce;
  throw std::invalid_argument("unknown architecture: " + std::string(s));
}

std::string to_string(Arch a) {
  return a == Arch::kPs ? "ps" : "allreduce";
}

MemoryCheck check_memory(const Cluster& cluster, const JobParams& job,
                         Arch arch, const MemoryParams& params) {
  MemoryCheck check;
  const double activations =
      static_cast<double>(job.batch_per_worker) *
      params.activation_bytes_per_sample;

  // Worker: weights + local gradient (+ optimizer state when there is no
  // parameter server to keep it).
  double worker_model_copies = 2.0;  // weights + gradient
  if (arch == Arch::kAllReduce)
    worker_model_copies += params.optimizer_state_factor;
  check.worker_bytes = params.framework_overhead_bytes +
                       worker_model_copies * job.model_bytes + activations;

  for (const auto& node : cluster.workers) {
    if (check.worker_bytes > node.type.ram_bytes()) {
      check.feasible = false;
      check.reason = "worker OOM on " + node.type.name;
      return check;
    }
  }

  if (arch == Arch::kPs) {
    if (cluster.servers.empty())
      throw std::invalid_argument("check_memory: PS arch without servers");
    const double shard = job.model_bytes *
                         (1.0 + params.optimizer_state_factor) /
                         static_cast<double>(cluster.servers.size());
    check.server_bytes = params.framework_overhead_bytes + shard;
    for (const auto& node : cluster.servers) {
      if (check.server_bytes > node.type.ram_bytes()) {
        check.feasible = false;
        check.reason = "server OOM on " + node.type.name;
        return check;
      }
    }
  }
  return check;
}

}  // namespace autodml::sim

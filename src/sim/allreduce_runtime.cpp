#include "sim/allreduce_runtime.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/flow_network.h"

namespace autodml::sim {

namespace {

class AllReduceSimulation {
 public:
  AllReduceSimulation(const Cluster& cluster, const JobParams& job,
                      util::Rng& rng, const AllReduceSimOptions& options)
      : cluster_(cluster),
        job_(job),
        options_(options),
        network_(queue_),
        fabric_(queue_, network_) {
    job_.validate();
    for (const auto& node : cluster_.workers)
      worker_node_.push_back(fabric_.add_node(node.type.nic_bps()));
    for (std::size_t i = 0; i < cluster_.workers.size(); ++i)
      worker_rng_.push_back(rng.split());
    compression_ = compression_props(job_.compression);
  }

  RuntimeStats run() {
    const int total_iterations =
        options_.warmup_iterations + options_.measure_iterations;
    start_compute_phase();
    while (iteration_ < total_iterations && queue_.step()) {
      if (queue_.now() > options_.max_sim_seconds) break;
    }

    RuntimeStats stats;
    stats.completed = iteration_ >= total_iterations;
    const double t0 = measure_start_time_;
    const double t1 = queue_.now();
    const int measured = iteration_ - options_.warmup_iterations;
    if (measured <= 0 || t1 <= t0) return stats;
    const auto w = static_cast<double>(cluster_.workers.size());
    stats.sim_seconds = t1 - t0;
    // One collective iteration commits W mini-batch contributions.
    stats.updates_per_second = static_cast<double>(measured) * w / stats.sim_seconds;
    stats.samples_per_second =
        stats.updates_per_second * static_cast<double>(job_.batch_per_worker);
    stats.mean_iteration_seconds =
        stats.sim_seconds / static_cast<double>(measured);
    stats.mean_staleness = 0.0;  // synchronous by construction
    stats.bytes_per_update =
        measured_bytes_ / (static_cast<double>(measured) * w);
    stats.blocked_fraction = barrier_wait_sum_ /
                             std::max(1e-12, stats.sim_seconds * w);
    stats.fault_downtime_seconds = fault_downtime_sum_;
    stats.fault_events = fault_event_count_;
    return stats;
  }

 private:
  void start_compute_phase() {
    const std::size_t w = cluster_.workers.size();
    pending_ = static_cast<int>(w);
    compute_finish_.assign(w, 0.0);
    for (std::size_t i = 0; i < w; ++i) {
      const auto& node = cluster_.workers[i];
      const double flops =
          static_cast<double>(job_.batch_per_worker) * job_.flops_per_sample +
          job_.model_bytes * compression_.flops_per_byte;
      const double base = flops / (node.type.flops() * node.speed_factor);
      double duration =
          base * worker_rng_[i].lognormal_median(1.0, node.jitter_sigma);
      if (options_.faults != nullptr) {
        const double now = queue_.now();
        duration *= options_.faults->compute_slowdown(i, now);
        // Charge crashes/preemptions since the last check, including any
        // that landed during the ring phase, as restart time on this
        // worker's compute — the all-reduce barrier then stalls the ring.
        if (fault_checked_until_.empty())
          fault_checked_until_.resize(w, 0.0);
        const double until = now + duration;
        const double down = options_.faults->downtime_during(
            i, fault_checked_until_[i], until);
        fault_checked_until_[i] = until;
        if (down > 0.0) {
          duration += down;
          fault_downtime_sum_ += down;
          ++fault_event_count_;
          ADML_TRACE_INSTANT("sim.fault_episode");
          ADML_COUNT("sim.fault_events", 1);
          ADML_GAUGE_ADD("sim.fault_downtime_simulated_seconds", down);
        }
      }
      queue_.schedule_after(duration, [this, i] {
        compute_finish_[i] = queue_.now();
        if (--pending_ == 0) on_compute_barrier();
      });
    }
  }

  void on_compute_barrier() {
    // Straggler accounting: everyone waits for the slowest gradient.
    if (iteration_ >= options_.warmup_iterations) {
      const double barrier = queue_.now();
      for (double t : compute_finish_) barrier_wait_sum_ += barrier - t;
    }
    const std::size_t w = cluster_.workers.size();
    if (w == 1) {
      finish_iteration();
      return;
    }
    steps_left_ = 2 * (static_cast<int>(w) - 1);
    run_ring_step();
  }

  void run_ring_step() {
    const std::size_t w = cluster_.workers.size();
    pending_ = static_cast<int>(w);
    double chunk_bytes =
        job_.model_bytes * compression_.push_ratio / static_cast<double>(w);
    if (options_.faults != nullptr)
      chunk_bytes *= options_.faults->network_penalty(queue_.now());
    for (std::size_t i = 0; i < w; ++i) {
      const std::size_t next = (i + 1) % w;
      if (iteration_ >= options_.warmup_iterations)
        measured_bytes_ += chunk_bytes;
      fabric_.send(worker_node_[i], worker_node_[next], chunk_bytes,
                   job_.per_message_latency, [this] {
                     if (--pending_ == 0) {
                       if (--steps_left_ > 0) {
                         run_ring_step();
                       } else {
                         finish_iteration();
                       }
                     }
                   });
    }
  }

  void finish_iteration() {
    ++iteration_;
    if (iteration_ == options_.warmup_iterations) {
      measure_start_time_ = queue_.now();
      measured_bytes_ = 0.0;
    }
    if (iteration_ < options_.warmup_iterations + options_.measure_iterations)
      start_compute_phase();
  }

  Cluster cluster_;
  JobParams job_;
  AllReduceSimOptions options_;

  EventQueue queue_;
  FlowNetwork network_;
  StarFabric fabric_;
  CompressionProps compression_;

  std::vector<std::size_t> worker_node_;
  std::vector<util::Rng> worker_rng_;
  std::vector<double> compute_finish_;

  int iteration_ = 0;
  int pending_ = 0;
  int steps_left_ = 0;
  double measure_start_time_ = 0.0;
  double measured_bytes_ = 0.0;
  double barrier_wait_sum_ = 0.0;
  double fault_downtime_sum_ = 0.0;
  std::int64_t fault_event_count_ = 0;
  std::vector<double> fault_checked_until_;  // per worker, lazily sized
};

}  // namespace

RuntimeStats simulate_allreduce(const Cluster& cluster, const JobParams& job,
                                util::Rng& rng,
                                const AllReduceSimOptions& options) {
  ADML_SPAN("sim.allreduce_run");
  ADML_COUNT("sim.allreduce_runs", 1);
  AllReduceSimulation sim(cluster, job, rng, options);
  return sim.run();
}

}  // namespace autodml::sim

// Discrete-event simulation core.
//
// A single-threaded event loop with a monotonic virtual clock. Events are
// closures ordered by (time, insertion sequence) so same-time events run in
// deterministic FIFO order — determinism is a hard requirement because every
// experiment must be reproducible from a seed. Cancellation is lazy: cancel()
// marks the id and the pop loop skips dead entries (the flow network
// reschedules its completion event on every reallocation, so cheap
// cancellation matters).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace autodml::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  double now() const { return now_; }

  /// Schedule at absolute virtual time t >= now().
  EventId schedule_at(double t, std::function<void()> fn);

  /// Schedule after a non-negative delay.
  EventId schedule_after(double delay, std::function<void()> fn);

  /// Mark an event dead; it will be skipped when popped. Idempotent.
  void cancel(EventId id);

  /// Pop and run the earliest live event. Returns false when empty.
  bool step();

  /// Run until the queue drains or `max_events` have run. Returns the
  /// number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run until the clock passes `t_end` or the queue drains.
  void run_until(double t_end);

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ordered containers: these are keyed lookups today, but ordered
  // iteration is a determinism invariant the in-tree linter enforces
  // (adml-lint D003) -- unordered iteration order is implementation-
  // defined and would silently vary across standard libraries.
  std::map<EventId, std::function<void()>> handlers_;
  std::set<EventId> cancelled_;
  std::size_t live_count_ = 0;
};

}  // namespace autodml::sim

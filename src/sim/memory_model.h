// Memory-footprint model with OOM feasibility.
//
// A real tuner must survive configurations that simply crash (too-large
// batches, too few PS shards for the optimizer state). We model the dominant
// footprint terms and declare a configuration infeasible when any node would
// exceed its RAM — the evaluator reports these as failed runs, which the
// tuner must learn to avoid without wasting budget on them.
#pragma once

#include <string>

#include "sim/cluster.h"
#include "sim/job.h"

namespace autodml::sim {

enum class Arch { kPs, kAllReduce };

Arch arch_from_string(std::string_view s);
std::string to_string(Arch a);

struct MemoryParams {
  /// Bytes of activations retained per sample of the mini-batch.
  double activation_bytes_per_sample = 0.0;
  /// Optimizer state size as a multiple of model size (Adam: m and v -> 2).
  double optimizer_state_factor = 2.0;
  /// Fixed framework/runtime overhead per node.
  double framework_overhead_bytes = 1.2e9;
};

struct MemoryCheck {
  bool feasible = true;
  std::string reason;          // empty when feasible
  double worker_bytes = 0.0;   // footprint of one worker
  double server_bytes = 0.0;   // footprint of one server (PS only)
};

/// Checks every node of the provisioned cluster against its RAM.
MemoryCheck check_memory(const Cluster& cluster, const JobParams& job,
                         Arch arch, const MemoryParams& params);

}  // namespace autodml::sim

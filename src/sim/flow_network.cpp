#include "sim/flow_network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autodml::sim {

namespace {
constexpr double kBitEpsilon = 1e-6;  // flows below this are complete
}

LinkId FlowNetwork::add_link(double capacity_bps) {
  if (!(capacity_bps > 0.0) || !std::isfinite(capacity_bps))
    throw std::invalid_argument("FlowNetwork: bad link capacity");
  link_capacity_.push_back(capacity_bps);
  return link_capacity_.size() - 1;
}

FlowId FlowNetwork::start_flow(std::vector<LinkId> path, double bits,
                               std::function<void()> on_complete) {
  for (LinkId l : path) {
    if (l >= link_capacity_.size())
      throw std::invalid_argument("FlowNetwork: unknown link in path");
  }
  if (bits < 0.0 || !std::isfinite(bits))
    throw std::invalid_argument("FlowNetwork: bad flow size");

  advance_progress();
  const FlowId id = next_flow_id_++;
  if (path.empty() || bits <= kBitEpsilon) {
    // Nothing can throttle it; complete on the next event tick so callbacks
    // never run re-entrantly inside start_flow.
    queue_->schedule_after(0.0, std::move(on_complete));
    reallocate();
    return id;
  }
  Flow flow{id, std::move(path), bits, 0.0, std::move(on_complete)};
  flows_.emplace(id, std::move(flow));
  reallocate();
  return id;
}

double FlowNetwork::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNetwork::link_utilization(LinkId link) const {
  double total = 0.0;
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.path.begin(), flow.path.end(), link) !=
        flow.path.end()) {
      total += flow.rate;
    }
  }
  return total;
}

void FlowNetwork::advance_progress() {
  const double now = queue_->now();
  const double dt = now - last_progress_time_;
  last_progress_time_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    flow.remaining_bits = std::max(0.0, flow.remaining_bits - flow.rate * dt);
  }
}

void FlowNetwork::reallocate() {
  // Progressive filling: repeatedly find the most-constrained link, pin its
  // flows at the fair share, remove them and their capacity, repeat.
  std::vector<double> residual = link_capacity_;
  std::vector<std::size_t> load(link_capacity_.size(), 0);
  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    unfrozen.push_back(&flow);
    for (LinkId l : flow.path) ++load[l];
  }

  while (!unfrozen.empty()) {
    // Bottleneck link: minimal residual fair share among loaded links.
    double best_share = std::numeric_limits<double>::infinity();
    for (LinkId l = 0; l < residual.size(); ++l) {
      if (load[l] == 0) continue;
      best_share =
          std::min(best_share, residual[l] / static_cast<double>(load[l]));
    }
    // Freeze every flow crossing a link that is saturated at best_share.
    std::vector<Flow*> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (Flow* flow : unfrozen) {
      bool bottlenecked = false;
      for (LinkId l : flow->path) {
        if (residual[l] / static_cast<double>(load[l]) <=
            best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        flow->rate = best_share;
      } else {
        still_unfrozen.push_back(flow);
      }
    }
    // Retire frozen flows' capacity and load.
    for (Flow* flow : unfrozen) {
      if (std::find(still_unfrozen.begin(), still_unfrozen.end(), flow) !=
          still_unfrozen.end()) {
        continue;
      }
      for (LinkId l : flow->path) {
        residual[l] = std::max(0.0, residual[l] - flow->rate);
        --load[l];
      }
    }
    if (still_unfrozen.size() == unfrozen.size()) {
      // Defensive: no progress (should be impossible); pin everything.
      for (Flow* flow : unfrozen) flow->rate = best_share;
      still_unfrozen.clear();
    }
    unfrozen = std::move(still_unfrozen);
  }

  // Reschedule the single completion event at the earliest finish time.
  if (has_completion_event_) {
    queue_->cancel(completion_event_);
    has_completion_event_ = false;
  }
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    earliest = std::min(earliest, flow.remaining_bits / flow.rate);
  }
  if (std::isfinite(earliest)) {
    completion_event_ = queue_->schedule_after(
        earliest, [this] { on_completion_event(); });
    has_completion_event_ = true;
  }
}

void FlowNetwork::on_completion_event() {
  has_completion_event_ = false;
  advance_progress();
  // A flow is done when its remainder is absolute dust OR would finish
  // within the floating-point resolution of the current clock (t + dt == t):
  // without the relative test the completion event can re-fire forever at a
  // frozen virtual time once the clock grows large.
  const double now = queue_->now();
  const double time_dust = std::max(1e-15, now * 1e-12);
  const auto is_done = [&](const Flow& f) {
    if (f.remaining_bits <= kBitEpsilon) return true;
    return f.rate > 0.0 && f.remaining_bits / f.rate <= time_dust;
  };
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (is_done(it->second)) {
      callbacks.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (callbacks.empty() && !flows_.empty()) {
    // Guaranteed progress: the event fired because *some* flow was due;
    // numerical drift can leave it marginally unfinished. Retire the flow
    // closest to completion rather than spinning.
    auto nearest = flows_.end();
    double best_eta = std::numeric_limits<double>::infinity();
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
      if (it->second.rate <= 0.0) continue;
      const double eta = it->second.remaining_bits / it->second.rate;
      if (eta < best_eta) {
        best_eta = eta;
        nearest = it;
      }
    }
    // Only force it when the remaining time is unrepresentable on the
    // clock (now + eta == now); otherwise the rescheduled event below will
    // make progress on its own.
    if (nearest != flows_.end() && now + best_eta <= now) {
      callbacks.push_back(std::move(nearest->second.on_complete));
      flows_.erase(nearest);
    }
  }
  reallocate();
  // Callbacks run last: they may start new flows, which re-reallocates.
  for (auto& cb : callbacks) cb();
}

std::size_t StarFabric::add_node(double nic_bps) {
  uplink_.push_back(network_->add_link(nic_bps));
  downlink_.push_back(network_->add_link(nic_bps));
  return uplink_.size() - 1;
}

void StarFabric::send(std::size_t src, std::size_t dst, double bytes,
                      double latency, std::function<void()> on_complete) {
  if (src >= num_nodes() || dst >= num_nodes())
    throw std::invalid_argument("StarFabric: unknown node");
  if (latency < 0.0) throw std::invalid_argument("StarFabric: bad latency");
  const double bits = bytes * 8.0;
  if (src == dst) {
    queue_->schedule_after(latency, std::move(on_complete));
    return;
  }
  std::vector<LinkId> path{uplink_[src], downlink_[dst]};
  queue_->schedule_after(
      latency, [this, path = std::move(path), bits,
                cb = std::move(on_complete)]() mutable {
        network_->start_flow(std::move(path), bits, std::move(cb));
      });
}

}  // namespace autodml::sim

#include "sim/job.h"

namespace autodml::sim {

SyncMode sync_mode_from_string(std::string_view s) {
  if (s == "bsp") return SyncMode::kBsp;
  if (s == "asp") return SyncMode::kAsp;
  if (s == "ssp") return SyncMode::kSsp;
  throw std::invalid_argument("unknown sync mode: " + std::string(s));
}

std::string to_string(SyncMode m) {
  switch (m) {
    case SyncMode::kBsp:
      return "bsp";
    case SyncMode::kAsp:
      return "asp";
    case SyncMode::kSsp:
      return "ssp";
  }
  return "?";
}

Compression compression_from_string(std::string_view s) {
  if (s == "none") return Compression::kNone;
  if (s == "fp16") return Compression::kFp16;
  if (s == "int8") return Compression::kInt8;
  if (s == "topk") return Compression::kTopK;
  throw std::invalid_argument("unknown compression: " + std::string(s));
}

std::string to_string(Compression c) {
  switch (c) {
    case Compression::kNone:
      return "none";
    case Compression::kFp16:
      return "fp16";
    case Compression::kInt8:
      return "int8";
    case Compression::kTopK:
      return "topk";
  }
  return "?";
}

CompressionProps compression_props(Compression c) {
  switch (c) {
    case Compression::kNone:
      return {1.0, 1.0, 0.0, 1.0};
    case Compression::kFp16:
      // Halves both directions; near-free numerically and statistically.
      return {0.5, 0.5, 0.2, 1.01};
    case Compression::kInt8:
      return {0.25, 1.0, 0.6, 1.06};
    case Compression::kTopK:
      // Top-1% sparsification with index overhead: ~2% of the bytes, but a
      // real convergence cost and a sort-like compute cost.
      return {0.02, 1.0, 2.5, 1.22};
  }
  return {};
}

}  // namespace autodml::sim

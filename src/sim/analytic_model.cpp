#include "sim/analytic_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autodml::sim {

double expected_max_lognormal_factor(int n, double sigma) {
  if (n <= 1 || sigma <= 0.0) return 1.0;
  // E[max] ~ exp(sigma * sqrt(2 ln n)) for lognormal tails (extreme-value
  // first-order term); adequate for the small n and sigma we use.
  return std::exp(sigma * std::sqrt(2.0 * std::log(static_cast<double>(n))));
}

namespace {

double mean_compute_seconds(const Cluster& cluster, const JobParams& job) {
  // Slowest persistent node sets the BSP envelope; use the harmonic mean of
  // node speeds for throughput-style estimates. Here: mean across nodes.
  const CompressionProps comp = compression_props(job.compression);
  const double flops =
      static_cast<double>(job.batch_per_worker) * job.flops_per_sample +
      job.model_bytes * comp.flops_per_byte;
  double total = 0.0;
  for (const auto& node : cluster.workers) {
    total += flops / (node.type.flops() * node.speed_factor);
  }
  return total / static_cast<double>(cluster.workers.size());
}

double worst_compute_seconds(const Cluster& cluster, const JobParams& job) {
  const CompressionProps comp = compression_props(job.compression);
  const double flops =
      static_cast<double>(job.batch_per_worker) * job.flops_per_sample +
      job.model_bytes * comp.flops_per_byte;
  double worst = 0.0;
  for (const auto& node : cluster.workers) {
    worst = std::max(worst, flops / (node.type.flops() * node.speed_factor));
  }
  return worst;
}

}  // namespace

AnalyticEstimate analytic_ps(const Cluster& cluster, const JobParams& job) {
  job.validate();
  if (cluster.servers.empty())
    throw std::invalid_argument("analytic_ps: no servers");
  const auto w = static_cast<double>(cluster.workers.size());
  const auto s = static_cast<double>(cluster.servers.size());
  const CompressionProps comp = compression_props(job.compression);

  const double push_bytes = job.model_bytes * comp.push_ratio;
  const double pull_bytes = job.model_bytes * comp.pull_ratio;
  const double worker_nic = cluster.workers.front().type.nic_bps() / 8.0;
  const double server_nic = cluster.servers.front().type.nic_bps() / 8.0;

  // Per-round transfer time: each worker moves push+pull bytes through its
  // NIC; each server moves W/S of the aggregate through its NIC. The larger
  // envelope dominates when all workers communicate together (BSP).
  const double worker_side = (push_bytes + pull_bytes) / worker_nic;
  const double server_side = w * (push_bytes + pull_bytes) / (s * server_nic);
  const double latency_term =
      2.0 * job.per_message_latency *
      std::ceil(s / static_cast<double>(job.comm_threads));

  AnalyticEstimate est;
  est.comm_seconds = std::max(worker_side, server_side) + latency_term;

  switch (job.sync) {
    case SyncMode::kBsp: {
      const double straggler = expected_max_lognormal_factor(
          static_cast<int>(cluster.workers.size()),
          cluster.workers.front().jitter_sigma);
      est.compute_seconds = worst_compute_seconds(cluster, job) * straggler;
      est.iteration_seconds = est.compute_seconds + est.comm_seconds;
      est.updates_per_second = w / est.iteration_seconds;
      break;
    }
    case SyncMode::kAsp:
    case SyncMode::kSsp: {
      // Workers pipeline independently; per-worker comm sees on average the
      // steady-state share of server bandwidth.
      est.compute_seconds = mean_compute_seconds(cluster, job);
      const double per_worker_comm =
          (push_bytes + pull_bytes) / worker_nic + latency_term;
      const double per_worker_rate =
          1.0 / (est.compute_seconds + per_worker_comm);
      const double demand = w * per_worker_rate;
      // Aggregate server capacity caps total update throughput.
      const double capacity = s * server_nic / (push_bytes + pull_bytes);
      est.updates_per_second = std::min(demand, capacity);
      est.iteration_seconds = w / est.updates_per_second;
      break;
    }
  }
  est.samples_per_second =
      est.updates_per_second * static_cast<double>(job.batch_per_worker);
  return est;
}

AnalyticEstimate analytic_allreduce(const Cluster& cluster,
                                    const JobParams& job) {
  job.validate();
  const auto w = static_cast<double>(cluster.workers.size());
  const CompressionProps comp = compression_props(job.compression);
  const double bytes = job.model_bytes * comp.push_ratio;
  const double nic = cluster.workers.front().type.nic_bps() / 8.0;

  AnalyticEstimate est;
  const double straggler = expected_max_lognormal_factor(
      static_cast<int>(cluster.workers.size()),
      cluster.workers.front().jitter_sigma);
  est.compute_seconds = worst_compute_seconds(cluster, job) * straggler;
  if (cluster.workers.size() > 1) {
    // Ring: 2(W-1) steps of bytes/W each, fully parallel across links.
    est.comm_seconds = 2.0 * (w - 1.0) / w * bytes / nic +
                       2.0 * (w - 1.0) * job.per_message_latency;
  }
  est.iteration_seconds = est.compute_seconds + est.comm_seconds;
  est.updates_per_second = w / est.iteration_seconds;
  est.samples_per_second =
      est.updates_per_second * static_cast<double>(job.batch_per_worker);
  return est;
}

AnalyticEstimate analytic_estimate(const Cluster& cluster,
                                   const JobParams& job, Arch arch) {
  return arch == Arch::kPs ? analytic_ps(cluster, job)
                           : analytic_allreduce(cluster, job);
}

}  // namespace autodml::sim

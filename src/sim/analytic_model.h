// Closed-form throughput model.
//
// The cheap first-order approximation of what the discrete-event runtimes
// compute: compute/communication envelopes plus an extreme-value straggler
// term. Used (a) as the baseline in the simulator-validation experiment
// R-T6, where its error versus the DES ground truth is quantified, and
// (b) by anyone who wants a fast screening model. It deliberately ignores
// queuing, pipelining, and barrier dynamics — the things the DES gets right.
#pragma once

#include "sim/cluster.h"
#include "sim/job.h"
#include "sim/memory_model.h"

namespace autodml::sim {

/// Expected max of n i.i.d. lognormal(0, sigma) factors (Gumbel-style
/// approximation); 1.0 for n <= 1 or sigma == 0.
double expected_max_lognormal_factor(int n, double sigma);

struct AnalyticEstimate {
  double iteration_seconds = 0.0;   // per synchronous round / per worker
  double updates_per_second = 0.0;
  double samples_per_second = 0.0;
  double compute_seconds = 0.0;     // breakdown terms
  double comm_seconds = 0.0;
};

AnalyticEstimate analytic_ps(const Cluster& cluster, const JobParams& job);
AnalyticEstimate analytic_allreduce(const Cluster& cluster,
                                    const JobParams& job);

/// Dispatch on architecture.
AnalyticEstimate analytic_estimate(const Cluster& cluster,
                                   const JobParams& job, Arch arch);

}  // namespace autodml::sim

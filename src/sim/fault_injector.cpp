#include "sim/fault_injector.h"

#include <algorithm>
#include <stdexcept>

namespace autodml::sim {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kPreemption: return "preemption";
    case FaultKind::kStragglerEpisode: return "straggler-episode";
    case FaultKind::kNetworkDegrade: return "network-degrade";
  }
  return "unknown";
}

FaultSpec light_fault_spec() {
  FaultSpec spec;
  spec.crash_rate_per_worker_hour = 6.0;
  spec.preemption_rate_per_worker_hour = 2.0;
  spec.straggler_rate_per_worker_hour = 20.0;
  spec.degrade_rate_per_hour = 10.0;
  spec.job_kill_rate_per_hour = 0.05;
  return spec;
}

FaultSpec heavy_fault_spec() {
  FaultSpec spec = light_fault_spec();
  spec.crash_rate_per_worker_hour = 30.0;
  spec.preemption_rate_per_worker_hour = 10.0;
  spec.straggler_rate_per_worker_hour = 80.0;
  spec.straggler_slowdown = 6.0;
  spec.degrade_rate_per_hour = 40.0;
  spec.degrade_factor = 6.0;
  spec.job_kill_rate_per_hour = 0.25;
  return spec;
}

namespace {

/// Poisson arrivals in [0, horizon) via exponential gaps. Rate in events
/// per hour; returns sorted start times.
std::vector<double> poisson_arrivals(double rate_per_hour, double horizon,
                                     util::Rng& rng) {
  std::vector<double> out;
  if (rate_per_hour <= 0.0) return out;
  const double rate_per_second = rate_per_hour / 3600.0;
  double t = rng.exponential(rate_per_second);
  while (t < horizon) {
    out.push_back(t);
    t += rng.exponential(rate_per_second);
  }
  return out;
}

}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec, std::size_t num_workers,
                             std::uint64_t seed, double horizon_seconds) {
  if (horizon_seconds <= 0.0)
    throw std::invalid_argument("FaultInjector: horizon must be positive");
  util::Rng master(seed);
  std::vector<FaultEvent> events;
  // Per-worker streams split in a fixed order so the schedule is invariant
  // to which queries later consume randomness.
  for (std::size_t w = 0; w < num_workers; ++w) {
    util::Rng wrng = master.split();
    for (double t : poisson_arrivals(spec.crash_rate_per_worker_hour,
                                     horizon_seconds, wrng)) {
      events.push_back({FaultKind::kWorkerCrash, w, t,
                        spec.crash_restart_seconds, 1.0});
    }
    for (double t : poisson_arrivals(spec.preemption_rate_per_worker_hour,
                                     horizon_seconds, wrng)) {
      events.push_back({FaultKind::kPreemption, w, t,
                        spec.preemption_restart_seconds, 1.0});
    }
    for (double t : poisson_arrivals(spec.straggler_rate_per_worker_hour,
                                     horizon_seconds, wrng)) {
      events.push_back({FaultKind::kStragglerEpisode, w, t,
                        spec.straggler_duration_seconds,
                        spec.straggler_slowdown});
    }
  }
  util::Rng net_rng = master.split();
  for (double t : poisson_arrivals(spec.degrade_rate_per_hour, horizon_seconds,
                                   net_rng)) {
    events.push_back({FaultKind::kNetworkDegrade, 0, t,
                      spec.degrade_duration_seconds, spec.degrade_factor});
  }
  per_worker_downtime_.resize(num_workers);
  per_worker_slowdown_.resize(num_workers);
  index_events(std::move(events));
}

FaultInjector::FaultInjector(const FaultSpec& /*spec*/, std::size_t num_workers,
                             std::vector<FaultEvent> events) {
  per_worker_downtime_.resize(num_workers);
  per_worker_slowdown_.resize(num_workers);
  index_events(std::move(events));
}

void FaultInjector::index_events(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start < b.start;
                   });
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kWorkerCrash:
      case FaultKind::kPreemption:
        if (e.worker >= per_worker_downtime_.size())
          throw std::invalid_argument("FaultInjector: worker out of range");
        per_worker_downtime_[e.worker].push_back(e);
        break;
      case FaultKind::kStragglerEpisode:
        if (e.worker >= per_worker_slowdown_.size())
          throw std::invalid_argument("FaultInjector: worker out of range");
        per_worker_slowdown_[e.worker].push_back(e);
        break;
      case FaultKind::kNetworkDegrade:
        degrade_windows_.push_back(e);
        break;
    }
  }
  trace_ = std::move(events);
}

double FaultInjector::downtime_during(std::size_t worker, double t0,
                                      double t1) const {
  if (worker >= per_worker_downtime_.size() || t1 <= t0) return 0.0;
  const auto& events = per_worker_downtime_[worker];
  auto it = std::lower_bound(
      events.begin(), events.end(), t0,
      [](const FaultEvent& e, double t) { return e.start < t; });
  double total = 0.0;
  for (; it != events.end() && it->start < t1; ++it) total += it->duration;
  return total;
}

double FaultInjector::compute_slowdown(std::size_t worker, double t) const {
  if (worker >= per_worker_slowdown_.size()) return 1.0;
  double factor = 1.0;
  // Episodes are sorted by start; stop once they begin after t. Overlapping
  // episodes do not compound — the worst active one wins.
  for (const FaultEvent& e : per_worker_slowdown_[worker]) {
    if (e.start > t) break;
    if (t < e.start + e.duration) factor = std::max(factor, e.factor);
  }
  return factor;
}

double FaultInjector::network_penalty(double t) const {
  double factor = 1.0;
  for (const FaultEvent& e : degrade_windows_) {
    if (e.start > t) break;
    if (t < e.start + e.duration) factor = std::max(factor, e.factor);
  }
  return factor;
}

}  // namespace autodml::sim

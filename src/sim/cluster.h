// Cluster and instance-type model.
//
// Stands in for the cloud the paper tuned on (we have no real cluster —
// see DESIGN.md substitutions). The catalog mirrors the structure of a cloud
// VM menu: general-purpose, compute-optimized, memory-optimized,
// network-optimized, and GPU shapes, with price roughly tracking capability
// so that cost-aware tuning has a real trade-off to exploit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace autodml::sim {

struct InstanceType {
  std::string name;
  int vcpus = 0;
  double gflops = 0.0;      // effective dense-training GFLOP/s for the node
  double ram_gb = 0.0;
  double nic_gbps = 0.0;    // full-duplex NIC speed
  double usd_per_hour = 0.0;

  double nic_bps() const { return nic_gbps * 1e9; }
  double ram_bytes() const { return ram_gb * 1e9; }
  double flops() const { return gflops * 1e9; }
};

/// The fixed 8-type catalog used across all experiments.
const std::vector<InstanceType>& instance_catalog();

/// Lookup by name; throws std::invalid_argument for unknown names.
const InstanceType& instance_by_name(std::string_view name);

/// Persistent per-node performance heterogeneity plus per-iteration jitter
/// parameters. `speed_factor` multiplies compute throughput (drawn once per
/// node: some VMs are simply slower); `jitter_sigma` is the lognormal shape
/// of per-iteration compute-time noise (transient stragglers).
struct NodeProfile {
  InstanceType type;
  double speed_factor = 1.0;
  double jitter_sigma = 0.0;
};

/// A provisioned cluster: worker nodes plus (for PS architectures) server
/// nodes. Node profiles are drawn deterministically from the seed.
struct Cluster {
  std::vector<NodeProfile> workers;
  std::vector<NodeProfile> servers;

  double usd_per_hour() const;
};

struct ClusterSpec {
  std::string worker_type;
  std::string server_type;
  int num_workers = 1;
  int num_servers = 0;
  /// Stddev of the persistent per-node lognormal slowdown (0 = homogeneous).
  double heterogeneity_sigma = 0.05;
  /// Per-iteration compute jitter shape (multitenancy stragglers).
  double straggler_sigma = 0.08;
};

/// Provision a cluster: draws per-node speed factors from `rng`.
Cluster provision(const ClusterSpec& spec, util::Rng& rng);

}  // namespace autodml::sim

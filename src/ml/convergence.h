// Statistical-efficiency model: how many samples must be processed to reach
// the target metric, as a function of the *system* configuration.
//
// We have no GPUs to train real models on (see DESIGN.md substitutions), so
// convergence behaviour is generated from the published empirical laws that
// the paper's search space exhibits:
//   - critical batch size: samples_to_target grows as (1 + B_eff/B_crit)
//     (diminishing returns of data parallelism beyond B_crit);
//   - staleness: asynchronous gradient delay inflates samples needed
//     polynomially and narrows the stable learning-rate region;
//   - learning rate: a log-parabolic sensitivity around an optimum that
//     scales linearly with effective batch up to a cap, with divergence
//     above a batch- and staleness-dependent threshold;
//   - lossy gradient compression adds a scheme-specific multiplier.
// Per-run noise is multiplicative lognormal, so repeated evaluations of one
// configuration disagree — the tuner must be noise-aware.
// The shape (not the constants) is cross-validated against a real
// logistic-regression trainer in micro_trainer.h (experiment R-T6).
#pragma once

#include "sim/job.h"
#include "util/rng.h"

namespace autodml::ml {

struct StatModelParams {
  double base_samples = 1e6;     // samples to target at B_eff<<B_crit, opt lr
  double critical_batch = 512;   // B_crit
  double staleness_coeff = 0.06; // penalty = 1 + c * staleness^p (update units)
  double staleness_power = 1.15;
  double lr_sensitivity = 0.35;  // exp(k * ln^2(lr / lr_opt))
  double base_lr = 0.05;         // optimal at reference_batch, staleness 0
  double reference_batch = 32;
  double lr_scaling_cap = 8.0;   // lr_opt growth cap (x base_lr)
  double divergence_margin = 12.0;  // diverge when lr > margin * lr_opt_eff
  /// A run whose LR mis-tuning would inflate samples-to-target beyond this
  /// factor is reported as failed ("no progress within patience") — in
  /// practice nobody lets a 50x-too-slow run finish, and an unbounded
  /// penalty would make the space spread physically implausible.
  double lr_penalty_cap = 50.0;
  double eval_noise_sigma = 0.05;   // lognormal noise on samples needed
  double target_metric = 0.92;
  double initial_metric = 0.10;
  double metric_ceiling = 0.97;  // asymptote; must exceed target_metric
  double curve_gamma = 1.4;      // power-law tail of the learning curve
};

struct StatOutcome {
  bool diverged = false;
  double samples_to_target = 0.0;  // noisy; infinity never returned
  double effective_batch = 0.0;
  double lr_optimal = 0.0;         // diagnostics for tests/benches
};

/// Effective batch per model update: BSP aggregates all workers' batches,
/// ASP/SSP apply per-worker batches individually.
double effective_batch(sim::SyncMode mode, int num_workers,
                       int batch_per_worker);

/// Staleness in *update* units — the units the penalty (and the delayed-
/// gradient micro-trainer that validates it) is calibrated in. The runtime
/// reports mean staleness in iteration rounds; each round is num_workers
/// updates. BSP is zero by construction.
double staleness_updates(sim::SyncMode mode, double mean_staleness_iterations,
                         int num_workers);

/// Samples that must be processed to reach the target metric. `noise_rng`
/// supplies the per-run noise; pass a fixed-seed Rng to make a run
/// reproducible. Divergence is deterministic in the inputs.
StatOutcome samples_to_target(const StatModelParams& params,
                              double effective_batch, double mean_staleness,
                              double learning_rate,
                              sim::Compression compression,
                              util::Rng& noise_rng);

/// Metric value after `samples` processed for a run that reaches the target
/// after `samples_to_target`. Monotone in samples; metric_at(0) =
/// initial_metric and metric_at(samples_to_target) = target_metric.
double metric_at(const StatModelParams& params, double samples,
                 double samples_to_target);

}  // namespace autodml::ml

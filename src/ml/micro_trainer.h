// A real (not modeled) trainer: logistic regression with delayed gradients.
//
// This is the ground truth behind the statistical-efficiency model. It
// trains an actual logistic-regression classifier on synthetic Gaussian
// data with plain SGD, but applies each gradient `delay` steps after the
// weights it was computed from — exactly the effect of asynchronous
// parameter-server training. Experiment R-T6 sweeps delay and batch size
// here and checks that the convergence.h laws (staleness penalty monotone,
// critical-batch diminishing returns) hold for real SGD, not just by fiat.
#pragma once

#include <cstdint>

namespace autodml::ml {

struct MicroTrainerConfig {
  int dim = 16;
  int train_samples = 4000;
  int test_samples = 2000;
  // Distance between class means. The Bayes accuracy is Phi(separation/2)
  // for unit-variance classes, so 3.2 -> ~0.95 ceiling, comfortably above
  // the default 0.9 target.
  double class_separation = 3.2;
  int batch_size = 8;
  double learning_rate = 0.2;
  int gradient_delay = 0;  // steps between gradient compute and apply
  double target_accuracy = 0.9;
  int max_steps = 50000;
  int eval_every = 25;
  std::uint64_t seed = 1;
};

struct MicroTrainerResult {
  bool reached_target = false;
  bool diverged = false;
  int steps = 0;                 // steps until target (or max_steps)
  double samples_processed = 0.0;
  double final_accuracy = 0.0;
};

MicroTrainerResult run_micro_trainer(const MicroTrainerConfig& config);

}  // namespace autodml::ml

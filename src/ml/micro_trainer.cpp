#include "ml/micro_trainer.h"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace autodml::ml {

namespace {

struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
};

std::vector<double> random_unit_direction(int dim, util::Rng& rng) {
  std::vector<double> direction(static_cast<std::size_t>(dim));
  double norm = 0.0;
  for (auto& d : direction) {
    d = rng.normal();
    norm += d * d;
  }
  norm = std::sqrt(norm);
  for (auto& d : direction) d /= norm;
  return direction;
}

// Class means at +-separation/2 along the given unit direction. Train and
// test must share the direction — they are draws from one distribution.
Dataset make_dataset(int n, int dim, double separation,
                     const std::vector<double>& direction, util::Rng& rng) {
  Dataset data;
  data.x.reserve(static_cast<std::size_t>(n));
  data.y.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const double sign = label == 1 ? 0.5 : -0.5;
    std::vector<double> xi(static_cast<std::size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      xi[static_cast<std::size_t>(d)] =
          sign * separation * direction[static_cast<std::size_t>(d)] +
          rng.normal();
    }
    data.x.push_back(std::move(xi));
    data.y.push_back(label);
  }
  return data;
}

double sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double predict_logit(const std::vector<double>& w,
                     const std::vector<double>& x, double bias) {
  double z = bias;
  for (std::size_t d = 0; d < x.size(); ++d) z += w[d] * x[d];
  return z;
}

double accuracy(const std::vector<double>& w, double bias,
                const Dataset& data) {
  int correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    const int pred = predict_logit(w, data.x[i], bias) >= 0.0 ? 1 : 0;
    if (pred == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.x.size());
}

}  // namespace

MicroTrainerResult run_micro_trainer(const MicroTrainerConfig& config) {
  if (config.dim < 1 || config.batch_size < 1 || config.gradient_delay < 0)
    throw std::invalid_argument("micro_trainer: bad config");

  util::Rng rng(config.seed);
  const std::vector<double> direction =
      random_unit_direction(config.dim, rng);
  const Dataset train = make_dataset(
      config.train_samples, config.dim, config.class_separation, direction,
      rng);
  const Dataset test = make_dataset(config.test_samples, config.dim,
                                    config.class_separation, direction, rng);

  const auto dim = static_cast<std::size_t>(config.dim);
  std::vector<double> weights(dim, 0.0);
  double bias = 0.0;

  struct PendingGradient {
    std::vector<double> grad_w;
    double grad_b;
  };
  std::deque<PendingGradient> pipeline;

  MicroTrainerResult result;
  for (int step = 0; step < config.max_steps; ++step) {
    // Compute gradient at *current* weights; it will be applied
    // `gradient_delay` steps later (stale by then).
    PendingGradient pending;
    pending.grad_w.assign(dim, 0.0);
    pending.grad_b = 0.0;
    for (int b = 0; b < config.batch_size; ++b) {
      const std::size_t i = rng.index(train.x.size());
      const double p = sigmoid(predict_logit(weights, train.x[i], bias));
      const double err = p - static_cast<double>(train.y[i]);
      for (std::size_t d = 0; d < dim; ++d) {
        pending.grad_w[d] += err * train.x[i][d];
      }
      pending.grad_b += err;
    }
    const double inv_batch = 1.0 / static_cast<double>(config.batch_size);
    for (auto& g : pending.grad_w) g *= inv_batch;
    pending.grad_b *= inv_batch;
    pipeline.push_back(std::move(pending));

    if (static_cast<int>(pipeline.size()) > config.gradient_delay) {
      const PendingGradient& apply = pipeline.front();
      for (std::size_t d = 0; d < dim; ++d) {
        weights[d] -= config.learning_rate * apply.grad_w[d];
      }
      bias -= config.learning_rate * apply.grad_b;
      pipeline.pop_front();
    }

    result.samples_processed += config.batch_size;
    result.steps = step + 1;

    // Divergence guard.
    double wnorm = std::abs(bias);
    for (double w : weights) wnorm = std::max(wnorm, std::abs(w));
    if (!std::isfinite(wnorm) || wnorm > 1e8) {
      result.diverged = true;
      result.final_accuracy = 0.5;
      return result;
    }

    if ((step + 1) % config.eval_every == 0) {
      const double acc = accuracy(weights, bias, test);
      result.final_accuracy = acc;
      if (acc >= config.target_accuracy) {
        result.reached_target = true;
        return result;
      }
    }
  }
  result.final_accuracy = accuracy(weights, bias, test);
  result.reached_target = result.final_accuracy >= config.target_accuracy;
  return result;
}

}  // namespace autodml::ml

#include "ml/convergence.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autodml::ml {

double effective_batch(sim::SyncMode mode, int num_workers,
                       int batch_per_worker) {
  if (num_workers < 1 || batch_per_worker < 1)
    throw std::invalid_argument("effective_batch: bad counts");
  if (mode == sim::SyncMode::kBsp) {
    return static_cast<double>(num_workers) *
           static_cast<double>(batch_per_worker);
  }
  return static_cast<double>(batch_per_worker);
}

double staleness_updates(sim::SyncMode mode,
                         double mean_staleness_iterations, int num_workers) {
  if (mode == sim::SyncMode::kBsp) return 0.0;
  if (mean_staleness_iterations < 0.0)
    throw std::invalid_argument("staleness_updates: negative staleness");
  return mean_staleness_iterations * static_cast<double>(num_workers);
}

StatOutcome samples_to_target(const StatModelParams& params,
                              double effective_batch, double mean_staleness,
                              double learning_rate,
                              sim::Compression compression,
                              util::Rng& noise_rng) {
  if (effective_batch < 1.0)
    throw std::invalid_argument("samples_to_target: effective batch < 1");
  if (learning_rate <= 0.0)
    throw std::invalid_argument("samples_to_target: non-positive lr");
  if (mean_staleness < 0.0)
    throw std::invalid_argument("samples_to_target: negative staleness");
  if (params.metric_ceiling <= params.target_metric)
    throw std::invalid_argument("samples_to_target: ceiling <= target");

  StatOutcome out;
  out.effective_batch = effective_batch;

  // Linear LR scaling with effective batch, capped; staleness shrinks the
  // usable LR (delayed gradients act like extra curvature).
  const double scale = std::min(effective_batch / params.reference_batch,
                                params.lr_scaling_cap);
  out.lr_optimal = params.base_lr * scale /
                   (1.0 + 0.15 * std::pow(mean_staleness, 1.1));

  // Divergence: a hard cliff above a multiple of the optimal LR.
  if (learning_rate > params.divergence_margin * out.lr_optimal) {
    out.diverged = true;
    out.samples_to_target = std::numeric_limits<double>::max();
    return out;
  }

  const double batch_term = 1.0 + effective_batch / params.critical_batch;
  const double stale_term =
      1.0 + params.staleness_coeff *
                std::pow(mean_staleness, params.staleness_power);
  const double log_ratio = std::log(learning_rate / out.lr_optimal);
  const double lr_term = std::exp(params.lr_sensitivity * log_ratio * log_ratio);
  if (lr_term > params.lr_penalty_cap) {
    // So mis-tuned it makes no visible progress; counts as a failed run.
    out.diverged = true;
    out.samples_to_target = std::numeric_limits<double>::max();
    return out;
  }
  const double comp_term =
      sim::compression_props(compression).sample_penalty;

  const double noise =
      params.eval_noise_sigma > 0.0
          ? noise_rng.lognormal_median(1.0, params.eval_noise_sigma)
          : 1.0;

  out.samples_to_target = params.base_samples * batch_term * stale_term *
                          lr_term * comp_term * noise;
  return out;
}

double metric_at(const StatModelParams& params, double samples,
                 double samples_to_target) {
  if (samples < 0.0 || samples_to_target <= 0.0)
    throw std::invalid_argument("metric_at: bad arguments");
  // acc(s) = ceiling - (ceiling - initial) * (1 + s/h)^(-gamma), with h
  // chosen so that acc(samples_to_target) == target exactly.
  const double r = (params.metric_ceiling - params.target_metric) /
                   (params.metric_ceiling - params.initial_metric);
  const double h =
      samples_to_target / (std::pow(r, -1.0 / params.curve_gamma) - 1.0);
  return params.metric_ceiling -
         (params.metric_ceiling - params.initial_metric) *
             std::pow(1.0 + samples / h, -params.curve_gamma);
}

}  // namespace autodml::ml

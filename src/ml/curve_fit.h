// Learning-curve extrapolation.
//
// The tuner's early-termination policy watches a run's (samples, metric)
// checkpoints, fits a saturating power law
//     m(s) = c - (c - m0) * (1 + s/h)^(-g)
// by least squares, and extrapolates how many samples the run still needs to
// reach the target. If even an optimistic extrapolation says the run cannot
// beat the incumbent, the run is killed — this is where the search-cost
// savings of experiment R-F4 come from.
#pragma once

#include <limits>
#include <span>

namespace autodml::ml {

struct CurveFitResult {
  bool ok = false;
  double ceiling = 0.0;   // c: asymptotic metric
  double m0 = 0.0;        // fitted metric at s = 0
  double half_life = 0.0; // h
  double gamma = 0.0;     // g
  double rmse = std::numeric_limits<double>::infinity();
};

/// Fits the power law to checkpoints. Needs >= 4 points with increasing
/// sample counts; returns ok=false otherwise or when the fit is degenerate.
CurveFitResult fit_learning_curve(std::span<const double> samples,
                                  std::span<const double> metric);

/// Evaluate the fitted curve at `samples`.
double curve_value(const CurveFitResult& fit, double samples);

/// Samples needed for the fitted curve to reach `target`; +infinity when the
/// fitted ceiling never reaches it.
double predict_samples_to_reach(const CurveFitResult& fit, double target);

}  // namespace autodml::ml

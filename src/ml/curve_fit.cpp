#include "ml/curve_fit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/optimize.h"

namespace autodml::ml {

namespace {

// Parameter packing for the optimizer (all unconstrained):
//   theta[0] = logit-ish ceiling via c = max_m + softplus(theta0) * range
//   theta[1] = log half-life
//   theta[2] = log gamma
//   theta[3] = m0 (fitted floor)
double softplus(double x) {
  if (x > 30.0) return x;
  return std::log1p(std::exp(x));
}

struct Packed {
  double ceiling, h, g, m0;
};

Packed unpack(std::span<const double> theta, double max_m, double range) {
  Packed p;
  p.ceiling = max_m + softplus(theta[0]) * range * 0.5 + 1e-6;
  p.h = std::exp(theta[1]);
  p.g = std::exp(theta[2]);
  p.m0 = theta[3];
  return p;
}

double model(const Packed& p, double s) {
  return p.ceiling - (p.ceiling - p.m0) * std::pow(1.0 + s / p.h, -p.g);
}

}  // namespace

CurveFitResult fit_learning_curve(std::span<const double> samples,
                                  std::span<const double> metric) {
  CurveFitResult out;
  if (samples.size() != metric.size() || samples.size() < 4) return out;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i] <= samples[i - 1]) return out;
  }

  const double min_m = *std::min_element(metric.begin(), metric.end());
  const double max_m = *std::max_element(metric.begin(), metric.end());
  const double range = std::max(1e-6, max_m - min_m);
  const double max_s = samples.back();

  const auto objective = [&](std::span<const double> theta) {
    const Packed p = unpack(theta, max_m, range);
    double sse = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double err = model(p, samples[i]) - metric[i];
      sse += err * err;
    }
    return sse;
  };

  // Multi-start over plausible half-lives; the surface has local minima.
  math::NelderMeadOptions nm;
  nm.max_iterations = 400;
  nm.initial_step = 0.4;
  double best = std::numeric_limits<double>::infinity();
  math::Vec best_theta;
  for (const double h0 : {max_s * 0.1, max_s * 0.5, max_s * 2.0}) {
    const math::Vec start = {0.0, std::log(h0), std::log(1.2), min_m};
    const auto result = math::nelder_mead(objective, start, nm);
    if (result.value < best) {
      best = result.value;
      best_theta = result.x;
    }
  }
  if (best_theta.empty() || !std::isfinite(best)) return out;

  const Packed p = unpack(best_theta, max_m, range);
  out.ok = true;
  out.ceiling = p.ceiling;
  out.half_life = p.h;
  out.gamma = p.g;
  out.m0 = p.m0;
  out.rmse = std::sqrt(best / static_cast<double>(samples.size()));
  return out;
}

double curve_value(const CurveFitResult& fit, double samples) {
  if (!fit.ok) throw std::logic_error("curve_value: fit not ok");
  Packed p{fit.ceiling, fit.half_life, fit.gamma, fit.m0};
  return model(p, samples);
}

double predict_samples_to_reach(const CurveFitResult& fit, double target) {
  if (!fit.ok) throw std::logic_error("predict: fit not ok");
  if (target >= fit.ceiling) return std::numeric_limits<double>::infinity();
  if (target <= fit.m0) return 0.0;
  // Invert: (c - target)/(c - m0) = (1 + s/h)^(-g).
  const double ratio = (fit.ceiling - target) / (fit.ceiling - fit.m0);
  return fit.half_life * (std::pow(ratio, -1.0 / fit.gamma) - 1.0);
}

}  // namespace autodml::ml
